#include "clear/pseudo_label.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::core {
namespace {

nn::CnnLstmConfig tiny_model() {
  nn::CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 3;
  c.lstm_hidden = 6;
  c.dropout = 0.0;
  return c;
}

/// Separable task (class 1: higher top-half mean) with a train/adapt split.
struct Fixture {
  std::vector<Tensor> maps;
  nn::MapDataset labelled;   // For pre-training.
  std::vector<const Tensor*> unlabeled;
  std::vector<std::size_t> hidden_labels;

  explicit Fixture(std::size_t n_train, std::size_t n_unlabeled,
                   std::uint64_t seed, double gap = 1.5) {
    Rng rng(seed);
    const std::size_t total = n_train + n_unlabeled;
    for (std::size_t i = 0; i < total; ++i) {
      const int label = static_cast<int>(i % 2);
      Tensor m({16, 8});
      for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 8; ++c)
          m.at2(r, c) = static_cast<float>(
              rng.normal(label && r < 8 ? gap : 0.0, 0.5));
      maps.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < n_train; ++i) {
      labelled.maps.push_back(&maps[i]);
      labelled.labels.push_back(i % 2);
    }
    for (std::size_t i = n_train; i < total; ++i) {
      unlabeled.push_back(&maps[i]);
      hidden_labels.push_back(i % 2);
    }
  }
};

std::unique_ptr<nn::Sequential> pretrained(const Fixture& f,
                                           std::uint64_t seed) {
  Rng rng(seed);
  auto model = nn::build_cnn_lstm(tiny_model(), rng);
  nn::TrainConfig tc;
  tc.epochs = 16;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  nn::train_classifier(*model, f.labelled, tc);
  return model;
}

PseudoLabelConfig pl_config() {
  PseudoLabelConfig c;
  c.confidence_threshold = 0.62;
  c.rounds = 2;
  c.train.epochs = 5;
  c.train.batch_size = 4;
  c.train.lr = 1e-3;
  c.train.keep_best = false;
  c.freeze_boundary = nn::fine_tune_boundary();
  return c;
}

TEST(PseudoLabel, AdoptsConfidentMapsAndAdapts) {
  Fixture f(32, 12, 1);
  auto model = pretrained(f, 2);
  const PseudoLabelResult r = pseudo_label_adapt(
      *model, f.unlabeled, pl_config(), &f.hidden_labels);
  EXPECT_TRUE(r.adapted);
  EXPECT_GE(r.adopted_last_round, 2u);
  // On a separable task, the adopted pseudo-labels are mostly right.
  EXPECT_GE(static_cast<double>(r.adopted_correct),
            0.8 * static_cast<double>(r.adopted_last_round));
}

TEST(PseudoLabel, DoesNotDegradeAccuracyOnSeparableTask) {
  Fixture f(32, 16, 3);
  auto model = pretrained(f, 4);
  nn::MapDataset eval;
  eval.maps = f.unlabeled;
  eval.labels = f.hidden_labels;
  const double before = nn::evaluate(*model, eval).accuracy;
  pseudo_label_adapt(*model, f.unlabeled, pl_config());
  const double after = nn::evaluate(*model, eval).accuracy;
  EXPECT_GE(after, before - 0.10);
}

TEST(PseudoLabel, UntrainedModelAdoptsNothing) {
  Fixture f(4, 10, 5);
  Rng rng(6);
  auto model = nn::build_cnn_lstm(tiny_model(), rng);  // Random weights.
  PseudoLabelConfig config = pl_config();
  config.confidence_threshold = 0.99;  // Nothing is this confident.
  const PseudoLabelResult r = pseudo_label_adapt(*model, f.unlabeled, config);
  EXPECT_FALSE(r.adapted);
  EXPECT_EQ(r.rounds_run, 1u);
}

TEST(PseudoLabel, SingleClassAdoptionRejectedWhenRequired) {
  // All unlabeled maps from one class: require_both_classes must refuse.
  Fixture base(32, 0, 7);
  auto model = pretrained(base, 8);
  Fixture pool(0, 12, 9);
  std::vector<const Tensor*> one_class;
  for (std::size_t i = 0; i < pool.unlabeled.size(); ++i)
    if (pool.hidden_labels[i] == 1) one_class.push_back(pool.unlabeled[i]);
  PseudoLabelConfig config = pl_config();
  config.confidence_threshold = 0.55;
  const PseudoLabelResult r = pseudo_label_adapt(*model, one_class, config);
  EXPECT_FALSE(r.adapted);
}

TEST(PseudoLabel, ModelLeftUnfrozen) {
  Fixture f(32, 12, 10);
  auto model = pretrained(f, 11);
  pseudo_label_adapt(*model, f.unlabeled, pl_config());
  for (nn::Param* p : model->parameters()) EXPECT_FALSE(p->frozen);
}

TEST(PseudoLabel, Validation) {
  Fixture f(8, 4, 12);
  auto model = pretrained(f, 13);
  PseudoLabelConfig config = pl_config();
  EXPECT_THROW(pseudo_label_adapt(*model, {}, config), Error);
  config.confidence_threshold = 0.4;
  EXPECT_THROW(pseudo_label_adapt(*model, f.unlabeled, config), Error);
  config.confidence_threshold = 0.8;
  config.rounds = 0;
  EXPECT_THROW(pseudo_label_adapt(*model, f.unlabeled, config), Error);
  config.rounds = 1;
  std::vector<std::size_t> wrong_size = {1};
  EXPECT_THROW(pseudo_label_adapt(*model, f.unlabeled, config, &wrong_size),
               Error);
}

}  // namespace
}  // namespace clear::core
