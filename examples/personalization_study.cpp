// Personalization study: how much labelled data does a new user need?
//
// For one held-out user, the assigned cluster checkpoint is fine-tuned with
// a growing number of labelled maps; each budget is evaluated on the same
// held-out suffix of the user's recording. The study also contrasts
// head-only fine-tuning (the paper's edge recipe: conv stack frozen) with
// full fine-tuning.
//
// Run:  ./personalization_study [--volunteers=14] [--user=13] [--seed=42]
#include <cstdio>

#include "clear/pipeline.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "nn/checkpoint.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = core::smoke_config();
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 14));
  config.data.trials_per_volunteer = 12;
  config.data.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 4));
  config.finetune.epochs =
      static_cast<std::size_t>(args.get_int("ft-epochs", 15));
  config.finalize();

  std::printf("== CLEAR personalization study ==\n");
  const wemac::WemacDataset dataset = wemac::generate_wemac(config.data);
  const std::size_t user = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("user",
                                            static_cast<std::int64_t>(
                                                dataset.n_volunteers() - 1))),
      dataset.n_volunteers() - 1);

  std::vector<std::size_t> others;
  for (std::size_t u = 0; u < dataset.n_volunteers(); ++u)
    if (u != user) others.push_back(u);
  core::ClearPipeline pipeline(config);
  pipeline.fit(dataset, others);
  const auto assignment =
      pipeline.assign_user(dataset, user, config.ca_fraction);
  std::printf("user %zu -> cluster %zu\n\n", user, assignment.cluster);

  // Budget pool (stratified) and fixed test suffix.
  const auto& all = dataset.samples_of(user);
  const std::size_t half = all.size() / 2;
  const std::vector<std::size_t> test_idx(
      all.begin() + static_cast<std::ptrdiff_t>(half), all.end());
  std::vector<std::size_t> pool[2];
  for (std::size_t i = 1; i < half; ++i)  // Index 0 reserved for CA.
    pool[dataset.samples()[all[i]].label ? 1 : 0].push_back(all[i]);

  const std::vector<Tensor> test_maps =
      pipeline.normalize_samples(dataset, test_idx);
  nn::MapDataset test_set;
  for (std::size_t i = 0; i < test_maps.size(); ++i) {
    test_set.maps.push_back(&test_maps[i]);
    test_set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[test_idx[i]].label));
  }

  const nn::BinaryMetrics baseline =
      pipeline.evaluate_on(dataset, assignment.cluster, test_idx);
  std::printf("cluster model without personalization: %.1f%% accuracy\n\n",
              baseline.accuracy * 100.0);

  AsciiTable table({"labelled maps", "head-only FT acc", "full FT acc"});
  table.set_title("Accuracy on the fixed test suffix vs. label budget");
  const std::size_t max_budget = pool[0].size() + pool[1].size();
  for (std::size_t budget = 2; budget <= max_budget; budget += 2) {
    std::vector<std::size_t> ft_idx;
    std::size_t take[2] = {0, 0};
    for (std::size_t i = 0; i < budget; ++i) {
      std::size_t cls = i % 2 == 0 ? 1 : 0;
      if (take[cls] >= pool[cls].size()) cls = 1 - cls;
      if (take[cls] >= pool[cls].size()) break;
      ft_idx.push_back(pool[cls][take[cls]++]);
    }
    if (ft_idx.size() < 2) continue;

    // Head-only (paper's recipe — pipeline.fine_tune_on freezes the convs).
    auto head_only = pipeline.clone_cluster_model(assignment.cluster);
    pipeline.fine_tune_on(*head_only, dataset, ft_idx);
    const double acc_head = nn::evaluate(*head_only, test_set).accuracy * 100;

    // Full fine-tuning for contrast.
    auto full = pipeline.clone_cluster_model(assignment.cluster);
    {
      const std::vector<Tensor> ft_maps =
          pipeline.normalize_samples(dataset, ft_idx);
      nn::MapDataset ft_set;
      for (std::size_t i = 0; i < ft_maps.size(); ++i) {
        ft_set.maps.push_back(&ft_maps[i]);
        ft_set.labels.push_back(
            static_cast<std::size_t>(dataset.samples()[ft_idx[i]].label));
      }
      nn::TrainConfig tc = config.finetune;
      tc.seed = config.seed ^ 0xFF;
      nn::train_classifier(*full, ft_set, tc);
    }
    const double acc_full = nn::evaluate(*full, test_set).accuracy * 100;

    table.add_row({std::to_string(ft_idx.size()),
                   AsciiTable::num(acc_head, 1) + "%",
                   AsciiTable::num(acc_full, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nhead-only fine-tuning freezes the convolutional feature extractor\n"
      "(cheap enough for the edge); full fine-tuning updates every layer.\n");
  return 0;
}
