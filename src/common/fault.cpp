#include "common/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace clear::fault {

namespace {

// Fault-kind tags keep the decision streams for dropout / corruption /
// jitter independent even at identical indices.
constexpr std::uint64_t kKindDropout = 0xD0;
constexpr std::uint64_t kKindCorrupt = 0xC0;
constexpr std::uint64_t kKindJitter = 0x11;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d) {
  std::uint64_t h = splitmix64(a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  h = splitmix64(h ^ d);
  return h;
}

double uniform01(std::uint64_t h) {
  // Top 53 bits — the full double mantissa.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultStats inject(std::vector<double>& samples, double rate_hz,
                  std::uint64_t stream_id, const FaultSpec& spec) {
  FaultStats stats;
  stats.total_samples = samples.size();
  if (samples.empty() || !spec.any()) return stats;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  // Rails for saturation/spikes come from the clean signal's own range, so
  // the corruption scales with whatever units the channel uses.
  double lo = samples[0];
  double hi = samples[0];
  for (const double v : samples) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = std::max(hi - lo, 1e-9);
  const double rail_lo = lo - 3.0 * range;
  const double rail_hi = hi + 3.0 * range;

  // 1. Clock jitter: a slipped sample clock re-delivers the previous
  //    reading. Applied first — it perturbs otherwise-clean values.
  if (spec.jitter_rate > 0.0) {
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const std::uint64_t h = mix(spec.seed, stream_id, kKindJitter, i);
      if (uniform01(h) < spec.jitter_rate) {
        samples[i] = samples[i - 1];
        ++stats.jittered;
      }
    }
  }

  // 2. Per-sample value corruption: NaN, rail saturation, or a spike.
  if (spec.corrupt_rate > 0.0) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const std::uint64_t h = mix(spec.seed, stream_id, kKindCorrupt, i);
      if (uniform01(h) >= spec.corrupt_rate) continue;
      ++stats.corrupted;
      switch ((h >> 32) % 3) {
        case 0:
          samples[i] = kNaN;
          break;
        case 1:
          samples[i] = (h >> 34) & 1 ? rail_hi : rail_lo;
          break;
        default:
          // Symmetric spike of up to ±8 signal ranges.
          samples[i] += range * 16.0 * (uniform01(splitmix64(h)) - 0.5);
          break;
      }
    }
  }

  // 3. Channel dropout: whole blocks of `dropout_seconds` go dark (NaN),
  //    the radio-link failure mode. Blanking last means a dropped block
  //    stays dropped no matter what the earlier passes did to it.
  if (spec.dropout_rate > 0.0) {
    const auto block = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(spec.dropout_seconds *
                                                 rate_hz)));
    for (std::size_t start = 0; start < samples.size(); start += block) {
      const std::uint64_t h =
          mix(spec.seed, stream_id, kKindDropout, start / block);
      if (uniform01(h) >= spec.dropout_rate) continue;
      const std::size_t end = std::min(samples.size(), start + block);
      for (std::size_t i = start; i < end; ++i) samples[i] = kNaN;
      stats.dropped += end - start;
    }
  }
  return stats;
}

SanitizeStats sanitize(std::vector<double>& samples, GapFill policy,
                       double lo, double hi) {
  SanitizeStats stats;
  const std::size_t n = samples.size();
  std::size_t i = 0;
  while (i < n) {
    if (std::isfinite(samples[i])) {
      ++i;
      continue;
    }
    // Found a gap [i, j).
    std::size_t j = i;
    while (j < n && !std::isfinite(samples[j])) ++j;
    const bool has_prev = i > 0;
    const bool has_next = j < n;
    if (!has_prev && !has_next) {
      // Nothing finite anywhere: define the signal as flat zero.
      std::fill(samples.begin(), samples.end(), 0.0);
      stats.filled += n;
      return stats;
    }
    if (!has_prev) {
      // Leading gap: back-fill from the first good sample.
      std::fill(samples.begin() + static_cast<std::ptrdiff_t>(i),
                samples.begin() + static_cast<std::ptrdiff_t>(j), samples[j]);
    } else if (!has_next || policy == GapFill::kHoldLast) {
      std::fill(samples.begin() + static_cast<std::ptrdiff_t>(i),
                samples.begin() + static_cast<std::ptrdiff_t>(j),
                samples[i - 1]);
    } else {
      // Linear interpolation between the surrounding good samples.
      const double a = samples[i - 1];
      const double b = samples[j];
      const double span = static_cast<double>(j - (i - 1));
      for (std::size_t k = i; k < j; ++k)
        samples[k] = a + (b - a) * static_cast<double>(k - (i - 1)) / span;
    }
    stats.filled += j - i;
    i = j;
  }
  for (double& v : samples) {
    if (v < lo) {
      v = lo;
      ++stats.clamped;
    } else if (v > hi) {
      v = hi;
      ++stats.clamped;
    }
  }
  return stats;
}

namespace {
// -1 = disarmed. Atomic so concurrent save paths can share the guard; the
// tests that arm it run the guarded operation on a single thread.
std::atomic<std::int64_t> g_io_countdown{-1};
}  // namespace

void arm_io_failure(std::uint64_t countdown) {
  CLEAR_CHECK_MSG(countdown >= 1, "IO failure countdown must be >= 1");
  g_io_countdown.store(static_cast<std::int64_t>(countdown));
}

void disarm_io_failure() { g_io_countdown.store(-1); }

bool io_failure_armed() { return g_io_countdown.load() > 0; }

void maybe_fail_io(const char* site) {
  if (g_io_countdown.load() < 0) return;
  if (g_io_countdown.fetch_sub(1) == 1) {
    g_io_countdown.store(-1);
    CLEAR_CHECK_MSG(false, "injected IO failure at " << site);
  }
}

namespace {
std::atomic<std::int64_t> g_journal_io_countdown{-1};
std::atomic<std::int64_t> g_journal_torn_countdown{-1};
std::atomic<std::size_t> g_journal_torn_keep{3};
}  // namespace

void arm_journal_io_fail(std::uint64_t countdown) {
  CLEAR_CHECK_MSG(countdown >= 1, "journal IO countdown must be >= 1");
  g_journal_io_countdown.store(static_cast<std::int64_t>(countdown));
}

void disarm_journal_io_fail() { g_journal_io_countdown.store(-1); }

void maybe_fail_journal_io(const char* site) {
  if (g_journal_io_countdown.load() < 0) return;
  if (g_journal_io_countdown.fetch_sub(1) == 1) {
    g_journal_io_countdown.store(-1);
    CLEAR_CHECK_MSG(false, "injected journal IO failure at " << site);
  }
}

void arm_journal_torn_write(std::uint64_t countdown, std::size_t keep_bytes) {
  CLEAR_CHECK_MSG(countdown >= 1, "torn-write countdown must be >= 1");
  g_journal_torn_keep.store(keep_bytes);
  g_journal_torn_countdown.store(static_cast<std::int64_t>(countdown));
}

void disarm_journal_torn_write() { g_journal_torn_countdown.store(-1); }

std::size_t journal_torn_write_cap() {
  if (g_journal_torn_countdown.load() < 0)
    return std::numeric_limits<std::size_t>::max();
  if (g_journal_torn_countdown.fetch_sub(1) == 1) {
    g_journal_torn_countdown.store(-1);
    return g_journal_torn_keep.load();
  }
  return std::numeric_limits<std::size_t>::max();
}

namespace {
constexpr std::uint64_t kKindShortWrite = 0x5Eu;
NetFaultSpec g_net_spec;  // All-zero rates by default: injects nothing.
std::atomic<std::int64_t> g_net_drop_countdown{-1};
std::atomic<std::uint64_t> g_net_drop_stream{kAnyNetStream};
}  // namespace

void set_net_fault(const NetFaultSpec& spec) { g_net_spec = spec; }

void clear_net_fault() { g_net_spec = NetFaultSpec{}; }

std::size_t net_write_cap(std::uint64_t stream_id, std::uint64_t op_index) {
  if (g_net_spec.short_write_rate <= 0.0)
    return std::numeric_limits<std::size_t>::max();
  const std::uint64_t h =
      mix(g_net_spec.seed, stream_id, kKindShortWrite, op_index);
  if (uniform01(h) >= g_net_spec.short_write_rate)
    return std::numeric_limits<std::size_t>::max();
  return std::max<std::size_t>(1, g_net_spec.short_write_bytes);
}

void arm_net_drop(std::uint64_t countdown, std::uint64_t stream_id) {
  CLEAR_CHECK_MSG(countdown >= 1, "net drop countdown must be >= 1");
  g_net_drop_stream.store(stream_id);
  g_net_drop_countdown.store(static_cast<std::int64_t>(countdown));
}

void disarm_net_drop() { g_net_drop_countdown.store(-1); }

bool net_drop_fires(std::uint64_t stream_id) {
  if (g_net_drop_countdown.load() < 0) return false;
  const std::uint64_t target = g_net_drop_stream.load();
  if (target != kAnyNetStream && target != stream_id) return false;
  if (g_net_drop_countdown.fetch_sub(1) == 1) {
    g_net_drop_countdown.store(-1);
    return true;
  }
  return false;
}

namespace {
std::atomic<std::int64_t> g_shard_heartbeat_countdown{-1};
std::atomic<std::int64_t> g_migrate_io_countdown{-1};
}  // namespace

void arm_shard_drop_heartbeat(std::uint64_t countdown) {
  CLEAR_CHECK_MSG(countdown >= 1, "heartbeat drop countdown must be >= 1");
  g_shard_heartbeat_countdown.store(static_cast<std::int64_t>(countdown));
}

void disarm_shard_drop_heartbeat() { g_shard_heartbeat_countdown.store(-1); }

bool shard_drop_heartbeat_fires() {
  if (g_shard_heartbeat_countdown.load() < 0) return false;
  if (g_shard_heartbeat_countdown.fetch_sub(1) == 1) {
    g_shard_heartbeat_countdown.store(-1);
    return true;
  }
  return false;
}

void arm_migrate_io_fail(std::uint64_t countdown) {
  CLEAR_CHECK_MSG(countdown >= 1, "migrate IO countdown must be >= 1");
  g_migrate_io_countdown.store(static_cast<std::int64_t>(countdown));
}

void disarm_migrate_io_fail() { g_migrate_io_countdown.store(-1); }

void maybe_fail_migrate_io(const char* site) {
  if (g_migrate_io_countdown.load() < 0) return;
  if (g_migrate_io_countdown.fetch_sub(1) == 1) {
    g_migrate_io_countdown.store(-1);
    CLEAR_CHECK_MSG(false, "injected migration IO failure at " << site);
  }
}

}  // namespace clear::fault
