#include "net/client.hpp"

#include <poll.h>

#include <cerrno>

#include "common/error.hpp"

namespace clear::net {

BlockingClient::BlockingClient(const Endpoint& endpoint,
                               std::uint64_t stream_id,
                               ClientDeadlines deadlines)
    : stream_(connect_tcp(endpoint, deadlines.connect_ms), stream_id),
      deadlines_(deadlines) {}

BlockingClient::~BlockingClient() { stream_.close(); }

void BlockingClient::send_bytes(const void* data, std::size_t n) {
  // Ceiling on waiting for a stalled fd to drain; a peer that stays
  // unwritable this long is a harness bug, not backpressure. An explicit
  // io deadline overrides it.
  constexpr int kWriteStallMs = 10000;
  const int wait_ms = deadlines_.io_ms > 0 ? deadlines_.io_ms : kWriteStallMs;
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const IoResult r = stream_.write_some(p + sent, n - sent);
    if (r.closed) return;  // Peer (or the drop fault) severed us mid-send.
    if (r.would_block || r.n == 0) {
      // The fd is normally blocking, but a nonblocking fd (or a zero-byte
      // send) must not spin: wait until writable, then retry.
      pollfd pfd{};
      pfd.fd = stream_.fd();
      pfd.events = POLLOUT;
      const int rc = ::poll(&pfd, 1, wait_ms);
      CLEAR_CHECK_MSG(rc > 0, "net.timeout: send stalled (fd not writable "
                              "after "
                                  << wait_ms << "ms)");
      continue;
    }
    sent += r.n;
  }
}

void BlockingClient::send_request(const WireRequest& request) {
  const std::string frame = encode_request(request);
  send_bytes(frame.data(), frame.size());
}

void BlockingClient::send_drain() {
  const std::string frame = encode_drain();
  send_bytes(frame.data(), frame.size());
}

void BlockingClient::send_shutdown() {
  const std::string frame = encode_shutdown();
  send_bytes(frame.data(), frame.size());
}

bool BlockingClient::recv_frame(Frame& out) {
  char buf[16 * 1024];
  while (true) {
    const DecodeStatus status = decoder_.next(out);
    if (status == DecodeStatus::kFrame) return true;
    CLEAR_CHECK_MSG(status == DecodeStatus::kNeedMore,
                    "client received a malformed frame: " << decoder_.error());
    if (!stream_.open()) return false;
    if (deadlines_.io_ms > 0) {
      // With a deadline set, wait for readability first so a dead-but-
      // connected server surfaces as an addressed timeout, not a hang.
      pollfd pfd{};
      pfd.fd = stream_.fd();
      pfd.events = POLLIN;
      int rc;
      do {
        rc = ::poll(&pfd, 1, deadlines_.io_ms);
      } while (rc < 0 && errno == EINTR);
      CLEAR_CHECK_MSG(rc != 0, "net.timeout: no frame received within "
                                   << deadlines_.io_ms << "ms");
      CLEAR_CHECK_MSG(rc > 0, "poll during recv failed");
    }
    const IoResult r = stream_.read_some(buf, sizeof(buf));
    if (r.closed) return false;
    decoder_.feed(buf, r.n);
  }
}

bool BlockingClient::recv_response(WireResponse& out) {
  Frame frame;
  if (!recv_frame(frame)) return false;
  CLEAR_CHECK_MSG(frame.type == FrameType::kResponse,
                  "expected a response frame, got "
                      << frame_type_name(frame.type));
  std::string error;
  CLEAR_CHECK_MSG(parse_response(frame, out, error),
                  "bad response payload: " << error);
  return true;
}

bool BlockingClient::recv_drain_ack(WireDrainAck& out) {
  Frame frame;
  while (true) {
    if (!recv_frame(frame)) return false;
    // Responses may still be in flight ahead of the ack; skip past them.
    if (frame.type == FrameType::kResponse) continue;
    CLEAR_CHECK_MSG(frame.type == FrameType::kDrainAck,
                    "expected a drain ack, got "
                        << frame_type_name(frame.type));
    std::string error;
    CLEAR_CHECK_MSG(parse_drain_ack(frame, out, error),
                    "bad drain ack payload: " << error);
    return true;
  }
}

void BlockingClient::close() { stream_.close(); }

}  // namespace clear::net
