#include "signal/filter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace clear::dsp {

std::vector<double> Biquad::apply(std::span<const double> x) const {
  std::vector<double> y(x.size());
  if (x.empty()) return y;
  // Steady-state initialization (the lfilter_zi trick): start the DF2T state
  // as if the input had been x[0] forever. Without this, narrow low-pass
  // sections (e.g. the 0.05 Hz GSR tonic split) produce an edge transient
  // longer than the analysis window itself.
  const double dc_gain = (b0 + b1 + b2) / (1.0 + a1 + a2);
  double z1 = (dc_gain - b0) * x[0];
  double z2 = (b2 - a2 * dc_gain) * x[0];
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double in = x[i];
    const double out = b0 * in + z1;
    z1 = b1 * in - a1 * out + z2;
    z2 = b2 * in - a2 * out;
    y[i] = out;
  }
  return y;
}

namespace {
void check_cutoff(double cutoff_hz, double sample_rate) {
  CLEAR_CHECK_MSG(sample_rate > 0, "sample_rate must be positive");
  CLEAR_CHECK_MSG(cutoff_hz > 0 && cutoff_hz < sample_rate / 2,
                  "cutoff " << cutoff_hz << " Hz outside (0, fs/2) for fs="
                            << sample_rate);
}
}  // namespace

Biquad butterworth_lowpass(double cutoff_hz, double sample_rate) {
  check_cutoff(cutoff_hz, sample_rate);
  const double wc = std::tan(M_PI * cutoff_hz / sample_rate);
  const double k1 = std::sqrt(2.0) * wc;
  const double k2 = wc * wc;
  const double norm = 1.0 / (1.0 + k1 + k2);
  Biquad f;
  f.b0 = k2 * norm;
  f.b1 = 2.0 * f.b0;
  f.b2 = f.b0;
  f.a1 = 2.0 * (k2 - 1.0) * norm;
  f.a2 = (1.0 - k1 + k2) * norm;
  return f;
}

Biquad butterworth_highpass(double cutoff_hz, double sample_rate) {
  check_cutoff(cutoff_hz, sample_rate);
  const double wc = std::tan(M_PI * cutoff_hz / sample_rate);
  const double k1 = std::sqrt(2.0) * wc;
  const double k2 = wc * wc;
  const double norm = 1.0 / (1.0 + k1 + k2);
  Biquad f;
  f.b0 = norm;
  f.b1 = -2.0 * norm;
  f.b2 = norm;
  f.a1 = 2.0 * (k2 - 1.0) * norm;
  f.a2 = (1.0 - k1 + k2) * norm;
  return f;
}

std::vector<Biquad> butterworth_bandpass(double lo_hz, double hi_hz,
                                         double sample_rate) {
  CLEAR_CHECK_MSG(lo_hz < hi_hz, "bandpass requires lo < hi");
  return {butterworth_highpass(lo_hz, sample_rate),
          butterworth_lowpass(hi_hz, sample_rate)};
}

std::vector<double> cascade(std::span<const Biquad> sections,
                            std::span<const double> x) {
  std::vector<double> y(x.begin(), x.end());
  for (const Biquad& s : sections) y = s.apply(y);
  return y;
}

std::vector<double> filtfilt(std::span<const Biquad> sections,
                             std::span<const double> x) {
  std::vector<double> y = cascade(sections, x);
  std::reverse(y.begin(), y.end());
  y = cascade(sections, y);
  std::reverse(y.begin(), y.end());
  return y;
}

std::vector<double> moving_average(std::span<const double> x, std::size_t w) {
  CLEAR_CHECK_MSG(w >= 1, "moving_average window must be >= 1");
  std::vector<double> y(x.size());
  if (x.empty()) return y;
  const std::size_t half = w / 2;
  // Prefix sums for O(n).
  std::vector<double> prefix(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i];
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(x.size() - 1, i + half);
    y[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return y;
}

std::vector<double> detrend_linear(std::span<const double> x) {
  std::vector<double> y(x.begin(), x.end());
  if (x.size() < 2) return y;
  const double b = stats::slope(x);
  const double m = stats::mean(x);
  const double mx = static_cast<double>(x.size() - 1) / 2.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] -= m + b * (static_cast<double>(i) - mx);
  return y;
}

std::vector<double> detrend_mean(std::span<const double> x) {
  std::vector<double> y(x.begin(), x.end());
  const double m = stats::mean(x);
  for (double& v : y) v -= m;
  return y;
}

std::vector<double> cumsum(std::span<const double> x) {
  std::vector<double> y(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    y[i] = acc;
  }
  return y;
}

}  // namespace clear::dsp
