#!/bin/sh
# Chaos soak: SIGKILL the wire server mid-load, restart with --recover, and
# prove that durability holds:
#
#   Leg A (kill between phases, bit-identity):
#     golden    — one uninterrupted server answers requests [0, N) and the
#                 deterministic response lines go to golden.txt.
#     chaos     — a journaled server answers [0, N/2), takes SIGKILL -9,
#                 restarts with --recover (at a different --threads count),
#                 and answers [N/2, N) via loadgen --start-index. The
#                 recovery report must be CLEAN with zero PERSONALIZED loss,
#                 and both phases' response lines must be byte-identical to
#                 the golden file's halves.
#
#   Leg B (kill mid-flight, zero acknowledged loss + graceful drain):
#     SIGKILL lands while requests are in flight. Unanswered requests may
#     drop (the loadgen counts them; it never hangs), but every fine-tune
#     the journal acknowledged must re-attach (P/E equal in the report).
#     The recovered server then takes SIGTERM and must drain gracefully:
#     exit 0, final compacting snapshot on disk, journal truncated.
#
#   Leg C (kill mid-adaptation, shadow bookkeeping survives):
#     The drift monitor is armed and the loadgen shifts every user's maps
#     mid-stream, so sessions are walking RE_ASSESSING/SHADOWING when the
#     SIGKILL lands between phases. Recovery must be CLEAN, the report's
#     adaptation line must show sessions restored mid-machine, and both
#     phases' responses must be byte-identical to an uninterrupted
#     drift-enabled golden run — the crash may not perturb a single drift
#     decision.
#
# Usage: run_chaos_soak.sh <path-to-clear-cli> [--quick]
set -eu

CLI="$1"
QUICK="${2:-}"

TOTAL=400
RATE=400
if [ "$QUICK" = "--quick" ]; then
  TOTAL=160
fi
HALF=$((TOTAL / 2))

# One connection keeps the wire ordering deterministic (multi-connection
# interleaving is a socket-layer race by design); 4 users with a labelled
# majority personalizes every session well inside phase 1.
GEN="--connections=1 --rate=$RATE --users=4 --label-fraction=0.6 --seed=9"
SLICE="--volunteers=6 --trials=4 --epochs=1 --ft-epochs=1 --data-seed=42"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

# Start a server in the background and wait for its ephemeral port.
# start_server <log> <port-file> [extra flags...]
start_server() {
  log="$1"; pf="$2"; shift 2
  rm -f "$pf"
  "$CLI" serve $SLICE --listen=127.0.0.1:0 --port-file="$pf" "$@" \
    >"$log" 2>&1 &
  SERVER_PID=$!
  i=0
  while [ ! -s "$pf" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
      echo "server never published its port; log tail:" >&2
      tail -20 "$log" >&2
      exit 1
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "server exited before listening; log tail:" >&2
      tail -20 "$log" >&2
      exit 1
    }
    sleep 0.2
  done
  PORT="$(cat "$pf")"
}

# ---------------------------------------------------------------------------
echo "== golden run: $TOTAL requests, uninterrupted, --threads=1 =="
start_server golden.log golden.port --threads=1
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$TOTAL \
  --responses=golden.txt --shutdown-after >golden_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""
[ "$(wc -l <golden.txt)" -eq "$TOTAL" ] || {
  echo "golden run lost responses ($(wc -l <golden.txt)/$TOTAL):" >&2
  tail -5 golden_gen.log >&2
  exit 1
}

# ---------------------------------------------------------------------------
echo "== leg A: SIGKILL between phases, recover, bit-identity =="
start_server chaos1.log chaos1.port --journal-dir=jd
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$HALF \
  --responses=phase1.txt >phase1_gen.log 2>&1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s jd/journal.log ] || { echo "no journal survived the kill" >&2; exit 1; }

# Recover at a different thread count than the golden run: replay and
# post-recovery serving must be bit-identical at any --threads.
start_server chaos2.log chaos2.port --journal-dir=jd --recover --threads=4
grep -q "result: CLEAN" chaos2.log || {
  echo "recovery was not CLEAN:" >&2
  grep -A0 -B3 "result:" chaos2.log >&2 || cat chaos2.log >&2
  exit 1
}
REATTACH="$(sed -n 's/.* \([0-9][0-9]*\)\/\([0-9][0-9]*\) personalized re-attached.*/\1 \2/p' chaos2.log)"
P="${REATTACH% *}"; E="${REATTACH#* }"
[ -n "$P" ] && [ "$P" = "$E" ] && [ "$P" -gt 0 ] || {
  echo "PERSONALIZED state lost across the kill (re-attached $P of $E):" >&2
  grep "personalized" chaos2.log >&2
  exit 1
}
grep -q " 0 fell back" chaos2.log || {
  echo "recovery silently fell back sessions:" >&2
  grep "fell back" chaos2.log >&2
  exit 1
}

"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$HALF \
  --start-index=$HALF --responses=phase2.txt --shutdown-after \
  >phase2_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""

head -n "$HALF" golden.txt >golden_head.txt
tail -n "$HALF" golden.txt >golden_tail.txt
cmp golden_head.txt phase1.txt || {
  echo "phase-1 responses diverge from the golden run" >&2
  diff golden_head.txt phase1.txt | head -10 >&2
  exit 1
}
cmp golden_tail.txt phase2.txt || {
  echo "post-recovery responses diverge from the golden run" >&2
  diff golden_tail.txt phase2.txt | head -10 >&2
  exit 1
}
echo "   bit-identical: $TOTAL/$TOTAL responses match the golden run"

# ---------------------------------------------------------------------------
echo "== leg B: SIGKILL mid-flight, recover, graceful SIGTERM drain =="
start_server chaosb1.log chaosb1.port --journal-dir=jdb
( "$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$TOTAL \
    --timeout=10 >phaseb_gen.log 2>&1 || true ) &
GEN_PID=$!
sleep 0.4
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
# The generator must terminate on its own (dead connections, then timeout) —
# a hang here is exactly the bug the client deadlines exist to prevent.
wait "$GEN_PID"
[ -s jdb/journal.log ] || { echo "no journal survived the kill" >&2; exit 1; }

start_server chaosb2.log chaosb2.port --journal-dir=jdb --recover
REATTACH="$(sed -n 's/.* \([0-9][0-9]*\)\/\([0-9][0-9]*\) personalized re-attached.*/\1 \2/p' chaosb2.log)"
P="${REATTACH% *}"; E="${REATTACH#* }"
[ -n "$P" ] && [ "$P" = "$E" ] || {
  echo "acknowledged PERSONALIZED state lost mid-flight ($P of $E):" >&2
  grep "personalized" chaosb2.log >&2
  exit 1
}
# Post-recovery liveness: a short stream is fully answered.
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=40 \
  --start-index=$TOTAL --json=liveness.json >liveness_gen.log 2>&1
jq -e '.received == 40 and .dropped == 0' liveness.json >/dev/null || {
  echo "recovered server is not fully live:" >&2
  cat liveness.json >&2
  exit 1
}

# Graceful drain: SIGTERM must flush, snapshot, and exit 0 with a compacted
# journal (16-byte header only) plus a loadable final snapshot.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=""
[ "$RC" -eq 0 ] || { echo "SIGTERM drain exited $RC" >&2; tail -5 chaosb2.log >&2; exit 1; }
[ -s jdb/snapshot.snap ] || { echo "no final snapshot after SIGTERM" >&2; exit 1; }
[ "$(wc -c <jdb/journal.log)" -eq 16 ] || {
  echo "journal not compacted by the final snapshot ($(wc -c <jdb/journal.log) bytes)" >&2
  exit 1
}

# ---------------------------------------------------------------------------
echo "== leg C: SIGKILL mid-adaptation, recover, bit-identity =="
# An eager margin plus a mid-stream shift for every user keeps sessions
# cycling through RE_ASSESSING/SHADOWING for the rest of the run, so the
# between-phases kill lands with the machine engaged. Recovery must use the
# same drift knobs as the crashed process (docs/OPERATIONS.md).
DRIFT_SRV="--drift-after=3 --drift-ratio=0.9 --reassess-windows=4 --shadow-windows=4"
DRIFT_GEN="--drift-users=4 --drift-after-index=$((TOTAL / 4)) --drift-shift=2.0"

start_server driftgolden.log driftgolden.port --threads=1 $DRIFT_SRV
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN $DRIFT_GEN --requests=$TOTAL \
  --responses=driftgolden.txt --shutdown-after >driftgolden_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""
[ "$(wc -l <driftgolden.txt)" -eq "$TOTAL" ] || {
  echo "drift golden run lost responses ($(wc -l <driftgolden.txt)/$TOTAL)" >&2
  exit 1
}
grep -q "drift: ticks=" driftgolden.log || {
  echo "drift golden run never engaged the monitor:" >&2
  tail -5 driftgolden.log >&2
  exit 1
}

start_server chaosc1.log chaosc1.port --journal-dir=jdc $DRIFT_SRV
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN $DRIFT_GEN --requests=$HALF \
  --responses=phasec1.txt >phasec1_gen.log 2>&1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s jdc/journal.log ] || { echo "no journal survived the kill" >&2; exit 1; }

start_server chaosc2.log chaosc2.port --journal-dir=jdc --recover \
  --threads=4 $DRIFT_SRV
grep -q "result: CLEAN" chaosc2.log || {
  echo "mid-adaptation recovery was not CLEAN:" >&2
  grep -B4 "result:" chaosc2.log >&2 || cat chaosc2.log >&2
  exit 1
}
ADAPT="$(sed -n 's/.*adaptation: \([0-9][0-9]*\) re-assessing, \([0-9][0-9]*\) shadowing restored.*/\1 \2/p' chaosc2.log)"
R="${ADAPT% *}"; S="${ADAPT#* }"
[ -n "$R" ] && [ $((R + S)) -gt 0 ] || {
  echo "kill did not land mid-adaptation (re-assessing=${R:-?} shadowing=${S:-?}):" >&2
  grep "adaptation" chaosc2.log >&2 || cat chaosc2.log >&2
  exit 1
}
echo "   restored mid-machine: $R re-assessing, $S shadowing"

"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN $DRIFT_GEN --requests=$HALF \
  --start-index=$HALF --responses=phasec2.txt --shutdown-after \
  >phasec2_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""

head -n "$HALF" driftgolden.txt >driftgolden_head.txt
tail -n "$HALF" driftgolden.txt >driftgolden_tail.txt
cmp driftgolden_head.txt phasec1.txt || {
  echo "pre-kill drift responses diverge from the golden run" >&2
  diff driftgolden_head.txt phasec1.txt | head -10 >&2
  exit 1
}
cmp driftgolden_tail.txt phasec2.txt || {
  echo "post-recovery drift responses diverge from the golden run" >&2
  diff driftgolden_tail.txt phasec2.txt | head -10 >&2
  exit 1
}
echo "   bit-identical: $TOTAL/$TOTAL drift-enabled responses match the golden run"

echo "chaos soak OK"
