#include "nn/layer.hpp"

namespace clear::nn {

void Layer::set_frozen(bool frozen) {
  for (Param* p : parameters()) p->frozen = frozen;
}

}  // namespace clear::nn
