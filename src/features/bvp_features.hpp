// Blood-volume-pulse feature block: 84 features per window, matching the
// paper's count (Sun et al. feature-map recipe: 84 BVP).
//
// Sub-blocks:
//   20 time-domain statistics of the pulse waveform,
//   26 HRV time-domain features from detected beats,
//   24 frequency-domain features (HRV band powers + pulse-wave spectrum),
//   14 non-linear features (Poincaré, entropies, DFA, HOC, recurrence).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace clear::features {

inline constexpr std::size_t kBvpFeatureCount = 84;

/// Feature names, in extraction order. Size == kBvpFeatureCount.
const std::vector<std::string>& bvp_feature_names();

/// Extract the 84 BVP features from one window sampled at `sample_rate` Hz.
/// The window must contain at least one second of data.
std::vector<double> extract_bvp_features(std::span<const double> bvp,
                                         double sample_rate);

}  // namespace clear::features
