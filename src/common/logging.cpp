#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace clear::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};
std::mutex g_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_level(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t = std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] %s %s\n", t, level_name(lvl), message.c_str());
}

}  // namespace clear::log
