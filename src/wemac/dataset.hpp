// Synthetic WEMAC dataset container and generator.
//
// generate_wemac() samples a population of volunteers from the response
// archetypes, renders every trial's raw signals, extracts the 123-feature
// windows, and stores one *unnormalized* feature map per trial. Feature
// normalization is intentionally left to the evaluation pipeline so that it
// can be fitted on training users only (no test-subject leakage in LOSO).
//
// Feature extraction over ~800 trials costs a few seconds, so a binary cache
// (save/load) is provided; generate_or_load() keys the cache file on the
// configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "tensor/tensor.hpp"
#include "wemac/synth.hpp"

namespace clear::wemac {

struct WemacConfig {
  std::uint64_t seed = 42;
  std::size_t n_volunteers = 47;       ///< Paper §IV-A: 47 usable volunteers.
  std::size_t trials_per_volunteer = 17; ///< ~800 feature maps total.
  std::size_t windows_per_trial = 12;  ///< W — columns of each feature map.
  double window_seconds = 10.0;
  double fear_fraction = 0.5;
  SignalRates rates;

  double trial_seconds() const {
    return static_cast<double>(windows_per_trial) * window_seconds;
  }
  /// Stable identifier used to key the on-disk feature cache.
  std::string cache_key() const;
};

/// One labelled feature map (= one video trial of one volunteer).
struct Sample {
  std::size_t volunteer_id = 0;
  std::size_t trial_id = 0;
  Emotion emotion = Emotion::kCalm;
  int label = 0;       ///< 1 = fear, 0 = non-fear.
  Tensor feature_map;  ///< [F, W], unnormalized.
};

/// Per-volunteer ground-truth metadata (diagnostics only).
struct VolunteerMeta {
  std::size_t id = 0;
  std::size_t archetype_id = 0;
  VolunteerProfile profile;
};

class WemacDataset {
 public:
  WemacDataset() = default;
  WemacDataset(WemacConfig config, std::vector<VolunteerMeta> volunteers,
               std::vector<Sample> samples);

  const WemacConfig& config() const { return config_; }
  std::size_t n_volunteers() const { return volunteers_.size(); }
  const std::vector<VolunteerMeta>& volunteers() const { return volunteers_; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Indices into samples() belonging to one volunteer.
  const std::vector<std::size_t>& samples_of(std::size_t volunteer_id) const;

  /// Number of features per map (rows).
  std::size_t feature_dim() const;

 private:
  void build_index();

  WemacConfig config_;
  std::vector<VolunteerMeta> volunteers_;
  std::vector<Sample> samples_;
  std::vector<std::vector<std::size_t>> by_volunteer_;
};

/// Generate the full synthetic dataset (deterministic in config.seed).
WemacDataset generate_wemac(const WemacConfig& config);

/// Same generator, but each trial's raw channels pass through deterministic
/// fault injection (dropout / corruption / jitter per `faults`) followed by
/// the device-side sanitizer (hold-last gap fill + clamping to rails
/// derived from the clean signal) before feature extraction — the data an
/// edge deployment would actually see. Fault decisions are pure functions
/// of (faults.seed, volunteer, trial, channel, sample index), so the result
/// is bit-identical across runs and thread counts; a spec with all rates at
/// zero yields a dataset bit-identical to the clean generator. Injection
/// counters accumulate into `stats` when given.
WemacDataset generate_wemac(const WemacConfig& config,
                            const fault::FaultSpec& faults,
                            fault::FaultStats* stats = nullptr);

/// Binary (de)serialization of a generated dataset.
void save_dataset(const WemacDataset& dataset, const std::string& path);
WemacDataset load_dataset(const std::string& path);

/// Load from `<cache_dir>/wemac_<key>.bin` when present, else generate and
/// populate the cache. An unreadable/corrupt cache file is regenerated.
WemacDataset generate_or_load(const WemacConfig& config,
                              const std::string& cache_dir);

}  // namespace clear::wemac
