#include "features/nonlinear.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace clear::features {
namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

std::vector<double> sine(std::size_t n, double period) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * M_PI * i / period);
  return x;
}

TEST(SampleEntropy, NoiseMoreEntropicThanSine) {
  const auto noise = white_noise(200, 1);
  const auto regular = sine(200, 20.0);
  const double r_noise = 0.2 * stats::stddev(noise);
  const double r_sine = 0.2 * stats::stddev(regular);
  EXPECT_GT(sample_entropy(noise, 2, r_noise),
            sample_entropy(regular, 2, r_sine));
}

TEST(SampleEntropy, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(sample_entropy(std::vector<double>{1, 2}, 2, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(sample_entropy(white_noise(50, 2), 2, 0.0), 0.0);
}

TEST(SampleEntropy, ConstantSeriesIsZeroEntropy) {
  const std::vector<double> c(50, 1.0);
  // All templates match: A == B -> -ln(1) == 0.
  EXPECT_NEAR(sample_entropy(c, 2, 0.1), 0.0, 1e-12);
}

TEST(ApproximateEntropy, NoiseMoreEntropicThanSine) {
  const auto noise = white_noise(150, 3);
  const auto regular = sine(150, 15.0);
  EXPECT_GT(approximate_entropy(noise, 2, 0.2 * stats::stddev(noise)),
            approximate_entropy(regular, 2, 0.2 * stats::stddev(regular)));
}

TEST(Dfa, WhiteNoiseAlphaNearHalf) {
  const auto noise = white_noise(2000, 5);
  EXPECT_NEAR(dfa_alpha1(noise), 0.5, 0.12);
}

TEST(Dfa, IntegratedNoiseAlphaNearOnePointFive) {
  const auto noise = white_noise(2000, 7);
  std::vector<double> walk(noise.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < noise.size(); ++i) {
    acc += noise[i];
    walk[i] = acc;
  }
  EXPECT_GT(dfa_alpha1(walk), 1.1);
}

TEST(Dfa, TooShortReturnsZero) {
  EXPECT_DOUBLE_EQ(dfa_alpha1(std::vector<double>(10, 1.0)), 0.0);
}

TEST(Poincare, KnownRelationToVariances) {
  const auto x = white_noise(500, 9);
  const Poincare p = poincare(x);
  const auto d = stats::diff(x);
  EXPECT_NEAR(p.sd1, std::sqrt(stats::variance(d) / 2.0), 1e-9);
  EXPECT_GT(p.sd2, 0.0);
  EXPECT_NEAR(p.ratio, p.sd1 / p.sd2, 1e-9);
  EXPECT_NEAR(p.ellipse_area, M_PI * p.sd1 * p.sd2, 1e-9);
  EXPECT_NEAR(p.csi * p.ratio, 1.0, 1e-6);
}

TEST(Poincare, SmoothSeriesHasLowSd1OverSd2) {
  // A slow sine: successive differences tiny relative to overall spread.
  const auto x = sine(300, 100.0);
  const Poincare p = poincare(x);
  EXPECT_LT(p.ratio, 0.2);
}

TEST(Poincare, DegenerateReturnsZeros) {
  const Poincare p = poincare(std::vector<double>{1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.sd1, 0.0);
  EXPECT_DOUBLE_EQ(p.sd2, 0.0);
}

TEST(HigherOrderCrossings, IncreaseWithOrderForNoise) {
  const auto noise = white_noise(1000, 11);
  const auto h0 = higher_order_crossings(noise, 0);
  const auto h2 = higher_order_crossings(noise, 2);
  EXPECT_GT(h2, h0);
}

TEST(HigherOrderCrossings, SineCrossingCountMatchesPeriod) {
  const auto x = sine(1000, 100.0);  // 10 periods -> ~20 crossings.
  EXPECT_NEAR(static_cast<double>(higher_order_crossings(x, 0)), 20.0, 2.0);
}

TEST(RecurrenceRate, ConstantIsFullyRecurrent) {
  EXPECT_DOUBLE_EQ(recurrence_rate(std::vector<double>(20, 3.0), 0.1), 1.0);
}

TEST(RecurrenceRate, SpreadSeriesLessRecurrent) {
  std::vector<double> spread(50);
  for (std::size_t i = 0; i < spread.size(); ++i) spread[i] = i * 10.0;
  EXPECT_LT(recurrence_rate(spread, 0.5), 0.05);
}

TEST(RecurrenceRate, DegenerateReturnsZero) {
  EXPECT_DOUBLE_EQ(recurrence_rate(std::vector<double>{1.0}, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(recurrence_rate(std::vector<double>{1.0, 2.0}, 0.0), 0.0);
}

// NaN/Inf audit (fault model): constant and zero-variance series are exactly
// what a long gap-filled dropout produces downstream; every non-linear
// feature must stay finite on them.
TEST(NonlinearAudit, ConstantSeriesStaysFinite) {
  for (const double level : {0.0, 5.0, -3.0}) {
    const std::vector<double> x(128, level);
    EXPECT_DOUBLE_EQ(sample_entropy(x, 2, 0.2), 0.0);
    EXPECT_TRUE(std::isfinite(approximate_entropy(x, 2, 0.2)));
    EXPECT_DOUBLE_EQ(dfa_alpha1(x), 0.0);
    EXPECT_TRUE(std::isfinite(recurrence_rate(x, 0.2)));
    const Poincare p = poincare(x);
    for (const double v : {p.sd1, p.sd2, p.ratio, p.ellipse_area, p.csi,
                           p.cvi})
      EXPECT_TRUE(std::isfinite(v)) << "level " << level;
    EXPECT_TRUE(std::isfinite(
        static_cast<double>(higher_order_crossings(x, 2))));
  }
}

TEST(NonlinearAudit, ZeroToleranceIsGuarded) {
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(static_cast<double>(i));
  // r = 0 (the constant-series tolerance 0.2 * stddev = 0) short-circuits.
  EXPECT_DOUBLE_EQ(sample_entropy(x, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(approximate_entropy(x, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(recurrence_rate(x, 0.0), 0.0);
}

}  // namespace
}  // namespace clear::features
