// Deterministic, platform-independent random number generation.
//
// std::mt19937 + std::normal_distribution are not guaranteed to produce the
// same streams across standard library implementations, which would make the
// synthetic WEMAC dataset (and therefore every reproduced table) differ by
// toolchain. We therefore ship our own xoshiro256** generator plus explicit
// uniform/normal transforms, all defined in this header.
#pragma once

#include <cstdint>
#include <vector>

namespace clear {

/// xoshiro256** generator seeded via SplitMix64. Deterministic everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached spare).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Gamma(shape, scale) via Marsaglia-Tsang. shape > 0.
  double gamma(double shape, double scale);

  /// Sample an index according to the given non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork a stream for a named sub-task so that adding draws to one consumer
  /// does not perturb another. The child is seeded from this generator's
  /// state mixed with `stream_id`.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace clear
