#include "features/skt_features.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace clear::features {

const std::vector<std::string>& skt_feature_names() {
  static const std::vector<std::string> names = {
      "skt_mean", "skt_std", "skt_slope", "skt_min", "skt_max",
  };
  return names;
}

std::vector<double> extract_skt_features(std::span<const double> skt,
                                         double sample_rate) {
  CLEAR_CHECK_MSG(skt.size() >= 2, "SKT window too short");
  CLEAR_CHECK_MSG(sample_rate > 0, "SKT sample rate must be positive");
  for (std::size_t i = 0; i < skt.size(); ++i)
    CLEAR_CHECK_MSG(std::isfinite(skt[i]),
                    "SKT window has non-finite sample at index "
                        << i << "; sanitize the stream before extraction");
  std::vector<double> f;
  f.reserve(kSktFeatureCount);
  f.push_back(stats::mean(skt));
  f.push_back(stats::stddev(skt));
  // Slope per second rather than per sample, so the feature is rate-invariant.
  f.push_back(stats::slope(skt) * sample_rate);
  f.push_back(stats::min(skt));
  f.push_back(stats::max(skt));
  CLEAR_CHECK_MSG(f.size() == kSktFeatureCount, "SKT feature count drifted");
  return f;
}

}  // namespace clear::features
