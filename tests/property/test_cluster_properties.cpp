// Parameterized clustering properties: blob recovery across dimensions and
// cluster counts, assignment consistency, and silhouette monotonicity in
// separation.
#include <gtest/gtest.h>

#include <set>

#include "cluster/assignment.hpp"
#include "cluster/validity.hpp"

namespace clear::cluster {
namespace {

struct BlobCase {
  std::size_t dim, k, per_blob;
};

std::vector<Point> make_blobs(const BlobCase& c, double spread,
                              std::uint64_t seed,
                              std::vector<Point>* centers_out = nullptr) {
  Rng rng(seed);
  std::vector<Point> centers;
  for (std::size_t b = 0; b < c.k; ++b) {
    Point center(c.dim, 0.0);
    for (std::size_t d = 0; d < c.dim; ++d)
      center[d] = (d % c.k == b) ? 10.0 : 0.0;
    center[0] += static_cast<double>(b) * 10.0;  // Guarantee separation.
    centers.push_back(center);
  }
  std::vector<Point> points;
  for (std::size_t b = 0; b < c.k; ++b)
    for (std::size_t i = 0; i < c.per_blob; ++i) {
      Point p = centers[b];
      for (double& v : p) v += rng.normal(0.0, spread);
      points.push_back(std::move(p));
    }
  if (centers_out) *centers_out = centers;
  return points;
}

class BlobSweep : public ::testing::TestWithParam<BlobCase> {};

TEST_P(BlobSweep, KMeansRecoversPartition) {
  const BlobCase c = GetParam();
  const auto points = make_blobs(c, 0.4, c.dim * 100 + c.k);
  Rng rng(c.k * 17 + c.dim);
  const KMeansResult r = kmeans(points, c.k, rng);
  std::set<std::size_t> labels;
  for (std::size_t b = 0; b < c.k; ++b) {
    const std::size_t first = r.assignment[b * c.per_blob];
    labels.insert(first);
    for (std::size_t i = 0; i < c.per_blob; ++i)
      EXPECT_EQ(r.assignment[b * c.per_blob + i], first)
          << "dim=" << c.dim << " k=" << c.k;
  }
  EXPECT_EQ(labels.size(), c.k);
}

TEST_P(BlobSweep, GlobalClusteringAgreesWithStructure) {
  const BlobCase c = GetParam();
  // Users = blobs members, each user contributing several observations.
  Rng rng(c.dim * 7 + c.k * 3);
  std::vector<std::vector<Point>> users;
  std::vector<Point> centers;
  make_blobs(c, 0.0, 0, &centers);
  for (std::size_t b = 0; b < c.k; ++b) {
    for (std::size_t u = 0; u < c.per_blob; ++u) {
      std::vector<Point> obs;
      for (std::size_t o = 0; o < 6; ++o) {
        Point p = centers[b];
        for (double& v : p) v += rng.normal(0.0, 0.5);
        obs.push_back(std::move(p));
      }
      users.push_back(std::move(obs));
    }
  }
  GlobalClusteringConfig gc;
  gc.k = c.k;
  Rng gc_rng(c.k * 91 + c.dim);
  const GlobalClusteringResult r = global_clustering(users, gc, gc_rng);
  for (std::size_t b = 0; b < c.k; ++b) {
    const std::size_t first = r.user_cluster[b * c.per_blob];
    for (std::size_t u = 0; u < c.per_blob; ++u)
      EXPECT_EQ(r.user_cluster[b * c.per_blob + u], first);
  }
  // And a brand-new user drawn from blob b is assigned with its peers.
  for (std::size_t b = 0; b < c.k; ++b) {
    std::vector<Point> obs;
    for (std::size_t o = 0; o < 4; ++o) {
      Point p = centers[b];
      for (double& v : p) v += gc_rng.normal(0.0, 0.5);
      obs.push_back(std::move(p));
    }
    const AssignmentResult a = assign_new_user(obs, r);
    EXPECT_EQ(a.cluster, r.user_cluster[b * c.per_blob]) << "blob " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, BlobSweep,
                         ::testing::Values(BlobCase{2, 2, 8},
                                           BlobCase{2, 4, 6},
                                           BlobCase{5, 3, 7},
                                           BlobCase{16, 4, 5},
                                           BlobCase{123, 4, 6}));

// ---- Silhouette grows with separation -------------------------------------------

class SeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweep, SilhouetteMonotoneInSeparation) {
  const double sep = GetParam();
  Rng rng(static_cast<std::uint64_t>(sep * 10));
  auto blobs = [&](double s) {
    std::vector<Point> pts;
    for (int i = 0; i < 20; ++i)
      pts.push_back({rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)});
    for (int i = 0; i < 20; ++i)
      pts.push_back({s + rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)});
    return pts;
  };
  std::vector<std::size_t> labels(40, 0);
  for (std::size_t i = 20; i < 40; ++i) labels[i] = 1;
  const double sil_near = silhouette(blobs(sep), labels, 2);
  const double sil_far = silhouette(blobs(sep * 3.0), labels, 2);
  EXPECT_GT(sil_far, sil_near - 0.02) << "sep=" << sep;
}

INSTANTIATE_TEST_SUITE_P(Separations, SeparationSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace clear::cluster
