#include "clear/robustness.hpp"

#include "common/error.hpp"

namespace clear::core {

std::vector<RobustnessPoint> run_robustness_sweep(
    const ClearConfig& config, const RobustnessOptions& options) {
  CLEAR_CHECK_MSG(!options.dropout_rates.empty() &&
                      !options.corrupt_rates.empty(),
                  "robustness sweep needs at least one rate per axis");
  for (const double r : options.dropout_rates)
    CLEAR_CHECK_MSG(r >= 0.0 && r <= 1.0, "dropout rate out of [0, 1]");
  for (const double r : options.corrupt_rates)
    CLEAR_CHECK_MSG(r >= 0.0 && r <= 1.0, "corrupt rate out of [0, 1]");

  const std::size_t total =
      options.dropout_rates.size() * options.corrupt_rates.size();
  std::vector<RobustnessPoint> points;
  points.reserve(total);
  std::size_t cell = 0;
  for (const double dropout : options.dropout_rates) {
    for (const double corrupt : options.corrupt_rates) {
      RobustnessPoint point;
      point.dropout_rate = dropout;
      point.corrupt_rate = corrupt;
      if (options.progress) options.progress(cell, total, point);
      ++cell;

      fault::FaultSpec spec;
      spec.seed = options.fault_seed;
      spec.dropout_rate = dropout;
      spec.corrupt_rate = corrupt;
      spec.jitter_rate = options.jitter_rate;
      // A zero-rate spec leaves the generator untouched, so the (0, 0)
      // cell reproduces the clean LOSO numbers bit for bit.
      const wemac::WemacDataset dataset =
          generate_wemac(config.data, spec, &point.faults);

      ClearOptions eval;
      eval.run_finetune = false;
      eval.max_folds = options.max_folds;
      eval.strategy = options.strategy;
      const ClearValidationResult r =
          run_clear_validation(dataset, config, eval);
      point.no_ft = r.no_ft;
      point.rt = r.rt;
      point.ca_consistency = r.ca_consistency;
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace clear::core
