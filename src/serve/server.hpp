// CLEAR-Serve: multi-user session & dynamic-batching inference server
// (DESIGN.md §12).
//
// The server replays a request stream on a *virtual clock* — every decision
// (batch composition, load shedding, fine-tune trigger) is driven by request
// arrival timestamps, never the wall clock or the thread count. Combined
// with the deterministic parallel runtime executing released batches, the
// same request stream produces bit-identical per-user predictions at any
// --threads setting; wall time only shows up in the observability layer.
//
// Per request, in order: session lookup/admission → signal sanitization →
// normalization → quality tracking (may degrade/recover the session) →
// cold-start cluster assignment from buffered unlabeled windows → labelled
// buffering + synchronous fine-tuning → routing to a (model, precision)
// batch key → micro-batcher admission (or an addressed shed error).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "clear/config.hpp"
#include "clear/pipeline.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/journal.hpp"
#include "serve/recovery.hpp"
#include "serve/session.hpp"

namespace clear {
class Error;
}

namespace clear::serve {

/// Everything the server needs from the cloud stage: routing metadata plus
/// lazy access to checkpoint blobs. From a live pipeline the blobs are
/// captured eagerly; from an artifact directory they stream off disk on
/// demand through the checkpoint cache.
struct ModelSource {
  core::ClearConfig config;
  features::FeatureNormalizer normalizer;
  cluster::GlobalClusteringResult clustering;
  std::function<std::string(std::size_t)> cluster_blob;
  std::function<std::string()> general_blob;

  std::size_t n_clusters() const { return clustering.clusters.size(); }

  static ModelSource from_pipeline(core::ClearPipeline& pipeline);
  static ModelSource from_artifacts(const std::string& directory);
};

/// One inference request: a raw (unnormalized) feature map from a user's
/// wearable, optionally labelled (labelled requests feed personalization).
struct ServeRequest {
  std::uint64_t user_id = 0;
  std::uint64_t request_id = 0;  ///< Unique per user.
  std::uint64_t arrival_us = 0;  ///< Virtual arrival time (nondecreasing).
  Tensor map;                    ///< [F, W], unnormalized.
  double quality = 1.0;          ///< Upstream signal-quality estimate [0,1].
  std::optional<int> label;      ///< Ground truth when the user reported it.
};

struct ServeResult {
  enum class Status { kOk, kShed };

  std::uint64_t user_id = 0;
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::string error;  ///< Addressed shed/failure reason (kShed only).

  int predicted = -1;             ///< 1 = fear, 0 = non-fear.
  float fear_probability = 0.0f;  ///< Softmax probability of class 1.
  BatchKey route;                 ///< Engine that served the request.
  SessionState session_state = SessionState::kCold;  ///< At completion.
  bool degraded = false;
  std::size_t batch_rows = 0;    ///< Size of the batch this rode in.
  std::uint64_t arrival_us = 0;
  std::uint64_t exec_us = 0;     ///< Virtual batch execution time.
};

struct ServeConfig {
  BatchPolicy batch;
  SessionPolicy session;
  std::size_t cache_budget_bytes = 4u << 20;
  std::size_t max_sessions = 4096;
  /// Users cycle through these (user_id % size). int8 requires
  /// calibration_maps.
  std::vector<edge::Precision> precisions{edge::Precision::kFp32};
  /// Normalized maps for int8 activation calibration.
  std::vector<Tensor> calibration_maps;
  /// Durability: write-ahead session journal. An empty directory disables
  /// journaling; see open_journal()/recover().
  JournalConfig journal;
  /// Persist personal checkpoints as deltas against their cluster (or
  /// general) base whenever that is smaller (src/serve/delta.hpp;
  /// docs/FORMATS.md). Loading sniffs the stored format, so flipping this
  /// only changes new writes — legacy full checkpoints keep loading either
  /// way, and rewrite_user_checkpoints() migrates a directory in place.
  bool delta_checkpoints = true;
};

/// Deterministic run counters (plain values, independent of CLEAR_OBS).
struct ServeCounters {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t assignments = 0;
  std::size_t finetunes = 0;
  std::size_t finetune_failures = 0;
  std::size_t sanitized = 0;  ///< Requests that needed gap-filling.
  std::size_t degraded = 0;   ///< Sessions entering DEGRADED.
  std::size_t recovered = 0;  ///< Sessions recovering from DEGRADED.
  // Online adaptation (all zero unless session.drift_after > 0).
  std::size_t drift_ticks = 0;        ///< Windows the drift monitor scored.
  std::size_t drift_detected = 0;     ///< Sessions entering RE_ASSESSING.
  std::size_t reassessments = 0;      ///< Re-assessment CA verdicts.
  std::size_t drift_false_alarms = 0; ///< Verdicts naming the incumbent.
  std::size_t shadow_ticks = 0;       ///< Shadow windows scored.
  std::size_t promotions = 0;         ///< Candidates promoted.
  std::size_t demotions = 0;          ///< Shadows demoted to the incumbent.
  std::size_t batches = 0;
  std::size_t rows = 0;
  std::size_t max_batch_rows = 0;
  // Journal health (zero when journaling is disabled).
  std::size_t journal_records = 0;
  std::size_t journal_bytes = 0;
  std::size_t journal_snapshots = 0;
  std::size_t journal_ckpts = 0;  ///< Personal checkpoints persisted.
  /// Journal/snapshot write failures. Durability degrades (journaling shuts
  /// off after the first); serving never does.
  std::size_t journal_io_errors = 0;
  // Delta checkpoint codec (zero when delta_checkpoints is off and no
  // delta-stored blobs are ever loaded).
  std::size_t delta_encoded = 0;         ///< Personal blobs stored as deltas.
  std::size_t delta_full_fallbacks = 0;  ///< Encodes that stayed full-size.
  std::size_t delta_loads = 0;     ///< Delta blobs decoded into engines.
  std::size_t delta_bytes_saved = 0;  ///< Sum of full-minus-delta bytes.
};

class Server {
 public:
  Server(ModelSource source, ServeConfig config);

  /// Feed one request. Arrival times must be nondecreasing across calls;
  /// time advancing releases due batches before the request is processed.
  void submit(ServeRequest request);

  /// Flush every pending batch (virtual time runs to the last deadline).
  void drain();

  /// Completed results accumulated so far, in completion order (moved out).
  std::vector<ServeResult> take_results();

  /// submit() everything (sorted by arrival), drain(), and return results
  /// sorted by (user_id, request_id).
  std::vector<ServeResult> run(std::vector<ServeRequest> requests);

  // -- Durability ------------------------------------------------------------
  /// Start journaling into config.journal.directory, which must be fresh —
  /// a directory that already holds journal state is refused (recover()
  /// instead; an accidental fresh open would orphan a recoverable run).
  void open_journal();
  /// Rebuild this (freshly constructed, never-served-on) server from
  /// config.journal.directory — snapshot restore + journal replay, personal
  /// engines re-attached from CRC-verified checkpoints — then continue
  /// journaling into a compacted log. An empty/missing directory is a
  /// fresh start. Corruption falls back per session, never per process.
  RecoveryReport recover();
  /// Write a compacting snapshot now (no-op unless journaling). Called on
  /// graceful shutdown so restarts replay nothing.
  void snapshot_now();
  bool journaling() const { return journal_ != nullptr; }

  // -- Shard migration (src/shard checkpoint handoff) ------------------------
  /// One session frozen for a migration handoff: the snapshot-format image
  /// plus the personal fine-tuned checkpoint blob (empty when the session
  /// has none). The blob is the same bytes personalize() persisted to
  /// user_<id>.ckpt, so a restore on the gaining shard is bit-identical.
  struct ExportedSession {
    SessionImage image;
    std::string checkpoint;
  };
  /// Freeze one session for handoff. Non-mutating; nullopt when the user
  /// has no session here. The caller must drain() first — exporting with
  /// the user's rows still pending would fork the session's history.
  std::optional<ExportedSession> export_session(std::uint64_t user_id);
  /// Drop a handed-off session and snapshot, so this shard's journal no
  /// longer claims it. The user's next request *here* starts COLD (the
  /// coordinator routes them elsewhere).
  void retire_session(std::uint64_t user_id);
  /// Install a migrated session. Returns false — counting
  /// serve.migration.failed, importing nothing — when the user already has
  /// a session here, the table is full, or the personal checkpoint cannot
  /// be rebuilt/persisted (real or injected migrate-IO failure); the
  /// coordinator decides whether to retry or let the user restart COLD.
  bool import_session(const SessionImage& image,
                      const std::string& checkpoint);

  /// Storage migration (docs/OPERATIONS.md runbook): re-encode every
  /// persisted personal checkpoint in the *current* storage format — delta
  /// when config.delta_checkpoints, full otherwise. Snapshots first, so no
  /// outstanding journal record still pins the old bytes' size/CRC. Files
  /// that fail to re-encode are left as they were (both formats keep
  /// loading). Returns the number of files rewritten. Requires journaling.
  std::size_t rewrite_user_checkpoints();

  const ServeConfig& config() const { return config_; }
  const ServeCounters& counters() const { return counters_; }
  /// Virtual-clock high-water mark: the latest arrival submitted so far.
  /// Front ends merging multiple connections clamp to this to satisfy the
  /// nondecreasing-arrival contract.
  std::uint64_t last_arrival_us() const { return last_arrival_us_; }
  /// Requests admitted to the batcher but not yet executed.
  std::size_t in_flight() const { return pending_.size(); }
  const CheckpointCache& cache() const { return cache_; }
  const SessionManager& sessions() const { return sessions_; }
  const ModelSource& source() const { return source_; }

 private:
  struct PendingRequest {
    ServeRequest request;  ///< map already sanitized + normalized.
    BatchKey route;
  };

  void flush_due(std::uint64_t now_us);
  void execute(std::vector<Batch> batches);
  BatchKey route_for(const Session& session) const;
  /// Drift monitor (session.drift_after > 0 only): score the request's
  /// window against the clustering, drive the RE_ASSESSING/SHADOWING state
  /// machine, and journal every verdict. Runs on the serial submit path.
  void drift_monitor(Session& session, const Tensor& normalized_map);
  /// `admitted` is false only for table-full sheds, where the request was
  /// turned away before its kRequest record was journaled — the kShed
  /// record then carries the request count for replay.
  void shed(const ServeRequest& request, const BatchKey& route,
            Session* session, const std::string& why, bool admitted = true);
  /// Fine-tune `session`'s personal model from its labelled buffer.
  void personalize(Session& session);
  std::unique_ptr<edge::EdgeEngine> build_engine(const std::string& blob,
                                                 edge::Precision precision);
  /// The bytes to persist for a freshly fine-tuned personal checkpoint:
  /// the delta encoding when enabled and smaller, else the full blob
  /// (serve.delta.* counters record the outcome). Deterministic, so
  /// export_session() reproduces exactly what personalize() stored.
  std::string encode_personal_blob(std::uint64_t user_id, std::size_t cluster,
                                   const std::string& full_blob);
  /// Append one record. Never throws: a journal failure warns, counts
  /// serve.journal.io_errors, and disables journaling — the serving path
  /// must survive a full disk.
  void journal_append(JournalRecord record);
  /// Compact (snapshot + truncate) when due. Called only at quiescent
  /// points — after submit()/execute() fully applied every appended
  /// record's effects — never from inside journal_append, where a snapshot
  /// would stamp a half-applied record as covered and replay would skip it.
  void maybe_compact();
  void journal_disable(const Error& e, const char* what);
  SnapshotData make_snapshot(std::uint64_t last_seq) const;

  ModelSource source_;
  ServeConfig config_;
  bool has_general_ = false;
  std::vector<const Tensor*> calibration_ptrs_;

  MicroBatcher batcher_;
  SessionManager sessions_;
  CheckpointCache cache_;

  std::unique_ptr<Journal> journal_;  ///< Null: journaling off/failed.
  /// Personal engines displaced by a promotion while one of their batches
  /// was still pending: the batch executes on the engine that was serving
  /// when it was admitted. Dropped once the owner has no pending personal
  /// rows (see execute()).
  std::map<std::uint64_t, std::unique_ptr<edge::EdgeEngine>>
      retired_personal_;
  std::map<std::size_t, PendingRequest> pending_;  ///< By batcher slot id.
  std::size_t next_slot_ = 0;
  std::uint64_t last_arrival_us_ = 0;
  std::vector<ServeResult> completed_;
  ServeCounters counters_;
  /// Sessions currently mid-adaptation (RE_ASSESSING/SHADOWING, live or
  /// frozen under DEGRADED); feeds the serve.drift.adapting gauge.
  std::size_t drift_active_ = 0;
};

}  // namespace clear::serve
