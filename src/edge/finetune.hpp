// On-device fine-tuning simulation (paper §III-B-2 + Table II bottom).
//
// Fine-tuning at the edge differs from cloud training in two ways this
// module models explicitly:
//   1. The convolutional feature extractor is frozen; only the recurrent
//      head adapts (keeps the update cheap enough for the device).
//   2. Every weight update is projected onto the device's numeric grid —
//      int8 for the Coral TPU, fp16 for the NCS2 — i.e. quantization-aware
//      fine-tuning. This is why the TPU recovers less accuracy than the
//      GPU/NCS2 after personalization.
#pragma once

#include "edge/engine.hpp"
#include "nn/trainer.hpp"

namespace clear::edge {

struct EdgeFinetuneConfig {
  nn::TrainConfig train;                ///< epochs/lr/batch for adaptation.
  bool freeze_feature_extractor = true; ///< Freeze layers below the LSTM.
  std::size_t freeze_boundary = 7;      ///< nn::fine_tune_boundary().
};

/// Fine-tune the engine's model on labelled user data under the engine's
/// precision constraints, then refresh the deployed weights.
nn::TrainHistory edge_finetune(EdgeEngine& engine, const nn::MapDataset& data,
                               const EdgeFinetuneConfig& config);

}  // namespace clear::edge
