// AVX2 (+F16C) kernels. Compiled with -mavx2 -mf16c for this translation
// unit only; the dispatcher calls in here only after a CPUID probe, so the
// rest of the binary stays runnable on baseline x86-64.
//
// Bit-exactness with the scalar oracle (kernels.hpp): the GEMM vectorizes
// across output columns and register-blocks across output rows — both
// directions index independent accumulation chains — while each c[i][j]
// still sums its k products in ascending order with separate multiply and
// add roundings (no FMA). Quantization uses VROUNDPS/VCVTPS2PH with
// explicit round-to-nearest-even, matching std::nearbyint under the
// default FP environment and the software fp16 bit-twiddle.
#include "tensor/kernels/table_internal.hpp"

#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

#include <cstring>

namespace clear::kernels::detail {

namespace {

constexpr std::size_t kMr = 4;  ///< Register-blocked C rows per microkernel.

// ---------------------------------------------------------------------------
// fp32 GEMM
// ---------------------------------------------------------------------------

/// Epilogue for one row's scalar-tail columns [j0, n).
inline void epilogue_tail(float* crow, std::size_t row, std::size_t j0,
                          std::size_t n, const Epilogue* ep) {
  if (!ep) return;
  for (std::size_t j = j0; j < n; ++j) {
    float v = crow[j];
    if (ep->bias)
      v += ep->bias_mode == BiasMode::kPerCol ? ep->bias[j] : ep->bias[row];
    if (ep->act == Activation::kRelu && !(v > 0.0f)) v = 0.0f;
    crow[j] = v;
  }
}

/// One MR x 16 (or MR x 8) column strip: accumulators live in registers for
/// the whole k loop, the epilogue is applied before the store. `rows` <= kMr.
template <bool kWide>  // true: 16 columns (2 vectors), false: 8 columns
inline void strip_f32(const float* a, const float* b, float* c,
                      std::size_t rows, std::size_t k, std::size_t n,
                      std::size_t j, std::size_t row0, const Epilogue* ep) {
  __m256 acc0[kMr], acc1[kMr];
  for (std::size_t r = 0; r < rows; ++r) {
    acc0[r] = _mm256_loadu_ps(c + r * n + j);
    if (kWide) acc1[r] = _mm256_loadu_ps(c + r * n + j + 8);
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b + kk * n + j);
    const __m256 b1 =
        kWide ? _mm256_loadu_ps(b + kk * n + j + 8) : _mm256_setzero_ps();
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256 av = _mm256_set1_ps(a[r * k + kk]);
      acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, b0));
      if (kWide) acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, b1));
    }
  }
  if (ep) {
    if (ep->bias) {
      if (ep->bias_mode == BiasMode::kPerCol) {
        const __m256 bc0 = _mm256_loadu_ps(ep->bias + j);
        const __m256 bc1 =
            kWide ? _mm256_loadu_ps(ep->bias + j + 8) : _mm256_setzero_ps();
        for (std::size_t r = 0; r < rows; ++r) {
          acc0[r] = _mm256_add_ps(acc0[r], bc0);
          if (kWide) acc1[r] = _mm256_add_ps(acc1[r], bc1);
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          const __m256 br = _mm256_set1_ps(ep->bias[row0 + r]);
          acc0[r] = _mm256_add_ps(acc0[r], br);
          if (kWide) acc1[r] = _mm256_add_ps(acc1[r], br);
        }
      }
    }
    if (ep->act == Activation::kRelu) {
      const __m256 zero = _mm256_setzero_ps();
      for (std::size_t r = 0; r < rows; ++r) {
        acc0[r] = _mm256_max_ps(acc0[r], zero);
        if (kWide) acc1[r] = _mm256_max_ps(acc1[r], zero);
      }
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    _mm256_storeu_ps(c + r * n + j, acc0[r]);
    if (kWide) _mm256_storeu_ps(c + r * n + j + 8, acc1[r]);
  }
}

void gemm_f32(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, const Epilogue* ep) {
  for (std::size_t i = 0; i < m; i += kMr) {
    const std::size_t rows = m - i < kMr ? m - i : kMr;
    const float* ablk = a + i * k;
    float* cblk = c + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) strip_f32<true>(ablk, b, cblk, rows, k, n, j, i, ep);
    for (; j + 8 <= n; j += 8) strip_f32<false>(ablk, b, cblk, rows, k, n, j, i, ep);
    if (j < n) {
      // Scalar tail columns: same ascending-k chain per element.
      for (std::size_t r = 0; r < rows; ++r) {
        const float* arow = ablk + r * k;
        float* crow = cblk + r * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          const float* brow = b + kk * n;
          for (std::size_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
        }
        epilogue_tail(crow, i + r, j, n, ep);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// int8 GEMM (int32 accumulation; integer math is exact, so any order goes)
// ---------------------------------------------------------------------------

/// [a0, a1] int16 pair broadcast into every 32-bit lane, for VPMADDWD.
inline __m256i pair_pattern(std::int8_t a0, std::int8_t a1) {
  const std::uint32_t packed =
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(a1)) << 16) |
      static_cast<std::uint16_t>(a0);
  return _mm256_set1_epi32(static_cast<int>(packed));
}

/// 16 int8 -> 16 int16 (one __m256i).
inline __m256i widen16(const std::int8_t* p) {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             std::size_t m, std::size_t k, std::size_t n) {
  // Register-blocked (4 C rows) x 16 C columns, two k steps at a time.
  // Two consecutive B rows are widened to int16 and interleaved once, then
  // VPMADDWD multiplies each [b_k, b_k+1] pair by a row's [a_k, a_k+1]
  // pattern and sums the pair directly into int32 — |a*b| <= 127^2, so a
  // pair sum <= 32258 never leaves int32 range (it never even needs the
  // int16 headroom: madd widens before summing). The B widen/interleave
  // cost amortizes across the 4 blocked rows.
  constexpr std::size_t kIMr = 4;
  for (std::size_t i = 0; i < m; i += kIMr) {
    const std::size_t rows = m - i < kIMr ? m - i : kIMr;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      // acc_lo: columns [0..3 | 8..11] (unpack lane order), acc_hi the rest.
      __m256i acc_lo[kIMr], acc_hi[kIMr];
      for (std::size_t r = 0; r < rows; ++r) {
        acc_lo[r] = _mm256_setzero_si256();
        acc_hi[r] = _mm256_setzero_si256();
      }
      std::size_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m256i b0 = widen16(b + kk * n + j);
        const __m256i b1 = widen16(b + (kk + 1) * n + j);
        const __m256i lo = _mm256_unpacklo_epi16(b0, b1);
        const __m256i hi = _mm256_unpackhi_epi16(b0, b1);
        for (std::size_t r = 0; r < rows; ++r) {
          const std::int8_t* arow = a + (i + r) * k;
          const __m256i av = pair_pattern(arow[kk], arow[kk + 1]);
          acc_lo[r] =
              _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, av));
          acc_hi[r] =
              _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, av));
        }
      }
      if (kk < k) {  // Odd k tail: pair the last row with zeros.
        const __m256i b0 = widen16(b + kk * n + j);
        const __m256i zero = _mm256_setzero_si256();
        const __m256i lo = _mm256_unpacklo_epi16(b0, zero);
        const __m256i hi = _mm256_unpackhi_epi16(b0, zero);
        for (std::size_t r = 0; r < rows; ++r) {
          const __m256i av = pair_pattern(a[(i + r) * k + kk], 0);
          acc_lo[r] =
              _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, av));
          acc_hi[r] =
              _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, av));
        }
      }
      for (std::size_t r = 0; r < rows; ++r) {
        std::int32_t* crow = c + (i + r) * n + j;
        // Undo the unpack lane order: [lo.lane0|hi.lane0], [lo.lane1|hi.lane1].
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(crow),
            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(crow + 8),
            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
      }
    }
    for (; j < n; ++j) {
      for (std::size_t r = 0; r < rows; ++r) {
        const std::int8_t* arow = a + (i + r) * k;
        std::int32_t s = 0;
        for (std::size_t kk = 0; kk < k; ++kk)
          s += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(b[kk * n + j]);
        c[(i + r) * n + j] = s;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

void add_f32(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) a[i] += b[i];
}

void sub_f32(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(a + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) a[i] -= b[i];
}

void mul_f32(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) a[i] *= b[i];
}

void axpy_f32(float* a, float alpha, const float* b, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(b + i))));
  for (; i < n; ++i) a[i] += alpha * b[i];
}

void scale_f32(float* a, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  for (; i < n; ++i) a[i] *= s;
}

void add_scalar_f32(float* a, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
  for (; i < n; ++i) a[i] += s;
}

void bias_rows_f32(float* a, const float* bias, std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = a + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_loadu_ps(row + j),
                                              _mm256_loadu_ps(bias + j)));
    for (; j < n; ++j) row[j] += bias[j];
  }
}

void relu_f32(const float* x, float* y, float* mask, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_max_ps(v, zero));
    if (mask) {
      const __m256 on = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
      _mm256_storeu_ps(mask + i, _mm256_and_ps(on, one));
    }
  }
  for (; i < n; ++i) {
    const bool on = x[i] > 0.0f;
    y[i] = on ? x[i] : 0.0f;
    if (mask) mask[i] = on ? 1.0f : 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Quantization / precision emulation
// ---------------------------------------------------------------------------

constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

/// round(x / scale) clamped to [-127, 127], still as packed floats.
inline __m256 quant_steps(__m256 x, __m256 vscale) {
  __m256 r = _mm256_round_ps(_mm256_div_ps(x, vscale), kRne);
  r = _mm256_max_ps(r, _mm256_set1_ps(-127.0f));
  return _mm256_min_ps(r, _mm256_set1_ps(127.0f));
}

void quantize_i8(const float* x, float scale, std::int8_t* q, std::size_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi = _mm256_cvtps_epi32(quant_steps(_mm256_loadu_ps(x + i),
                                                      vscale));
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(vi),
                                        _mm256_extracti128_si256(vi, 1));
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), p8);
  }
  for (; i < n; ++i) {
    float r = _mm_cvtss_f32(
        _mm_round_ss(_mm_setzero_ps(), _mm_set_ss(x[i] / scale), kRne));
    if (r < -127.0f) r = -127.0f;
    if (r > 127.0f) r = 127.0f;
    q[i] = static_cast<std::int8_t>(r);
  }
}

void dequantize_i32(const std::int32_t* acc, float scale, float* out,
                    std::size_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_cvtepi32_ps(v), vscale));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(acc[i]) * scale;
}

void fake_quant_f32(float* x, float scale, std::size_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r = quant_steps(_mm256_loadu_ps(x + i), vscale);
    _mm256_storeu_ps(x + i, _mm256_mul_ps(r, vscale));
  }
  for (; i < n; ++i) {
    float r = _mm_cvtss_f32(
        _mm_round_ss(_mm_setzero_ps(), _mm_set_ss(x[i] / scale), kRne));
    if (r < -127.0f) r = -127.0f;
    if (r > 127.0f) r = 127.0f;
    x[i] = r * scale;
  }
}

void fp16_round_f32(float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(x + i), kRne);
    _mm256_storeu_ps(x + i, _mm256_cvtph_ps(h));
  }
  if (i < n) {
    // Tail: pad to one vector so the hardware converter handles every lane.
    float buf[8] = {0};
    std::memcpy(buf, x + i, (n - i) * sizeof(float));
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(buf), kRne);
    _mm256_storeu_ps(buf, _mm256_cvtph_ps(h));
    std::memcpy(x + i, buf, (n - i) * sizeof(float));
  }
}

const KernelTable kAvx2Table = {
    Isa::kAvx2,   "avx2",  gemm_f32,      gemm_i8,        add_f32,
    sub_f32,      mul_f32, axpy_f32,      scale_f32,      add_scalar_f32,
    bias_rows_f32, relu_f32, quantize_i8, dequantize_i32, fake_quant_f32,
    fp16_round_f32,
};

}  // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

}  // namespace clear::kernels::detail

#else  // !(__AVX2__ && __F16C__)

namespace clear::kernels::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace clear::kernels::detail

#endif
