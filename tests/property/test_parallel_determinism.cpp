// Bit-identical parallelism: every pipeline stage must produce exactly the
// same numbers at 1 thread and at N threads. These are EXPECT_EQ comparisons
// on doubles/floats on purpose — the ordered-reduction contract (DESIGN.md)
// promises bitwise equality, not tolerance-level agreement.
#include <gtest/gtest.h>

#include <vector>

#include "clear/evaluation.hpp"
#include "cluster/kmeans.hpp"
#include "common/parallel.hpp"
#include "nn/checkpoint.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace clear {
namespace {

// ---------------------------------------------------------------------------
// k-means

std::vector<cluster::Point> blob_points(std::size_t n, std::size_t dim,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cluster::Point> points;
  for (std::size_t i = 0; i < n; ++i) {
    cluster::Point p(dim);
    const double center = static_cast<double>(i % 3) * 5.0;
    for (double& v : p) v = center + rng.normal(0.0, 1.0);
    points.push_back(std::move(p));
  }
  return points;
}

cluster::KMeansResult fit_kmeans(std::size_t threads) {
  const NumThreadsGuard guard(threads);
  const auto points = blob_points(200, 6, 77);
  Rng rng(123);
  return cluster::kmeans(points, 3, rng);
}

TEST(ParallelDeterminism, KMeansFitBitIdentical) {
  const cluster::KMeansResult serial = fit_kmeans(1);
  const cluster::KMeansResult threaded = fit_kmeans(4);
  EXPECT_EQ(threaded.assignment, serial.assignment);
  EXPECT_EQ(threaded.iterations, serial.iterations);
  EXPECT_EQ(threaded.inertia, serial.inertia);
  ASSERT_EQ(threaded.centroids.size(), serial.centroids.size());
  for (std::size_t c = 0; c < serial.centroids.size(); ++c)
    EXPECT_EQ(threaded.centroids[c], serial.centroids[c]) << "centroid " << c;
}

// ---------------------------------------------------------------------------
// trainer

struct TrainFixture {
  std::vector<Tensor> maps;
  nn::MapDataset data;

  explicit TrainFixture(std::size_t n) {
    Rng rng(9);
    for (std::size_t i = 0; i < n; ++i) {
      const int label = static_cast<int>(i % 2);
      Tensor m({16, 8});
      for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 8; ++c)
          m.at2(r, c) =
              static_cast<float>(rng.normal(label && r < 8 ? 1.2 : 0.0, 0.5));
      maps.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < n; ++i) {
      data.maps.push_back(&maps[i]);
      data.labels.push_back(i % 2);
    }
  }
};

nn::CnnLstmConfig small_model() {
  nn::CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 4;
  c.lstm_hidden = 4;
  return c;
}

struct EpochResult {
  std::vector<Tensor> params;
  std::vector<double> train_loss;
  std::vector<double> val_loss;
  Tensor proba;
};

EpochResult train_one_epoch(const TrainFixture& f, std::size_t threads) {
  const NumThreadsGuard guard(threads);
  Rng rng(5);
  auto model = nn::build_cnn_lstm(small_model(), rng);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.seed = 17;
  tc.validation_fraction = 0.25;
  const nn::TrainHistory h = nn::train_classifier(*model, f.data, tc);
  EpochResult r;
  r.params = nn::snapshot_parameters(*model);
  r.train_loss = h.train_loss;
  r.val_loss = h.val_loss;
  r.proba = nn::predict_probabilities(*model, f.data, 8);
  return r;
}

TEST(ParallelDeterminism, TrainerEpochBitIdentical) {
  const TrainFixture f(32);
  const EpochResult serial = train_one_epoch(f, 1);
  const EpochResult threaded = train_one_epoch(f, 4);
  EXPECT_EQ(threaded.train_loss, serial.train_loss);
  EXPECT_EQ(threaded.val_loss, serial.val_loss);
  ASSERT_EQ(threaded.params.size(), serial.params.size());
  for (std::size_t p = 0; p < serial.params.size(); ++p) {
    const Tensor& a = serial.params[p];
    const Tensor& b = threaded.params[p];
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t i = 0; i < a.numel(); ++i)
      ASSERT_EQ(b.data()[i], a.data()[i]) << "param " << p << " elem " << i;
  }
  ASSERT_EQ(threaded.proba.numel(), serial.proba.numel());
  for (std::size_t i = 0; i < serial.proba.numel(); ++i)
    ASSERT_EQ(threaded.proba.data()[i], serial.proba.data()[i]);
}

// ---------------------------------------------------------------------------
// LOSO sweep

core::ClearConfig loso_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 47;
  c.data.n_volunteers = 6;
  c.data.trials_per_volunteer = 4;
  c.train.epochs = 1;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

const wemac::WemacDataset& loso_dataset() {
  static const wemac::WemacDataset d =
      wemac::generate_wemac(loso_config().data);
  return d;
}

core::ClearValidationResult run_loso(std::size_t threads) {
  const NumThreadsGuard guard(threads);
  core::ClearOptions options;
  options.run_finetune = true;
  return core::run_clear_validation(loso_dataset(), loso_config(), options);
}

TEST(ParallelDeterminism, LosoSweepBitIdentical) {
  const core::ClearValidationResult serial = run_loso(1);
  const core::ClearValidationResult threaded = run_loso(4);
  EXPECT_EQ(threaded.no_ft.fold_accuracy, serial.no_ft.fold_accuracy);
  EXPECT_EQ(threaded.no_ft.fold_f1, serial.no_ft.fold_f1);
  EXPECT_EQ(threaded.rt.fold_accuracy, serial.rt.fold_accuracy);
  EXPECT_EQ(threaded.rt.fold_f1, serial.rt.fold_f1);
  EXPECT_EQ(threaded.with_ft.fold_accuracy, serial.with_ft.fold_accuracy);
  EXPECT_EQ(threaded.with_ft.fold_f1, serial.with_ft.fold_f1);
  EXPECT_EQ(threaded.ca_consistency, serial.ca_consistency);
  EXPECT_EQ(threaded.no_ft.accuracy.mean, serial.no_ft.accuracy.mean);
  EXPECT_EQ(threaded.no_ft.accuracy.stddev, serial.no_ft.accuracy.stddev);
}

}  // namespace
}  // namespace clear
