// Internal: per-ISA table providers for the dispatcher. Each vector
// translation unit compiles to a provider that returns its table when the
// binary was built with the matching instruction set, and null otherwise —
// kernels.cpp never needs ISA-specific #ifdefs.
#pragma once

#include "tensor/kernels/kernels.hpp"

namespace clear::kernels::detail {

const KernelTable* scalar_table();  // never null
const KernelTable* avx2_table();    // null unless compiled with AVX2+F16C
const KernelTable* neon_table();    // null unless compiled for ARM NEON

/// Runtime CPUID probe for the AVX2 table's instruction set (AVX2 + F16C).
/// False on non-x86 builds.
bool cpu_has_avx2_f16c();

}  // namespace clear::kernels::detail
