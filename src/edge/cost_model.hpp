// Analytic latency / power cost model for the evaluated platforms.
//
// The paper measures mean time consumption (MTC) and mean power consumption
// (MPC) on real hardware (Table II, bottom). This reproduction replaces the
// hardware with per-device effective-throughput + overhead models whose
// constants are calibrated so the *relative* picture of Table II holds: the
// Coral TPU is markedly faster per inference and per fine-tuning session
// than the Pi+NCS2 and draws less power; both have a non-trivial idle floor.
#pragma once

#include <cstddef>
#include <string>

#include "edge/engine.hpp"
#include "nn/model.hpp"

namespace clear::edge {

enum class DeviceKind { kGpu, kCoralTpu, kPiNcs2 };

const char* device_name(DeviceKind kind);

struct DeviceSpec {
  std::string name;
  Precision precision = Precision::kFp32;
  double infer_macs_per_s = 1e9;   ///< Effective inference throughput.
  double train_macs_per_s = 1e9;   ///< Effective throughput during backprop.
  double invoke_overhead_s = 0.0;  ///< Fixed cost per inference call.
  double step_overhead_s = 0.0;    ///< Fixed cost per optimizer step.
  double session_overhead_s = 0.0; ///< Fixed cost per fine-tuning session.
  double idle_power_w = 0.0;       ///< Baseline (nothing running).
  double infer_power_w = 0.0;      ///< During inference.
  double train_power_w = 0.0;      ///< During re-training.
};

/// Calibrated spec for one of the paper's platforms.
DeviceSpec device_spec(DeviceKind kind);

/// Multiply-accumulate count of one CNN-LSTM inference on a single map.
double model_inference_macs(const nn::CnnLstmConfig& config);

struct CostEstimate {
  double seconds = 0.0;
  double power_w = 0.0;   ///< Mean power while active.
  double energy_j = 0.0;  ///< seconds * power.
};

/// Latency/energy of one inference call (one feature map).
CostEstimate estimate_inference(const DeviceSpec& spec, double macs);

/// Latency/energy of an on-device fine-tuning session: `epochs` passes over
/// `n_samples` maps with the given batch size (backward ≈ 2x forward MACs).
CostEstimate estimate_finetuning(const DeviceSpec& spec, double macs,
                                 std::size_t n_samples, std::size_t epochs,
                                 std::size_t batch_size);

}  // namespace clear::edge
