#include "clear/artifacts.hpp"

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "tensor/serialize.hpp"

namespace clear::core {

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kMetaMagic = 0x434C4541524D4554ull;  // "CLEARMET"
constexpr std::uint64_t kMetaVersion = 1;

void write_point(std::ostream& os, const cluster::Point& p) {
  io::write_u64(os, p.size());
  for (const double v : p) io::write_f64(os, v);
}

cluster::Point read_point(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  CLEAR_CHECK_MSG(n < (1u << 20), "implausible point dimension");
  cluster::Point p(n);
  for (double& v : p) v = io::read_f64(is);
  return p;
}

void write_index_vector(std::ostream& os, const std::vector<std::size_t>& v) {
  io::write_u64(os, v.size());
  for (const std::size_t x : v) io::write_u64(os, x);
}

std::vector<std::size_t> read_index_vector(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  CLEAR_CHECK_MSG(n < (1u << 24), "implausible index vector length");
  std::vector<std::size_t> v(n);
  for (std::size_t& x : v) x = io::read_u64(is);
  return v;
}

void write_model_config(std::ostream& os, const nn::CnnLstmConfig& c) {
  io::write_u64(os, c.feature_dim);
  io::write_u64(os, c.window_count);
  io::write_u64(os, c.conv1_channels);
  io::write_u64(os, c.conv2_channels);
  io::write_u64(os, c.lstm_hidden);
  io::write_u64(os, c.n_classes);
  io::write_f64(os, c.dropout);
}

nn::CnnLstmConfig read_model_config(std::istream& is) {
  nn::CnnLstmConfig c;
  c.feature_dim = io::read_u64(is);
  c.window_count = io::read_u64(is);
  c.conv1_channels = io::read_u64(is);
  c.conv2_channels = io::read_u64(is);
  c.lstm_hidden = io::read_u64(is);
  c.n_classes = io::read_u64(is);
  c.dropout = io::read_f64(is);
  return c;
}

}  // namespace

void save_pipeline(ClearPipeline& pipeline, const std::string& directory) {
  CLEAR_CHECK_MSG(pipeline.fitted(), "cannot save an unfitted pipeline");
  const fs::path dir(directory);
  std::error_code ec;
  fs::create_directories(dir, ec);
  CLEAR_CHECK_MSG(!ec, "cannot create artifact directory: " << directory);

  ClearPipeline::State state = pipeline.export_state();
  const ClearConfig& config = pipeline.config();

  std::ofstream meta(dir / "pipeline.meta", std::ios::binary);
  CLEAR_CHECK_MSG(meta.good(), "cannot write pipeline.meta");
  io::write_u64(meta, kMetaMagic);
  io::write_u64(meta, kMetaVersion);
  // Configuration needed to rebuild models and reproduce assignment.
  write_model_config(meta, config.model);
  io::write_u64(meta, config.gc.k);
  io::write_u64(meta, config.gc.sub_clusters);
  io::write_f64(meta, config.ca_fraction);
  io::write_f64(meta, config.ft_fraction);
  io::write_u64(meta, config.seed);
  io::write_u64(meta, config.finetune.epochs);
  io::write_f64(meta, config.finetune.lr);
  io::write_u64(meta, config.finetune.batch_size);
  // Fitted users.
  write_index_vector(meta, state.users);
  // Normalizer moments.
  write_point(meta, state.normalizer.mean());
  write_point(meta, state.normalizer.stddev());
  // Clustering.
  write_index_vector(meta, state.clustering.user_cluster);
  io::write_u64(meta, state.clustering.clusters.size());
  for (const cluster::ClusterModel& c : state.clustering.clusters) {
    write_point(meta, c.centroid);
    io::write_u64(meta, c.sub_centroids.size());
    for (const cluster::Point& sc : c.sub_centroids) write_point(meta, sc);
    write_index_vector(meta, c.members);
  }
  io::write_u64(meta, state.clustering.rounds_run);
  io::write_u64(meta, state.clustering.converged ? 1 : 0);
  CLEAR_CHECK_MSG(meta.good(), "IO error writing pipeline.meta");

  for (std::size_t k = 0; k < state.checkpoints.size(); ++k) {
    const fs::path file = dir / ("cluster_" + std::to_string(k) + ".ckpt");
    std::ofstream os(file, std::ios::binary);
    CLEAR_CHECK_MSG(os.good(), "cannot write " << file.string());
    os.write(state.checkpoints[k].data(),
             static_cast<std::streamsize>(state.checkpoints[k].size()));
    CLEAR_CHECK_MSG(os.good(), "IO error writing " << file.string());
  }
}

ClearPipeline load_pipeline(const std::string& directory) {
  const fs::path dir(directory);
  std::ifstream meta(dir / "pipeline.meta", std::ios::binary);
  CLEAR_CHECK_MSG(meta.good(),
                  "cannot open " << (dir / "pipeline.meta").string());
  CLEAR_CHECK_MSG(io::read_u64(meta) == kMetaMagic, "bad pipeline.meta magic");
  CLEAR_CHECK_MSG(io::read_u64(meta) == kMetaVersion,
                  "unsupported pipeline.meta version");

  ClearConfig config = default_config();
  config.model = read_model_config(meta);
  config.gc.k = io::read_u64(meta);
  config.gc.sub_clusters = io::read_u64(meta);
  config.ca_fraction = io::read_f64(meta);
  config.ft_fraction = io::read_f64(meta);
  config.seed = io::read_u64(meta);
  config.finetune.epochs = io::read_u64(meta);
  config.finetune.lr = io::read_f64(meta);
  config.finetune.batch_size = io::read_u64(meta);
  // Keep the persisted model geometry (finalize() would overwrite it from
  // the default data config).
  config.data.windows_per_trial = config.model.window_count;

  ClearPipeline::State state;
  state.users = read_index_vector(meta);
  cluster::Point mean = read_point(meta);
  cluster::Point stddev = read_point(meta);
  state.normalizer =
      features::FeatureNormalizer::from_moments(std::move(mean),
                                                std::move(stddev));
  state.clustering.user_cluster = read_index_vector(meta);
  const std::uint64_t n_clusters = io::read_u64(meta);
  CLEAR_CHECK_MSG(n_clusters >= 1 && n_clusters < 256,
                  "implausible cluster count");
  for (std::uint64_t k = 0; k < n_clusters; ++k) {
    cluster::ClusterModel c;
    c.centroid = read_point(meta);
    const std::uint64_t n_sub = io::read_u64(meta);
    CLEAR_CHECK_MSG(n_sub >= 1 && n_sub < 1024, "implausible sub-cluster count");
    for (std::uint64_t i = 0; i < n_sub; ++i)
      c.sub_centroids.push_back(read_point(meta));
    c.members = read_index_vector(meta);
    state.clustering.clusters.push_back(std::move(c));
  }
  state.clustering.rounds_run = io::read_u64(meta);
  state.clustering.converged = io::read_u64(meta) != 0;

  for (std::uint64_t k = 0; k < n_clusters; ++k) {
    const fs::path file = dir / ("cluster_" + std::to_string(k) + ".ckpt");
    std::ifstream is(file, std::ios::binary);
    CLEAR_CHECK_MSG(is.good(), "cannot open " << file.string());
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    state.checkpoints.push_back(std::move(bytes));
  }

  ClearPipeline pipeline(config);
  pipeline.import_state(std::move(state));
  return pipeline;
}

}  // namespace clear::core
