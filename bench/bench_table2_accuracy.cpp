// Reproduces Table II (upper part): deployed CLEAR accuracy per platform
// before on-device fine-tuning, plus the RT CLEAR robustness rows.
//
// Protocol: the CLEAR LOSO folds are run once (checkpoints + normalizer +
// cold-start splits captured per fold), then each fold's checkpoints are
// deployed onto the simulated devices — fp32 (GPU baseline), int8 with
// activation calibration on the cluster's training maps (Coral TPU), and
// fp16 (Pi + NCS2) — and evaluated on the held-out user's test maps.
//
// Flags: --quick --volunteers=N --epochs=N --max-folds=N --seed=N
//        --cache-dir=DIR --act-percentile=P
#include "bench_common.hpp"
#include "clear/edge_eval.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);

  std::printf("Table II (upper) harness: %zu volunteers, %zu maps\n",
              dataset.n_volunteers(), dataset.samples().size());

  core::ClearOptions options;
  options.max_folds = static_cast<std::size_t>(args.get_int("max-folds", 0));
  options.keep_artifacts = true;
  options.run_finetune = false;
  options.progress = [](std::size_t fold, std::size_t total) {
    CLEAR_INFO("CLEAR fold " << fold + 1 << "/" << total);
  };
  CLEAR_INFO("running CLEAR validation (capturing fold artifacts)...");
  const core::ClearValidationResult clear_res =
      core::run_clear_validation(dataset, config, options);

  core::EdgeEvalOptions edge_options;
  edge_options.run_finetune = false;
  edge_options.act_percentile = args.get_double("act-percentile", 99.5);
  edge_options.progress = [](std::size_t fold, std::size_t total) {
    if ((fold + 1) % 10 == 0) CLEAR_INFO("edge fold " << fold + 1 << "/" << total);
  };

  CLEAR_INFO("deploying to Coral TPU (int8)...");
  const core::EdgeEvalResult tpu = core::run_edge_validation(
      dataset, config, clear_res.artifacts, edge::DeviceKind::kCoralTpu,
      edge_options);
  CLEAR_INFO("deploying to Pi + NCS2 (fp16)...");
  const core::EdgeEvalResult ncs2 = core::run_edge_validation(
      dataset, config, clear_res.artifacts, edge::DeviceKind::kPiNcs2,
      edge_options);

  AsciiTable table({"Platform", "Accuracy (paper/meas)", "STD (paper/meas)",
                    "F1 (paper/meas)", "STD F1 (paper/meas)"});
  table.set_title(
      "TABLE II (upper) — deployed CLEAR w/o FT per platform; percent");
  table.add_row({"GPU (baseline)",
                 bench::paper_vs(80.63, clear_res.no_ft.accuracy.mean),
                 bench::paper_vs(4.22, clear_res.no_ft.accuracy.stddev),
                 bench::paper_vs(79.97, clear_res.no_ft.f1.mean),
                 bench::paper_vs(4.74, clear_res.no_ft.f1.stddev)});
  table.add_row({"Coral TPU", bench::paper_vs(74.17, tpu.no_ft.accuracy.mean),
                 bench::paper_vs(3.84, tpu.no_ft.accuracy.stddev),
                 bench::paper_vs(73.57, tpu.no_ft.f1.mean),
                 bench::paper_vs(4.44, tpu.no_ft.f1.stddev)});
  table.add_row({"  RT CLEAR", bench::paper_vs(65.32, tpu.rt.accuracy.mean),
                 bench::paper_vs(5.42, tpu.rt.accuracy.stddev),
                 bench::paper_vs(64.79, tpu.rt.f1.mean),
                 bench::paper_vs(4.82, tpu.rt.f1.stddev)});
  table.add_row({"Pi + NCS2", bench::paper_vs(79.03, ncs2.no_ft.accuracy.mean),
                 bench::paper_vs(4.10, ncs2.no_ft.accuracy.stddev),
                 bench::paper_vs(78.48, ncs2.no_ft.f1.mean),
                 bench::paper_vs(4.76, ncs2.no_ft.f1.stddev)});
  table.add_row({"  RT CLEAR", bench::paper_vs(68.47, ncs2.rt.accuracy.mean),
                 bench::paper_vs(3.25, ncs2.rt.accuracy.stddev),
                 bench::paper_vs(69.02, ncs2.rt.f1.mean),
                 bench::paper_vs(4.14, ncs2.rt.f1.stddev)});
  std::printf("\n");
  table.print();
  return 0;
}
