// Classification metrics. The paper reports accuracy and F1-score of the
// fear (positive) class, each with its standard deviation across LOSO folds.
#pragma once

#include <cstddef>
#include <vector>

namespace clear::nn {

struct BinaryMetrics {
  std::size_t tp = 0, tn = 0, fp = 0, fn = 0;
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t count() const { return tp + tn + fp + fn; }
};

/// Compute binary metrics treating label `positive` (default 1 = fear) as
/// the positive class. Predictions and labels must be equal-length and
/// non-empty.
BinaryMetrics binary_metrics(const std::vector<std::size_t>& predictions,
                             const std::vector<std::size_t>& labels,
                             std::size_t positive = 1);

/// Aggregate per-fold values into (mean, standard deviation) pairs — the
/// form every results table in the paper uses.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(const std::vector<double>& values);

}  // namespace clear::nn
