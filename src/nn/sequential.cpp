#include "nn/sequential.hpp"

#include "common/error.hpp"

namespace clear::nn {

Sequential& Sequential::add(LayerPtr layer) {
  CLEAR_CHECK_MSG(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(!layers_.empty(), "empty Sequential");
  Tensor x = input;
  for (const LayerPtr& l : layers_) x = l->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(!layers_.empty(), "empty Sequential");
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Param*> Sequential::parameters() {
  std::vector<Param*> params;
  for (const LayerPtr& l : layers_) {
    const std::vector<Param*> p = l->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

void Sequential::set_training(bool training) {
  Layer::set_training(training);
  for (const LayerPtr& l : layers_) l->set_training(training);
}

Layer& Sequential::layer(std::size_t i) {
  CLEAR_CHECK_MSG(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  CLEAR_CHECK_MSG(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

void Sequential::freeze_below(std::size_t boundary) {
  for (std::size_t i = 0; i < layers_.size(); ++i)
    layers_[i]->set_frozen(i < boundary);
}

std::size_t Sequential::parameter_count() {
  std::size_t total = 0;
  for (Param* p : parameters()) total += p->value.numel();
  return total;
}

std::unique_ptr<Sequential> Sequential::clone_sequential() const {
  auto copy = std::make_unique<Sequential>();
  for (const LayerPtr& l : layers_) {
    LayerPtr layer_copy = l->clone();
    if (!layer_copy) return nullptr;
    copy->layers_.push_back(std::move(layer_copy));
  }
  copy->training_ = training_;
  return copy;
}

LayerPtr Sequential::clone() const { return clone_sequential(); }

}  // namespace clear::nn
