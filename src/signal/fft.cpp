#include "signal/fft.hpp"

#include <cmath>

#include "common/error.hpp"

namespace clear::dsp {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  CLEAR_CHECK_MSG(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv;
  }
}

std::size_t next_pow2(std::size_t n) {
  CLEAR_CHECK_MSG(n >= 1, "next_pow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> magnitude_spectrum(std::span<const double> signal) {
  CLEAR_CHECK_MSG(!signal.empty(), "magnitude_spectrum of empty signal");
  const std::size_t nfft = next_pow2(signal.size());
  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) buf[i] = signal[i];
  fft(buf);
  std::vector<double> mag(nfft / 2 + 1);
  for (std::size_t i = 0; i < mag.size(); ++i) mag[i] = std::abs(buf[i]);
  return mag;
}

namespace {
// Hann-windowed one-sided PSD of one segment; accumulates into `accum`.
void segment_psd(std::span<const double> seg, std::size_t nfft,
                 std::vector<double>& accum) {
  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  double wsum_sq = 0.0;
  const std::size_t n = seg.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double w =
        0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                              static_cast<double>(n > 1 ? n - 1 : 1)));
    buf[i] = seg[i] * w;
    wsum_sq += w * w;
  }
  if (wsum_sq <= 0) wsum_sq = 1.0;
  fft(buf);
  for (std::size_t i = 0; i < accum.size(); ++i) {
    double p = std::norm(buf[i]) / wsum_sq;
    // One-sided: double everything except DC and Nyquist.
    if (i != 0 && i != nfft / 2) p *= 2.0;
    accum[i] += p;
  }
}
}  // namespace

Psd periodogram(std::span<const double> signal, double sample_rate) {
  CLEAR_CHECK_MSG(!signal.empty(), "periodogram of empty signal");
  CLEAR_CHECK_MSG(sample_rate > 0, "sample_rate must be positive");
  const std::size_t nfft = next_pow2(signal.size());
  Psd out;
  out.power.assign(nfft / 2 + 1, 0.0);
  segment_psd(signal, nfft, out.power);
  // Normalize to density (per Hz).
  for (double& p : out.power) p /= sample_rate;
  out.freq.resize(out.power.size());
  for (std::size_t i = 0; i < out.freq.size(); ++i)
    out.freq[i] =
        static_cast<double>(i) * sample_rate / static_cast<double>(nfft);
  return out;
}

Psd welch(std::span<const double> signal, double sample_rate,
          std::size_t segment_len) {
  CLEAR_CHECK_MSG(!signal.empty(), "welch of empty signal");
  CLEAR_CHECK_MSG(sample_rate > 0, "sample_rate must be positive");
  CLEAR_CHECK_MSG(segment_len >= 8, "welch segment too short");
  const std::size_t nfft = next_pow2(segment_len);
  const std::size_t hop = nfft / 2;

  Psd out;
  out.power.assign(nfft / 2 + 1, 0.0);
  std::size_t count = 0;
  if (signal.size() <= nfft) {
    segment_psd(signal, nfft, out.power);
    count = 1;
  } else {
    for (std::size_t start = 0; start + nfft <= signal.size(); start += hop) {
      segment_psd(signal.subspan(start, nfft), nfft, out.power);
      ++count;
    }
  }
  const double norm = 1.0 / (static_cast<double>(count) * sample_rate);
  for (double& p : out.power) p *= norm;
  out.freq.resize(out.power.size());
  for (std::size_t i = 0; i < out.freq.size(); ++i)
    out.freq[i] =
        static_cast<double>(i) * sample_rate / static_cast<double>(nfft);
  return out;
}

double band_power(const Psd& psd, double f_lo, double f_hi) {
  CLEAR_CHECK_MSG(f_lo <= f_hi, "band_power requires f_lo <= f_hi");
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < psd.freq.size(); ++i) {
    const double f0 = psd.freq[i];
    const double f1 = psd.freq[i + 1];
    if (f1 <= f_lo || f0 >= f_hi) continue;
    // Trapezoid clipped to the band.
    const double lo = std::max(f0, f_lo);
    const double hi = std::min(f1, f_hi);
    const double frac0 = (lo - f0) / (f1 - f0);
    const double frac1 = (hi - f0) / (f1 - f0);
    const double p0 = psd.power[i] + frac0 * (psd.power[i + 1] - psd.power[i]);
    const double p1 = psd.power[i] + frac1 * (psd.power[i + 1] - psd.power[i]);
    total += 0.5 * (p0 + p1) * (hi - lo);
  }
  return total;
}

double spectral_centroid(const Psd& psd) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < psd.freq.size(); ++i) {
    num += psd.freq[i] * psd.power[i];
    den += psd.power[i];
  }
  return den > 1e-300 ? num / den : 0.0;
}

double spectral_spread(const Psd& psd) {
  const double c = spectral_centroid(psd);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < psd.freq.size(); ++i) {
    num += (psd.freq[i] - c) * (psd.freq[i] - c) * psd.power[i];
    den += psd.power[i];
  }
  return den > 1e-300 ? std::sqrt(num / den) : 0.0;
}

double spectral_entropy(const Psd& psd) {
  double total = 0.0;
  for (const double p : psd.power) total += p;
  if (total <= 1e-300) return 0.0;
  double h = 0.0;
  for (const double p : psd.power) {
    if (p <= 0) continue;
    const double q = p / total;
    h -= q * std::log(q);
  }
  return h;
}

double spectral_rolloff(const Psd& psd, double fraction) {
  CLEAR_CHECK_MSG(fraction > 0 && fraction <= 1, "rolloff fraction in (0,1]");
  double total = 0.0;
  for (const double p : psd.power) total += p;
  if (total <= 1e-300) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < psd.power.size(); ++i) {
    acc += psd.power[i];
    if (acc >= fraction * total) return psd.freq[i];
  }
  return psd.freq.back();
}

double peak_frequency(const Psd& psd, double f_lo, double f_hi) {
  double best_p = -1.0;
  double best_f = 0.0;
  for (std::size_t i = 0; i < psd.freq.size(); ++i) {
    if (psd.freq[i] < f_lo || psd.freq[i] >= f_hi) continue;
    if (psd.power[i] > best_p) {
      best_p = psd.power[i];
      best_f = psd.freq[i];
    }
  }
  return best_p < 0 ? 0.0 : best_f;
}

double spectral_moment(const Psd& psd, int n) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < psd.freq.size(); ++i) {
    num += std::pow(psd.freq[i], n) * psd.power[i];
    den += psd.power[i];
  }
  return den > 1e-300 ? num / den : 0.0;
}

}  // namespace clear::dsp
