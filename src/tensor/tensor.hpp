// Dense row-major float tensor.
//
// This is the storage type shared by the NN training stack (src/nn), the
// quantized edge runtime (src/edge), and the clustering code (src/cluster).
// It is deliberately simple: contiguous float32, no views, no broadcasting
// beyond what the ops in ops.hpp provide. Shapes use std::size_t and are
// validated eagerly so that dimension bugs surface at the call site.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace clear {

class Rng;

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Every extent must be > 0.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Tensor with explicit contents; data.size() must equal the shape product.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  // -- Shape ----------------------------------------------------------------
  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t extent(std::size_t dim) const;
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  /// Reinterpret as a new shape with the same element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;
  void reshape(std::vector<std::size_t> new_shape);

  /// Take on `new_shape`, reallocating storage only when the element count
  /// changes (a same-count resize is a cheap reshape). Contents after a
  /// count-changing resize are unspecified — this is the primitive behind
  /// reusable scratch tensors on inference hot paths, whose consumers
  /// overwrite every element.
  void resize(std::vector<std::size_t> new_shape);

  // -- Element access -------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(std::span<const std::size_t> idx);
  float at(std::span<const std::size_t> idx) const;

  /// Rank-specific accessors (bounds-checked via CLEAR_CHECK in debug paths).
  float& at2(std::size_t i, std::size_t j);
  float at2(std::size_t i, std::size_t j) const;
  float& at3(std::size_t i, std::size_t j, std::size_t k);
  float at3(std::size_t i, std::size_t j, std::size_t k) const;
  float& at4(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at4(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  // -- Fills ----------------------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  /// iid N(mean, stddev).
  void fill_normal(Rng& rng, float mean, float stddev);
  /// iid U[lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi);

  // -- Factories ------------------------------------------------------------
  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor ones(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);

 private:
  std::size_t linear_index(std::span<const std::size_t> idx) const;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace clear
