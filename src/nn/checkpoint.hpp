// Checkpointing: save / restore the parameter values of a model.
//
// The format stores (name, tensor) pairs in parameter order. Loading
// validates count, names, and shapes against the destination model, so a
// checkpoint can only be restored into an architecturally identical network
// — exactly the contract the CLEAR pipeline needs when shipping per-cluster
// "best checkpoints" to the edge.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace clear::nn {

/// Serialize all parameter values of `model` to a binary stream/file.
void save_checkpoint(std::ostream& os, Sequential& model);
void save_checkpoint_file(const std::string& path, Sequential& model);

/// Restore parameter values in place. Throws clear::Error on any mismatch.
void load_checkpoint(std::istream& is, Sequential& model);
void load_checkpoint_file(const std::string& path, Sequential& model);

/// In-memory snapshot of parameter values (used to keep the best epoch).
std::vector<Tensor> snapshot_parameters(Sequential& model);
void restore_parameters(Sequential& model, const std::vector<Tensor>& snap);

}  // namespace clear::nn
