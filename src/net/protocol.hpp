// CLEAR-Serve wire protocol v1: binary, length-prefixed, CRC-checked.
//
// Every message on the wire is one *frame*:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic 0x57524C43 ("CLRW", little-endian)
//        4     1  version (currently 1)
//        5     1  frame type (FrameType)
//        6     2  reserved, must be zero
//        8     4  payload length N (little-endian u32, <= max payload)
//       12     4  CRC-32 of the N payload bytes (src/common/crc32)
//       16     N  payload
//
// All integers are little-endian; floats are IEEE-754 bit patterns moved
// byte-for-byte, so a round-tripped request is *bit-identical* — the wire
// cannot perturb a prediction. The CRC is per frame, covering the payload;
// header corruption is caught by the magic/version/reserved/length checks.
//
// The decoder is incremental and hostile-input safe: bytes arrive in
// arbitrary splits (down to one byte at a time), and every malformed input
// — truncated frame, bad magic, unknown version, length overflow, CRC
// mismatch, short or internally inconsistent payload — produces an
// addressed DecodeStatus + error string, never an exception or a crash.
// After the first error the decoder latches: framing is lost, the only safe
// recovery is closing the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "tensor/tensor.hpp"

namespace clear::net {

inline constexpr std::uint32_t kMagic = 0x57524C43u;  // "CLRW" on the wire.
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
/// Default payload bound: a [F, W] fp32 map plus metadata is a few KiB;
/// anything near this bound is an attack or a framing bug, not a request.
inline constexpr std::size_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,   ///< Client -> server: one inference request.
  kResponse = 2,  ///< Server -> client: result (ok or addressed shed).
  kDrain = 3,     ///< Client -> server: flush every pending batch.
  kDrainAck = 4,  ///< Server -> client: drain done + counters snapshot.
  kShutdown = 5,  ///< Client -> server: drain, flush, stop the event loop.
  // Shard-coordination control frames (coordinator <-> shard only; clients
  // never see them). Same framing, same version: a v1 peer that does not
  // speak them is by definition not a shard.
  kPing = 6,          ///< Coordinator -> shard: liveness probe (nonce).
  kPong = 7,          ///< Shard -> coordinator: echo nonce + session count.
  kExport = 8,        ///< Coordinator -> losing shard: hand over one user.
  kSessionImage = 9,  ///< Session image + personal checkpoint, both ways:
                      ///< shard -> coordinator (export reply) and
                      ///< coordinator -> gaining shard (import).
  kImportAck = 10,    ///< Gaining shard -> coordinator: import done/failed.
  kAdopt = 11,        ///< Coordinator -> survivor: recover a dead shard's
                      ///< journal directory and take over its sessions.
  kAdoptAck = 12,     ///< Survivor -> coordinator: adoption report.
  kMetricsPull = 13,  ///< Coordinator -> shard: request a metrics snapshot.
  kMetricsJson = 14,  ///< Shard -> coordinator: obs::metrics_json() bytes.
};

const char* frame_type_name(FrameType t);

/// One inference request as it crosses the wire. Mirrors serve::ServeRequest
/// (the net layer converts 1:1) without depending on the serve headers.
struct WireRequest {
  std::uint64_t request_id = 0;
  std::uint64_t user_id = 0;
  std::uint64_t arrival_us = 0;  ///< Virtual arrival time (server clamps).
  double quality = 1.0;
  std::optional<int> label;  ///< 0/1 when the user reported ground truth.
  Tensor map;                ///< [F, W] raw feature map.
};

/// One result as it crosses the wire. Mirrors serve::ServeResult; enums
/// travel as integers and are range-checked on decode.
struct WireResponse {
  std::uint64_t request_id = 0;
  std::uint64_t user_id = 0;
  bool shed = false;
  std::int32_t predicted = -1;
  float fear_probability = 0.0f;
  std::uint32_t session_state = 0;
  bool degraded = false;
  std::uint32_t route_kind = 0;
  std::uint64_t route_id = 0;
  std::uint32_t batch_rows = 0;
  std::uint64_t arrival_us = 0;
  std::uint64_t exec_us = 0;
  std::string error;  ///< Addressed shed/failure reason (shed only).
};

/// Server counters snapshot carried by a drain/shutdown acknowledgement.
struct WireDrainAck {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
};

/// Shard liveness reply: the probe's nonce plus the shard's session count
/// (free capacity telemetry for the coordinator's summaries).
struct WirePong {
  std::uint64_t nonce = 0;
  std::uint64_t sessions = 0;
};

/// One serialized session crossing the wire during a migration handoff.
/// `image` is serve::encode_session_image bytes (the journal's CRC-framed
/// snapshot format carries the same payload on disk); `checkpoint` is the
/// personal fine-tuned model checkpoint, empty when the session has none.
/// `found == false` (export replies only) means the losing shard had no
/// session for the user — nothing to move.
struct WireSessionImage {
  std::uint64_t user_id = 0;
  bool found = false;
  std::string image;
  std::string checkpoint;
};

/// Gaining shard's verdict on one session import.
struct WireImportAck {
  std::uint64_t user_id = 0;
  bool ok = false;
  std::string error;  ///< Addressed reason when !ok.
};

/// Survivor's report after adopting a dead shard's journal directory.
struct WireAdoptAck {
  std::uint64_t sessions = 0;      ///< Sessions recovered and taken over.
  std::uint64_t personalized = 0;  ///< Of those, with a personal engine.
  std::uint64_t failed = 0;        ///< Sessions lost to an import failure.
};

// -- Encoding (infallible for well-formed inputs) ---------------------------

std::string encode_frame(FrameType type, const std::string& payload);
std::string encode_request(const WireRequest& request);
std::string encode_response(const WireResponse& response);
std::string encode_drain();
std::string encode_drain_ack(const WireDrainAck& ack);
std::string encode_shutdown();
std::string encode_ping(std::uint64_t nonce);
std::string encode_pong(const WirePong& pong);
std::string encode_export(std::uint64_t user_id);
std::string encode_session_image(const WireSessionImage& image);
std::string encode_import_ack(const WireImportAck& ack);
std::string encode_adopt(const std::string& journal_dir);
std::string encode_adopt_ack(const WireAdoptAck& ack);
std::string encode_metrics_pull();
std::string encode_metrics_json(const std::string& json);

// -- Decoding ----------------------------------------------------------------

enum class DecodeStatus {
  kFrame,       ///< A complete frame was produced.
  kNeedMore,    ///< Buffered bytes do not yet hold a full frame.
  kBadMagic,    ///< First four bytes are not the protocol magic.
  kBadVersion,  ///< Unknown protocol version.
  kBadHeader,   ///< Reserved bytes are nonzero or the type is unknown.
  kBadLength,   ///< Declared payload length exceeds the bound.
  kBadCrc,      ///< Payload CRC-32 mismatch.
};

const char* decode_status_name(DecodeStatus s);

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Incremental frame decoder for one connection's byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayload);

  /// Append raw bytes from the socket. Cheap; parsing happens in next().
  void feed(const void* data, std::size_t n);

  /// Extract the next complete frame. kFrame fills `out`; kNeedMore means
  /// feed more bytes; anything else is a fatal framing error — error()
  /// holds the addressed reason and the decoder latches (all further calls
  /// return the same status).
  DecodeStatus next(Frame& out);

  /// Bytes buffered but not yet consumed as frames. Nonzero at connection
  /// close means the peer died mid-frame.
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Frames successfully decoded so far (addresses errors: "frame 3: ...").
  std::uint64_t frames_decoded() const { return frames_; }

  /// Addressed description of the latched error ("" while healthy).
  const std::string& error() const { return error_; }

 private:
  DecodeStatus fail(DecodeStatus status, const std::string& why);

  std::size_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< Consumed prefix of buf_.
  std::uint64_t frames_ = 0;
  DecodeStatus latched_ = DecodeStatus::kNeedMore;
  std::string error_;
};

/// Typed payload parsers. On failure they return false and set `error` to an
/// addressed reason (offset + field); they never throw on malformed bytes.
bool parse_request(const Frame& frame, WireRequest& out, std::string& error);
bool parse_response(const Frame& frame, WireResponse& out, std::string& error);
bool parse_drain_ack(const Frame& frame, WireDrainAck& out,
                     std::string& error);
bool parse_ping(const Frame& frame, std::uint64_t& nonce, std::string& error);
bool parse_pong(const Frame& frame, WirePong& out, std::string& error);
bool parse_export(const Frame& frame, std::uint64_t& user_id,
                  std::string& error);
bool parse_session_image(const Frame& frame, WireSessionImage& out,
                         std::string& error);
bool parse_import_ack(const Frame& frame, WireImportAck& out,
                      std::string& error);
bool parse_adopt(const Frame& frame, std::string& journal_dir,
                 std::string& error);
bool parse_adopt_ack(const Frame& frame, WireAdoptAck& out,
                     std::string& error);
/// kMetricsJson carries raw snapshot bytes; this just validates the type.
bool parse_metrics_json(const Frame& frame, std::string& json,
                        std::string& error);

}  // namespace clear::net
