// Deterministic, seeded fault-injection runtime.
//
// The paper targets wearables streaming into edge boards, where the failure
// modes are well known: a Bluetooth link drops a channel for half a second,
// an ADC saturates or glitches single samples, a sensor clock slips and
// repeats a reading, and flash storage truncates or bit-flips a checkpoint
// mid-write. This module makes every one of those faults *reproducible*:
//
//   * Signal faults are pure functions of (spec.seed, stream_id, fault
//     kind, sample/block index) through a splitmix64-style mixer — no
//     sequential RNG state. The same spec therefore produces bit-identical
//     faulted streams regardless of injection order or thread count, and a
//     spec with all rates at zero modifies nothing at all (the zero-fault
//     row of a robustness sweep is bit-identical to the clean run).
//   * IO faults are an armed countdown: the Nth guarded filesystem
//     operation throws, simulating a writer crashing mid-save (and leaving
//     its temp file behind for the loader to cope with).
//
// sanitize() is the matching device-side recovery: gap-fill non-finite
// samples (hold-last or linear interpolation) and clamp out-of-range ones,
// returning counters so callers can report signal quality honestly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clear::fault {

/// Fault rates for one injection pass. All rates are probabilities in
/// [0, 1]; the default spec injects nothing.
struct FaultSpec {
  std::uint64_t seed = 1;        ///< Fault stream seed (independent of data seed).
  double dropout_rate = 0.0;     ///< P(a dropout block is blanked to NaN).
  double dropout_seconds = 0.5;  ///< Length of one dropout block.
  double corrupt_rate = 0.0;     ///< Per-sample P(NaN / saturation / spike).
  double jitter_rate = 0.0;      ///< Per-sample P(clock slip repeats a reading).

  /// True when any fault can fire. An all-zero spec leaves inputs untouched.
  bool any() const {
    return dropout_rate > 0.0 || corrupt_rate > 0.0 || jitter_rate > 0.0;
  }
};

/// Counters from one or more injection passes.
struct FaultStats {
  std::size_t total_samples = 0;
  std::size_t dropped = 0;    ///< Samples blanked by dropout blocks.
  std::size_t corrupted = 0;  ///< NaN / saturation / spike corruptions.
  std::size_t jittered = 0;   ///< Stuck-clock sample repeats.

  void merge(const FaultStats& o) {
    total_samples += o.total_samples;
    dropped += o.dropped;
    corrupted += o.corrupted;
    jittered += o.jittered;
  }
  std::size_t faulted() const { return dropped + corrupted + jittered; }
  double faulted_fraction() const {
    return total_samples == 0
               ? 0.0
               : static_cast<double>(faulted()) /
                     static_cast<double>(total_samples);
  }
};

/// Stateless decision hash: splitmix64 finalizer over the four words.
/// Exposed so tests can pin the decision function.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d);
/// Map a hash to [0, 1).
double uniform01(std::uint64_t h);

/// Inject faults into one raw channel in place. `stream_id` must uniquely
/// identify the stream (e.g. hash of volunteer, trial, and channel), so
/// different channels draw independent fault decisions from one spec.
/// Saturation rails and spike magnitudes are derived from the clean
/// signal's own range — no per-channel tuning constants.
FaultStats inject(std::vector<double>& samples, double rate_hz,
                  std::uint64_t stream_id, const FaultSpec& spec);

// ---------------------------------------------------------------------------
// Sanitization — the recovery half of the fault model.

/// Gap-fill policy for non-finite samples.
enum class GapFill {
  kHoldLast,      ///< Repeat the last good sample (zero-delay).
  kLinearInterp,  ///< Interpolate across the gap (needs the next good sample).
};

struct SanitizeStats {
  std::size_t filled = 0;   ///< Non-finite samples replaced by gap-fill.
  std::size_t clamped = 0;  ///< Finite samples clamped into [lo, hi].
};

/// Replace every non-finite sample and clamp finite ones into [lo, hi].
/// Leading non-finite runs are back-filled from the first good sample; an
/// all-bad signal becomes all zeros. Returns what was repaired. A clean
/// in-range signal is left bit-identical.
SanitizeStats sanitize(std::vector<double>& samples, GapFill policy,
                       double lo, double hi);

// ---------------------------------------------------------------------------
// Injectable IO failures.

/// Arm the IO fault: the `countdown`-th subsequent guarded IO operation
/// (1 = the very next one) throws clear::Error. Used by tests to simulate
/// a writer crashing between its temp file and the atomic rename.
void arm_io_failure(std::uint64_t countdown);
/// Disarm any pending IO fault (the normal state).
void disarm_io_failure();
/// True while an IO fault is armed and has not fired yet.
bool io_failure_armed();
/// Guard, called by checkpoint/artifact writers at their IO sites. Throws
/// clear::Error("injected IO failure at <site>") when the countdown fires;
/// a no-op when disarmed.
void maybe_fail_io(const char* site);

// ---------------------------------------------------------------------------
// Injectable journal faults (consumed by the serve write-ahead journal).
//
// Two knobs, mirroring the IO countdown above but scoped to the journal's
// append path so a test can fault the WAL without tripping the checkpoint
// and artifact writers that share maybe_fail_io:
//   * journal_io_fail — the Nth guarded journal operation throws cleanly
//     before writing anything (a full disk / EIO).
//   * journal_torn_write — the Nth journal append persists only a byte
//     prefix of its record and then throws, leaving a genuine torn tail on
//     disk for recovery's CRC scan to detect and drop.

/// Arm the clean journal IO failure: the `countdown`-th subsequent guarded
/// journal operation (1 = the very next one) throws clear::Error.
void arm_journal_io_fail(std::uint64_t countdown);
void disarm_journal_io_fail();
/// Guard, called by the journal before each append/snapshot operation.
/// Throws clear::Error("injected journal IO failure at <site>") when the
/// countdown fires; a no-op when disarmed.
void maybe_fail_journal_io(const char* site);

/// Arm the torn-write fault: the `countdown`-th subsequent journal append
/// keeps only `keep_bytes` of its record on disk and then fails.
void arm_journal_torn_write(std::uint64_t countdown,
                            std::size_t keep_bytes = 3);
void disarm_journal_torn_write();
/// Byte cap for the next journal append; SIZE_MAX while the torn-write
/// fault is disarmed or not yet due. Consuming the cap (returning less
/// than SIZE_MAX) disarms the knob.
std::size_t journal_torn_write_cap();

// ---------------------------------------------------------------------------
// Injectable network faults (consumed by src/net's guarded socket ops).
//
// Two knobs, mirroring the signal/IO split above:
//   * net_short_write — stateless rate: a guarded send() is capped at
//     `short_write_bytes`, forcing the caller through its partial-write /
//     backpressure path. Pure function of (seed, stream id, op index), so a
//     faulted run is bit-identical across repeats.
//   * net_drop — armed countdown like the IO fault: the Nth guarded socket
//     operation severs its connection (the caller closes the fd), simulating
//     a peer dying mid-request.

/// Rates/caps for guarded socket operations. The default spec injects
/// nothing. Set once before traffic starts; not safe to mutate while
/// guarded ops run on other threads.
struct NetFaultSpec {
  std::uint64_t seed = 1;
  double short_write_rate = 0.0;  ///< P(a guarded write is capped).
  std::size_t short_write_bytes = 1;  ///< Cap applied when the rate fires.
};

void set_net_fault(const NetFaultSpec& spec);
void clear_net_fault();

/// Byte cap for the `op_index`-th guarded write on `stream_id`;
/// SIZE_MAX when the short-write fault does not fire.
std::size_t net_write_cap(std::uint64_t stream_id, std::uint64_t op_index);

/// Streams matched by an armed net drop: all of them, or exactly one.
constexpr std::uint64_t kAnyNetStream = ~std::uint64_t{0};

/// Arm the connection-drop fault: the `countdown`-th subsequent guarded
/// socket operation (1 = the very next one) severs its connection. When
/// `stream_id` is not kAnyNetStream only operations on that stream count —
/// this is what makes drop tests deterministic while a server thread is
/// doing its own guarded IO concurrently.
void arm_net_drop(std::uint64_t countdown,
                  std::uint64_t stream_id = kAnyNetStream);
void disarm_net_drop();
/// Guard, called by src/net before each socket read/write on `stream_id`.
/// True exactly once, when the armed countdown fires on a matching stream;
/// the caller must close the fd.
bool net_drop_fires(std::uint64_t stream_id);

// ---------------------------------------------------------------------------
// Injectable shard faults (consumed by src/shard's coordination paths).
//
// Two knobs, mirroring the countdown patterns above:
//   * shard_drop_heartbeat — the Nth heartbeat a shard would acknowledge is
//     silently swallowed, so the coordinator's lease tracking sees a missed
//     beat without any process actually dying.
//   * migrate_io_fail — the Nth guarded migration IO operation (checkpoint
//     persist / snapshot on session import) throws cleanly, exercising the
//     coordinator's retry-then-degrade path for a failed handoff.

/// Arm the heartbeat drop: the `countdown`-th subsequent heartbeat ack
/// (1 = the very next one) is swallowed by the shard.
void arm_shard_drop_heartbeat(std::uint64_t countdown);
void disarm_shard_drop_heartbeat();
/// Guard, called by the shard front end before acknowledging a heartbeat.
/// True exactly once, when the armed countdown fires; the caller must not
/// send the ack.
bool shard_drop_heartbeat_fires();

/// Arm the migration IO failure: the `countdown`-th subsequent guarded
/// migration operation (1 = the very next one) throws clear::Error.
void arm_migrate_io_fail(std::uint64_t countdown);
void disarm_migrate_io_fail();
/// Guard, called on session import/export durability sites. Throws
/// clear::Error("injected migration IO failure at <site>") when the
/// countdown fires; a no-op when disarmed.
void maybe_fail_migrate_io(const char* site);

}  // namespace clear::fault
