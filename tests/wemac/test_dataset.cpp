#include "wemac/dataset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "common/error.hpp"
#include "features/feature_map.hpp"

namespace clear::wemac {
namespace {

WemacConfig tiny_config(std::uint64_t seed = 1) {
  WemacConfig c;
  c.seed = seed;
  c.n_volunteers = 6;
  c.trials_per_volunteer = 4;
  c.windows_per_trial = 6;
  c.window_seconds = 8.0;
  return c;
}

TEST(Dataset, GeneratesExpectedCounts) {
  const WemacDataset d = generate_wemac(tiny_config());
  EXPECT_EQ(d.n_volunteers(), 6u);
  EXPECT_EQ(d.samples().size(), 24u);
  EXPECT_EQ(d.feature_dim(), features::kTotalFeatureCount);
  for (const Sample& s : d.samples()) {
    EXPECT_EQ(s.feature_map.extent(0), 123u);
    EXPECT_EQ(s.feature_map.extent(1), 6u);
  }
}

TEST(Dataset, PerVolunteerIndexConsistent) {
  const WemacDataset d = generate_wemac(tiny_config());
  std::size_t total = 0;
  for (std::size_t v = 0; v < d.n_volunteers(); ++v) {
    const auto& idx = d.samples_of(v);
    EXPECT_EQ(idx.size(), 4u);
    for (const std::size_t s : idx)
      EXPECT_EQ(d.samples()[s].volunteer_id, v);
    total += idx.size();
  }
  EXPECT_EQ(total, d.samples().size());
}

TEST(Dataset, LabelsMatchEmotions) {
  const WemacDataset d = generate_wemac(tiny_config());
  for (const Sample& s : d.samples())
    EXPECT_EQ(s.label, is_fear(s.emotion) ? 1 : 0);
}

TEST(Dataset, BothClassesPresentPerVolunteer) {
  const WemacDataset d = generate_wemac(tiny_config());
  for (std::size_t v = 0; v < d.n_volunteers(); ++v) {
    bool has_fear = false;
    bool has_non = false;
    for (const std::size_t s : d.samples_of(v)) {
      if (d.samples()[s].label == 1) has_fear = true;
      else has_non = true;
    }
    EXPECT_TRUE(has_fear);
    EXPECT_TRUE(has_non);
  }
}

TEST(Dataset, EveryArchetypeRepresented) {
  const WemacDataset d = generate_wemac(tiny_config());
  std::set<std::size_t> archetypes;
  for (const VolunteerMeta& m : d.volunteers())
    archetypes.insert(m.archetype_id);
  EXPECT_EQ(archetypes.size(), kNumArchetypes);
}

TEST(Dataset, DeterministicInSeed) {
  const WemacDataset a = generate_wemac(tiny_config(7));
  const WemacDataset b = generate_wemac(tiny_config(7));
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    const Tensor& ma = a.samples()[i].feature_map;
    const Tensor& mb = b.samples()[i].feature_map;
    for (std::size_t j = 0; j < ma.numel(); ++j) EXPECT_EQ(ma[j], mb[j]);
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  const WemacDataset a = generate_wemac(tiny_config(1));
  const WemacDataset b = generate_wemac(tiny_config(2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.samples().size() && !any_diff; ++i) {
    const Tensor& ma = a.samples()[i].feature_map;
    const Tensor& mb = b.samples()[i].feature_map;
    for (std::size_t j = 0; j < ma.numel(); ++j)
      if (ma[j] != mb[j]) {
        any_diff = true;
        break;
      }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  const WemacDataset d = generate_wemac(tiny_config(3));
  const std::string path =
      (fs::temp_directory_path() / "clear_dataset_test.bin").string();
  save_dataset(d, path);
  const WemacDataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.n_volunteers(), d.n_volunteers());
  ASSERT_EQ(loaded.samples().size(), d.samples().size());
  for (std::size_t i = 0; i < d.samples().size(); ++i) {
    EXPECT_EQ(loaded.samples()[i].label, d.samples()[i].label);
    EXPECT_EQ(loaded.samples()[i].volunteer_id, d.samples()[i].volunteer_id);
    const Tensor& ma = d.samples()[i].feature_map;
    const Tensor& mb = loaded.samples()[i].feature_map;
    ASSERT_TRUE(ma.same_shape(mb));
    for (std::size_t j = 0; j < ma.numel(); ++j) EXPECT_EQ(ma[j], mb[j]);
  }
  // Volunteer metadata survives too.
  for (std::size_t v = 0; v < d.n_volunteers(); ++v) {
    EXPECT_EQ(loaded.volunteers()[v].archetype_id,
              d.volunteers()[v].archetype_id);
    EXPECT_DOUBLE_EQ(loaded.volunteers()[v].profile.hr_base,
                     d.volunteers()[v].profile.hr_base);
  }
  fs::remove(path);
}

TEST(Dataset, GenerateOrLoadUsesCache) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "clear_cache_test";
  fs::remove_all(dir);
  const WemacConfig c = tiny_config(4);
  const WemacDataset first = generate_or_load(c, dir.string());
  const fs::path file = dir / ("wemac_" + c.cache_key() + ".bin");
  EXPECT_TRUE(fs::exists(file));
  const WemacDataset second = generate_or_load(c, dir.string());
  EXPECT_EQ(second.samples().size(), first.samples().size());
  fs::remove_all(dir);
}

TEST(Dataset, CorruptCacheRegenerates) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "clear_cache_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const WemacConfig c = tiny_config(5);
  const fs::path file = dir / ("wemac_" + c.cache_key() + ".bin");
  {
    std::ofstream os(file);
    os << "not a dataset";
  }
  const WemacDataset d = generate_or_load(c, dir.string());
  EXPECT_EQ(d.n_volunteers(), c.n_volunteers);
  fs::remove_all(dir);
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/dataset.bin"), Error);
}

TEST(Dataset, CacheKeyEncodesConfig) {
  WemacConfig a = tiny_config(1);
  WemacConfig b = tiny_config(2);
  EXPECT_NE(a.cache_key(), b.cache_key());
  b = tiny_config(1);
  b.windows_per_trial = 99;
  EXPECT_NE(a.cache_key(), b.cache_key());
}

TEST(Dataset, RejectsTooFewVolunteers) {
  WemacConfig c = tiny_config();
  c.n_volunteers = 2;
  EXPECT_THROW(generate_wemac(c), Error);
}

}  // namespace
}  // namespace clear::wemac
