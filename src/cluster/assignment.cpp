#include "cluster/assignment.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/obs.hpp"

namespace clear::cluster {

namespace {

double sub_centroid_score(const Point& x, const ClusterModel& model) {
  CLEAR_CHECK_MSG(!model.sub_centroids.empty(), "cluster has no sub-centroids");
  double total = 0.0;
  for (const Point& c : model.sub_centroids) total += distance(x, c);
  // Mean rather than raw sum so clusters with differing I_k compare fairly.
  return total / static_cast<double>(model.sub_centroids.size());
}

/// Reject clusters a strategy cannot score before any reduction runs. A
/// cluster with no sub-centroids (possible after a pathological k-means
/// split) would otherwise leave kObservationVote's nearest-distance at
/// numeric_limits::max() and silently skew the vote; an empty main centroid
/// would make kFlatCentroid compare distances of mismatched dimension.
void check_clusters_scorable(const GlobalClusteringResult& clustering,
                             AssignStrategy strategy) {
  for (std::size_t c = 0; c < clustering.clusters.size(); ++c) {
    const ClusterModel& model = clustering.clusters[c];
    switch (strategy) {
      case AssignStrategy::kSubCentroidSum:
      case AssignStrategy::kObservationVote:
        CLEAR_CHECK_MSG(!model.sub_centroids.empty(),
                        "cluster " << c
                                   << " has no sub-centroids; refit global "
                                      "clustering before assigning users");
        break;
      case AssignStrategy::kFlatCentroid:
        CLEAR_CHECK_MSG(!model.centroid.empty(),
                        "cluster " << c
                                   << " has an empty centroid; refit global "
                                      "clustering before assigning users");
        break;
    }
  }
}

}  // namespace

AssignmentResult assign_new_user(const std::vector<Point>& observations,
                                 const GlobalClusteringResult& clustering,
                                 AssignStrategy strategy) {
  CLEAR_OBS_SPAN("assign");
  CLEAR_OBS_COUNT("assign.users", 1);
  CLEAR_OBS_COUNT("assign.observations", observations.size());
  CLEAR_CHECK_MSG(!observations.empty(), "new user has no observations");
  CLEAR_CHECK_MSG(!clustering.clusters.empty(), "clustering has no clusters");
  check_clusters_scorable(clustering, strategy);
  // A single NaN would poison every centroid distance and silently send the
  // user to cluster 0; reject the observation set up front instead.
  for (std::size_t i = 0; i < observations.size(); ++i)
    for (std::size_t d = 0; d < observations[i].size(); ++d)
      CLEAR_CHECK_MSG(std::isfinite(observations[i][d]),
                      "non-finite value in new-user observation "
                          << i << ", dimension " << d
                          << "; sanitize the signal before assignment");
  const std::size_t k = clustering.clusters.size();
  AssignmentResult result;
  result.scores.assign(k, 0.0);

  switch (strategy) {
    case AssignStrategy::kSubCentroidSum: {
      const Point x = user_representation(observations);
      for (std::size_t c = 0; c < k; ++c)
        result.scores[c] = sub_centroid_score(x, clustering.clusters[c]);
      break;
    }
    case AssignStrategy::kFlatCentroid: {
      const Point x = user_representation(observations);
      for (std::size_t c = 0; c < k; ++c)
        result.scores[c] = distance(x, clustering.clusters[c].centroid);
      break;
    }
    case AssignStrategy::kObservationVote: {
      // Each observation votes for the cluster whose *nearest* sub-centroid
      // is closest; score is the negative vote count (lower = better), with
      // mean distance as tie-breaker encoded in a small fractional term.
      std::vector<double> votes(k, 0.0);
      std::vector<double> dist_sum(k, 0.0);
      for (const Point& obs : observations) {
        std::size_t best_c = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
          double d = std::numeric_limits<double>::max();
          for (const Point& sc : clustering.clusters[c].sub_centroids)
            d = std::min(d, distance(obs, sc));
          dist_sum[c] += d;
          if (d < best_d) {
            best_d = d;
            best_c = c;
          }
        }
        votes[best_c] += 1.0;
      }
      const double n = static_cast<double>(observations.size());
      for (std::size_t c = 0; c < k; ++c)
        result.scores[c] = -votes[c] + 1e-6 * dist_sum[c] / n;
      break;
    }
  }

  std::size_t best = 0;
  for (std::size_t c = 1; c < k; ++c)
    if (result.scores[c] < result.scores[best]) best = c;
  result.cluster = best;
  return result;
}

}  // namespace clear::cluster
