#include "common/csv.hpp"

#include <charconv>
#include <fstream>

#include "common/error.hpp"

namespace clear::csv {

Row parse_line(const std::string& line) {
  Row fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

std::string format_line(const Row& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    const std::string& f = row[i];
    if (f.find_first_of(",\"") != std::string::npos) {
      out += '"';
      for (const char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

std::vector<Row> read_file(const std::string& path) {
  std::ifstream in(path);
  CLEAR_CHECK_MSG(in.good(), "cannot open CSV file: " << path);
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_line(line));
  }
  return rows;
}

void write_file(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  CLEAR_CHECK_MSG(out.good(), "cannot open CSV file for writing: " << path);
  for (const Row& row : rows) out << format_line(row) << '\n';
  CLEAR_CHECK_MSG(out.good(), "IO error writing CSV file: " << path);
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

}  // namespace clear::csv
