#include "nn/checkpoint.hpp"

#include <fstream>

#include "common/error.hpp"
#include "tensor/serialize.hpp"

namespace clear::nn {

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x434C454152434B50ull;  // "CLEARCKP"
}

void save_checkpoint(std::ostream& os, Sequential& model) {
  const std::vector<Param*> params = model.parameters();
  io::write_u64(os, kCheckpointMagic);
  io::write_u64(os, params.size());
  for (const Param* p : params) {
    io::write_string(os, p->name);
    io::write_tensor(os, p->value);
  }
}

void save_checkpoint_file(const std::string& path, Sequential& model) {
  std::ofstream os(path, std::ios::binary);
  CLEAR_CHECK_MSG(os.good(), "cannot open checkpoint for writing: " << path);
  save_checkpoint(os, model);
  CLEAR_CHECK_MSG(os.good(), "IO error writing checkpoint: " << path);
}

void load_checkpoint(std::istream& is, Sequential& model) {
  CLEAR_CHECK_MSG(io::read_u64(is) == kCheckpointMagic,
                  "bad checkpoint magic");
  const std::vector<Param*> params = model.parameters();
  const std::uint64_t count = io::read_u64(is);
  CLEAR_CHECK_MSG(count == params.size(),
                  "checkpoint parameter count mismatch: file has "
                      << count << ", model has " << params.size());
  for (Param* p : params) {
    const std::string name = io::read_string(is);
    CLEAR_CHECK_MSG(name == p->name, "checkpoint parameter name mismatch: "
                                         << name << " vs " << p->name);
    Tensor t = io::read_tensor(is);
    CLEAR_CHECK_MSG(t.same_shape(p->value),
                    "checkpoint shape mismatch for " << name << ": "
                        << t.shape_str() << " vs " << p->value.shape_str());
    p->value = std::move(t);
  }
}

void load_checkpoint_file(const std::string& path, Sequential& model) {
  std::ifstream is(path, std::ios::binary);
  CLEAR_CHECK_MSG(is.good(), "cannot open checkpoint: " << path);
  load_checkpoint(is, model);
}

std::vector<Tensor> snapshot_parameters(Sequential& model) {
  std::vector<Tensor> snap;
  for (const Param* p : model.parameters()) snap.push_back(p->value);
  return snap;
}

void restore_parameters(Sequential& model, const std::vector<Tensor>& snap) {
  const std::vector<Param*> params = model.parameters();
  CLEAR_CHECK_MSG(params.size() == snap.size(),
                  "snapshot parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    CLEAR_CHECK_MSG(snap[i].same_shape(params[i]->value),
                    "snapshot shape mismatch");
    params[i]->value = snap[i];
  }
}

}  // namespace clear::nn
