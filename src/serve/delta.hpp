// Delta checkpoints: per-user personalization stored as a diff against the
// cluster (or general) base model, packed in a "CLRART01" artifact
// container (src/artifact/store.hpp; docs/FORMATS.md is the normative
// spec).
//
// The correctness oracle is exact fp32 reconstruction: decode() rebuilds
// the *byte-identical* full checkpoint blob the fine-tune produced, and
// verifies it against a stored CRC-32 + length before returning — so a
// delta-stored engine is bit-identical to the full-checkpoint path by
// construction, and encode() additionally round-trips its own output
// before committing to it (returning nullopt, i.e. "store the full blob",
// on any mismatch or when the delta would not be smaller).
//
// Per-tensor encodings (chosen independently per tensor, smallest wins):
//   kSame     base and fine-tuned tensor are bitwise identical (typical for
//             frozen layers at fp32).
//   kRaw      raw f32 words — the guaranteed fallback.
//   kUlpDelta residual between the f32 bit patterns of fine-tuned and base
//             values, zigzag-varint packed behind a nonzero bitmap. Small
//             optimizer steps move a weight few ULPs, so residuals are
//             short even though nearly every unfrozen weight changes.
//   kHalf     every fine-tuned value is exactly fp16-representable (the
//             fp16 serving tier projects weights each step): residual
//             between half bit patterns vs. the fp16-rounded base.
//   kGrid8    every fine-tuned value sits exactly on a symmetric int8 grid
//             scale*q (the int8 serving tier): residual between grid
//             indices vs. the base quantized at the recovered scale, plus a
//             sign-of-zero fixup stream (the SIMD fake-quant kernel emits
//             -0.0f where scalar dequantization gives +0.0f). Most
//             fine-tune steps are smaller than one grid step, so residuals
//             are almost all zero — this is where delta storage shines.
//             Tensors whose residuals come out dense (unfrozen layers)
//             switch to a static-rANS entropy-coded mode per tensor,
//             whichever of the two is smaller.
//
// Blocks inside the container: "delta.meta" (codec version, base reference
// + CRC, reconstruction length + CRC), "delta.tensors" (per-tensor
// records), "delta.values" (concatenated payloads).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace clear::serve::delta {

/// Which base checkpoint a delta was encoded against. The base's length and
/// CRC-32 are stored alongside, so applying a delta to a drifted base fails
/// loudly instead of reconstructing garbage.
struct BaseRef {
  enum class Kind : std::uint8_t { kCluster = 0, kGeneral = 1 };
  Kind kind = Kind::kCluster;
  std::uint64_t id = 0;  ///< Cluster index (kCluster only).
};

struct EncodeStats {
  std::size_t tensors = 0;
  std::size_t same = 0;
  std::size_t raw = 0;
  std::size_t ulp = 0;
  std::size_t half = 0;
  std::size_t grid8 = 0;
  std::size_t delta_bytes = 0;  ///< Encoded container size.
  std::size_t full_bytes = 0;   ///< Input checkpoint size.
};

/// Encode `ft_blob` (an nn checkpoint, v1 or v2) as a delta artifact
/// against `base_blob`. Returns nullopt — "persist the full blob" — when
/// the models do not line up tensor-for-tensor, the delta would not be
/// smaller than the full checkpoint, or the mandatory self round-trip does
/// not reproduce `ft_blob` byte-identically. Never throws for encodability
/// reasons. `stats` (optional) is filled on success.
std::optional<std::string> encode(const std::string& base_blob,
                                  const BaseRef& base,
                                  const std::string& ft_blob,
                                  EncodeStats* stats = nullptr);

/// Magic sniff: true when `blob` is a CLRART01 container holding a delta
/// checkpoint (a full/legacy nn checkpoint blob returns false).
bool is_delta(const std::string& blob);

/// Base reference of a delta blob (throws clear::Error when `blob` is not
/// a well-formed delta artifact).
BaseRef base_of(const std::string& blob);

/// Reconstruct the byte-identical full checkpoint blob. Throws clear::Error
/// with an addressed message on container damage (block index + offset),
/// base mismatch (stored vs. computed base CRC), or a reconstruction that
/// fails the stored full-blob CRC.
std::string decode(const std::string& delta_blob,
                   const std::string& base_blob);

}  // namespace clear::serve::delta
