// Ablation E — architecture choice (paper §III-A-3: the CNN-LSTM
// "effectively integrates feature maps' global and sequential information,
// ultimately enhancing classification accuracy").
//
// Compares three architectures under the identical subject-independent
// protocol (the Table I "General model" LOSO over x users):
//   CNN-LSTM   — the paper's model,
//   CNN-only   — same conv stack, dense head (the Sun et al. [18] style),
//   LSTM-only  — raw feature columns as a sequence, no spatial features.
//
// Flags: --quick --users=N --epochs=N --seed=N --cache-dir=DIR
#include "bench_common.hpp"
#include "clear/evaluation.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  config.general_model_users = static_cast<std::size_t>(
      args.get_int("users", static_cast<std::int64_t>(
                                config.general_model_users)));
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);

  std::printf("Ablation: architecture (subject-independent LOSO over %zu "
              "users)\n",
              config.general_model_users);

  struct Arch {
    const char* name;
    nn::ModelFactory factory;
  };
  const Arch archs[] = {
      {"CNN-LSTM (paper)", nn::build_cnn_lstm},
      {"CNN-only ([18]-style)", nn::build_cnn_only},
      {"LSTM-only", nn::build_lstm_only},
  };

  AsciiTable table({"Architecture", "params", "Accuracy", "STD", "F1",
                    "STD F1"});
  table.set_title("Architecture ablation under the General-model protocol");
  for (const Arch& arch : archs) {
    CLEAR_INFO("training " << arch.name << "...");
    Rng rng(1);
    auto probe = arch.factory(config.model, rng);
    const std::size_t params = probe->parameter_count();
    const core::Aggregate agg =
        core::run_general_model(dataset, config, arch.factory);
    table.add_row({arch.name, std::to_string(params),
                   AsciiTable::num(agg.accuracy.mean),
                   AsciiTable::num(agg.accuracy.stddev),
                   AsciiTable::num(agg.f1.mean),
                   AsciiTable::num(agg.f1.stddev)});
  }
  std::printf("\n");
  table.print();
  return 0;
}
