// 2-D feature-map construction (paper §III-A-1).
//
// Raw multi-modal windows are reduced to 123-dimensional feature vectors
// (34 GSR + 84 BVP + 5 SKT); W consecutive windows are stacked into a matrix
// M ∈ R^{F×W} which downstream code treats as a one-channel image. A
// FeatureNormalizer (z-score per feature, fitted on training users only)
// makes the heterogeneous feature scales comparable before clustering and
// CNN training.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace clear::features {

inline constexpr std::size_t kTotalFeatureCount = 123;  // 34 + 84 + 5.

/// One multi-modal analysis window of raw signals.
struct PhysioWindow {
  std::vector<double> bvp;  ///< Blood volume pulse samples.
  std::vector<double> gsr;  ///< Galvanic skin response samples.
  std::vector<double> skt;  ///< Skin temperature samples.
  double bvp_rate = 64.0;   ///< [Hz]
  double gsr_rate = 8.0;    ///< [Hz]
  double skt_rate = 4.0;    ///< [Hz]
};

/// All 123 feature names in extraction order (GSR block, BVP block, SKT
/// block).
const std::vector<std::string>& all_feature_names();

/// Extract the full 123-feature vector from one window.
std::vector<double> extract_window_features(const PhysioWindow& window);

/// Stack W per-window feature vectors (each length F) into M ∈ R^{F×W}.
Tensor build_feature_map(const std::vector<std::vector<double>>& columns);

/// Column-mean feature vector of a feature map (used for clustering, where
/// each user/map is summarized by one F-dimensional point).
std::vector<double> feature_map_mean(const Tensor& map);

/// Per-feature z-score normalizer. Fit on training data; apply anywhere.
class FeatureNormalizer {
 public:
  FeatureNormalizer() = default;

  /// Fit from a set of feature vectors (each of identical length F).
  void fit(const std::vector<std::vector<double>>& vectors);

  /// Fit from feature maps (each [F, W]; every column is one observation).
  void fit_maps(const std::vector<Tensor>& maps);

  /// Reconstruct a normalizer from stored moments (artifact deserialization).
  static FeatureNormalizer from_moments(std::vector<double> mean,
                                        std::vector<double> stddev);

  bool fitted() const { return !mean_.empty(); }
  std::size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

  /// z-score one vector in place.
  void apply(std::vector<double>& v) const;
  /// z-score every column of a feature map in place.
  void apply_map(Tensor& map) const;

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace clear::features
