#include "clear/evaluation.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "cluster/validity.hpp"

namespace clear::core {

void Aggregate::add(const nn::BinaryMetrics& m) {
  add_percent(m.accuracy * 100.0, m.f1 * 100.0);
}

void Aggregate::add_percent(double acc_pct, double f1_pct) {
  fold_accuracy.push_back(acc_pct);
  fold_f1.push_back(f1_pct);
}

void Aggregate::finalize() {
  accuracy = nn::mean_std(fold_accuracy);
  f1 = nn::mean_std(fold_f1);
}

namespace {

/// Train a model on `train_samples` and evaluate it on `test_samples`,
/// normalizing with `normalizer` (fitted by the caller on training users).
nn::BinaryMetrics train_and_test(const wemac::WemacDataset& dataset,
                                 const features::FeatureNormalizer& normalizer,
                                 const std::vector<std::size_t>& train_samples,
                                 const std::vector<std::size_t>& test_samples,
                                 const ClearConfig& config,
                                 std::uint64_t seed_salt,
                                 std::vector<Tensor>& normalized_storage,
                                 std::unique_ptr<nn::Sequential>* model_out,
                                 nn::ModelFactory factory = nn::build_cnn_lstm) {
  normalized_storage = normalize_all_maps(dataset, normalizer);
  const nn::MapDataset train_set =
      make_map_dataset(dataset, normalized_storage, train_samples);
  const nn::MapDataset test_set =
      make_map_dataset(dataset, normalized_storage, test_samples);
  Rng rng(config.seed ^ (seed_salt * 0xA24BAED4963EE407ull));
  auto model = factory(config.model, rng);
  nn::TrainConfig tc = config.train;
  tc.seed = config.seed ^ seed_salt;
  nn::train_classifier(*model, train_set, tc);
  const nn::BinaryMetrics metrics = nn::evaluate(*model, test_set);
  if (model_out) *model_out = std::move(model);
  return metrics;
}

std::vector<std::size_t> samples_of_users(
    const wemac::WemacDataset& dataset,
    const std::vector<std::size_t>& users) {
  std::vector<std::size_t> out;
  for (const std::size_t u : users)
    for (const std::size_t s : dataset.samples_of(u)) out.push_back(s);
  return out;
}

}  // namespace

std::size_t dominant_archetype(const wemac::WemacDataset& dataset,
                               const std::vector<std::size_t>& fitted_users,
                               const cluster::ClusterModel& cluster) {
  std::vector<std::size_t> counts(wemac::kNumArchetypes, 0);
  for (const std::size_t member : cluster.members) {
    CLEAR_CHECK_MSG(member < fitted_users.size(),
                    "cluster member index out of range");
    const std::size_t user = fitted_users[member];
    ++counts[dataset.volunteers()[user].archetype_id];
  }
  std::size_t best = 0;
  for (std::size_t a = 1; a < counts.size(); ++a)
    if (counts[a] > counts[best]) best = a;
  return best;
}

ClValidationResult run_cl_validation(const wemac::WemacDataset& dataset,
                                     const ClearConfig& config) {
  ClValidationResult result;
  const std::size_t n_users = dataset.n_volunteers();
  std::vector<std::size_t> all_users(n_users);
  for (std::size_t u = 0; u < n_users; ++u) all_users[u] = u;

  // GC on the complete population (the paper's CL protocol).
  const features::FeatureNormalizer normalizer =
      fit_normalizer(dataset, all_users);
  const std::vector<Tensor> normalized = normalize_all_maps(dataset, normalizer);
  std::vector<std::vector<cluster::Point>> user_obs(n_users);
  std::vector<cluster::Point> user_points(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    user_obs[u] = map_observations(normalized, dataset.samples_of(u));
    user_points[u] = cluster::user_representation(user_obs[u]);
  }
  Rng gc_rng(config.seed ^ 0xC1);
  const cluster::GlobalClusteringResult gc =
      cluster::global_clustering(user_obs, config.gc, gc_rng);
  for (const auto& c : gc.clusters)
    result.cluster_sizes.push_back(c.members.size());
  result.silhouette =
      cluster::silhouette(user_points, gc.user_cluster, config.gc.k);

  // Intra-cluster LOSO. Folds are independent — each derives its RNG from
  // config.seed and a fold-specific salt — so they can run concurrently.
  // Flatten the (cluster, test_user) pairs first, then merge outcomes in
  // the original fold order so aggregates match the serial sweep bit for
  // bit at any thread count.
  struct ClFold {
    std::size_t k = 0;
    std::size_t test_user = 0;
    const std::vector<std::size_t>* members = nullptr;
    const std::vector<std::size_t>* outside_samples = nullptr;
  };
  std::vector<std::vector<std::size_t>> outside_by_cluster(config.gc.k);
  std::vector<ClFold> fold_list;
  for (std::size_t k = 0; k < config.gc.k; ++k) {
    const std::vector<std::size_t>& members = gc.clusters[k].members;
    if (members.size() < 2) {
      CLEAR_WARN("cluster " << k << " too small for intra-cluster LOSO");
      continue;
    }
    // Users outside this cluster, for the robustness test.
    std::vector<std::size_t> outside;
    for (std::size_t u = 0; u < n_users; ++u)
      if (gc.user_cluster[u] != k) outside.push_back(u);
    outside_by_cluster[k] = samples_of_users(dataset, outside);
    for (const std::size_t test_user : members)
      fold_list.push_back(
          {k, test_user, &members, &outside_by_cluster[k]});
  }

  struct ClOutcome {
    nn::BinaryMetrics cl;
    bool has_rt = false;
    nn::BinaryMetrics rt;
  };
  std::vector<ClOutcome> outcomes(fold_list.size());
  parallel_for(0, fold_list.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t f = lo; f < hi; ++f) {
      const ClFold& fold = fold_list[f];
      std::vector<std::size_t> train_users;
      for (const std::size_t m : *fold.members)
        if (m != fold.test_user) train_users.push_back(m);
      const features::FeatureNormalizer fold_norm =
          fit_normalizer(dataset, train_users);
      std::vector<Tensor> storage;
      std::unique_ptr<nn::Sequential> model;
      outcomes[f].cl = train_and_test(
          dataset, fold_norm, samples_of_users(dataset, train_users),
          std::vector<std::size_t>(dataset.samples_of(fold.test_user)),
          config, 0x10000 + fold.k * 1000 + fold.test_user, storage, &model);
      // RT CL: same fold model on out-of-cluster users.
      if (!fold.outside_samples->empty()) {
        const nn::MapDataset rt_set =
            make_map_dataset(dataset, storage, *fold.outside_samples);
        outcomes[f].rt = nn::evaluate(*model, rt_set);
        outcomes[f].has_rt = true;
      }
    }
  });
  for (const ClOutcome& o : outcomes) {
    result.cl.add(o.cl);
    if (o.has_rt) result.rt.add(o.rt);
  }
  result.cl.finalize();
  result.rt.finalize();
  return result;
}

Aggregate run_general_model(const wemac::WemacDataset& dataset,
                            const ClearConfig& config,
                            nn::ModelFactory factory) {
  Aggregate agg;
  const std::size_t n_users = dataset.n_volunteers();
  CLEAR_CHECK_MSG(config.general_model_users >= 2 &&
                      config.general_model_users <= n_users,
                  "bad general_model_users");
  Rng rng(config.seed ^ 0x6E6E);
  const std::vector<std::size_t> perm = rng.permutation(n_users);
  std::vector<std::size_t> chosen(perm.begin(),
                                  perm.begin() + config.general_model_users);
  // Independent folds (per-user seed salts); merge in the original order.
  std::vector<nn::BinaryMetrics> outcomes(chosen.size());
  parallel_for(0, chosen.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t f = lo; f < hi; ++f) {
      const std::size_t test_user = chosen[f];
      std::vector<std::size_t> train_users;
      for (const std::size_t u : chosen)
        if (u != test_user) train_users.push_back(u);
      const features::FeatureNormalizer fold_norm =
          fit_normalizer(dataset, train_users);
      std::vector<Tensor> storage;
      outcomes[f] = train_and_test(
          dataset, fold_norm, samples_of_users(dataset, train_users),
          std::vector<std::size_t>(dataset.samples_of(test_user)), config,
          0x20000 + test_user, storage, nullptr, factory);
    }
  });
  for (const nn::BinaryMetrics& m : outcomes) agg.add(m);
  agg.finalize();
  return agg;
}

ClearValidationResult run_clear_validation(const wemac::WemacDataset& dataset,
                                           const ClearConfig& config,
                                           const ClearOptions& options) {
  ClearValidationResult result;
  const std::size_t n_users = dataset.n_volunteers();
  const std::size_t folds =
      options.max_folds > 0 ? std::min(options.max_folds, n_users) : n_users;

  // Per-fold outcomes, filled concurrently (every fold salts its RNGs with
  // vx + 1, so fold results never depend on execution order) and merged
  // below in ascending fold order — aggregates are bit-identical to the
  // serial sweep at any thread count. With multiple threads the progress
  // callback may fire out of fold order; it is serialized by a mutex.
  struct FoldOutcome {
    nn::BinaryMetrics no_ft;
    bool has_rt = false;
    double rt_acc = 0.0;
    double rt_f1 = 0.0;
    bool has_ft = false;
    nn::BinaryMetrics with_ft;
    bool ca_match = false;
    ClearFoldArtifacts artifacts;
  };
  std::vector<FoldOutcome> outcomes(folds);
  std::mutex progress_mutex;

  parallel_for(0, folds, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t vx = lo; vx < hi; ++vx) {
      CLEAR_OBS_SPAN("fold");
      CLEAR_OBS_COUNT("loso.folds", 1);
      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(vx, folds);
      }
      FoldOutcome& out = outcomes[vx];
      // Fit the pipeline without V_x. The general fallback model is a
      // deployment artifact, not part of the Table I protocol — skip it
      // (its training runs on independent RNG streams, so the metrics
      // would be bit-identical either way; this only saves time).
      ClearConfig fold_config = config;
      fold_config.general_fallback = false;
      std::vector<std::size_t> train_users;
      for (std::size_t u = 0; u < n_users; ++u)
        if (u != vx) train_users.push_back(u);
      ClearPipeline pipeline(fold_config);
      {
        // Phase CL: cluster + per-cluster pre-training on everyone but V_x.
        CLEAR_OBS_SPAN("phase.cl");
        pipeline.fit(dataset, train_users, /*seed_salt=*/vx + 1);
      }

      // Cold-start split and unsupervised assignment (phase CA).
      const UserSplit split = split_user_samples(
          dataset, vx, config.ca_fraction, config.ft_fraction);
      const std::vector<Tensor> ca_maps =
          pipeline.normalize_samples(dataset, split.ca);
      std::vector<cluster::Point> ca_obs;
      for (const Tensor& m : ca_maps)
        ca_obs.push_back(features::feature_map_mean(m));
      std::optional<cluster::AssignmentResult> ca_result;
      {
        CLEAR_OBS_SPAN("phase.ca");
        ca_result = pipeline.assign_observations(ca_obs, options.strategy);
      }
      const cluster::AssignmentResult& assignment = *ca_result;
      const std::size_t k = assignment.cluster;

      // CA consistency diagnostic (ground truth never feeds the algorithm).
      const std::size_t truth = dataset.volunteers()[vx].archetype_id;
      out.ca_match = dominant_archetype(dataset, train_users,
                                        pipeline.clustering().clusters[k]) ==
                     truth;

      // CLEAR w/o FT.
      out.no_ft = pipeline.evaluate_on(dataset, k, split.test);

      // RT CLEAR: mean over the other clusters' models.
      std::vector<double> rt_acc;
      std::vector<double> rt_f1;
      for (std::size_t other = 0; other < pipeline.n_clusters(); ++other) {
        if (other == k) continue;
        const nn::BinaryMetrics m =
            pipeline.evaluate_on(dataset, other, split.test);
        rt_acc.push_back(m.accuracy * 100.0);
        rt_f1.push_back(m.f1 * 100.0);
      }
      if (!rt_acc.empty()) {
        out.has_rt = true;
        out.rt_acc = nn::mean_std(rt_acc).mean;
        out.rt_f1 = nn::mean_std(rt_f1).mean;
      }

      // CLEAR w FT (phase FT).
      if (options.run_finetune) {
        CLEAR_OBS_SPAN("phase.ft");
        std::unique_ptr<nn::Sequential> personal =
            pipeline.clone_cluster_model(k);
        pipeline.fine_tune_on(*personal, dataset, split.ft,
                              /*seed_salt=*/vx + 1);
        const std::vector<Tensor> test_maps =
            pipeline.normalize_samples(dataset, split.test);
        nn::MapDataset test_set;
        for (std::size_t i = 0; i < test_maps.size(); ++i) {
          test_set.maps.push_back(&test_maps[i]);
          test_set.labels.push_back(static_cast<std::size_t>(
              dataset.samples()[split.test[i]].label));
        }
        out.has_ft = true;
        out.with_ft = nn::evaluate(*personal, test_set);
      }

      if (options.keep_artifacts) {
        ClearFoldArtifacts art;
        art.test_user = vx;
        art.assigned_cluster = k;
        art.normalizer = pipeline.normalizer();
        art.clustering = pipeline.clustering();
        art.fitted_users = train_users;
        for (std::size_t c = 0; c < pipeline.n_clusters(); ++c)
          art.checkpoints.push_back(pipeline.serialize_cluster_model(c));
        art.split = split;
        out.artifacts = std::move(art);
      }
    }
  });

  // Ordered merge.
  std::size_t ca_matches = 0;
  for (std::size_t vx = 0; vx < folds; ++vx) {
    FoldOutcome& out = outcomes[vx];
    if (out.ca_match) ++ca_matches;
    result.no_ft.add(out.no_ft);
    if (out.has_rt) result.rt.add_percent(out.rt_acc, out.rt_f1);
    if (out.has_ft) result.with_ft.add(out.with_ft);
    if (options.keep_artifacts)
      result.artifacts.push_back(std::move(out.artifacts));
  }

  result.no_ft.finalize();
  result.rt.finalize();
  result.with_ft.finalize();
  result.ca_consistency =
      folds ? static_cast<double>(ca_matches) / static_cast<double>(folds)
            : 0.0;
  return result;
}

}  // namespace clear::core
