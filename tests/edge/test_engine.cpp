#include "edge/engine.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::edge {
namespace {

nn::CnnLstmConfig tiny_config() {
  nn::CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 3;
  c.lstm_hidden = 5;
  c.dropout = 0.0;
  return c;
}

struct Fixture {
  std::vector<Tensor> maps;
  nn::MapDataset data;

  explicit Fixture(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      Tensor m({16, 8});
      const int label = static_cast<int>(i % 2);
      for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 8; ++c)
          m.at2(r, c) = static_cast<float>(
              rng.normal(label && r < 8 ? 1.2 : 0.0, 0.5));
      maps.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < n; ++i) {
      data.maps.push_back(&maps[i]);
      data.labels.push_back(i % 2);
    }
  }

  std::vector<const Tensor*> map_ptrs() const { return data.maps; }
};

std::unique_ptr<nn::Sequential> make_model(std::uint64_t seed) {
  Rng rng(seed);
  return nn::build_cnn_lstm(tiny_config(), rng);
}

TEST(EdgeEngine, Fp32MatchesRawModel) {
  Fixture f(6, 1);
  auto model = make_model(2);
  model->set_training(false);
  const Tensor batch = nn::stack_batch(f.data.maps, {0, 1, 2});
  const Tensor expected = model->forward(batch);

  auto copy = make_model(2);
  EngineConfig ec;
  ec.precision = Precision::kFp32;
  EdgeEngine engine(std::move(copy), ec);
  const Tensor got = engine.forward(batch);
  for (std::size_t i = 0; i < expected.numel(); ++i)
    EXPECT_EQ(got[i], expected[i]);
}

TEST(EdgeEngine, Fp16CloseToFp32) {
  Fixture f(8, 3);
  EngineConfig fp32;
  EdgeEngine ref(make_model(4), fp32);
  EngineConfig fp16;
  fp16.precision = Precision::kFp16;
  EdgeEngine half(make_model(4), fp16);
  const Tensor batch = nn::stack_batch(f.data.maps, {0, 1, 2, 3});
  const Tensor a = ref.forward(batch);
  const Tensor b = half.forward(batch);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a[i], b[i], 0.05f);
}

TEST(EdgeEngine, Int8RequiresCalibration) {
  Fixture f(4, 5);
  EngineConfig ec;
  ec.precision = Precision::kInt8;
  EdgeEngine engine(make_model(6), ec);
  const Tensor batch = nn::stack_batch(f.data.maps, {0});
  EXPECT_THROW(engine.forward(batch), Error);
  engine.calibrate(f.map_ptrs());
  EXPECT_TRUE(engine.calibrated());
  EXPECT_NO_THROW(engine.forward(batch));
}

TEST(EdgeEngine, Int8OutputsCorrelateWithFp32) {
  Fixture f(10, 7);
  EngineConfig fp32;
  EdgeEngine ref(make_model(8), fp32);
  EngineConfig int8;
  int8.precision = Precision::kInt8;
  EdgeEngine quant(make_model(8), int8);
  quant.calibrate(f.map_ptrs());
  const Tensor batch = nn::stack_batch(f.data.maps, {0, 1, 2, 3, 4});
  const Tensor a = ref.forward(batch);
  const Tensor b = quant.forward(batch);
  // Same argmax on most rows (int8 error is bounded, logits differ by class).
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.extent(0); ++i) {
    const bool ca = a.at2(i, 1) > a.at2(i, 0);
    const bool cb = b.at2(i, 1) > b.at2(i, 0);
    if (ca == cb) ++agree;
  }
  EXPECT_GE(agree, 4u);
}

TEST(EdgeEngine, ActivationParamsCoverEveryStage) {
  Fixture f(4, 9);
  EngineConfig ec;
  ec.precision = Precision::kInt8;
  EdgeEngine engine(make_model(10), ec);
  engine.calibrate(f.map_ptrs());
  EXPECT_EQ(engine.activation_params().size(), engine.model().size() + 1);
  for (const QuantParams& p : engine.activation_params())
    EXPECT_GT(p.scale, 0.0f);
}

TEST(EdgeEngine, CalibrateIsNoOpForFp32) {
  Fixture f(4, 11);
  EngineConfig ec;
  EdgeEngine engine(make_model(12), ec);
  engine.calibrate(f.map_ptrs());
  EXPECT_FALSE(engine.calibrated());
}

TEST(EdgeEngine, WeightsActuallyQuantizedForInt8) {
  auto model = make_model(13);
  const Tensor before = model->parameters()[0]->value;
  EngineConfig ec;
  ec.precision = Precision::kInt8;
  EdgeEngine engine(std::move(model), ec);
  const Tensor& after = engine.model().parameters()[0]->value;
  // At most 255 distinct values per tensor after symmetric int8.
  std::set<float> distinct(after.flat().begin(), after.flat().end());
  EXPECT_LE(distinct.size(), 255u);
  // And they differ from the raw weights somewhere.
  bool changed = false;
  for (std::size_t i = 0; i < before.numel(); ++i)
    if (before[i] != after[i]) changed = true;
  EXPECT_TRUE(changed);
}

TEST(EdgeEngine, PredictAndEvaluateShapes) {
  Fixture f(10, 14);
  EngineConfig ec;
  EdgeEngine engine(make_model(15), ec);
  const auto preds = engine.predict(f.data, 4);
  EXPECT_EQ(preds.size(), 10u);
  const nn::BinaryMetrics m = engine.evaluate(f.data, 4);
  EXPECT_EQ(m.count(), 10u);
}

TEST(EdgeEngine, PrecisionNames) {
  EXPECT_STREQ(precision_name(Precision::kFp32), "fp32");
  EXPECT_STREQ(precision_name(Precision::kFp16), "fp16");
  EXPECT_STREQ(precision_name(Precision::kInt8), "int8");
}

TEST(EdgeEngine, NullModelRejected) {
  EngineConfig ec;
  EXPECT_THROW(EdgeEngine(nullptr, ec), Error);
}

}  // namespace
}  // namespace clear::edge
