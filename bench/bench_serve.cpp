// bench_serve — CLEAR-Serve throughput on a synthetic multi-user workload.
//
// Three configurations replay the same request stream:
//
//   stateless  — batch cap 1, 1 thread, 1-byte checkpoint cache: every
//                routing flip re-materializes the engine from its blob.
//                This is the sequential baseline — what an edge gateway
//                without the serve subsystem does (load weights, run one
//                window, throw the engine away).
//   cached     — batch cap 1, 1 thread, full cache: isolates the LRU
//                checkpoint cache's contribution.
//   batched    — batch cap 8, --batch-threads, full cache: the whole
//                subsystem (cache + micro-batching on the parallel runtime).
//   journaled  — batched plus the write-ahead session journal (compacting
//                snapshots included): what durability costs on the serving
//                fast path. Gated at < 10% throughput regression vs
//                batched.
//
// All four produce identical predictions (the virtual clock makes batch
// composition a pure function of the request stream); only wall-clock
// throughput differs. Fine-tuning and degraded spans are disabled so the
// measurement is pure inference serving.
//
// Flags: --users=32 --requests=48 --wl-seed=7 --max-batch=8
//        --batch-threads=4 --iters=3 [dataset flags: --seed --volunteers
//        --trials --epochs]
//        --json=FILE  additionally write the three configurations' timings
//                     and speedups as machine-readable JSON (the serve row
//                     of the perf trajectory, next to BENCH_kernels.json)
//
// Target: batched throughput >= 2x the stateless sequential baseline at
// batch cap 8 (exit 1 when missed).
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "clear/pipeline.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

using namespace clear;

namespace {

struct RunResult {
  double seconds = 0.0;
  std::size_t ok = 0;
};

RunResult run_once(const serve::ModelSource& source, serve::ServeConfig sc,
                   std::vector<serve::ServeRequest> requests,
                   std::size_t threads) {
  NumThreadsGuard guard(threads);
  // A journaled run needs a fresh directory each time (the journal refuses
  // to clobber recoverable state); the timed region includes every append
  // and compacting snapshot — that is the overhead being measured.
  const bool journaled = !sc.journal.directory.empty();
  if (journaled) std::filesystem::remove_all(sc.journal.directory);
  serve::Server server(source, std::move(sc));
  if (journaled) server.open_journal();
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<serve::ServeResult> results =
      server.run(std::move(requests));
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const serve::ServeResult& res : results)
    r.ok += res.status == serve::ServeResult::Status::kOk;
  return r;
}

RunResult best_of(std::size_t iters, const serve::ModelSource& source,
                  const serve::ServeConfig& sc,
                  const std::vector<serve::ServeRequest>& requests,
                  std::size_t threads) {
  RunResult best;
  for (std::size_t i = 0; i < iters; ++i) {
    const RunResult r = run_once(source, sc, requests, threads);
    if (i == 0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);

    core::ClearConfig config = core::default_config();
    config.data.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    config.data.n_volunteers =
        static_cast<std::size_t>(args.get_int("volunteers", 8));
    config.data.trials_per_volunteer =
        static_cast<std::size_t>(args.get_int("trials", 5));
    config.train.epochs =
        static_cast<std::size_t>(args.get_int("epochs", 2));
    config.finalize();

    const wemac::WemacDataset d = wemac::generate_wemac(config.data);
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < d.n_volunteers(); ++u)
      users.push_back(u);
    std::printf("fitting pipeline on %zu of %zu volunteers...\n",
                users.size(), d.n_volunteers());
    std::fflush(stdout);
    core::ClearPipeline pipeline(config);
    pipeline.fit(d, users);
    const serve::ModelSource source =
        serve::ModelSource::from_pipeline(pipeline);

    serve::WorkloadConfig wc;
    wc.n_users = static_cast<std::size_t>(args.get_int("users", 32));
    wc.requests_per_user =
        static_cast<std::size_t>(args.get_int("requests", 48));
    wc.seed = static_cast<std::uint64_t>(args.get_int("wl-seed", 7));
    wc.labeled_fraction = 0.0;
    wc.degraded_user_fraction = 0.0;
    const std::vector<serve::ServeRequest> requests =
        serve::make_workload(d, wc);

    serve::ServeConfig stateless;
    stateless.session.enable_finetune = false;
    stateless.batch.max_batch = 1;
    stateless.cache_budget_bytes = 1;  // Rebuild on every routing flip.
    serve::ServeConfig cached = stateless;
    cached.cache_budget_bytes = serve::ServeConfig().cache_budget_bytes;
    serve::ServeConfig batched = cached;
    batched.batch.max_batch =
        static_cast<std::size_t>(args.get_int("max-batch", 8));

    const auto iters = static_cast<std::size_t>(args.get_int("iters", 3));
    const auto batch_threads =
        static_cast<std::size_t>(args.get_int("batch-threads", 4));

    serve::ServeConfig journaled = batched;
    journaled.journal.directory =
        (std::filesystem::temp_directory_path() / "clear_bench_serve_journal")
            .string();

    const RunResult s = best_of(iters, source, stateless, requests, 1);
    const RunResult c = best_of(iters, source, cached, requests, 1);
    const RunResult b = best_of(iters, source, batched, requests,
                                batch_threads);
    const RunResult j = best_of(iters, source, journaled, requests,
                                batch_threads);
    std::filesystem::remove_all(journaled.journal.directory);

    AsciiTable table({"config", "threads", "batch cap", "ok", "time (s)",
                      "req/s"});
    table.set_title("CLEAR-Serve throughput (" +
                    std::to_string(requests.size()) + " requests, best of " +
                    std::to_string(iters) + ")");
    const auto row = [&table](const char* name, std::size_t threads,
                              std::size_t cap, const RunResult& r) {
      table.add_row({name, std::to_string(threads), std::to_string(cap),
                     std::to_string(r.ok), AsciiTable::num(r.seconds, 3),
                     AsciiTable::num(static_cast<double>(r.ok) / r.seconds,
                                     0)});
    };
    row("stateless", 1, 1, s);
    row("cached", 1, 1, c);
    row("batched", batch_threads, batched.batch.max_batch, b);
    row("journaled", batch_threads, batched.batch.max_batch, j);
    table.print();

    const double speedup = s.seconds / b.seconds;
    const double journal_overhead = j.seconds / b.seconds;
    std::printf("cache speedup:   %.2fx\n", s.seconds / c.seconds);
    std::printf("batched speedup: %.2fx vs stateless (target >= 2x): %s\n",
                speedup, speedup >= 2.0 ? "PASS" : "FAIL");
    std::printf(
        "journal overhead: %.2fx vs batched (target < 1.10x): %s\n",
        journal_overhead, journal_overhead < 1.10 ? "PASS" : "FAIL");

    if (const std::string json = args.get("json", ""); !json.empty()) {
      std::FILE* f = std::fopen(json.c_str(), "w");
      CLEAR_CHECK_MSG(f != nullptr, "cannot open " << json);
      const auto emit = [f](const char* name, std::size_t threads,
                            std::size_t cap, const RunResult& r,
                            const char* tail) {
        std::fprintf(f,
                     "    {\"config\": \"%s\", \"threads\": %zu, "
                     "\"batch_cap\": %zu, \"ok\": %zu, \"seconds\": %.6f, "
                     "\"req_per_s\": %.1f}%s\n",
                     name, threads, cap, r.ok, r.seconds,
                     static_cast<double>(r.ok) / r.seconds, tail);
      };
      std::fprintf(f, "{\n  \"schema\": \"clear-bench-serve-v1\",\n");
      std::fprintf(f, "  \"requests\": %zu,\n  \"results\": [\n",
                   requests.size());
      emit("stateless", 1, 1, s, ",");
      emit("cached", 1, 1, c, ",");
      emit("batched", batch_threads, batched.batch.max_batch, b, ",");
      emit("journaled", batch_threads, batched.batch.max_batch, j, "");
      std::fprintf(f,
                   "  ],\n  \"speedups\": {\"cached\": %.4f, "
                   "\"batched\": %.4f, \"journal_overhead\": %.4f}\n}\n",
                   s.seconds / c.seconds, speedup, journal_overhead);
      std::fclose(f);
    }
    return speedup >= 2.0 && journal_overhead < 1.10 ? 0 : 1;
  } catch (const clear::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
