// Ablation B — labelled-data budget for fine-tuning (paper §III-B-2:
// personalisation "with only a few labelled samples from the new user").
//
// Sweeps the fine-tuning label fraction over {0, 10, 20, 30, 40, 50} % of
// the new user's recording and reports accuracy/F1 on a fixed held-out 50 %
// test suffix, so every fraction is evaluated on the same maps.
//
// Flags: --quick --folds=12 --epochs=N --ft-epochs=N --seed=N --cache-dir=DIR
#include "bench_common.hpp"
#include "clear/evaluation.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);
  const std::size_t folds = static_cast<std::size_t>(
      args.get_int("folds", 12));

  std::printf("Ablation: fine-tuning label fraction (%zu LOSO folds)\n",
              folds);

  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4};
  // Per fraction, per fold metrics.
  std::vector<core::Aggregate> results(fractions.size());

  for (std::size_t vx = 0; vx < std::min(folds, dataset.n_volunteers());
       ++vx) {
    CLEAR_INFO("fold " << vx + 1 << "...");
    std::vector<std::size_t> train_users;
    for (std::size_t u = 0; u < dataset.n_volunteers(); ++u)
      if (u != vx) train_users.push_back(u);
    core::ClearPipeline pipeline(config);
    pipeline.fit(dataset, train_users, vx + 1);
    const auto assignment =
        pipeline.assign_user(dataset, vx, config.ca_fraction);

    // Fixed test suffix: last 50 % of the user's trials.
    const auto& all = dataset.samples_of(vx);
    const std::size_t half = all.size() / 2;
    const std::vector<std::size_t> test_idx(all.begin() +
                                                static_cast<std::ptrdiff_t>(half),
                                            all.end());
    // Adaptation pool: everything before the test suffix, after the CA
    // prefix, alternating classes (mirrors the stratified FT split).
    const auto n_ca = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.ca_fraction *
                                    static_cast<double>(all.size()) + 0.5));
    std::vector<std::size_t> pool[2];
    for (std::size_t i = n_ca; i < half; ++i)
      pool[dataset.samples()[all[i]].label ? 1 : 0].push_back(all[i]);

    for (std::size_t f = 0; f < fractions.size(); ++f) {
      // Round to the nearest even budget: class-balanced adaptation sets.
      const auto want = 2 * static_cast<std::size_t>(
          fractions[f] * static_cast<double>(all.size()) / 2.0 + 0.5);
      std::vector<std::size_t> ft_idx;
      std::size_t take[2] = {0, 0};
      for (std::size_t i = 0; i < want; ++i) {
        std::size_t cls = i % 2 == 0 ? 1 : 0;
        if (take[cls] >= pool[cls].size()) cls = 1 - cls;
        if (take[cls] >= pool[cls].size()) break;
        ft_idx.push_back(pool[cls][take[cls]++]);
      }
      if (ft_idx.size() < 2) {
        // No (usable) labelled data: evaluate the cluster checkpoint as-is.
        results[f].add(
            pipeline.evaluate_on(dataset, assignment.cluster, test_idx));
        continue;
      }
      auto personal = pipeline.clone_cluster_model(assignment.cluster);
      pipeline.fine_tune_on(*personal, dataset, ft_idx, vx + 1);
      const std::vector<Tensor> test_maps =
          pipeline.normalize_samples(dataset, test_idx);
      nn::MapDataset test_set;
      for (std::size_t i = 0; i < test_maps.size(); ++i) {
        test_set.maps.push_back(&test_maps[i]);
        test_set.labels.push_back(static_cast<std::size_t>(
            dataset.samples()[test_idx[i]].label));
      }
      results[f].add(nn::evaluate(*personal, test_set));
    }
  }

  AsciiTable table({"FT label fraction", "Accuracy", "STD", "F1", "STD F1"});
  table.set_title(
      "Fine-tuning label-budget ablation (paper uses 20% labelled data)");
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    results[f].finalize();
    table.add_row({AsciiTable::num(fractions[f] * 100.0, 0) + "%",
                   AsciiTable::num(results[f].accuracy.mean),
                   AsciiTable::num(results[f].accuracy.stddev),
                   AsciiTable::num(results[f].f1.mean),
                   AsciiTable::num(results[f].f1.stddev)});
  }
  std::printf("\n");
  table.print();
  return 0;
}
