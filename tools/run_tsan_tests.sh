#!/usr/bin/env bash
# Build and run the concurrency-sensitive test binaries under
# ThreadSanitizer. Uses a dedicated build directory (build-tsan) so the
# instrumented objects never mix with the regular build.
#
#   tools/run_tsan_tests.sh [build-dir]
#
# Exits non-zero on the first data race (halt_on_error=1) or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DCLEAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target test_parallel test_cluster

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
# Force the pool onto multiple threads even on small machines so the
# scheduler actually interleaves workers.
export CLEAR_NUM_THREADS=4

echo "== test_parallel (TSAN) =="
"$BUILD_DIR/tests/test_parallel"
echo "== test_cluster (TSAN) =="
"$BUILD_DIR/tests/test_cluster"
echo "TSAN run clean."
