#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace clear::net {

namespace {

sockaddr_in resolve(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  CLEAR_CHECK_MSG(
      ::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1,
      "not an IPv4 address: '" << endpoint.host
                               << "' (the net layer binds numeric addresses; "
                                  "use 127.0.0.1 for loopback)");
  return addr;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  CLEAR_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                      colon + 1 < spec.size(),
                  "endpoint '" << spec << "' is not HOST:PORT");
  Endpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  std::uint64_t port = 0;
  for (const char c : port_str) {
    CLEAR_CHECK_MSG(c >= '0' && c <= '9', "endpoint '" << spec
                                                       << "' has a non-numeric "
                                                          "port");
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    CLEAR_CHECK_MSG(port <= 65535, "endpoint '" << spec
                                                << "' port exceeds 65535");
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

int listen_tcp(const Endpoint& endpoint, int backlog) {
  const sockaddr_in addr = resolve(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CLEAR_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    CLEAR_CHECK_MSG(false, "bind(" << endpoint.host << ":" << endpoint.port
                                   << ") failed: " << std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    CLEAR_CHECK_MSG(false, "listen(" << endpoint.host << ":" << endpoint.port
                                     << ") failed: " << std::strerror(err));
  }
  set_nonblocking(fd, true);
  return fd;
}

int connect_tcp(const Endpoint& endpoint) {
  const sockaddr_in addr = resolve(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CLEAR_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    CLEAR_CHECK_MSG(false, "connect(" << endpoint.host << ":" << endpoint.port
                                      << ") failed: " << std::strerror(err));
  }
  // Loopback batches of small frames: without TCP_NODELAY, Nagle adds
  // 40ms-class stalls that would swamp the latency histograms.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_tcp(const Endpoint& endpoint, int timeout_ms) {
  if (timeout_ms <= 0) return connect_tcp(endpoint);
  const sockaddr_in addr = resolve(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CLEAR_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  // Nonblocking connect + poll: the only portable way to put a deadline on
  // connection establishment.
  set_nonblocking(fd, true);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    const int err = errno;
    ::close(fd);
    CLEAR_CHECK_MSG(false, "connect(" << endpoint.host << ":" << endpoint.port
                                      << ") failed: " << std::strerror(err));
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int pr;
    do {
      pr = ::poll(&pfd, 1, timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr == 0) {
      ::close(fd);
      CLEAR_CHECK_MSG(false, "net.timeout: connect(" << endpoint.host << ":"
                                                     << endpoint.port
                                                     << ") timed out after "
                                                     << timeout_ms << "ms");
    }
    if (pr < 0) {
      const int err = errno;
      ::close(fd);
      CLEAR_CHECK_MSG(false,
                      "poll during connect failed: " << std::strerror(err));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      CLEAR_CHECK_MSG(false, "connect(" << endpoint.host << ":"
                                        << endpoint.port << ") failed: "
                                        << std::strerror(err));
    }
  }
  set_nonblocking(fd, false);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  CLEAR_CHECK_MSG(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname failed: " << std::strerror(errno));
  return ntohs(addr.sin_port);
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CLEAR_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed: "
                                  << std::strerror(errno));
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  CLEAR_CHECK_MSG(::fcntl(fd, F_SETFL, next) == 0,
                  "fcntl(F_SETFL) failed: " << std::strerror(errno));
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool FaultedStream::drop_guard() {
  if (fd_ < 0) return true;
  if (!fault::net_drop_fires(stream_id_)) return false;
  // Sever like a dying peer: abort the connection (RST, not orderly FIN) so
  // the other side sees a hard close, then report closed to our caller.
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
  dropped_ = true;
  return true;
}

IoResult FaultedStream::read_some(void* buf, std::size_t n) {
  IoResult result;
  ++ops_;
  if (drop_guard()) {
    result.closed = true;
    return result;
  }
  ssize_t rc;
  do {
    rc = ::recv(fd_, buf, n, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc > 0) {
    result.n = static_cast<std::size_t>(rc);
  } else if (rc == 0) {
    result.closed = true;  // Orderly EOF.
  } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.would_block = true;
  } else {
    result.closed = true;  // ECONNRESET and friends: treat as gone.
  }
  return result;
}

IoResult FaultedStream::write_some(const void* buf, std::size_t n) {
  IoResult result;
  ++ops_;
  if (drop_guard()) {
    result.closed = true;
    return result;
  }
  const std::size_t cap = fault::net_write_cap(stream_id_, ops_);
  const std::size_t attempt = std::min(n, cap);
  if (attempt == 0) return result;
  ssize_t rc;
  do {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    rc = ::send(fd_, buf, attempt, MSG_NOSIGNAL);
  } while (rc < 0 && errno == EINTR);
  if (rc >= 0) {
    result.n = static_cast<std::size_t>(rc);
  } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.would_block = true;
  } else {
    result.closed = true;  // EPIPE / ECONNRESET: peer is gone.
  }
  return result;
}

void FaultedStream::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

}  // namespace clear::net
