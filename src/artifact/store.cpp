#include "artifact/store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"

namespace clear::artifact {

namespace {

constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kHeaderBytes = kMagicBytes + 4 + 4;
constexpr std::size_t kTrailerBytes = 8 + 8 + 4 + kMagicBytes;
constexpr std::size_t kBlockAlign = 8;

std::size_t align_up(std::size_t n) {
  return (n + kBlockAlign - 1) / kBlockAlign * kBlockAlign;
}

}  // namespace

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint8_t get_u8(std::string_view in, std::size_t& pos, const char* what) {
  CLEAR_CHECK_MSG(pos + 1 <= in.size(),
                  what << " truncated at offset " << pos);
  return static_cast<std::uint8_t>(in[pos++]);
}

std::uint32_t get_u32(std::string_view in, std::size_t& pos,
                      const char* what) {
  CLEAR_CHECK_MSG(pos + 4 <= in.size(),
                  what << " truncated at offset " << pos);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t(static_cast<std::uint8_t>(in[pos + i])) << (8 * i);
  pos += 4;
  return v;
}

std::uint64_t get_u64(std::string_view in, std::size_t& pos,
                      const char* what) {
  CLEAR_CHECK_MSG(pos + 8 <= in.size(),
                  what << " truncated at offset " << pos);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t(static_cast<std::uint8_t>(in[pos + i])) << (8 * i);
  pos += 8;
  return v;
}

void Writer::add_block(std::string_view name, std::string_view bytes) {
  CLEAR_CHECK_MSG(!name.empty(), "artifact block needs a name");
  blocks_.push_back({std::string(name), std::string(bytes)});
}

std::string Writer::finish() const {
  std::string out;
  out.append(kArtifactMagic, kMagicBytes);
  put_u32(out, kArtifactVersion);
  put_u32(out, static_cast<std::uint32_t>(blocks_.size()));

  std::vector<BlockInfo> index;
  index.reserve(blocks_.size());
  for (const Staged& b : blocks_) {
    out.resize(align_up(out.size()), '\0');
    BlockInfo info;
    info.name = b.name;
    info.offset = out.size();
    info.size = b.bytes.size();
    info.crc = crc32(b.bytes);
    out.append(b.bytes);
    index.push_back(std::move(info));
  }

  const std::uint64_t index_offset = out.size();
  for (const BlockInfo& info : index) {
    put_u32(out, static_cast<std::uint32_t>(info.name.size()));
    out.append(info.name);
    put_u64(out, info.offset);
    put_u64(out, info.size);
    put_u32(out, info.crc);
  }
  const std::uint64_t index_size = out.size() - index_offset;
  const std::uint32_t index_crc =
      crc32(out.data() + index_offset, static_cast<std::size_t>(index_size));
  put_u64(out, index_offset);
  put_u64(out, index_size);
  put_u32(out, index_crc);
  out.append(kArtifactMagic, kMagicBytes);
  return out;
}

bool Reader::is_artifact(std::string_view bytes) {
  return bytes.size() >= kMagicBytes &&
         std::memcmp(bytes.data(), kArtifactMagic, kMagicBytes) == 0;
}

Reader::Reader(std::string_view container) : data_(container) {
  CLEAR_CHECK_MSG(data_.size() >= kHeaderBytes + kTrailerBytes,
                  "artifact truncated: " << data_.size()
                                         << " bytes is smaller than the "
                                            "fixed header + trailer");
  CLEAR_CHECK_MSG(is_artifact(data_), "bad artifact magic");
  std::size_t pos = kMagicBytes;
  const std::uint32_t version = get_u32(data_, pos, "artifact header");
  CLEAR_CHECK_MSG(version == kArtifactVersion,
                  "unsupported artifact version " << version << " (reader is v"
                                                  << kArtifactVersion << ")");
  const std::uint32_t block_count = get_u32(data_, pos, "artifact header");

  // Trailer: fixed size at EOF, tail magic proves the file was not cut.
  const std::size_t trailer_at = data_.size() - kTrailerBytes;
  CLEAR_CHECK_MSG(std::memcmp(data_.data() + trailer_at + 8 + 8 + 4,
                              kArtifactMagic, kMagicBytes) == 0,
                  "artifact truncated: tail magic missing at offset "
                      << (trailer_at + 8 + 8 + 4));
  std::size_t tpos = trailer_at;
  const std::uint64_t index_offset = get_u64(data_, tpos, "artifact trailer");
  const std::uint64_t index_size = get_u64(data_, tpos, "artifact trailer");
  const std::uint32_t index_crc = get_u32(data_, tpos, "artifact trailer");
  CLEAR_CHECK_MSG(index_offset >= kHeaderBytes &&
                      index_offset + index_size <= trailer_at,
                  "artifact index out of bounds: offset "
                      << index_offset << " size " << index_size
                      << " in a container of " << data_.size() << " bytes");
  const std::uint32_t computed =
      crc32(data_.data() + index_offset,
            static_cast<std::size_t>(index_size));
  CLEAR_CHECK_MSG(computed == index_crc,
                  "artifact index CRC mismatch at offset "
                      << index_offset << ": stored " << index_crc
                      << ", computed " << computed);

  const std::string_view index_bytes =
      data_.substr(static_cast<std::size_t>(index_offset),
                   static_cast<std::size_t>(index_size));
  std::size_t ipos = 0;
  index_.reserve(block_count);
  for (std::uint32_t i = 0; i < block_count; ++i) {
    BlockInfo info;
    const std::uint32_t name_len = get_u32(index_bytes, ipos,
                                           "artifact index");
    CLEAR_CHECK_MSG(ipos + name_len <= index_bytes.size(),
                    "artifact index truncated in block " << i << "'s name");
    info.name = std::string(index_bytes.substr(ipos, name_len));
    ipos += name_len;
    info.offset = get_u64(index_bytes, ipos, "artifact index");
    info.size = get_u64(index_bytes, ipos, "artifact index");
    info.crc = get_u32(index_bytes, ipos, "artifact index");
    CLEAR_CHECK_MSG(
        info.offset >= kHeaderBytes &&
            info.offset + info.size <= index_offset,
        "artifact block " << i << " ('" << info.name << "') out of bounds: "
                          << "offset " << info.offset << " size " << info.size
                          << " overruns the index at " << index_offset);
    index_.push_back(std::move(info));
  }
  CLEAR_CHECK_MSG(ipos == index_bytes.size(),
                  "artifact index has " << (index_bytes.size() - ipos)
                                        << " trailing bytes");
  if (obs::enabled()) obs::counter("artifact.opened").add(1);
}

const BlockInfo& Reader::info(std::size_t i) const {
  CLEAR_CHECK_MSG(i < index_.size(), "artifact block " << i
                                                       << " out of range ("
                                                       << index_.size()
                                                       << " blocks)");
  return index_[i];
}

const BlockInfo* Reader::find(std::string_view name) const {
  for (const BlockInfo& info : index_)
    if (info.name == name) return &info;
  return nullptr;
}

std::string_view Reader::block(std::size_t i) const {
  const BlockInfo& b = info(i);
  const std::string_view payload =
      data_.substr(static_cast<std::size_t>(b.offset),
                   static_cast<std::size_t>(b.size));
  const std::uint32_t computed = crc32(payload.data(), payload.size());
  if (computed != b.crc) {
    if (obs::enabled()) obs::counter("artifact.block_crc_failures").add(1);
    CLEAR_CHECK_MSG(false, "artifact block "
                               << i << " ('" << b.name << "') at offset "
                               << b.offset << ": CRC mismatch (stored "
                               << b.crc << ", computed " << computed << ")");
  }
  return payload;
}

std::string_view Reader::block(std::string_view name) const {
  for (std::size_t i = 0; i < index_.size(); ++i)
    if (index_[i].name == name) return block(i);
  CLEAR_CHECK_MSG(false, "artifact has no block named '" << name << "'");
  return {};
}

void write_artifact_file(const std::string& path, const std::string& bytes) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CLEAR_CHECK_MSG(os.good(), "cannot open artifact for writing: " << tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    CLEAR_CHECK_MSG(os.good(), "IO error writing artifact: " << tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  CLEAR_CHECK_MSG(!ec,
                  "cannot commit artifact " << path << ": " << ec.message());
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CLEAR_CHECK_MSG(is.good(), "cannot open artifact: " << path);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  CLEAR_CHECK_MSG(!is.bad(), "IO error reading artifact: " << path);
  return bytes;
}

}  // namespace clear::artifact
