#include "net/protocol.hpp"

#include <cstring>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace clear::net {

namespace {

// Little-endian scalar writers. Floats move as bit patterns so encode ∘
// decode is the identity on every value, NaN payloads included.
void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f32(std::string& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader over one frame's payload. Reads
/// never throw; the caller checks ok() / error once at the end (short
/// reads poison the cursor and record the offending offset).
class Reader {
 public:
  Reader(const std::string& bytes, std::string& error)
      : bytes_(bytes), error_(error) {}

  bool ok() const { return ok_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  std::uint32_t u32() {
    const char* p = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
  }

  std::uint64_t u64() {
    const char* p = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string bytes(std::size_t n) {
    const char* p = take(n);
    return ok_ ? std::string(p, n) : std::string();
  }

  bool done() {
    if (ok_ && pos_ != bytes_.size()) {
      std::ostringstream os;
      os << "payload has " << bytes_.size() - pos_
         << " trailing byte(s) after offset " << pos_;
      set_error(os.str());
    }
    return ok_;
  }

  void set_error(const std::string& why) {
    if (!ok_) return;
    ok_ = false;
    error_ = why;
  }

 private:
  const char* take(std::size_t n) {
    static const char kZeros[8] = {0};
    if (!ok_) return kZeros;
    if (n > bytes_.size() - pos_) {
      std::ostringstream os;
      os << "payload truncated: need " << n << " byte(s) at offset " << pos_
         << ", have " << bytes_.size() - pos_;
      set_error(os.str());
      return kZeros;
    }
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  const std::string& bytes_;
  std::string& error_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kMetricsJson);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kDrain: return "drain";
    case FrameType::kDrainAck: return "drain-ack";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kExport: return "export";
    case FrameType::kSessionImage: return "session-image";
    case FrameType::kImportAck: return "import-ack";
    case FrameType::kAdopt: return "adopt";
    case FrameType::kAdoptAck: return "adopt-ack";
    case FrameType::kMetricsPull: return "metrics-pull";
    case FrameType::kMetricsJson: return "metrics-json";
  }
  return "?";
}

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadHeader: return "bad-header";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "?";
}

std::string encode_frame(FrameType type, const std::string& payload) {
  CLEAR_CHECK_MSG(payload.size() <= kMaxPayload,
                  "frame payload too large: " << payload.size());
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.append(payload);
  return out;
}

std::string encode_request(const WireRequest& request) {
  CLEAR_CHECK_MSG(request.map.rank() == 2,
                  "wire request map must be [F, W], got "
                      << request.map.shape_str());
  std::string p;
  const std::size_t f = request.map.extent(0);
  const std::size_t w = request.map.extent(1);
  p.reserve(44 + 4 * f * w);
  put_u64(p, request.request_id);
  put_u64(p, request.user_id);
  put_u64(p, request.arrival_us);
  put_f64(p, request.quality);
  put_i32(p, request.label.has_value() ? *request.label : -1);
  put_u32(p, static_cast<std::uint32_t>(f));
  put_u32(p, static_cast<std::uint32_t>(w));
  for (const float v : request.map.flat()) put_f32(p, v);
  return encode_frame(FrameType::kRequest, p);
}

std::string encode_response(const WireResponse& response) {
  std::string p;
  p.reserve(72 + response.error.size());
  put_u64(p, response.request_id);
  put_u64(p, response.user_id);
  put_u32(p, response.shed ? 1 : 0);
  put_i32(p, response.predicted);
  put_f32(p, response.fear_probability);
  put_u32(p, response.session_state);
  put_u32(p, response.degraded ? 1 : 0);
  put_u32(p, response.route_kind);
  put_u64(p, response.route_id);
  put_u32(p, response.batch_rows);
  put_u64(p, response.arrival_us);
  put_u64(p, response.exec_us);
  put_u32(p, static_cast<std::uint32_t>(response.error.size()));
  p.append(response.error);
  return encode_frame(FrameType::kResponse, p);
}

std::string encode_drain() {
  return encode_frame(FrameType::kDrain, std::string());
}

std::string encode_drain_ack(const WireDrainAck& ack) {
  std::string p;
  p.reserve(24);
  put_u64(p, ack.requests);
  put_u64(p, ack.ok);
  put_u64(p, ack.shed);
  return encode_frame(FrameType::kDrainAck, p);
}

std::string encode_shutdown() {
  return encode_frame(FrameType::kShutdown, std::string());
}

std::string encode_ping(std::uint64_t nonce) {
  std::string p;
  put_u64(p, nonce);
  return encode_frame(FrameType::kPing, p);
}

std::string encode_pong(const WirePong& pong) {
  std::string p;
  put_u64(p, pong.nonce);
  put_u64(p, pong.sessions);
  return encode_frame(FrameType::kPong, p);
}

std::string encode_export(std::uint64_t user_id) {
  std::string p;
  put_u64(p, user_id);
  return encode_frame(FrameType::kExport, p);
}

std::string encode_session_image(const WireSessionImage& image) {
  std::string p;
  p.reserve(20 + image.image.size() + image.checkpoint.size());
  put_u64(p, image.user_id);
  put_u32(p, image.found ? 1 : 0);
  put_u32(p, static_cast<std::uint32_t>(image.image.size()));
  p.append(image.image);
  put_u32(p, static_cast<std::uint32_t>(image.checkpoint.size()));
  p.append(image.checkpoint);
  // encode_frame enforces kMaxPayload: a session image plus a smoke-scale
  // personal checkpoint is tens of KiB, far below the 1 MiB frame bound.
  return encode_frame(FrameType::kSessionImage, p);
}

std::string encode_import_ack(const WireImportAck& ack) {
  std::string p;
  p.reserve(16 + ack.error.size());
  put_u64(p, ack.user_id);
  put_u32(p, ack.ok ? 1 : 0);
  put_u32(p, static_cast<std::uint32_t>(ack.error.size()));
  p.append(ack.error);
  return encode_frame(FrameType::kImportAck, p);
}

std::string encode_adopt(const std::string& journal_dir) {
  std::string p;
  p.reserve(4 + journal_dir.size());
  put_u32(p, static_cast<std::uint32_t>(journal_dir.size()));
  p.append(journal_dir);
  return encode_frame(FrameType::kAdopt, p);
}

std::string encode_adopt_ack(const WireAdoptAck& ack) {
  std::string p;
  p.reserve(24);
  put_u64(p, ack.sessions);
  put_u64(p, ack.personalized);
  put_u64(p, ack.failed);
  return encode_frame(FrameType::kAdoptAck, p);
}

std::string encode_metrics_pull() {
  return encode_frame(FrameType::kMetricsPull, std::string());
}

std::string encode_metrics_json(const std::string& json) {
  return encode_frame(FrameType::kMetricsJson, json);
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

void FrameDecoder::feed(const void* data, std::size_t n) {
  if (latched_ != DecodeStatus::kNeedMore) return;  // Framing already lost.
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(static_cast<const char*>(data), n);
}

DecodeStatus FrameDecoder::fail(DecodeStatus status, const std::string& why) {
  latched_ = status;
  std::ostringstream os;
  os << "frame " << frames_ << ": " << why;
  error_ = os.str();
  return status;
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (latched_ != DecodeStatus::kNeedMore) return latched_;
  if (buffered() < kHeaderSize) return DecodeStatus::kNeedMore;
  const char* h = buf_.data() + pos_;
  const auto u32_at = [h](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | static_cast<std::uint8_t>(h[off + static_cast<std::size_t>(i)]);
    return v;
  };

  const std::uint32_t magic = u32_at(0);
  if (magic != kMagic) {
    std::ostringstream os;
    os << "bad magic 0x" << std::hex << magic << " (expected 0x" << kMagic
       << ")";
    return fail(DecodeStatus::kBadMagic, os.str());
  }
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported version " << static_cast<int>(version) << " (speak "
       << static_cast<int>(kVersion) << ")";
    return fail(DecodeStatus::kBadVersion, os.str());
  }
  const auto type = static_cast<std::uint8_t>(h[5]);
  if (!known_type(type)) {
    std::ostringstream os;
    os << "unknown frame type " << static_cast<int>(type);
    return fail(DecodeStatus::kBadHeader, os.str());
  }
  if (h[6] != 0 || h[7] != 0)
    return fail(DecodeStatus::kBadHeader, "reserved header bytes are nonzero");
  const std::uint32_t len = u32_at(8);
  if (len > max_payload_) {
    std::ostringstream os;
    os << "declared payload length " << len << " exceeds the bound "
       << max_payload_;
    return fail(DecodeStatus::kBadLength, os.str());
  }
  if (buffered() < kHeaderSize + len) return DecodeStatus::kNeedMore;

  const std::uint32_t declared_crc = u32_at(12);
  const std::uint32_t actual_crc = crc32(h + kHeaderSize, len);
  if (declared_crc != actual_crc) {
    std::ostringstream os;
    os << "payload CRC mismatch: declared 0x" << std::hex << declared_crc
       << ", computed 0x" << actual_crc;
    return fail(DecodeStatus::kBadCrc, os.str());
  }

  out.type = static_cast<FrameType>(type);
  out.payload.assign(h + kHeaderSize, len);
  pos_ += kHeaderSize + len;
  ++frames_;
  return DecodeStatus::kFrame;
}

bool parse_request(const Frame& frame, WireRequest& out, std::string& error) {
  if (frame.type != FrameType::kRequest) {
    error = "not a request frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.request_id = r.u64();
  out.user_id = r.u64();
  out.arrival_us = r.u64();
  out.quality = r.f64();
  const std::int32_t label = r.i32();
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  if (!r.ok()) return false;
  if (label < -1 || label > 1) {
    std::ostringstream os;
    os << "label must be -1 (none), 0, or 1; got " << label;
    r.set_error(os.str());
    return false;
  }
  out.label = label < 0 ? std::nullopt : std::optional<int>(label);
  if (rows == 0 || cols == 0) {
    r.set_error("map dimensions must be nonzero");
    return false;
  }
  const std::uint64_t cells =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  // Bound cells by the bytes actually present before any size arithmetic:
  // rows*cols reaches 2^62, where 44 + 4*cells wraps modulo 2^64 and a
  // 44-byte payload would masquerade as an astronomically sized map whose
  // allocation is a one-frame remote crash. The reader already consumed the
  // 44-byte fixed prefix, so payload.size() >= 44 here.
  const std::uint64_t map_bytes = frame.payload.size() - 44;
  if (map_bytes % 4 != 0 || cells != map_bytes / 4) {
    std::ostringstream os;
    os << "map declared " << rows << "x" << cols << " (" << cells
       << " cells) but frame carries " << map_bytes << " map byte(s)";
    r.set_error(os.str());
    return false;
  }
  out.map = Tensor({rows, cols});
  for (std::size_t i = 0; i < cells; ++i) out.map[i] = r.f32();
  return r.done();
}

bool parse_response(const Frame& frame, WireResponse& out,
                    std::string& error) {
  if (frame.type != FrameType::kResponse) {
    error = "not a response frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.request_id = r.u64();
  out.user_id = r.u64();
  const std::uint32_t status = r.u32();
  out.predicted = r.i32();
  out.fear_probability = r.f32();
  out.session_state = r.u32();
  const std::uint32_t degraded = r.u32();
  out.route_kind = r.u32();
  out.route_id = r.u64();
  out.batch_rows = r.u32();
  out.arrival_us = r.u64();
  out.exec_us = r.u64();
  const std::uint32_t error_len = r.u32();
  if (!r.ok()) return false;
  if (status > 1) {
    std::ostringstream os;
    os << "status must be 0 (ok) or 1 (shed); got " << status;
    r.set_error(os.str());
    return false;
  }
  if (degraded > 1) {
    std::ostringstream os;
    os << "degraded must be 0 or 1; got " << degraded;
    r.set_error(os.str());
    return false;
  }
  out.shed = status == 1;
  out.degraded = degraded == 1;
  out.error = r.bytes(error_len);
  return r.done();
}

bool parse_drain_ack(const Frame& frame, WireDrainAck& out,
                     std::string& error) {
  if (frame.type != FrameType::kDrainAck) {
    error = "not a drain-ack frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.requests = r.u64();
  out.ok = r.u64();
  out.shed = r.u64();
  return r.done();
}

bool parse_ping(const Frame& frame, std::uint64_t& nonce, std::string& error) {
  if (frame.type != FrameType::kPing) {
    error = "not a ping frame";
    return false;
  }
  Reader r(frame.payload, error);
  nonce = r.u64();
  return r.done();
}

bool parse_pong(const Frame& frame, WirePong& out, std::string& error) {
  if (frame.type != FrameType::kPong) {
    error = "not a pong frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.nonce = r.u64();
  out.sessions = r.u64();
  return r.done();
}

bool parse_export(const Frame& frame, std::uint64_t& user_id,
                  std::string& error) {
  if (frame.type != FrameType::kExport) {
    error = "not an export frame";
    return false;
  }
  Reader r(frame.payload, error);
  user_id = r.u64();
  return r.done();
}

bool parse_session_image(const Frame& frame, WireSessionImage& out,
                         std::string& error) {
  if (frame.type != FrameType::kSessionImage) {
    error = "not a session-image frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.user_id = r.u64();
  const std::uint32_t found = r.u32();
  if (!r.ok()) return false;
  if (found > 1) {
    std::ostringstream os;
    os << "found must be 0 or 1; got " << found;
    r.set_error(os.str());
    return false;
  }
  out.found = found == 1;
  const std::uint32_t image_len = r.u32();
  out.image = r.bytes(image_len);
  const std::uint32_t ckpt_len = r.u32();
  out.checkpoint = r.bytes(ckpt_len);
  if (!r.done()) return false;
  if (out.found && out.image.empty()) {
    r.set_error("found session carries no image bytes");
    return false;
  }
  return true;
}

bool parse_import_ack(const Frame& frame, WireImportAck& out,
                      std::string& error) {
  if (frame.type != FrameType::kImportAck) {
    error = "not an import-ack frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.user_id = r.u64();
  const std::uint32_t ok = r.u32();
  if (!r.ok()) return false;
  if (ok > 1) {
    std::ostringstream os;
    os << "ok must be 0 or 1; got " << ok;
    r.set_error(os.str());
    return false;
  }
  out.ok = ok == 1;
  const std::uint32_t error_len = r.u32();
  out.error = r.bytes(error_len);
  return r.done();
}

bool parse_adopt(const Frame& frame, std::string& journal_dir,
                 std::string& error) {
  if (frame.type != FrameType::kAdopt) {
    error = "not an adopt frame";
    return false;
  }
  Reader r(frame.payload, error);
  const std::uint32_t dir_len = r.u32();
  journal_dir = r.bytes(dir_len);
  if (!r.done()) return false;
  if (journal_dir.empty()) {
    r.set_error("adopt names an empty journal directory");
    return false;
  }
  return true;
}

bool parse_adopt_ack(const Frame& frame, WireAdoptAck& out,
                     std::string& error) {
  if (frame.type != FrameType::kAdoptAck) {
    error = "not an adopt-ack frame";
    return false;
  }
  Reader r(frame.payload, error);
  out.sessions = r.u64();
  out.personalized = r.u64();
  out.failed = r.u64();
  return r.done();
}

bool parse_metrics_json(const Frame& frame, std::string& json,
                        std::string& error) {
  if (frame.type != FrameType::kMetricsJson) {
    error = "not a metrics-json frame";
    return false;
  }
  json = frame.payload;
  return true;
}

}  // namespace clear::net
