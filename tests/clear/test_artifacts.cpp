#include "clear/artifacts.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace clear::core {
namespace {

namespace fs = std::filesystem;

ClearConfig art_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 51;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finalize();
  return c;
}

struct SharedFixture {
  wemac::WemacDataset dataset;
  ClearPipeline pipeline;
  std::vector<std::size_t> users;

  SharedFixture()
      : dataset(wemac::generate_wemac(art_config().data)),
        pipeline(art_config()) {
    for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

fs::path temp_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

TEST(Artifacts, SaveCreatesExpectedFiles) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_files");
  save_pipeline(f.pipeline, dir.string());
  EXPECT_TRUE(fs::exists(dir / "pipeline.meta"));
  for (std::size_t k = 0; k < f.pipeline.n_clusters(); ++k)
    EXPECT_TRUE(fs::exists(dir / ("cluster_" + std::to_string(k) + ".ckpt")));
  fs::remove_all(dir);
}

TEST(Artifacts, RoundTripPreservesAssignment) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_assign");
  save_pipeline(f.pipeline, dir.string());
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.n_clusters(), f.pipeline.n_clusters());
  EXPECT_EQ(restored.fitted_users(), f.pipeline.fitted_users());
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  const auto a = f.pipeline.assign_user(f.dataset, new_user, 0.3);
  const auto b = restored.assign_user(f.dataset, new_user, 0.3);
  EXPECT_EQ(a.cluster, b.cluster);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i)
    EXPECT_NEAR(a.scores[i], b.scores[i], 1e-9);
  fs::remove_all(dir);
}

TEST(Artifacts, RoundTripPreservesPredictions) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_pred");
  save_pipeline(f.pipeline, dir.string());
  ClearPipeline restored = load_pipeline(dir.string());
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  const auto& samples = f.dataset.samples_of(new_user);
  const std::vector<std::size_t> idx(samples.begin(), samples.end());
  for (std::size_t k = 0; k < f.pipeline.n_clusters(); ++k) {
    const nn::BinaryMetrics a = f.pipeline.evaluate_on(f.dataset, k, idx);
    const nn::BinaryMetrics b = restored.evaluate_on(f.dataset, k, idx);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.fn, b.fn);
    EXPECT_EQ(a.tn, b.tn);
  }
  fs::remove_all(dir);
}

TEST(Artifacts, RoundTripPreservesClustering) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_clust");
  save_pipeline(f.pipeline, dir.string());
  ClearPipeline restored = load_pipeline(dir.string());
  const auto& a = f.pipeline.clustering();
  const auto& b = restored.clustering();
  EXPECT_EQ(a.user_cluster, b.user_cluster);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t k = 0; k < a.clusters.size(); ++k) {
    EXPECT_EQ(a.clusters[k].members, b.clusters[k].members);
    EXPECT_EQ(a.clusters[k].sub_centroids.size(),
              b.clusters[k].sub_centroids.size());
    for (std::size_t d = 0; d < a.clusters[k].centroid.size(); ++d)
      EXPECT_DOUBLE_EQ(a.clusters[k].centroid[d], b.clusters[k].centroid[d]);
  }
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.rounds_run, b.rounds_run);
}

TEST(Artifacts, UnfittedPipelineRejected) {
  ClearPipeline empty(art_config());
  EXPECT_THROW(save_pipeline(empty, "/tmp/clear_should_not_exist"), Error);
}

TEST(Artifacts, MissingDirectoryRejected) {
  EXPECT_THROW(load_pipeline("/nonexistent/artifact/dir"), Error);
}

TEST(Artifacts, CorruptMetaRejected) {
  const fs::path dir = temp_dir("clear_artifacts_corrupt");
  fs::create_directories(dir);
  {
    std::ofstream os(dir / "pipeline.meta", std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW(load_pipeline(dir.string()), Error);
  fs::remove_all(dir);
}

TEST(Artifacts, MissingCheckpointRejected) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_missing_ckpt");
  save_pipeline(f.pipeline, dir.string());
  fs::remove(dir / "cluster_0.ckpt");
  EXPECT_THROW(load_pipeline(dir.string()), Error);
  fs::remove_all(dir);
}

TEST(Artifacts, ImportStateValidation) {
  ClearPipeline p(art_config());
  ClearPipeline::State bad;
  EXPECT_THROW(p.import_state(std::move(bad)), Error);
}

}  // namespace
}  // namespace clear::core
