#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "clear/artifacts.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "serve/workload.hpp"

namespace clear::serve {
namespace {

core::ClearConfig serve_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 77;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

// One fitted pipeline shared by every test: the server consumes a copy of
// the captured ModelSource, so tests never mutate shared state.
struct SharedFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  ModelSource source;

  SharedFixture()
      : dataset(wemac::generate_wemac(serve_config().data)),
        pipeline(serve_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = ModelSource::from_pipeline(pipeline);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

/// A request carrying one of the held-out volunteer's raw feature maps.
ServeRequest req(std::uint64_t user, std::uint64_t id, std::uint64_t t,
                 std::optional<int> label = std::nullopt,
                 double quality = 1.0) {
  auto& f = fixture();
  const auto& samples = f.dataset.samples_of(f.dataset.n_volunteers() - 1);
  const std::size_t s = samples[id % samples.size()];
  ServeRequest r;
  r.user_id = user;
  r.request_id = id;
  r.arrival_us = t;
  r.map = f.dataset.samples()[s].feature_map;
  r.quality = quality;
  r.label = label;
  return r;
}

void expect_identical(const std::vector<ServeResult>& a,
                      const std::vector<ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_id, b[i].user_id) << "result " << i;
    EXPECT_EQ(a[i].request_id, b[i].request_id) << "result " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "result " << i;
    EXPECT_EQ(a[i].error, b[i].error) << "result " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "result " << i;
    // Bit-identical, not approximately equal — the determinism contract.
    EXPECT_EQ(a[i].fear_probability, b[i].fear_probability) << "result " << i;
    EXPECT_EQ(a[i].route, b[i].route) << "result " << i;
    EXPECT_EQ(a[i].session_state, b[i].session_state) << "result " << i;
    EXPECT_EQ(a[i].batch_rows, b[i].batch_rows) << "result " << i;
    EXPECT_EQ(a[i].exec_us, b[i].exec_us) << "result " << i;
  }
}

WorkloadConfig small_workload() {
  WorkloadConfig wc;
  wc.n_users = 8;
  wc.requests_per_user = 12;
  wc.seed = 7;
  return wc;
}

ServeConfig quick_serve_config() {
  ServeConfig sc;
  sc.session.ca_windows = 3;
  sc.session.ft_maps = 2;
  return sc;
}

TEST(Server, WorkloadIsBitIdenticalAcrossThreadCounts) {
  auto& f = fixture();
  std::vector<ServeResult> base;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const NumThreadsGuard guard(threads);
    Server server(f.source, quick_serve_config());
    std::vector<ServeResult> out =
        server.run(make_workload(f.dataset, small_workload()));
    EXPECT_EQ(server.counters().requests, 8u * 12u);
    EXPECT_GT(server.counters().ok, 0u);
    if (base.empty()) {
      base = std::move(out);
    } else {
      expect_identical(base, out);
    }
  }
}

TEST(Server, ResultsUnchangedWithMetricsEnabled) {
  auto& f = fixture();
  Server plain(f.source, quick_serve_config());
  const std::vector<ServeResult> base =
      plain.run(make_workload(f.dataset, small_workload()));

  obs::set_enabled(true);
  Server observed(f.source, quick_serve_config());
  const std::vector<ServeResult> traced =
      observed.run(make_workload(f.dataset, small_workload()));
  obs::set_enabled(false);
  expect_identical(base, traced);
}

TEST(Server, ServingFromArtifactsMatchesServingFromPipeline) {
  auto& f = fixture();
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "clear_serve_artifacts";
  fs::remove_all(dir);
  core::save_pipeline(f.pipeline, dir.string());

  Server live(f.source, quick_serve_config());
  const std::vector<ServeResult> a =
      live.run(make_workload(f.dataset, small_workload()));
  Server restored(ModelSource::from_artifacts(dir.string()),
                  quick_serve_config());
  const std::vector<ServeResult> b =
      restored.run(make_workload(f.dataset, small_workload()));
  expect_identical(a, b);
  fs::remove_all(dir);
}

TEST(Server, ColdStartLifecycleReachesPersonalized) {
  auto& f = fixture();
  ServeConfig sc;
  sc.session.ca_windows = 2;
  sc.session.ft_maps = 2;
  Server server(f.source, sc);

  std::vector<ServeRequest> stream;
  stream.push_back(req(1, 0, 0));
  stream.push_back(req(1, 1, 1000));
  stream.push_back(req(1, 2, 2000, 0));
  stream.push_back(req(1, 3, 3000, 1));
  stream.push_back(req(1, 4, 4000));
  const std::vector<ServeResult> out = server.run(std::move(stream));

  ASSERT_EQ(out.size(), 5u);
  for (const ServeResult& r : out)
    EXPECT_EQ(r.status, ServeResult::Status::kOk);
  // Request 0 rides the general model (still cold); request 1 completes the
  // CA buffer, so from then on the cluster model serves...
  EXPECT_EQ(out[0].route.kind, BatchKey::Kind::kGeneral);
  EXPECT_EQ(out[1].route.kind, BatchKey::Kind::kCluster);
  EXPECT_EQ(out[2].route.kind, BatchKey::Kind::kCluster);
  // ...until the second labelled map triggers the fine-tune, after which the
  // session owns a personal engine.
  EXPECT_EQ(out[3].route.kind, BatchKey::Kind::kPersonal);
  EXPECT_EQ(out[4].route.kind, BatchKey::Kind::kPersonal);
  EXPECT_EQ(out[4].session_state, SessionState::kPersonalized);
  EXPECT_EQ(server.counters().assignments, 1u);
  EXPECT_EQ(server.counters().finetunes, 1u);
  EXPECT_EQ(server.counters().finetune_failures, 0u);
  for (const ServeResult& r : out) {
    EXPECT_GE(r.fear_probability, 0.0f);
    EXPECT_LE(r.fear_probability, 1.0f);
  }

  const Session* session = server.sessions().sessions().at(0);
  EXPECT_EQ(session->state(), SessionState::kPersonalized);
  ASSERT_TRUE(session->first_prediction_us.has_value());
  EXPECT_GE(*session->first_prediction_us, session->first_arrival_us);
}

TEST(Server, SustainedBadQualityDegradesToGeneralThenRecovers) {
  auto& f = fixture();
  ServeConfig sc;
  sc.session.ca_windows = 2;
  sc.session.enable_finetune = false;
  sc.session.degrade_after = 2;
  sc.session.recover_after = 2;
  Server server(f.source, sc);

  std::vector<ServeRequest> stream;
  stream.push_back(req(5, 0, 0));
  stream.push_back(req(5, 1, 1000));  // Assigned after this one.
  stream.push_back(req(5, 2, 2000, std::nullopt, 0.1));
  stream.push_back(req(5, 3, 3000, std::nullopt, 0.1));  // Degrades here.
  stream.push_back(req(5, 4, 4000, std::nullopt, 0.1));
  stream.push_back(req(5, 5, 5000));
  stream.push_back(req(5, 6, 6000));  // Recovers here.
  const std::vector<ServeResult> out = server.run(std::move(stream));

  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[2].route.kind, BatchKey::Kind::kCluster);
  // A cluster model fed garbage is worse than the population prior: the
  // degraded span is parked on the general model.
  EXPECT_EQ(out[3].route.kind, BatchKey::Kind::kGeneral);
  EXPECT_TRUE(out[3].degraded);
  EXPECT_EQ(out[4].route.kind, BatchKey::Kind::kGeneral);
  EXPECT_EQ(out[5].route.kind, BatchKey::Kind::kGeneral);
  // Recovery restores the pre-degradation assignment.
  EXPECT_EQ(out[6].route.kind, BatchKey::Kind::kCluster);
  EXPECT_FALSE(out[6].degraded);
  EXPECT_EQ(server.counters().degraded, 1u);
  EXPECT_EQ(server.counters().recovered, 1u);
}

TEST(Server, NonFiniteSamplesAreSanitizedAndCountAgainstQuality) {
  auto& f = fixture();
  ServeConfig sc = quick_serve_config();
  Server server(f.source, sc);
  ServeRequest r = req(2, 0, 0);
  const std::size_t w = r.map.extent(1);
  for (std::size_t j = 1; j < w; ++j)
    r.map.at2(0, j) = std::numeric_limits<float>::quiet_NaN();
  std::vector<ServeRequest> stream;
  stream.push_back(std::move(r));
  const std::vector<ServeResult> out = server.run(std::move(stream));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, ServeResult::Status::kOk);
  EXPECT_TRUE(std::isfinite(out[0].fear_probability));
  EXPECT_EQ(server.counters().sanitized, 1u);
}

TEST(Server, BurstsShedWithAddressedErrors) {
  auto& f = fixture();
  ServeConfig sc;
  sc.batch.max_batch = 2;
  sc.batch.queue_capacity = 2;
  sc.batch.max_pending = 64;
  Server server(f.source, sc);
  // Five cold users in the same virtual instant all route general/fp32; the
  // per-key queue holds two, so the rest shed with the key named.
  std::vector<ServeRequest> stream;
  for (std::uint64_t u = 0; u < 5; ++u) stream.push_back(req(u, 0, 100));
  const std::vector<ServeResult> out = server.run(std::move(stream));
  std::size_t ok = 0, shed = 0;
  for (const ServeResult& r : out) {
    if (r.status == ServeResult::Status::kOk) {
      ++ok;
    } else {
      ++shed;
      EXPECT_NE(r.error.find("queue full for general/fp32"),
                std::string::npos)
          << "actual error: " << r.error;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, 3u);
  EXPECT_EQ(server.counters().shed, 3u);
}

TEST(Server, GlobalOverloadShedsAcrossKeys) {
  auto& f = fixture();
  ServeConfig sc;
  sc.batch.max_batch = 2;
  sc.batch.queue_capacity = 2;
  sc.batch.max_pending = 3;
  sc.precisions = {edge::Precision::kFp32, edge::Precision::kFp16};
  Server server(f.source, sc);
  // Users alternate precisions, so the burst spreads over two keys and trips
  // the global cap before any single queue fills.
  std::vector<ServeRequest> stream;
  for (std::uint64_t u = 0; u < 5; ++u) stream.push_back(req(u, 0, 100));
  const std::vector<ServeResult> out = server.run(std::move(stream));
  std::size_t overloaded = 0;
  for (const ServeResult& r : out)
    if (r.status == ServeResult::Status::kShed) {
      EXPECT_NE(r.error.find("server overloaded"), std::string::npos)
          << "actual error: " << r.error;
      ++overloaded;
    }
  EXPECT_EQ(overloaded, 2u);
}

TEST(Server, SessionTableFullShedsNewUsers) {
  auto& f = fixture();
  ServeConfig sc = quick_serve_config();
  sc.max_sessions = 1;
  Server server(f.source, sc);
  std::vector<ServeRequest> stream;
  stream.push_back(req(1, 0, 0));
  stream.push_back(req(2, 0, 0));
  stream.push_back(req(1, 1, 1000));  // Existing user still served.
  const std::vector<ServeResult> out = server.run(std::move(stream));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].status, ServeResult::Status::kOk);
  EXPECT_EQ(out[1].status, ServeResult::Status::kOk);
  EXPECT_EQ(out[2].status, ServeResult::Status::kShed);
  EXPECT_NE(out[2].error.find("session table full"), std::string::npos)
      << "actual error: " << out[2].error;
}

TEST(Server, CorruptClusterCheckpointsDegradeToGeneral) {
  auto& f = fixture();
  ModelSource source = f.source;
  const auto intact = source.cluster_blob;
  source.cluster_blob = [intact](std::size_t k) {
    std::string blob = intact(k);
    if (!blob.empty()) blob[blob.size() / 2] ^= 0x40;  // Break the CRC.
    return blob;
  };
  ServeConfig sc = quick_serve_config();
  Server server(std::move(source), sc);
  const std::vector<ServeResult> out =
      server.run(make_workload(f.dataset, small_workload()));
  for (const ServeResult& r : out) {
    if (r.status == ServeResult::Status::kOk) {
      EXPECT_NE(r.route.kind, BatchKey::Kind::kCluster)
          << "corrupt cluster checkpoint served as " << r.route.str();
    }
  }
  EXPECT_GT(server.cache().stats().fallbacks, 0u);
  // Fine-tunes start from the general weights instead of failing outright.
  EXPECT_EQ(server.counters().finetune_failures, 0u);
}

TEST(Server, DrainCompletesEveryAdmittedRequest) {
  auto& f = fixture();
  ServeConfig sc = quick_serve_config();
  Server server(f.source, sc);
  server.submit(req(3, 0, 0));
  server.submit(req(4, 0, 0));
  EXPECT_TRUE(server.take_results().empty());  // Nothing due yet.
  server.drain();
  const std::vector<ServeResult> out = server.take_results();
  ASSERT_EQ(out.size(), 2u);
  // Neither hit max_batch, so both execute at the shared oldest deadline.
  EXPECT_EQ(out[0].exec_us, sc.batch.max_wait_us);
  EXPECT_EQ(out[0].batch_rows, 2u);
  EXPECT_EQ(server.counters().ok + server.counters().shed,
            server.counters().requests);
}

TEST(Server, ArrivalsMustBeNondecreasing) {
  auto& f = fixture();
  Server server(f.source, quick_serve_config());
  server.submit(req(1, 0, 1000));
  EXPECT_THROW(server.submit(req(1, 1, 500)), Error);
}

}  // namespace
}  // namespace clear::serve
