// Session migration: the export / retire / import API the shard
// coordinator drives during rebalances. The contract under test is
// bit-identity — a session restored on the gaining server must answer
// exactly as it would have on the losing server — plus clean, addressed
// degradation when the handoff's durability IO fails.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "clear/pipeline.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "wemac/dataset.hpp"

namespace clear::serve {
namespace {

namespace fs = std::filesystem;

core::ClearConfig migration_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 77;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

struct MigrationFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  ModelSource source;

  MigrationFixture()
      : dataset(wemac::generate_wemac(migration_config().data)),
        pipeline(migration_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = ModelSource::from_pipeline(pipeline);
  }
};

MigrationFixture& fixture() {
  static MigrationFixture f;
  return f;
}

ServeRequest req(std::uint64_t user, std::uint64_t id, std::uint64_t t,
                 std::optional<int> label = std::nullopt) {
  auto& f = fixture();
  const auto& samples = f.dataset.samples_of(f.dataset.n_volunteers() - 1);
  const std::size_t s = samples[id % samples.size()];
  ServeRequest r;
  r.user_id = user;
  r.request_id = id;
  r.arrival_us = t;
  r.map = f.dataset.samples()[s].feature_map;
  r.quality = 1.0;
  r.label = label;
  return r;
}

/// Fresh per-test journal directories, removed on teardown.
struct MigrationTest : ::testing::Test {
  std::string dir_a;
  std::string dir_b;

  void SetUp() override {
    const std::string base =
        (fs::temp_directory_path() /
         ("clear_migrate_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
            .string();
    dir_a = base + "_a";
    dir_b = base + "_b";
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
  }

  void TearDown() override {
    fault::disarm_migrate_io_fail();
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
  }

  ServeConfig config_with(const std::string& dir) {
    ServeConfig sc;
    sc.session.ca_windows = 2;
    sc.session.ft_maps = 2;
    sc.journal.directory = dir;
    return sc;
  }

  /// Drive user 1 to PERSONALIZED (two labelled maps trigger the
  /// fine-tune) and return the server ready for export.
  static void personalize(Server& server) {
    std::vector<ServeRequest> stream;
    stream.push_back(req(1, 0, 0));
    stream.push_back(req(1, 1, 1000));
    stream.push_back(req(1, 2, 2000, 0));
    stream.push_back(req(1, 3, 3000, 1));
    stream.push_back(req(1, 4, 4000));
    const auto out = server.run(std::move(stream));
    ASSERT_EQ(out.size(), 5u);
    ASSERT_EQ(out.back().session_state, SessionState::kPersonalized);
  }

  static std::vector<ServeRequest> followup_stream() {
    std::vector<ServeRequest> stream;
    for (std::uint64_t i = 5; i < 11; ++i)
      stream.push_back(req(1, i, i * 1000));
    return stream;
  }
};

void expect_bit_identical(const std::vector<ServeResult>& a,
                          const std::vector<ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_id, b[i].user_id) << "result " << i;
    EXPECT_EQ(a[i].request_id, b[i].request_id) << "result " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "result " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "result " << i;
    EXPECT_EQ(a[i].session_state, b[i].session_state) << "result " << i;
    EXPECT_EQ(a[i].route.kind, b[i].route.kind) << "result " << i;
    // Bit pattern, not approximate: the migrated engine must be the same
    // network, not a retrained sibling.
    std::uint32_t bits_a, bits_b;
    static_assert(sizeof(bits_a) == sizeof(a[i].fear_probability));
    std::memcpy(&bits_a, &a[i].fear_probability, sizeof(bits_a));
    std::memcpy(&bits_b, &b[i].fear_probability, sizeof(bits_b));
    EXPECT_EQ(bits_a, bits_b) << "result " << i;
  }
}

TEST_F(MigrationTest, ExportedSessionRestoresBitIdentically) {
  auto& f = fixture();
  Server losing(f.source, config_with(dir_a));
  personalize(losing);

  const auto exported = losing.export_session(1);
  ASSERT_TRUE(exported.has_value());
  EXPECT_TRUE(exported->image.has_personal);
  EXPECT_FALSE(exported->checkpoint.empty());
  EXPECT_EQ(exported->image.user_id, 1u);

  Server gaining(f.source, config_with(dir_b));
  ASSERT_TRUE(gaining.import_session(exported->image, exported->checkpoint));

  // The same continuation stream must produce bit-identical answers on the
  // original (export is non-mutating) and on the migrated copy.
  const auto on_losing = losing.run(followup_stream());
  const auto on_gaining = gaining.run(followup_stream());
  expect_bit_identical(on_losing, on_gaining);
}

TEST_F(MigrationTest, ExportIsAbsentForUnknownUserAndAfterRetire) {
  auto& f = fixture();
  Server server(f.source, config_with(dir_a));
  personalize(server);
  EXPECT_FALSE(server.export_session(99).has_value());
  ASSERT_TRUE(server.export_session(1).has_value());
  server.retire_session(1);
  EXPECT_FALSE(server.export_session(1).has_value());
  // Retiring an absent session is a harmless no-op.
  server.retire_session(1);
}

TEST_F(MigrationTest, SessionImageCodecRoundTripsByteExactly) {
  auto& f = fixture();
  Server server(f.source, config_with(dir_a));
  personalize(server);
  const auto exported = server.export_session(1);
  ASSERT_TRUE(exported.has_value());

  const std::string bytes = encode_session_image(exported->image);
  const SessionImage decoded = decode_session_image(bytes);
  EXPECT_EQ(decoded.user_id, exported->image.user_id);
  EXPECT_EQ(decoded.state, exported->image.state);
  EXPECT_EQ(decoded.cluster, exported->image.cluster);
  EXPECT_EQ(decoded.has_personal, exported->image.has_personal);
  EXPECT_EQ(decoded.requests, exported->image.requests);
  EXPECT_EQ(decoded.observations.size(), exported->image.observations.size());
  EXPECT_EQ(decoded.labelled.size(), exported->image.labelled.size());
  // Decode-encode is a fixed point: the formats carry no hidden state.
  EXPECT_EQ(encode_session_image(decoded), bytes);
}

TEST_F(MigrationTest, ImportFailsCleanlyWhenDurabilityIoFails) {
  auto& f = fixture();
  Server losing(f.source, config_with(dir_a));
  personalize(losing);
  const auto exported = losing.export_session(1);
  ASSERT_TRUE(exported.has_value());

  Server gaining(f.source, config_with(dir_b));
  fault::arm_migrate_io_fail(1);
  EXPECT_FALSE(gaining.import_session(exported->image, exported->checkpoint));
  // The failed import must leave no half-installed session behind...
  EXPECT_FALSE(gaining.export_session(1).has_value());
  // ...so a retry after the fault clears lands cleanly.
  fault::disarm_migrate_io_fail();
  EXPECT_TRUE(gaining.import_session(exported->image, exported->checkpoint));
  const auto on_losing = losing.run(followup_stream());
  const auto on_gaining = gaining.run(followup_stream());
  expect_bit_identical(on_losing, on_gaining);
}

TEST_F(MigrationTest, ImportRejectsDuplicateAndClaimsWithoutCheckpoint) {
  auto& f = fixture();
  Server losing(f.source, config_with(dir_a));
  personalize(losing);
  const auto exported = losing.export_session(1);
  ASSERT_TRUE(exported.has_value());

  Server gaining(f.source, config_with(dir_b));
  ASSERT_TRUE(gaining.import_session(exported->image, exported->checkpoint));
  // A second import of the same user must refuse, not fork the session.
  EXPECT_FALSE(gaining.import_session(exported->image, exported->checkpoint));
  // An image claiming a personal engine without its checkpoint is refused.
  Server empty(f.source, config_with(dir_a + "_c"));
  EXPECT_FALSE(empty.import_session(exported->image, ""));
  fs::remove_all(dir_a + "_c");
}

}  // namespace
}  // namespace clear::serve
