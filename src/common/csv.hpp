// Minimal CSV reading/writing used to persist feature matrices, experiment
// results, and bench outputs. Supports quoted fields with embedded commas
// and quotes; does not support embedded newlines (none of our data has them).
//
// Malformed input never misparses silently: unterminated quotes, garbage
// after a closing quote, ragged column counts, and non-numeric cells all
// raise clear::Error with the offending row and column spelled out
// (1-based, matching what an editor shows).
#pragma once

#include <string>
#include <vector>

namespace clear::csv {

using Row = std::vector<std::string>;

/// Parse one CSV line into fields (handles "quoted, fields" and "" escapes).
/// Throws clear::Error on an unterminated quote or trailing garbage after a
/// closing quote; `row` is the 1-based line number used in the message
/// (0 = unknown).
Row parse_line(const std::string& line, std::size_t row = 0);

/// Serialize one row, quoting fields that contain commas or quotes.
std::string format_line(const Row& row);

/// Read a whole file. Throws clear::Error if the file cannot be opened or
/// any line is malformed (the error names the offending line).
std::vector<Row> read_file(const std::string& path);

/// Write rows to a file. Throws clear::Error on IO failure.
void write_file(const std::string& path, const std::vector<Row>& rows);

/// Parse one cell as a finite double. Throws clear::Error naming the cell
/// ("row R, column C") on empty cells, trailing garbage ("1.5x"), overflow,
/// or non-numeric text.
double parse_double(const std::string& cell, std::size_t row,
                    std::size_t col);

/// Convert parsed rows into a numeric matrix. Every row must have the same
/// column count as the first (ragged rows raise a row-addressed error);
/// every cell must be numeric. `skip_header` drops the first row first.
std::vector<std::vector<double>> to_numeric(const std::vector<Row>& rows,
                                            bool skip_header = false);

/// Convenience: format a double with enough digits to round-trip.
std::string format_double(double v);

}  // namespace clear::csv
