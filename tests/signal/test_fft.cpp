#include "signal/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::dsp {
namespace {

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> data(256);
  for (auto& c : data) c = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<std::complex<double>> data(64, {0.0, 0.0});
  data[0] = 1.0;
  fft(data);
  for (const auto& c : data) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  const std::size_t bin = 9;
  for (std::size_t i = 0; i < n; ++i)
    data[i] = std::cos(2.0 * M_PI * bin * i / static_cast<double>(n));
  fft(data);
  EXPECT_NEAR(std::abs(data[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[bin + 2]), 0.0, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(100);
  EXPECT_THROW(fft(data), Error);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(2);
  std::vector<std::complex<double>> data(256);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = {rng.normal(), 0.0};
    time_energy += std::norm(c);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / data.size(), time_energy, 1e-8);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_THROW(next_pow2(0), Error);
}

TEST(Fft, MagnitudeSpectrumSize) {
  const std::vector<double> sig(100, 1.0);
  const auto mag = magnitude_spectrum(sig);
  EXPECT_EQ(mag.size(), 128 / 2 + 1);
}

std::vector<double> make_tone(double freq, double fs, std::size_t n,
                              double amp = 1.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = amp * std::sin(2.0 * M_PI * freq * i / fs);
  return x;
}

TEST(Fft, PeriodogramFindsToneFrequency) {
  const double fs = 64.0;
  const auto x = make_tone(8.0, fs, 512);
  const Psd psd = periodogram(x, fs);
  EXPECT_NEAR(peak_frequency(psd, 1.0, 30.0), 8.0, fs / 512.0 + 1e-9);
}

TEST(Fft, WelchFindsToneFrequency) {
  const double fs = 64.0;
  const auto x = make_tone(8.0, fs, 1024);
  const Psd psd = welch(x, fs, 256);
  EXPECT_NEAR(peak_frequency(psd, 1.0, 30.0), 8.0, fs / 256.0 + 1e-9);
}

TEST(Fft, WelchHandlesShortSignal) {
  const auto x = make_tone(4.0, 32.0, 40);  // Shorter than one segment.
  const Psd psd = welch(x, 32.0, 64);
  EXPECT_EQ(psd.power.size(), psd.freq.size());
  EXPECT_GT(psd.power.size(), 0u);
}

TEST(Fft, BandPowerConcentratedAroundTone) {
  const double fs = 64.0;
  const auto x = make_tone(8.0, fs, 2048);
  const Psd psd = welch(x, fs, 512);
  const double in_band = band_power(psd, 7.0, 9.0);
  const double out_band = band_power(psd, 15.0, 30.0);
  EXPECT_GT(in_band, 100.0 * std::max(out_band, 1e-12));
}

TEST(Fft, BandPowerScalesWithAmplitudeSquared) {
  const double fs = 64.0;
  const Psd p1 = welch(make_tone(8.0, fs, 2048, 1.0), fs, 512);
  const Psd p2 = welch(make_tone(8.0, fs, 2048, 2.0), fs, 512);
  const double r = band_power(p2, 7.0, 9.0) / band_power(p1, 7.0, 9.0);
  EXPECT_NEAR(r, 4.0, 0.1);
}

TEST(Fft, SpectralCentroidOfTone) {
  const double fs = 64.0;
  const auto x = make_tone(10.0, fs, 2048);
  const Psd psd = welch(x, fs, 512);
  EXPECT_NEAR(spectral_centroid(psd), 10.0, 0.5);
  EXPECT_LT(spectral_spread(psd), 2.0);
}

TEST(Fft, SpectralEntropyOrdersByBandwidth) {
  Rng rng(7);
  const double fs = 64.0;
  const auto tone = make_tone(10.0, fs, 2048);
  std::vector<double> noise(2048);
  for (auto& v : noise) v = rng.normal();
  const double h_tone = spectral_entropy(welch(tone, fs, 512));
  const double h_noise = spectral_entropy(welch(noise, fs, 512));
  EXPECT_LT(h_tone, h_noise);
}

TEST(Fft, RolloffMonotoneInFraction) {
  Rng rng(8);
  std::vector<double> noise(2048);
  for (auto& v : noise) v = rng.normal();
  const Psd psd = welch(noise, 64.0, 512);
  EXPECT_LE(spectral_rolloff(psd, 0.5), spectral_rolloff(psd, 0.95));
  EXPECT_THROW(spectral_rolloff(psd, 0.0), clear::Error);
}

TEST(Fft, SpectralMomentsOfTone) {
  const double fs = 64.0;
  const Psd psd = welch(make_tone(10.0, fs, 4096), fs, 1024);
  EXPECT_NEAR(spectral_moment(psd, 1), 10.0, 0.5);
  EXPECT_NEAR(spectral_moment(psd, 2), 100.0, 10.0);
}

}  // namespace
}  // namespace clear::dsp
