// Cold-start Cluster Assignment (CA) — paper §III-B-1.
//
// A new, unseen user provides a small amount of *unlabeled* data. The
// assignment computes the distance from the user's representation to every
// cluster's internal sub-cluster centroids C_{k,i} and picks the cluster
// minimizing the overall summation of those distances. Two alternative
// strategies (flat main-centroid distance, per-observation voting) are
// provided for the ablation study.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/global_clustering.hpp"

namespace clear::cluster {

enum class AssignStrategy {
  kSubCentroidSum,   ///< Paper method: argmin_k mean_i d(x, C_{k,i}).
  kFlatCentroid,     ///< Baseline: argmin_k d(x, C_k).
  kObservationVote,  ///< Each observation votes via its nearest sub-centroid.
};

struct AssignmentResult {
  std::size_t cluster = 0;      ///< Chosen cluster.
  std::vector<double> scores;   ///< Per-cluster score (lower is better).
};

/// Assign a new user from their unlabeled observations (normalized feature
/// vectors of the initial data window, paper: 10 % of the recording).
AssignmentResult assign_new_user(const std::vector<Point>& observations,
                                 const GlobalClusteringResult& clustering,
                                 AssignStrategy strategy =
                                     AssignStrategy::kSubCentroidSum);

}  // namespace clear::cluster
