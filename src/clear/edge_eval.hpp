// Edge validation (Table II): deploy the per-fold CLEAR checkpoints onto the
// simulated devices, re-run the cold-start evaluation at each device's
// precision, fine-tune on-device, and estimate time / power with the cost
// model.
#pragma once

#include "clear/evaluation.hpp"
#include "edge/cost_model.hpp"

namespace clear::core {

struct EdgeEvalResult {
  edge::DeviceKind device = edge::DeviceKind::kGpu;
  Aggregate no_ft;    ///< Deployed accuracy without fine-tuning.
  Aggregate rt;       ///< RT CLEAR at device precision.
  Aggregate with_ft;  ///< After on-device fine-tuning.
  edge::CostEstimate infer_cost;  ///< Per-map inference (MTC/MPC "Test").
  edge::CostEstimate ft_cost;     ///< Per-session ("Re-training").
};

struct EdgeEvalOptions {
  bool run_finetune = true;
  /// Activation-calibration percentile for the int8 path.
  double act_percentile = 99.5;
  std::function<void(std::size_t fold, std::size_t total)> progress;
};

/// Re-evaluate the folds captured by run_clear_validation(keep_artifacts) on
/// one device. The artifacts carry everything needed: normalizer, clustering,
/// per-cluster checkpoints, and the V_x CA/FT/test splits.
EdgeEvalResult run_edge_validation(const wemac::WemacDataset& dataset,
                                   const ClearConfig& config,
                                   const std::vector<ClearFoldArtifacts>& folds,
                                   edge::DeviceKind device,
                                   const EdgeEvalOptions& options = {});

/// Build a model of the given architecture from checkpoint bytes.
std::unique_ptr<nn::Sequential> model_from_checkpoint_bytes(
    const nn::CnnLstmConfig& config, const std::string& bytes);

}  // namespace clear::core
