#include "edge/qkernels.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace clear::edge {
namespace {

TEST(Int8Gemm, KnownValues) {
  const std::vector<std::int8_t> a = {1, 2, 3, 4};     // 2x2
  const std::vector<std::int8_t> b = {5, 6, 7, 8};     // 2x2
  std::vector<std::int32_t> c(4);
  int8_gemm(a, b, 2, 2, 2, c);
  EXPECT_EQ(c[0], 19);
  EXPECT_EQ(c[1], 22);
  EXPECT_EQ(c[2], 43);
  EXPECT_EQ(c[3], 50);
}

TEST(Int8Gemm, AccumulatorHandlesExtremes) {
  // 127 * 127 * k must not overflow int32 for realistic k.
  const std::size_t k = 1024;
  std::vector<std::int8_t> a(k, 127);
  std::vector<std::int8_t> b(k, 127);
  std::vector<std::int32_t> c(1);
  int8_gemm(a, b, 1, k, 1, c);
  EXPECT_EQ(c[0], 127 * 127 * static_cast<std::int32_t>(k));
}

TEST(Int8Gemm, SizeValidation) {
  std::vector<std::int8_t> a(4), b(4);
  std::vector<std::int32_t> c(3);  // Wrong.
  EXPECT_THROW(int8_gemm(a, b, 2, 2, 2, c), Error);
}

TEST(DequantizeAccum, AppliesCombinedScale) {
  const std::vector<std::int32_t> acc = {100, -50};
  std::vector<float> out(2);
  dequantize_accum(acc, 0.1f, 0.2f, out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
}

TEST(QuantizedDense, MatchesFloatDenseWithinQuantError) {
  Rng rng(1);
  Tensor w({8, 4});
  w.fill_normal(rng, 0.0f, 0.5f);
  Tensor bias({4});
  bias.fill_normal(rng, 0.0f, 0.1f);
  Tensor x({3, 8});
  x.fill_normal(rng, 0.0f, 1.0f);

  const QuantizedDense qd(w, bias);
  const QuantParams act = calibrate_max_abs(x.flat());
  const Tensor yq = qd.forward(x, act);

  Tensor yf = ops::matmul(x, w);
  ops::add_row_bias_inplace(yf, bias);

  // Error bound: ~k * (step_x*|w| + step_w*|x|) — loose empirical bound.
  for (std::size_t i = 0; i < yf.numel(); ++i)
    EXPECT_NEAR(yq[i], yf[i], 0.15f);
}

TEST(QuantizedDense, BitCompatibleWithFakeQuantization) {
  // int8 kernel == float path on QDQ'd operands (exactness of the scheme).
  Rng rng(2);
  Tensor w({6, 3});
  w.fill_normal(rng, 0.0f, 0.5f);
  const Tensor bias = Tensor::zeros({3});
  Tensor x({2, 6});
  x.fill_normal(rng, 0.0f, 1.0f);

  const QuantizedDense qd(w, bias);
  const QuantParams act = calibrate_max_abs(x.flat());
  const Tensor y_int8 = qd.forward(x, act);

  Tensor wq = w;
  fake_quantize_inplace(wq, qd.weight_params());
  Tensor xq = x;
  fake_quantize_inplace(xq, act);
  const Tensor y_fake = ops::matmul(xq, wq);

  for (std::size_t i = 0; i < y_int8.numel(); ++i)
    EXPECT_NEAR(y_int8[i], y_fake[i], 2e-5f);
}

TEST(QuantizedConv2d, MatchesFakeQuantFloatConv) {
  // int8 conv == float conv on QDQ'd weights and QDQ'd im2col patches.
  Rng rng(4);
  const std::size_t in_ch = 2, out_ch = 3, kh = 3, kw = 3;
  Tensor w({out_ch, in_ch * kh * kw});
  w.fill_normal(rng, 0.0f, 0.5f);
  Tensor bias({out_ch});
  bias.fill_normal(rng, 0.0f, 0.1f);
  Tensor x({2, in_ch, 6, 5});
  x.fill_normal(rng, 0.0f, 1.0f);

  const QuantizedConv2d qconv(w, bias, in_ch, kh, kw, 1, 1);
  const QuantParams act = calibrate_max_abs(x.flat());
  const Tensor y_int8 = qconv.forward(x, act);

  // Reference: fake-quantized float path through im2col + matmul.
  Tensor wq = w;
  fake_quantize_inplace(wq, qconv.weight_params());
  Tensor y_ref({2, out_ch, 6, 5});
  for (std::size_t b = 0; b < 2; ++b) {
    Tensor image({in_ch, 6, 5});
    std::copy(x.data() + b * in_ch * 30, x.data() + (b + 1) * in_ch * 30,
              image.data());
    Tensor cols = ops::im2col(image, kh, kw, 1, 1);
    fake_quantize_inplace(cols, act);
    const Tensor prod = ops::matmul(wq, cols);
    for (std::size_t oc = 0; oc < out_ch; ++oc)
      for (std::size_t i = 0; i < 30; ++i)
        y_ref.data()[b * out_ch * 30 + oc * 30 + i] =
            prod[oc * 30 + i] + bias[oc];
  }
  for (std::size_t i = 0; i < y_int8.numel(); ++i)
    EXPECT_NEAR(y_int8[i], y_ref[i], 5e-5f);
}

TEST(QuantizedConv2d, CloseToFloatConvWithinQuantError) {
  Rng rng(5);
  Tensor w({2, 1 * 3 * 3});
  w.fill_normal(rng, 0.0f, 0.5f);
  const Tensor bias = Tensor::zeros({2});
  Tensor x({1, 1, 8, 8});
  x.fill_normal(rng, 0.0f, 1.0f);
  const QuantizedConv2d qconv(w, bias, 1, 3, 3, 1, 1);
  const Tensor y = qconv.forward(x, calibrate_max_abs(x.flat()));
  // Float reference.
  const Tensor cols = ops::im2col(x.reshaped({1, 8, 8}), 3, 3, 1, 1);
  const Tensor ref = ops::matmul(w, cols);
  for (std::size_t i = 0; i < ref.numel(); ++i)
    EXPECT_NEAR(y[i], ref[i], 0.2f);
}

TEST(QuantizedConv2d, Validation) {
  Rng rng(6);
  Tensor w({2, 9});
  w.fill_normal(rng, 0.0f, 1.0f);
  EXPECT_THROW(QuantizedConv2d(w, Tensor::zeros({3}), 1, 3, 3, 1, 1),
               Error);  // Bias mismatch.
  EXPECT_THROW(QuantizedConv2d(w, Tensor::zeros({2}), 2, 3, 3, 1, 1),
               Error);  // in_ch*kh*kw mismatch.
  const QuantizedConv2d ok(w, Tensor::zeros({2}), 1, 3, 3, 1, 1);
  QuantParams act;
  EXPECT_THROW(ok.forward(Tensor({1, 2, 4, 4}), act), Error);
}

TEST(QuantizedDense, InputValidation) {
  Rng rng(3);
  Tensor w({4, 2});
  w.fill_normal(rng, 0.0f, 1.0f);
  const QuantizedDense qd(w, Tensor::zeros({2}));
  QuantParams act;
  EXPECT_THROW(qd.forward(Tensor({1, 3}), act), Error);
  EXPECT_THROW(QuantizedDense(w, Tensor::zeros({3})), Error);
}

}  // namespace
}  // namespace clear::edge
