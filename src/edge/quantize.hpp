// Numeric precision emulation for the edge targets.
//
//  - int8: symmetric per-tensor quantization with percentile calibration
//    (the Coral Edge TPU path — the paper attributes its accuracy loss to
//    the TPU "only supporting 8-bit data").
//  - fp16: IEEE half-precision rounding (the NCS2 path, which executes
//    FP16 natively).
//
// quantize/dequantize round-trips ("fake quantization") reproduce the
// numerical error of the integer pipeline inside the float graph; the true
// int8 kernels in qkernels.hpp are bit-compatible with this scheme.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace clear::edge {

/// Symmetric int8 quantization parameters: real = scale * q, q in [-127,127].
struct QuantParams {
  float scale = 1.0f;
};

/// Scale from the max-abs of the data (clips nothing).
QuantParams calibrate_max_abs(std::span<const float> data);

/// Scale from the `percentile`-th percentile of |data| (clips outliers; the
/// standard post-training calibration trick). percentile in (0, 100].
QuantParams calibrate_percentile(std::span<const float> data,
                                 double percentile);

/// Quantize one float to int8 under `params` (round-to-nearest, saturating).
std::int8_t quantize_value(float v, const QuantParams& params);
float dequantize_value(std::int8_t q, const QuantParams& params);

/// Quantize a whole tensor to int8.
std::vector<std::int8_t> quantize_tensor(const Tensor& t,
                                         const QuantParams& params);

/// Round-trip a tensor through int8 in place (fake quantization).
void fake_quantize_inplace(Tensor& t, const QuantParams& params);

/// Round a float through IEEE fp16 (round-to-nearest-even; overflow -> inf).
float round_fp16(float v);

/// Round-trip a tensor through fp16 in place.
void fp16_inplace(Tensor& t);

}  // namespace clear::edge
