// Thin POSIX TCP helpers for the net layer: RAII fds, nonblocking setup,
// and fault-guarded stream IO.
//
// Every byte the net layer moves goes through FaultedStream, whose
// read/write ops consult the deterministic network-fault knobs in
// src/common/fault: the short-write spec caps a send at a few bytes
// (forcing callers through their partial-write / backpressure paths), and
// the armed drop countdown severs the connection mid-operation (simulating
// a peer dying mid-request). With the knobs disarmed the guards are two
// branch instructions per syscall.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace clear::net {

/// "HOST:PORT" split into its parts. Port 0 asks the kernel for an
/// ephemeral port when listening.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parse "HOST:PORT" (throws clear::Error with the offending spec).
Endpoint parse_endpoint(const std::string& spec);

/// Create a nonblocking listening socket bound to the endpoint
/// (SO_REUSEADDR set). Throws clear::Error on failure.
int listen_tcp(const Endpoint& endpoint, int backlog = 64);

/// Blocking TCP connect. Throws clear::Error on failure.
int connect_tcp(const Endpoint& endpoint);

/// TCP connect with a deadline: a connection not established within
/// `timeout_ms` throws an addressed "net.timeout" clear::Error instead of
/// blocking in the kernel. `timeout_ms <= 0` means no deadline (identical
/// to the overload above). The returned fd is blocking.
int connect_tcp(const Endpoint& endpoint, int timeout_ms);

/// The port a bound socket actually landed on (resolves port 0).
std::uint16_t local_port(int fd);

void set_nonblocking(int fd, bool on);
void close_fd(int fd);

/// One read/write attempt's outcome.
struct IoResult {
  std::size_t n = 0;          ///< Bytes moved.
  bool closed = false;        ///< Peer EOF, hard error, or injected drop.
  bool would_block = false;   ///< EAGAIN on a nonblocking fd.
};

/// A socket whose IO is guarded by the deterministic network-fault knobs.
/// Does not own the fd's lifetime policy (callers close via close()), but
/// an injected drop closes it immediately — after that every op reports
/// closed, exactly like a real dead peer.
class FaultedStream {
 public:
  FaultedStream() = default;
  FaultedStream(int fd, std::uint64_t stream_id)
      : fd_(fd), stream_id_(stream_id) {}

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0; }
  /// True when the armed drop countdown fired on this stream.
  bool dropped() const { return dropped_; }

  IoResult read_some(void* buf, std::size_t n);
  IoResult write_some(const void* buf, std::size_t n);
  void close();

 private:
  /// Consult the drop knob before a syscall; severs the connection when it
  /// fires.
  bool drop_guard();

  int fd_ = -1;
  std::uint64_t stream_id_ = 0;
  std::uint64_t ops_ = 0;  ///< Guarded-op index (read and write share it).
  bool dropped_ = false;
};

}  // namespace clear::net
