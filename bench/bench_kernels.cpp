// Micro-benchmarks (google-benchmark): the op-level kernels behind the
// tables — fp32 GEMM vs int8 GEMM, conv/LSTM forward+backward, end-to-end
// CNN-LSTM inference at each precision, and the 123-feature extraction.
//
// The binary first prints a thread-count sweep (1/2/4/hardware) for the two
// parallelized hot kernels — fp32 GEMM and k-means — with speedups relative
// to 1 thread, then runs the google-benchmark suite (pass --benchmark_filter
// etc. as usual).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "cluster/kmeans.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "edge/engine.hpp"
#include "edge/qkernels.hpp"
#include "features/feature_map.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "tensor/ops.hpp"
#include "wemac/synth.hpp"

namespace {

using namespace clear;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

void BM_MatmulF32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor af = random_tensor({n, n}, 3);
  const Tensor bf = random_tensor({n, n}, 4);
  const auto qa = edge::quantize_tensor(af, edge::calibrate_max_abs(af.flat()));
  const auto qb = edge::quantize_tensor(bf, edge::calibrate_max_abs(bf.flat()));
  std::vector<std::int32_t> acc(n * n);
  for (auto _ : state) {
    edge::int8_gemm(qa, qb, n, n, n, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void BM_QuantizedConv(benchmark::State& state) {
  // The paper model's second conv layer (12 channels over 6) in int8.
  Rng rng(21);
  Tensor w({12, 6 * 3 * 3});
  w.fill_normal(rng, 0.0f, 0.3f);
  Tensor bias({12});
  bias.fill_normal(rng, 0.0f, 0.1f);
  const edge::QuantizedConv2d conv(w, bias, 6, 3, 3, 1, 1);
  Tensor x({1, 6, 61, 6});
  x.fill_normal(rng, 0.0f, 1.0f);
  const edge::QuantParams act = edge::calibrate_max_abs(x.flat());
  for (auto _ : state) {
    Tensor y = conv.forward(x, act);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedConv);

nn::CnnLstmConfig bench_model_config() {
  nn::CnnLstmConfig c;
  c.feature_dim = 123;
  c.window_count = 12;
  c.conv1_channels = 6;
  c.conv2_channels = 12;
  c.lstm_hidden = 32;
  c.dropout = 0.0;
  return c;
}

void BM_CnnLstmForward(benchmark::State& state) {
  Rng rng(5);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  model->set_training(false);
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const Tensor batch = random_tensor({batch_size, 1, 123, 12}, 6);
  for (auto _ : state) {
    Tensor out = model->forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_CnnLstmForward)->Arg(1)->Arg(16);

void BM_CnnLstmTrainStep(benchmark::State& state) {
  Rng rng(7);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  model->set_training(true);
  const Tensor batch = random_tensor({16, 1, 123, 12}, 8);
  std::vector<std::size_t> labels(16);
  for (std::size_t i = 0; i < 16; ++i) labels[i] = i % 2;
  for (auto _ : state) {
    const Tensor logits = model->forward(batch);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    const Tensor grad = model->backward(loss.grad_logits);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_CnnLstmTrainStep);

void BM_EdgeInference(benchmark::State& state) {
  const auto precision = static_cast<edge::Precision>(state.range(0));
  Rng rng(9);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  edge::EngineConfig ec;
  ec.precision = precision;
  edge::EdgeEngine engine(std::move(model), ec);
  std::vector<Tensor> calib;
  for (std::uint64_t i = 0; i < 8; ++i)
    calib.push_back(random_tensor({123, 12}, 10 + i));
  std::vector<const Tensor*> calib_ptrs;
  for (const Tensor& t : calib) calib_ptrs.push_back(&t);
  engine.calibrate(calib_ptrs);
  const Tensor batch = random_tensor({1, 1, 123, 12}, 20);
  for (auto _ : state) {
    Tensor out = engine.forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EdgeInference)
    ->Arg(static_cast<int>(edge::Precision::kFp32))
    ->Arg(static_cast<int>(edge::Precision::kFp16))
    ->Arg(static_cast<int>(edge::Precision::kInt8));

void BM_FeatureExtraction(benchmark::State& state) {
  // One 10 s multi-modal window -> 123 features.
  Rng prof_rng(11);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[0], 0, 0, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kFear;
  stim.duration_s = 10.0;
  Rng trial_rng(12);
  const wemac::TrialSignals trial =
      wemac::synthesize_trial(profile, stim, {}, trial_rng);
  const auto windows = wemac::slice_windows(trial, 10.0);
  for (auto _ : state) {
    auto f = features::extract_window_features(windows[0]);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_TrialSynthesis(benchmark::State& state) {
  Rng prof_rng(13);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[1], 0, 1, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kJoy;
  stim.duration_s = 120.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto t = wemac::synthesize_trial(profile, stim, {}, rng);
    benchmark::DoNotOptimize(t.bvp.data());
  }
}
BENCHMARK(BM_TrialSynthesis);

void BM_Fp16RoundTrip(benchmark::State& state) {
  Tensor t = random_tensor({123, 12}, 14);
  for (auto _ : state) {
    Tensor copy = t;
    edge::fp16_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_FakeQuantize(benchmark::State& state) {
  Tensor t = random_tensor({123, 12}, 15);
  const edge::QuantParams p = edge::calibrate_max_abs(t.flat());
  for (auto _ : state) {
    Tensor copy = t;
    edge::fake_quantize_inplace(copy, p);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FakeQuantize);

void BM_MatmulF32Threads(benchmark::State& state) {
  const NumThreadsGuard guard(static_cast<std::size_t>(state.range(1)));
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulF32Threads)->Apply([](benchmark::internal::Benchmark* b) {
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              hardware_threads()})
    b->Args({256, static_cast<std::int64_t>(t)});
});

void BM_KMeansThreads(benchmark::State& state) {
  const NumThreadsGuard guard(static_cast<std::size_t>(state.range(0)));
  Rng data_rng(31);
  std::vector<cluster::Point> points;
  for (std::size_t i = 0; i < 2000; ++i) {
    cluster::Point p(16);
    const double center = static_cast<double>(i % 8) * 4.0;
    for (double& v : p) v = center + data_rng.normal(0.0, 1.0);
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    Rng rng(7);
    const cluster::KMeansResult r = cluster::kmeans(points, 8, rng);
    benchmark::DoNotOptimize(r.inertia);
  }
}
BENCHMARK(BM_KMeansThreads)->Apply([](benchmark::internal::Benchmark* b) {
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              hardware_threads()})
    b->Args({static_cast<std::int64_t>(t)});
});

// ---------------------------------------------------------------------------
// Thread-count sweep printed before the google-benchmark suite: wall-clock
// and speedup vs 1 thread for the two parallel kernels. Results are
// bit-identical at every row (checked for k-means inertia here; the full
// guarantee is covered by test_parallel_determinism).

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

void print_thread_sweep() {
  std::vector<std::size_t> counts = {1, 2, 4, hardware_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  const Tensor a = random_tensor({384, 384}, 1);
  const Tensor b = random_tensor({384, 384}, 2);
  Rng data_rng(31);
  std::vector<cluster::Point> points;
  for (std::size_t i = 0; i < 2000; ++i) {
    cluster::Point p(16);
    const double center = static_cast<double>(i % 8) * 4.0;
    for (double& v : p) v = center + data_rng.normal(0.0, 1.0);
    points.push_back(std::move(p));
  }

  std::printf("thread sweep (best of 5, ms; speedup vs 1 thread)\n");
  std::printf("%8s %14s %14s\n", "threads", "gemm 384^3", "kmeans 2000x16");
  double gemm_base = 0.0;
  double km_base = 0.0;
  double km_inertia_base = 0.0;
  for (const std::size_t t : counts) {
    const NumThreadsGuard guard(t);
    const double gemm_ms = time_best_of(5, [&] {
      Tensor c = ops::matmul(a, b);
      benchmark::DoNotOptimize(c.data());
    });
    double inertia = 0.0;
    const double km_ms = time_best_of(5, [&] {
      Rng rng(7);
      inertia = cluster::kmeans(points, 8, rng).inertia;
    });
    if (t == 1) {
      gemm_base = gemm_ms;
      km_base = km_ms;
      km_inertia_base = inertia;
    } else if (inertia != km_inertia_base) {
      std::printf("WARNING: k-means inertia drifted at %zu threads\n", t);
    }
    std::printf("%8zu %9.2f %4.2fx %9.2f %4.2fx\n", t, gemm_ms,
                gemm_base / gemm_ms, km_ms, km_base / km_ms);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_thread_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
