// Electrodermal activity (GSR) feature block: 34 features per window,
// matching the paper's count (Sun et al. feature-map recipe: 34 GSR).
//
// The block covers raw-signal statistics, first/second difference dynamics,
// tonic/phasic decomposition (0.05 Hz low-pass split), SCR event statistics
// from peak detection on the phasic component, and low-frequency band
// energies of the phasic spectrum.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace clear::features {

inline constexpr std::size_t kGsrFeatureCount = 34;

/// Feature names, in extraction order. Size == kGsrFeatureCount.
const std::vector<std::string>& gsr_feature_names();

/// Extract the 34 GSR features from one window sampled at `sample_rate` Hz.
/// The window must contain at least 8 samples.
std::vector<double> extract_gsr_features(std::span<const double> gsr,
                                         double sample_rate);

}  // namespace clear::features
