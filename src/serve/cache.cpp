#include "serve/cache.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"

namespace clear::serve {

CheckpointCache::CheckpointCache(BlobLoader cluster_blob,
                                 GeneralLoader general_blob,
                                 EngineBuilder builder,
                                 std::size_t budget_bytes)
    : cluster_blob_(std::move(cluster_blob)),
      general_blob_(std::move(general_blob)),
      builder_(std::move(builder)),
      budget_(budget_bytes) {
  CLEAR_CHECK_MSG(cluster_blob_ && general_blob_ && builder_,
                  "CheckpointCache requires all three loader hooks");
  CLEAR_CHECK_MSG(budget_ >= 1, "cache budget must be positive");
}

std::shared_ptr<CheckpointCache::Entry> CheckpointCache::acquire(
    const BatchKey& key) {
  CLEAR_CHECK_MSG(key.kind != BatchKey::Kind::kPersonal,
                  "personal engines are session-owned, not cached");
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    CLEAR_OBS_COUNT("serve.cache.hits", 1);
    touch(it->second.lru_it);
    return it->second.entry;
  }

  ++stats_.misses;
  CLEAR_OBS_COUNT("serve.cache.misses", 1);
  auto entry = std::make_shared<Entry>();
  entry->key = key;

  if (key.kind == BatchKey::Kind::kCluster) {
    const std::string blob = cluster_blob_(key.id);
    if (!blob.empty()) {
      try {
        entry->engine = builder_(blob, key.precision);
        // Charge what the engine occupies resident, not the blob size: a
        // delta/compressed blob is small on disk but reconstructs to a
        // full-size model, and budgeting by disk bytes would let the cache
        // hold many times its nominal budget in memory.
        entry->bytes = entry->engine->resident_bytes();
      } catch (const Error& e) {
        CLEAR_WARN("cluster " << key.id << " checkpoint unusable ("
                              << e.what() << "); serving the general model");
      }
    }
    if (!entry->engine) {
      // Degrade to the general blob; never serve wrong weights silently.
      const std::string general = general_blob_();
      CLEAR_CHECK_MSG(!general.empty(),
                      "cluster " << key.id
                                 << " checkpoint missing/corrupt and no "
                                    "general fallback available");
      entry->engine = builder_(general, key.precision);
      entry->bytes = entry->engine->resident_bytes();
      entry->fallback = true;
      ++stats_.fallbacks;
      CLEAR_OBS_COUNT("serve.cache.fallbacks", 1);
    }
  } else {
    const std::string general = general_blob_();
    CLEAR_CHECK_MSG(!general.empty(), "no general checkpoint to serve");
    entry->engine = builder_(general, key.precision);
    entry->bytes = entry->engine->resident_bytes();
  }

  lru_.push_back(key);
  entries_[key] = Resident{entry, std::prev(lru_.end())};
  stats_.bytes_in_use += entry->bytes;
  evict_over_budget(key);
  return entry;
}

void CheckpointCache::touch(std::list<BatchKey>::iterator it) {
  lru_.splice(lru_.end(), lru_, it);  // Move to most-recently-used.
}

void CheckpointCache::evict_over_budget(const BatchKey& keep) {
  // Evict LRU-first until within budget. The just-inserted entry is never
  // evicted — a single blob larger than the budget still serves (the cache
  // simply holds that one entry over budget until the next insert).
  while (stats_.bytes_in_use > budget_ && !lru_.empty()) {
    const BatchKey victim = lru_.front();
    if (victim == keep) break;
    const auto it = entries_.find(victim);
    stats_.bytes_in_use -= it->second.entry->bytes;
    entries_.erase(it);
    lru_.pop_front();
    ++stats_.evictions;
    CLEAR_OBS_COUNT("serve.cache.evictions", 1);
  }
}

std::vector<BatchKey> CheckpointCache::resident_lru() const {
  return std::vector<BatchKey>(lru_.begin(), lru_.end());
}

}  // namespace clear::serve
