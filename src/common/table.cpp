#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace clear {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CLEAR_CHECK_MSG(!header_.empty(), "table header must not be empty");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  CLEAR_CHECK_MSG(row.size() == header_.size(),
                  "row arity " << row.size() << " != header arity "
                               << header_.size());
  Entry e;
  e.cells = std::move(row);
  entries_.push_back(std::move(e));
}

void AsciiTable::add_section(std::string label) {
  Entry e;
  e.is_section = true;
  e.section = std::move(label);
  entries_.push_back(std::move(e));
}

void AsciiTable::set_title(std::string title) { title_ = std::move(title); }

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Entry& e : entries_) {
    if (e.is_section) continue;
    for (std::size_t c = 0; c < e.cells.size(); ++c)
      widths[c] = std::max(widths[c], e.cells[c].size());
  }
  std::size_t total = header_.size() * 3 + 1;
  for (const std::size_t w : widths) total += w;

  auto rule = [&] { return std::string(total, '-') + "\n"; };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ';
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
      os << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule() << render_row(header_) << rule();
  for (const Entry& e : entries_) {
    if (e.is_section) {
      os << "| " << e.section;
      const std::size_t used = 2 + e.section.size();
      if (used + 1 < total) os << std::string(total - used - 1, ' ');
      os << "|\n" << rule();
    } else {
      os << render_row(e.cells);
    }
  }
  os << rule();
  return os.str();
}

void AsciiTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace clear
