// Reproduces Table II (bottom part): accuracy after on-device fine-tuning
// per platform, plus mean time consumption (MTC) and mean power consumption
// (MPC) for the re-training session and per-map inference ("Test").
//
// Fine-tuning is precision-constrained: every optimizer step projects the
// trainable weights onto the device's numeric grid (int8 for the Coral TPU,
// fp16 for the NCS2), which is why the TPU recovers less accuracy. Time and
// power come from the calibrated per-device cost model (DESIGN.md §2).
//
// Flags: --quick --volunteers=N --epochs=N --ft-epochs=N --max-folds=N
//        --seed=N --cache-dir=DIR
#include "bench_common.hpp"
#include "clear/edge_eval.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);

  std::printf("Table II (bottom) harness: %zu volunteers, %zu maps\n",
              dataset.n_volunteers(), dataset.samples().size());

  core::ClearOptions options;
  options.max_folds = static_cast<std::size_t>(args.get_int("max-folds", 0));
  options.keep_artifacts = true;
  options.run_finetune = true;  // GPU row = CLEAR w FT.
  options.progress = [](std::size_t fold, std::size_t total) {
    CLEAR_INFO("CLEAR fold " << fold + 1 << "/" << total);
  };
  CLEAR_INFO("running CLEAR validation with fine-tuning (GPU reference)...");
  const core::ClearValidationResult clear_res =
      core::run_clear_validation(dataset, config, options);

  core::EdgeEvalOptions edge_options;
  edge_options.run_finetune = true;
  edge_options.progress = [](std::size_t fold, std::size_t total) {
    if ((fold + 1) % 10 == 0) CLEAR_INFO("edge fold " << fold + 1 << "/" << total);
  };
  CLEAR_INFO("on-device fine-tuning: Coral TPU (int8-constrained)...");
  const core::EdgeEvalResult tpu = core::run_edge_validation(
      dataset, config, clear_res.artifacts, edge::DeviceKind::kCoralTpu,
      edge_options);
  CLEAR_INFO("on-device fine-tuning: Pi + NCS2 (fp16-constrained)...");
  const core::EdgeEvalResult ncs2 = core::run_edge_validation(
      dataset, config, clear_res.artifacts, edge::DeviceKind::kPiNcs2,
      edge_options);

  AsciiTable table({"Metric", "GPU (paper/meas)", "TPU (paper/meas)",
                    "Pi+NCS2 (paper/meas)", "unit"});
  table.set_title(
      "TABLE II (bottom) — after on-device fine-tuning; MTC/MPC from the "
      "device cost model");
  table.add_row({"Accuracy", bench::paper_vs(86.34, clear_res.with_ft.accuracy.mean),
                 bench::paper_vs(79.40, tpu.with_ft.accuracy.mean),
                 bench::paper_vs(84.49, ncs2.with_ft.accuracy.mean), "%"});
  table.add_row({"Accuracy std",
                 bench::paper_vs(4.04, clear_res.with_ft.accuracy.stddev),
                 bench::paper_vs(4.51, tpu.with_ft.accuracy.stddev),
                 bench::paper_vs(4.82, ncs2.with_ft.accuracy.stddev), "%"});
  table.add_row({"F1-score", bench::paper_vs(86.03, clear_res.with_ft.f1.mean),
                 bench::paper_vs(79.14, tpu.with_ft.f1.mean),
                 bench::paper_vs(84.07, ncs2.with_ft.f1.mean), "%"});
  table.add_row({"F1 std", bench::paper_vs(5.04, clear_res.with_ft.f1.stddev),
                 bench::paper_vs(4.66, tpu.with_ft.f1.stddev),
                 bench::paper_vs(5.16, ncs2.with_ft.f1.stddev), "%"});
  table.add_row({"MTC Re-training", "   -- /    -- ",
                 bench::paper_vs(32.48, tpu.ft_cost.seconds),
                 bench::paper_vs(78.52, ncs2.ft_cost.seconds), "s"});
  table.add_row({"MPC Re-training", "   -- /    -- ",
                 bench::paper_vs(1.82, tpu.ft_cost.power_w),
                 bench::paper_vs(3.78, ncs2.ft_cost.power_w), "W"});
  table.add_row({"MTC Test", "   -- /    -- ",
                 bench::paper_vs(47.31, tpu.infer_cost.seconds * 1e3),
                 bench::paper_vs(239.70, ncs2.infer_cost.seconds * 1e3), "ms"});
  table.add_row({"MPC Test", "   -- /    -- ",
                 bench::paper_vs(1.64, tpu.infer_cost.power_w),
                 bench::paper_vs(3.43, ncs2.infer_cost.power_w), "W"});
  table.add_row({"MPC Baseline", "   -- /    -- ",
                 bench::paper_vs(
                     1.28, edge::device_spec(edge::DeviceKind::kCoralTpu)
                               .idle_power_w),
                 bench::paper_vs(
                     2.76, edge::device_spec(edge::DeviceKind::kPiNcs2)
                               .idle_power_w),
                 "W"});
  std::printf("\n");
  table.print();
  std::printf(
      "\nNote: MTC/MPC come from the analytic device cost model calibrated "
      "against the paper's\nmeasurements (the physical boards are simulated; "
      "see DESIGN.md substitutions).\n");
  return 0;
}
