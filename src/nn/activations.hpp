// Stateless / mask-based layers: ReLU, Dropout, Flatten, and the
// conv-to-sequence reshape feeding the LSTM.
#pragma once

#include "nn/layer.hpp"

namespace clear::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  LayerPtr clone() const override { return std::make_unique<ReLU>(*this); }

 private:
  Tensor mask_;  ///< 1 where input > 0.
};

/// Inverted dropout: active only in training mode.
class Dropout : public Layer {
 public:
  Dropout(double rate, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }
  LayerPtr clone() const override { return std::make_unique<Dropout>(*this); }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;
  bool identity_pass_ = true;
};

/// [N, ...] -> [N, prod(...)].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }
  LayerPtr clone() const override { return std::make_unique<Flatten>(*this); }

 private:
  std::vector<std::size_t> cached_shape_;
};

/// [N, C, H, W] -> [N, W, C*H]: turns the conv feature maps into a sequence
/// along the window axis (time) for the LSTM, each step carrying the full
/// channel-by-feature column.
class ToSequence : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ToSequence"; }
  LayerPtr clone() const override {
    return std::make_unique<ToSequence>(*this);
  }

 private:
  std::vector<std::size_t> cached_shape_;
};

}  // namespace clear::nn
