#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace clear::nn {
namespace {

CnnLstmConfig tiny() {
  CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 3;
  c.lstm_hidden = 6;
  c.dropout = 0.0;
  return c;
}

class VariantSweep : public ::testing::TestWithParam<ModelFactory> {};

TEST_P(VariantSweep, ForwardShapeIsLogits) {
  Rng rng(1);
  auto model = GetParam()(tiny(), rng);
  Rng xr(2);
  Tensor x({3, 1, 16, 8});
  x.fill_normal(xr, 0.0f, 1.0f);
  model->set_training(false);
  const Tensor y = model->forward(x);
  EXPECT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.extent(0), 3u);
  EXPECT_EQ(y.extent(1), 2u);
}

TEST_P(VariantSweep, TrainsOnSeparableTask) {
  Rng data_rng(3);
  std::vector<Tensor> maps;
  MapDataset data;
  for (std::size_t i = 0; i < 24; ++i) {
    Tensor m({16, 8});
    for (std::size_t r = 0; r < 16; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        m.at2(r, c) = static_cast<float>(
            data_rng.normal(i % 2 && r < 8 ? 1.5 : 0.0, 0.5));
    maps.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < maps.size(); ++i) {
    data.maps.push_back(&maps[i]);
    data.labels.push_back(i % 2);
  }
  Rng rng(4);
  auto model = GetParam()(tiny(), rng);
  TrainConfig tc;
  tc.epochs = 14;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  tc.keep_best = false;
  const TrainHistory h = train_classifier(*model, data, tc);
  EXPECT_LT(h.train_loss.back(), h.train_loss.front());
  EXPECT_GT(evaluate(*model, data).accuracy, 0.7);
}

INSTANTIATE_TEST_SUITE_P(Architectures, VariantSweep,
                         ::testing::Values(&build_cnn_lstm, &build_cnn_only,
                                           &build_lstm_only));

TEST(ModelVariants, ParameterCountsDiffer) {
  Rng r1(1), r2(2), r3(3);
  auto a = build_cnn_lstm(tiny(), r1);
  auto b = build_cnn_only(tiny(), r2);
  auto c = build_lstm_only(tiny(), r3);
  EXPECT_NE(a->parameter_count(), b->parameter_count());
  EXPECT_NE(a->parameter_count(), c->parameter_count());
  // LSTM-only has no conv parameters: fewer layers.
  EXPECT_LT(c->size(), a->size());
}

TEST(ModelVariants, CnnLstmFineTuneBoundarySplitsConvFromHead) {
  Rng rng(5);
  auto model = build_cnn_lstm(tiny(), rng);
  model->freeze_below(fine_tune_boundary());
  std::size_t frozen = 0;
  std::size_t live = 0;
  for (Param* p : model->parameters()) (p->frozen ? frozen : live) += 1;
  EXPECT_EQ(frozen, 4u);  // Two convs (weight+bias each).
  EXPECT_EQ(live, 5u);    // LSTM (3) + dense (2).
}

}  // namespace
}  // namespace clear::nn
