// Checkpointing: save / restore the parameter values of a model.
//
// The format stores (name, tensor) pairs in parameter order. Loading
// validates count, names, and shapes against the destination model, so a
// checkpoint can only be restored into an architecturally identical network
// — exactly the contract the CLEAR pipeline needs when shipping per-cluster
// "best checkpoints" to the edge.
//
// Integrity (format v2, the default): the (name, tensor) payload is wrapped
// in a versioned header with its byte length and a CRC-32 footer, so storage
// faults surface as precise errors instead of silently wrong weights:
//   * short file            -> "truncated checkpoint"
//   * bit flip anywhere     -> "checkpoint CRC mismatch" (or a header error)
//   * wrong architecture    -> name/shape/count mismatch (payload parse)
// Legacy v1 checkpoints (unversioned, no CRC) still load. File saves are
// atomic: the blob is written to `<path>.tmp` and renamed into place, so a
// crashed writer can never leave a half-written checkpoint at `path`.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace clear::nn {

/// On-disk checkpoint flavor. kCrcV2 is the default; kLegacyV1 exists so
/// tests can produce pre-integrity-era files.
enum class CheckpointFormat { kLegacyV1, kCrcV2 };

/// Serialize all parameter values of `model` to a binary stream/file.
void save_checkpoint(std::ostream& os, Sequential& model,
                     CheckpointFormat format = CheckpointFormat::kCrcV2);
void save_checkpoint_file(const std::string& path, Sequential& model);

/// Restore parameter values in place (accepts v1 and v2 blobs). Throws
/// clear::Error on any mismatch, truncation, or CRC failure.
void load_checkpoint(std::istream& is, Sequential& model);
void load_checkpoint_file(const std::string& path, Sequential& model);

/// In-memory snapshot of parameter values (used to keep the best epoch).
std::vector<Tensor> snapshot_parameters(Sequential& model);
void restore_parameters(Sequential& model, const std::vector<Tensor>& snap);

}  // namespace clear::nn
