// Parameterized gradient-check sweeps: analytic backward == numeric
// gradient for every convolution geometry and LSTM shape the CLEAR models
// can instantiate (not just the single configuration of the paper).
#include <gtest/gtest.h>

#include "../nn/gradcheck.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/pool.hpp"

namespace clear::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

// ---- Conv2d geometry sweep ----------------------------------------------------

struct ConvCase {
  std::size_t in_ch, out_ch, kh, kw, stride, pad, h, w;
};

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, AnalyticMatchesNumeric) {
  const ConvCase& c = GetParam();
  Rng rng(c.in_ch * 100 + c.out_ch * 10 + c.kh);
  Conv2d conv(c.in_ch, c.out_ch, c.kh, c.kw, c.stride, c.pad, rng);
  testing::check_layer_gradients(
      conv, random_tensor({2, c.in_ch, c.h, c.w}, c.h * 7 + c.w), 99);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 1, 0, 4, 4},    // Pointwise.
                      ConvCase{1, 2, 3, 3, 1, 1, 6, 5},    // Paper-style.
                      ConvCase{2, 3, 3, 3, 1, 1, 5, 4},    // Multi-channel.
                      ConvCase{1, 2, 3, 3, 2, 0, 7, 7},    // Strided.
                      ConvCase{2, 2, 5, 3, 1, 2, 8, 6},    // Rectangular.
                      ConvCase{3, 1, 1, 3, 1, 1, 4, 6}));  // Row kernel.

// ---- LSTM shape sweep -----------------------------------------------------------

struct LstmCase {
  std::size_t batch, time, dim, hidden;
};

class LstmGradSweep : public ::testing::TestWithParam<LstmCase> {};

TEST_P(LstmGradSweep, AnalyticMatchesNumeric) {
  const LstmCase& c = GetParam();
  Rng rng(c.batch * 1000 + c.time * 100 + c.dim * 10 + c.hidden);
  Lstm lstm(c.dim, c.hidden, rng);
  testing::check_layer_gradients(
      lstm, random_tensor({c.batch, c.time, c.dim}, c.time * 17 + c.dim), 98);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LstmGradSweep,
                         ::testing::Values(LstmCase{1, 1, 1, 1},
                                           LstmCase{1, 2, 3, 2},
                                           LstmCase{2, 3, 2, 4},
                                           LstmCase{3, 5, 4, 3},
                                           LstmCase{1, 8, 2, 2}));

// ---- Dense shape sweep ------------------------------------------------------------

class DenseGradSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(DenseGradSweep, AnalyticMatchesNumeric) {
  const auto [in, out] = GetParam();
  Rng rng(in * 31 + out);
  Dense dense(in, out, rng);
  testing::check_layer_gradients(dense,
                                 random_tensor({3, in}, in * 13 + out), 97);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseGradSweep,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(4, 2),
                      std::make_pair<std::size_t, std::size_t>(2, 8),
                      std::make_pair<std::size_t, std::size_t>(16, 16)));

// ---- MaxPool window sweep -----------------------------------------------------------

class PoolGradSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PoolGradSweep, AnalyticMatchesNumeric) {
  const auto [kh, kw] = GetParam();
  MaxPool2d pool(kh, kw);
  // Distinct values prevent argmax ties under perturbation.
  Tensor x({2, 2, 6, 6});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = 0.37f * static_cast<float>(i % 13) +
           0.011f * static_cast<float>(i);
  testing::check_layer_gradients(pool, x, 96);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, PoolGradSweep,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(2, 2),
                      std::make_pair<std::size_t, std::size_t>(3, 2),
                      std::make_pair<std::size_t, std::size_t>(2, 3),
                      std::make_pair<std::size_t, std::size_t>(3, 3)));

}  // namespace
}  // namespace clear::nn
