// Lloyd's k-means with k-means++ seeding and multi-restart, over dense
// double vectors. This is the primitive beneath the paper's Global
// Clustering (GC) and the per-cluster sub-cluster hierarchy used by the
// cold-start Cluster Assignment (CA).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace clear::cluster {

using Point = std::vector<double>;

/// Squared Euclidean distance. Dimensions must match.
double squared_distance(const Point& a, const Point& b);
/// Euclidean distance.
double distance(const Point& a, const Point& b);
/// Component-wise mean of a non-empty set of points.
Point mean_point(const std::vector<const Point*>& points);

struct KMeansOptions {
  std::size_t max_iterations = 100;
  std::size_t restarts = 8;       ///< Independent k-means++ runs; best kept.
  double tolerance = 1e-7;        ///< Relative inertia improvement to stop.
};

struct KMeansResult {
  std::vector<Point> centroids;          ///< k centroids.
  std::vector<std::size_t> assignment;   ///< Cluster id per input point.
  double inertia = 0.0;                  ///< Sum of squared distances.
  std::size_t iterations = 0;            ///< Iterations of the best run.
};

/// Run k-means on `points` (all same dimension, size >= k, k >= 1).
/// Deterministic given `rng` state. Empty clusters are re-seeded from the
/// point farthest from its centroid.
KMeansResult kmeans(const std::vector<Point>& points, std::size_t k,
                    Rng& rng, const KMeansOptions& options = {});

/// Index of the nearest centroid to `p`.
std::size_t nearest_centroid(const Point& p,
                             const std::vector<Point>& centroids);

}  // namespace clear::cluster
