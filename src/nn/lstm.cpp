#include "nn/lstm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace clear::nn {

namespace {
float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : in_(input_dim),
      hidden_(hidden_dim),
      wx_("lstm.wx", Tensor({input_dim, 4 * hidden_dim})),
      wh_("lstm.wh", Tensor({hidden_dim, 4 * hidden_dim})),
      b_("lstm.b", Tensor({4 * hidden_dim})) {
  const float bx = std::sqrt(6.0f / static_cast<float>(in_ + 4 * hidden_));
  const float bh = std::sqrt(6.0f / static_cast<float>(hidden_ + 4 * hidden_));
  wx_.value.fill_uniform(rng, -bx, bx);
  wh_.value.fill_uniform(rng, -bh, bh);
  b_.value.zero();
  // Forget-gate bias = 1 (gates packed i, f, g, o).
  for (std::size_t j = hidden_; j < 2 * hidden_; ++j) b_.value[j] = 1.0f;
}

Tensor Lstm::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(input.rank() == 3 && input.extent(2) == in_,
                  "Lstm expects [N, T, " << in_ << "], got "
                                         << input.shape_str());
  const std::size_t n = input.extent(0);
  const std::size_t t_steps = input.extent(1);
  CLEAR_CHECK_MSG(t_steps >= 1, "Lstm needs at least one time step");
  cached_batch_ = n;
  cached_time_ = t_steps;
  steps_.clear();
  steps_.resize(t_steps);

  Tensor h({n, hidden_});
  Tensor c({n, hidden_});
  for (std::size_t t = 0; t < t_steps; ++t) {
    StepCache& sc = steps_[t];
    sc.x = Tensor({n, in_});
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t d = 0; d < in_; ++d)
        sc.x.at2(b, d) = input.at3(b, t, d);
    sc.h_prev = h;
    sc.c_prev = c;

    // z = x*Wx + h*Wh + b, kept as three explicit steps in this exact
    // order: fusing the bias into either GEMM would change the elementwise
    // addition order ((x·Wx + b) + h·Wh vs (x·Wx + h·Wh) + b) and fork the
    // historical goldens. The workspaces just avoid two allocations per
    // time step; numerics are untouched.
    ops::matmul_into(sc.x, wx_.value, z_ws_);              // [N, 4H]
    ops::matmul_into(sc.h_prev, wh_.value, zh_ws_);        // [N, 4H]
    Tensor& z = z_ws_;
    ops::add_inplace(z, zh_ws_);
    ops::add_row_bias_inplace(z, b_.value);

    sc.i = Tensor({n, hidden_});
    sc.f = Tensor({n, hidden_});
    sc.g = Tensor({n, hidden_});
    sc.o = Tensor({n, hidden_});
    sc.c = Tensor({n, hidden_});
    sc.tanh_c = Tensor({n, hidden_});
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float zi = z.at2(b, j);
        const float zf = z.at2(b, hidden_ + j);
        const float zg = z.at2(b, 2 * hidden_ + j);
        const float zo = z.at2(b, 3 * hidden_ + j);
        const float iv = sigmoidf(zi);
        const float fv = sigmoidf(zf);
        const float gv = std::tanh(zg);
        const float ov = sigmoidf(zo);
        const float cv = fv * sc.c_prev.at2(b, j) + iv * gv;
        sc.i.at2(b, j) = iv;
        sc.f.at2(b, j) = fv;
        sc.g.at2(b, j) = gv;
        sc.o.at2(b, j) = ov;
        sc.c.at2(b, j) = cv;
        sc.tanh_c.at2(b, j) = std::tanh(cv);
      }
    }
    c = sc.c;
    h = Tensor({n, hidden_});
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t j = 0; j < hidden_; ++j)
        h.at2(b, j) = sc.o.at2(b, j) * sc.tanh_c.at2(b, j);
    if (state_transform_) {
      state_transform_(h);
      state_transform_(c);
    }
  }
  return h;
}

Tensor Lstm::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(!steps_.empty(), "backward before forward");
  const std::size_t n = cached_batch_;
  const std::size_t t_steps = cached_time_;
  CLEAR_CHECK_MSG(grad_output.rank() == 2 && grad_output.extent(0) == n &&
                      grad_output.extent(1) == hidden_,
                  "Lstm backward shape mismatch");

  Tensor grad_input({n, t_steps, in_});
  Tensor dh = grad_output;        // Gradient flowing into h_t.
  Tensor dc({n, hidden_});        // Gradient flowing into c_t.
  const Tensor wxT = ops::transpose2d(wx_.value);
  const Tensor whT = ops::transpose2d(wh_.value);

  for (std::size_t t = t_steps; t-- > 0;) {
    const StepCache& sc = steps_[t];
    Tensor dz({n, 4 * hidden_});
    Tensor dct({n, hidden_});
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float iv = sc.i.at2(b, j);
        const float fv = sc.f.at2(b, j);
        const float gv = sc.g.at2(b, j);
        const float ov = sc.o.at2(b, j);
        const float tc = sc.tanh_c.at2(b, j);
        const float dhv = dh.at2(b, j);
        const float dov = dhv * tc;
        const float dcv = dhv * ov * (1.0f - tc * tc) + dc.at2(b, j);
        const float div = dcv * gv;
        const float dfv = dcv * sc.c_prev.at2(b, j);
        const float dgv = dcv * iv;
        dz.at2(b, j) = div * iv * (1.0f - iv);
        dz.at2(b, hidden_ + j) = dfv * fv * (1.0f - fv);
        dz.at2(b, 2 * hidden_ + j) = dgv * (1.0f - gv * gv);
        dz.at2(b, 3 * hidden_ + j) = dov * ov * (1.0f - ov);
        dct.at2(b, j) = dcv * fv;  // Flows into c_{t-1}.
      }
    }
    // Parameter gradients.
    const Tensor xT = ops::transpose2d(sc.x);
    ops::matmul_accum(xT, dz, wx_.grad);
    const Tensor hT = ops::transpose2d(sc.h_prev);
    ops::matmul_accum(hT, dz, wh_.grad);
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t j = 0; j < 4 * hidden_; ++j)
        b_.grad[j] += dz.at2(b, j);
    // Input and recurrent gradients.
    const Tensor dx = ops::matmul(dz, wxT);  // [N, D]
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t d = 0; d < in_; ++d)
        grad_input.at3(b, t, d) = dx.at2(b, d);
    dh = ops::matmul(dz, whT);  // Gradient into h_{t-1}.
    dc = dct;
  }
  return grad_input;
}

std::vector<Param*> Lstm::parameters() { return {&wx_, &wh_, &b_}; }

}  // namespace clear::nn
