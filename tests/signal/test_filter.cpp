#include "signal/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "signal/fft.hpp"

namespace clear::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * M_PI * freq * i / fs);
  return x;
}

double rms_of(const std::vector<double>& x, std::size_t skip = 200) {
  std::vector<double> tail(x.begin() + static_cast<std::ptrdiff_t>(skip),
                           x.end());
  return stats::rms(tail);
}

TEST(Filter, LowpassPassesLowBlocksHigh) {
  const double fs = 64.0;
  const Biquad lp = butterworth_lowpass(2.0, fs);
  const auto low = lp.apply(tone(0.5, fs, 2048));
  const auto high = lp.apply(tone(16.0, fs, 2048));
  EXPECT_GT(rms_of(low), 0.6);   // ~0.707 of a unit sine.
  EXPECT_LT(rms_of(high), 0.05);
}

TEST(Filter, HighpassPassesHighBlocksLow) {
  const double fs = 64.0;
  const Biquad hp = butterworth_highpass(4.0, fs);
  const auto low = hp.apply(tone(0.25, fs, 2048));
  const auto high = hp.apply(tone(16.0, fs, 2048));
  EXPECT_LT(rms_of(low), 0.05);
  EXPECT_GT(rms_of(high), 0.6);
}

TEST(Filter, LowpassUnityDcGain) {
  const Biquad lp = butterworth_lowpass(2.0, 64.0);
  const std::vector<double> dc(1024, 1.0);
  const auto out = lp.apply(dc);
  EXPECT_NEAR(out.back(), 1.0, 1e-6);
}

TEST(Filter, HighpassKillsDc) {
  const Biquad hp = butterworth_highpass(2.0, 64.0);
  const std::vector<double> dc(1024, 1.0);
  const auto out = hp.apply(dc);
  EXPECT_NEAR(out.back(), 0.0, 1e-6);
}

TEST(Filter, CutoffValidation) {
  EXPECT_THROW(butterworth_lowpass(0.0, 64.0), Error);
  EXPECT_THROW(butterworth_lowpass(32.0, 64.0), Error);
  EXPECT_THROW(butterworth_highpass(-1.0, 64.0), Error);
  EXPECT_THROW(butterworth_bandpass(4.0, 2.0, 64.0), Error);
}

TEST(Filter, BandpassSelectsBand) {
  const double fs = 64.0;
  const auto bp = butterworth_bandpass(1.0, 4.0, fs);
  EXPECT_LT(rms_of(cascade(bp, tone(0.1, fs, 4096))), 0.1);
  EXPECT_GT(rms_of(cascade(bp, tone(2.0, fs, 4096))), 0.5);
  EXPECT_LT(rms_of(cascade(bp, tone(20.0, fs, 4096))), 0.1);
}

TEST(Filter, FiltfiltHasNoPhaseShift) {
  const double fs = 64.0;
  const double f = 1.0;
  const auto x = tone(f, fs, 2048);
  const Biquad lp = butterworth_lowpass(8.0, fs);
  const Biquad sections[] = {lp};
  const auto y = filtfilt(sections, x);
  // Zero-phase: the filtered passband tone stays aligned with the input.
  double dot = 0.0;
  double nx = 0.0;
  double ny = 0.0;
  for (std::size_t i = 300; i + 300 < x.size(); ++i) {
    dot += x[i] * y[i];
    nx += x[i] * x[i];
    ny += y[i] * y[i];
  }
  EXPECT_GT(dot / std::sqrt(nx * ny), 0.999);
}

TEST(Filter, MovingAverageSmoothsNoise) {
  Rng rng(5);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.normal();
  const auto y = moving_average(x, 21);
  EXPECT_LT(stats::stddev(y), stats::stddev(x) * 0.4);
}

TEST(Filter, MovingAveragePreservesConstant) {
  const std::vector<double> x(50, 3.0);
  const auto y = moving_average(x, 7);
  for (const double v : y) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Filter, MovingAverageWindowOne) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto y = moving_average(x, 1);
  EXPECT_EQ(y, x);
  EXPECT_THROW(moving_average(x, 0), Error);
}

TEST(Filter, DetrendLinearRemovesLine) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 3.0 + 0.5 * i;
  const auto y = detrend_linear(x);
  EXPECT_NEAR(stats::mean(y), 0.0, 1e-9);
  EXPECT_NEAR(stats::slope(y), 0.0, 1e-9);
}

TEST(Filter, DetrendMean) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto y = detrend_mean(x);
  EXPECT_NEAR(stats::mean(y), 0.0, 1e-12);
  EXPECT_NEAR(y[0], -1.0, 1e-12);
}

TEST(Filter, Cumsum) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto y = cumsum(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
}

}  // namespace
}  // namespace clear::dsp
