#include "signal/peaks.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace clear::dsp {

std::vector<Peak> find_peaks(std::span<const double> x,
                             const PeakOptions& options) {
  CLEAR_CHECK_MSG(options.min_distance >= 1, "min_distance must be >= 1");
  std::vector<Peak> candidates;
  const std::size_t n = x.size();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (!(x[i] > x[i - 1])) continue;
    // Walk plateaus: require a strict drop after the (possibly flat) top.
    std::size_t j = i;
    while (j + 1 < n && x[j + 1] == x[i]) ++j;
    if (j + 1 >= n || !(x[j + 1] < x[i])) {
      i = j;
      continue;
    }
    const std::size_t peak_idx = (i + j) / 2;
    if (x[peak_idx] < options.min_height) {
      i = j;
      continue;
    }
    // Prominence: descend left and right to the lowest point before a higher
    // sample (or the signal edge) is met.
    double left_min = x[peak_idx];
    for (std::size_t k = peak_idx; k-- > 0;) {
      if (x[k] > x[peak_idx]) break;
      left_min = std::min(left_min, x[k]);
    }
    double right_min = x[peak_idx];
    for (std::size_t k = j + 1; k < n; ++k) {
      if (x[k] > x[peak_idx]) break;
      right_min = std::min(right_min, x[k]);
    }
    Peak p;
    p.index = peak_idx;
    p.height = x[peak_idx];
    p.prominence = x[peak_idx] - std::max(left_min, right_min);
    if (p.prominence >= options.min_prominence) candidates.push_back(p);
    i = j;
  }

  if (options.min_distance <= 1 || candidates.size() < 2) return candidates;

  // Enforce min_distance, preferring higher peaks.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].height > candidates[b].height;
  });
  std::vector<bool> keep(candidates.size(), false);
  std::vector<std::size_t> kept_indices;
  for (const std::size_t ci : order) {
    bool ok = true;
    for (const std::size_t ki : kept_indices) {
      const std::size_t a = candidates[ci].index;
      const std::size_t b = candidates[ki].index;
      const std::size_t d = a > b ? a - b : b - a;
      if (d < options.min_distance) {
        ok = false;
        break;
      }
    }
    if (ok) {
      keep[ci] = true;
      kept_indices.push_back(ci);
    }
  }
  std::vector<Peak> result;
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (keep[i]) result.push_back(candidates[i]);
  return result;
}

std::vector<double> peak_intervals(const std::vector<Peak>& peaks,
                                   double sample_rate) {
  CLEAR_CHECK_MSG(sample_rate > 0, "sample_rate must be positive");
  if (peaks.size() < 2) return {};
  std::vector<double> ibi(peaks.size() - 1);
  for (std::size_t i = 0; i + 1 < peaks.size(); ++i) {
    ibi[i] = static_cast<double>(peaks[i + 1].index - peaks[i].index) /
             sample_rate;
  }
  return ibi;
}

}  // namespace clear::dsp
