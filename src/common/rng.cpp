#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace clear {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (cannot occur via splitmix64, but be explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CLEAR_CHECK_MSG(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CLEAR_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  CLEAR_CHECK_MSG(rate > 0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

double Rng::gamma(double shape, double scale) {
  CLEAR_CHECK_MSG(shape > 0 && scale > 0, "gamma parameters must be positive");
  if (shape < 1.0) {
    // Boost to shape >= 1 (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  CLEAR_CHECK_MSG(!weights.empty(), "categorical requires weights");
  double total = 0.0;
  for (const double w : weights) {
    CLEAR_CHECK_MSG(w >= 0, "categorical weights must be non-negative");
    total += w;
  }
  CLEAR_CHECK_MSG(total > 0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id; independent of draw position.
  std::uint64_t seed = s_[0] ^ rotl(s_[2], 13) ^ (stream_id * 0xD2B74407B1CE6E93ull);
  return Rng(seed);
}

}  // namespace clear
