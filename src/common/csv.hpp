// Minimal CSV reading/writing used to persist feature matrices, experiment
// results, and bench outputs. Supports quoted fields with embedded commas
// and quotes; does not support embedded newlines (none of our data has them).
#pragma once

#include <string>
#include <vector>

namespace clear::csv {

using Row = std::vector<std::string>;

/// Parse one CSV line into fields (handles "quoted, fields" and "" escapes).
Row parse_line(const std::string& line);

/// Serialize one row, quoting fields that contain commas or quotes.
std::string format_line(const Row& row);

/// Read a whole file. Throws clear::Error if the file cannot be opened.
std::vector<Row> read_file(const std::string& path);

/// Write rows to a file. Throws clear::Error on IO failure.
void write_file(const std::string& path, const std::vector<Row>& rows);

/// Convenience: format a double with enough digits to round-trip.
std::string format_double(double v);

}  // namespace clear::csv
