// Experiment configuration shared by the CLEAR pipeline, the evaluation
// drivers, and the bench harnesses.
#pragma once

#include <cstdint>

#include "cluster/global_clustering.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "wemac/dataset.hpp"

namespace clear::core {

struct ClearConfig {
  wemac::WemacConfig data;                 ///< Synthetic WEMAC parameters.
  /// Global clustering (paper: K = 4). Setting gc.k = 0 makes
  /// ClearPipeline::fit select K automatically by silhouette.
  cluster::GlobalClusteringConfig gc;
  nn::CnnLstmConfig model;                 ///< CNN-LSTM architecture.
  nn::TrainConfig train;                   ///< Cloud pre-training.
  nn::TrainConfig finetune;                ///< Edge fine-tuning.

  double ca_fraction = 0.10;   ///< Unlabeled share for cluster assignment.
  double ft_fraction = 0.20;   ///< Labeled share for fine-tuning.
  std::size_t general_model_users = 11;  ///< x for the General baseline.
  /// Also pre-train a population-general model during fit() and ship it in
  /// the artifacts as `general.ckpt`. When a cluster checkpoint is missing
  /// or fails its CRC at load time, the pipeline degrades to this model
  /// instead of refusing to start (see DESIGN.md §10). Trained on an
  /// independent RNG stream, so enabling it never changes cluster weights.
  bool general_fallback = true;
  std::uint64_t seed = 7;

  /// Consistency fix-ups (model geometry follows the data geometry).
  void finalize();
};

/// Paper-faithful default configuration, sized so the full LOSO tables run
/// in minutes on a laptop-class single core.
ClearConfig default_config();

/// Reduced configuration for unit/integration tests (fewer volunteers,
/// fewer trials, fewer epochs). Exercises every code path quickly.
ClearConfig smoke_config();

}  // namespace clear::core
