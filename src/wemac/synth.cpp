#include "wemac/synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace clear::wemac {

namespace {

/// Jittered parameter: N(value, |value| * rel_sigma), clamped to keep the
/// sign and at least 25 % of the nominal magnitude.
double jittered(double value, double rel_sigma, Rng& rng) {
  if (value == 0.0) return 0.0;
  const double v = rng.normal(value, std::abs(value) * rel_sigma);
  const double floor_mag = 0.25 * std::abs(value);
  if (value > 0) return std::max(v, floor_mag);
  return std::min(v, -floor_mag);
}

/// Arousal trajectory: first-order rise from resting level toward the
/// stimulus target with tau ~ 8 s, plus slow wander.
class ArousalTrack {
 public:
  ArousalTrack(double target, bool fear, Rng& rng)
      : target_(target), fear_(fear), wander_rng_(rng.fork(0x41524f55)) {}

  double level(double t) const {
    const double rise = 1.0 - std::exp(-t / 8.0);
    return 0.15 + (target_ - 0.15) * rise;
  }
  bool fear() const { return fear_; }

 private:
  double target_;
  bool fear_;
  Rng wander_rng_;
};

/// Asymmetric SCR kernel: fast exponential rise, slow decay.
double scr_kernel(double dt, double rise_tau, double decay_tau) {
  if (dt < 0) return 0.0;
  return (1.0 - std::exp(-dt / rise_tau)) * std::exp(-dt / decay_tau);
}

}  // namespace

VolunteerProfile sample_profile(const ArchetypeParams& a,
                                std::size_t volunteer_id,
                                std::size_t archetype_id, Rng& rng) {
  VolunteerProfile p;
  p.volunteer_id = volunteer_id;
  p.archetype_id = archetype_id;
  const double j = a.jitter;
  p.hr_base = jittered(a.hr_base, j * 0.6, rng);
  p.hr_fear_delta = jittered(a.hr_fear_delta, j * 1.5, rng);
  p.hr_arousal_delta = jittered(a.hr_arousal_delta, j * 1.5, rng);
  p.hrv_sd = jittered(a.hrv_sd, j, rng);
  p.hrv_fear_scale = std::clamp(rng.normal(a.hrv_fear_scale, j * 0.5), 0.2, 2.0);
  p.resp_rate = std::clamp(jittered(a.resp_rate, j, rng), 0.12, 0.45);
  p.bvp_amp = jittered(a.bvp_amp, j, rng);
  p.bvp_amp_fear_scale =
      std::clamp(rng.normal(a.bvp_amp_fear_scale, j * 0.4), 0.4, 1.1);
  p.scr_rate_base = jittered(a.scr_rate_base, j * 1.2, rng);
  p.scr_rate_fear = jittered(a.scr_rate_fear, j * 1.2, rng);
  p.scr_amp = jittered(a.scr_amp, j, rng);
  p.scr_amp_fear_scale =
      std::clamp(rng.normal(a.scr_amp_fear_scale, j * 0.5), 1.0, 3.0);
  p.gsr_tonic = jittered(a.gsr_tonic, j, rng);
  p.gsr_fear_slope = jittered(a.gsr_fear_slope, j * 1.5, rng);
  p.skt_base = rng.normal(a.skt_base, 0.3);
  p.skt_fear_drop = jittered(a.skt_fear_drop, j * 1.2, rng);
  p.bvp_noise = jittered(a.bvp_noise, j, rng);
  p.gsr_noise = jittered(a.gsr_noise, j, rng);
  p.skt_noise = jittered(a.skt_noise, j, rng);
  // Idiosyncratic per-channel response expression (log-normal around 1).
  auto channel_gain = [&rng, &a] {
    return std::clamp(std::exp(rng.normal(0.0, a.channel_gain_sigma)), 0.35,
                      2.5);
  };
  p.cardiac_gain = channel_gain();
  p.gsr_gain = channel_gain();
  p.skt_gain = channel_gain();
  return p;
}

VolunteerProfile morph_profile(const VolunteerProfile& from,
                               const VolunteerProfile& to, double alpha) {
  CLEAR_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0,
                  "morph alpha must be in [0, 1], got " << alpha);
  VolunteerProfile p = from;  // Keeps volunteer_id/archetype_id.
  const auto lerp = [alpha](double a, double b) {
    return (1.0 - alpha) * a + alpha * b;
  };
  p.hr_base = lerp(from.hr_base, to.hr_base);
  p.hr_fear_delta = lerp(from.hr_fear_delta, to.hr_fear_delta);
  p.hr_arousal_delta = lerp(from.hr_arousal_delta, to.hr_arousal_delta);
  p.hrv_sd = lerp(from.hrv_sd, to.hrv_sd);
  p.hrv_fear_scale = lerp(from.hrv_fear_scale, to.hrv_fear_scale);
  p.resp_rate = lerp(from.resp_rate, to.resp_rate);
  p.bvp_amp = lerp(from.bvp_amp, to.bvp_amp);
  p.bvp_amp_fear_scale = lerp(from.bvp_amp_fear_scale, to.bvp_amp_fear_scale);
  p.scr_rate_base = lerp(from.scr_rate_base, to.scr_rate_base);
  p.scr_rate_fear = lerp(from.scr_rate_fear, to.scr_rate_fear);
  p.scr_amp = lerp(from.scr_amp, to.scr_amp);
  p.scr_amp_fear_scale = lerp(from.scr_amp_fear_scale, to.scr_amp_fear_scale);
  p.gsr_tonic = lerp(from.gsr_tonic, to.gsr_tonic);
  p.gsr_fear_slope = lerp(from.gsr_fear_slope, to.gsr_fear_slope);
  p.skt_base = lerp(from.skt_base, to.skt_base);
  p.skt_fear_drop = lerp(from.skt_fear_drop, to.skt_fear_drop);
  p.bvp_noise = lerp(from.bvp_noise, to.bvp_noise);
  p.gsr_noise = lerp(from.gsr_noise, to.gsr_noise);
  p.skt_noise = lerp(from.skt_noise, to.skt_noise);
  p.cardiac_gain = lerp(from.cardiac_gain, to.cardiac_gain);
  p.gsr_gain = lerp(from.gsr_gain, to.gsr_gain);
  p.skt_gain = lerp(from.skt_gain, to.skt_gain);
  return p;
}

TrialSignals synthesize_trial(const VolunteerProfile& p,
                              const Stimulus& stimulus,
                              const SignalRates& rates, Rng& rng) {
  CLEAR_CHECK_MSG(stimulus.duration_s > 1.0, "trial too short");
  TrialSignals out;
  out.rates = rates;
  const double dur = stimulus.duration_s;
  const bool fear = is_fear(stimulus.emotion);
  const double arousal_target = emotion_arousal(stimulus.emotion);
  ArousalTrack arousal(arousal_target, fear, rng);
  // Per-trial response gain: the same stimulus does not elicit the same
  // response magnitude every time (habituation, attention, context). This
  // overlap between weak fear trials and strong non-fear trials is the main
  // source of task difficulty, mirroring real affective data.
  const double gain = std::clamp(rng.normal(1.0, 0.45), 0.1, 2.2);
  // Channel-specific effective gains: trial strength x the user's
  // idiosyncratic per-channel expression.
  const double cardiac_gain = gain * p.cardiac_gain;
  const double electrodermal_gain = gain * p.gsr_gain;
  const double thermal_gain = gain * p.skt_gain;

  // ---- Beat schedule -------------------------------------------------------
  // Instantaneous HR follows arousal. Fear applies its archetype-specific
  // delta (possibly negative: vagal freeze); non-fear arousal applies the
  // smaller generic delta. IBI modulation: LF (~0.1 Hz) + respiratory HF.
  std::vector<double> beat_times;
  std::vector<double> beat_amps;
  Rng beat_rng = rng.fork(0xB417);
  const double lf_freq = 0.095 + 0.01 * beat_rng.uniform();
  const double lf_phase = beat_rng.uniform(0.0, 2.0 * M_PI);
  const double hf_phase = beat_rng.uniform(0.0, 2.0 * M_PI);
  double t = beat_rng.uniform(0.0, 0.5);
  while (t < dur) {
    const double a = cardiac_gain * arousal.level(t);
    const double am = std::min(a, 1.2);  // Bounded for multiplicative factors.
    const double hr =
        p.hr_base + (fear ? p.hr_fear_delta * a : p.hr_arousal_delta * a);
    const double hrv_depth =
        p.hrv_sd * (fear ? 1.0 + (p.hrv_fear_scale - 1.0) * am : 1.0);
    const double mod =
        hrv_depth * (0.6 * std::sin(2.0 * M_PI * lf_freq * t + lf_phase) +
                     0.8 * std::sin(2.0 * M_PI * p.resp_rate * t + hf_phase)) +
        beat_rng.normal(0.0, hrv_depth * 0.35);
    double ibi = 60.0 / std::max(35.0, hr) + mod;
    ibi = std::clamp(ibi, 0.33, 1.8);
    beat_times.push_back(t);
    // Amplitude: respiratory modulation + fear vasoconstriction.
    const double vaso = fear ? 1.0 + (p.bvp_amp_fear_scale - 1.0) * am : 1.0;
    const double amp =
        p.bvp_amp * vaso *
        (1.0 + 0.12 * std::sin(2.0 * M_PI * p.resp_rate * t + hf_phase)) *
        (1.0 + beat_rng.normal(0.0, 0.04));
    beat_amps.push_back(std::max(0.05, amp));
    t += ibi;
  }

  // ---- BVP rendering -------------------------------------------------------
  const auto n_bvp = static_cast<std::size_t>(dur * rates.bvp_hz);
  out.bvp.assign(n_bvp, 0.0);
  Rng bvp_noise_rng = rng.fork(0xB4F0);
  for (std::size_t b = 0; b < beat_times.size(); ++b) {
    const double t0 = beat_times[b];
    const double next =
        b + 1 < beat_times.size() ? beat_times[b + 1] : dur + 1.0;
    const double ibi = std::min(next - t0, 1.8);
    // Render the pulse over [t0, t0 + ibi): systolic peak at 25 % of the
    // cycle, dicrotic bump at 60 %.
    const auto i_begin = static_cast<std::size_t>(
        std::max(0.0, t0 * rates.bvp_hz));
    const auto i_end = std::min(
        n_bvp, static_cast<std::size_t>((t0 + ibi) * rates.bvp_hz) + 1);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const double phase =
          (static_cast<double>(i) / rates.bvp_hz - t0) / ibi;
      if (phase < 0.0 || phase >= 1.0) continue;
      const double systolic = std::exp(-std::pow((phase - 0.25) / 0.11, 2.0));
      const double dicrotic =
          0.38 * std::exp(-std::pow((phase - 0.60) / 0.16, 2.0));
      out.bvp[i] += beat_amps[b] * (systolic + dicrotic - 0.32);
    }
  }
  // Baseline wander + measurement noise.
  const double wander_f = 0.06;
  const double wander_phase = bvp_noise_rng.uniform(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < n_bvp; ++i) {
    const double ti = static_cast<double>(i) / rates.bvp_hz;
    out.bvp[i] += 0.05 * p.bvp_amp *
                      std::sin(2.0 * M_PI * wander_f * ti + wander_phase) +
                  bvp_noise_rng.normal(0.0, p.bvp_noise);
  }

  // ---- GSR rendering -------------------------------------------------------
  const auto n_gsr = static_cast<std::size_t>(dur * rates.gsr_hz);
  out.gsr.assign(n_gsr, 0.0);
  Rng gsr_rng = rng.fork(0x65B2);
  // SCR event schedule via thinning of an inhomogeneous Poisson process.
  std::vector<double> scr_times;
  std::vector<double> scr_amps;
  const double max_rate =
      1.3 * std::max(p.scr_rate_base, p.scr_rate_fear) / 60.0 + 1e-9;
  double te = 0.0;
  while (te < dur) {
    te += gsr_rng.exponential(max_rate);
    if (te >= dur) break;
    const double a = std::min(electrodermal_gain * arousal.level(te), 1.2);
    const double rate =
        (p.scr_rate_base +
         (fear ? (p.scr_rate_fear - p.scr_rate_base) * a
               : (0.55 * (p.scr_rate_fear - p.scr_rate_base)) * a)) /
        60.0;
    if (gsr_rng.uniform() * max_rate > rate) continue;  // Thinned out.
    const double amp_scale = fear ? 1.0 + (p.scr_amp_fear_scale - 1.0) * a
                                  : 1.0 + 0.4 * a;
    scr_times.push_back(te);
    scr_amps.push_back(gsr_rng.gamma(2.0, p.scr_amp * amp_scale / 2.0));
  }
  const double drift_phase = gsr_rng.uniform(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < n_gsr; ++i) {
    const double ti = static_cast<double>(i) / rates.gsr_hz;
    const double a = std::min(electrodermal_gain * arousal.level(ti), 1.2);
    double v = p.gsr_tonic +
               0.15 * std::sin(2.0 * M_PI * 0.01 * ti + drift_phase) +
               (fear ? p.gsr_fear_slope * a * ti : 0.4 * p.gsr_fear_slope * a * ti);
    for (std::size_t e = 0; e < scr_times.size(); ++e) {
      const double dt = ti - scr_times[e];
      if (dt < 0) break;  // Events are time-ordered.
      if (dt > 25.0) continue;
      v += scr_amps[e] * scr_kernel(dt, 0.7, 4.0);
    }
    out.gsr[i] = v + gsr_rng.normal(0.0, p.gsr_noise);
  }

  // ---- SKT rendering -------------------------------------------------------
  const auto n_skt = static_cast<std::size_t>(dur * rates.skt_hz);
  out.skt.assign(n_skt, 0.0);
  Rng skt_rng = rng.fork(0x57C7);
  double temp = p.skt_base + skt_rng.normal(0.0, 0.1);
  const double dt_skt = 1.0 / rates.skt_hz;
  for (std::size_t i = 0; i < n_skt; ++i) {
    const double ti = static_cast<double>(i) / rates.skt_hz;
    const double a = std::min(thermal_gain * arousal.level(ti), 1.2);
    const double setpoint =
        p.skt_base - (fear ? p.skt_fear_drop * a : 0.25 * p.skt_fear_drop * a);
    // First-order approach with tau ~ 40 s plus a small random walk.
    temp += (setpoint - temp) * (dt_skt / 40.0) +
            skt_rng.normal(0.0, p.skt_noise * 0.3);
    out.skt[i] = temp + skt_rng.normal(0.0, p.skt_noise);
  }

  return out;
}

std::vector<features::PhysioWindow> slice_windows(const TrialSignals& trial,
                                                  double window_seconds) {
  CLEAR_CHECK_MSG(window_seconds > 0, "window_seconds must be positive");
  const auto n_bvp = static_cast<std::size_t>(window_seconds * trial.rates.bvp_hz);
  const auto n_gsr = static_cast<std::size_t>(window_seconds * trial.rates.gsr_hz);
  const auto n_skt = static_cast<std::size_t>(window_seconds * trial.rates.skt_hz);
  CLEAR_CHECK_MSG(n_bvp >= 8 && n_gsr >= 8 && n_skt >= 2,
                  "window too short for the configured rates");
  const std::size_t n_windows =
      std::min({trial.bvp.size() / n_bvp, trial.gsr.size() / n_gsr,
                trial.skt.size() / n_skt});
  std::vector<features::PhysioWindow> windows;
  windows.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    features::PhysioWindow win;
    win.bvp_rate = trial.rates.bvp_hz;
    win.gsr_rate = trial.rates.gsr_hz;
    win.skt_rate = trial.rates.skt_hz;
    win.bvp.assign(trial.bvp.begin() + static_cast<std::ptrdiff_t>(w * n_bvp),
                   trial.bvp.begin() + static_cast<std::ptrdiff_t>((w + 1) * n_bvp));
    win.gsr.assign(trial.gsr.begin() + static_cast<std::ptrdiff_t>(w * n_gsr),
                   trial.gsr.begin() + static_cast<std::ptrdiff_t>((w + 1) * n_gsr));
    win.skt.assign(trial.skt.begin() + static_cast<std::ptrdiff_t>(w * n_skt),
                   trial.skt.begin() + static_cast<std::ptrdiff_t>((w + 1) * n_skt));
    windows.push_back(std::move(win));
  }
  return windows;
}

}  // namespace clear::wemac
