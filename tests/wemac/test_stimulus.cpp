#include "wemac/stimulus.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear::wemac {
namespace {

TEST(Stimulus, TenEmotionsNamed) {
  EXPECT_EQ(kNumEmotions, 10u);
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumEmotions; ++i)
    names.insert(emotion_name(static_cast<Emotion>(i)));
  EXPECT_EQ(names.size(), kNumEmotions);
  EXPECT_EQ(emotion_name(Emotion::kFear), "fear");
}

TEST(Stimulus, OnlyFearIsFear) {
  EXPECT_TRUE(is_fear(Emotion::kFear));
  for (std::size_t i = 1; i < kNumEmotions; ++i)
    EXPECT_FALSE(is_fear(static_cast<Emotion>(i)));
}

TEST(Stimulus, FearHasMaximalArousal) {
  const double fear = emotion_arousal(Emotion::kFear);
  EXPECT_DOUBLE_EQ(fear, 1.0);
  for (std::size_t i = 1; i < kNumEmotions; ++i) {
    const double a = emotion_arousal(static_cast<Emotion>(i));
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, fear);
  }
}

TEST(Stimulus, NonFearEmotionsOverlapFearArousal) {
  // The binary task must not be solvable by arousal alone: at least one
  // non-fear emotion is strongly arousing.
  EXPECT_GE(emotion_arousal(Emotion::kAnger), 0.7);
}

TEST(Stimulus, ScheduleRespectsFearFraction) {
  Rng rng(1);
  const auto schedule = make_schedule(20, 0.5, 120.0, rng);
  ASSERT_EQ(schedule.size(), 20u);
  std::size_t fear = 0;
  for (const Stimulus& s : schedule)
    if (is_fear(s.emotion)) ++fear;
  EXPECT_EQ(fear, 10u);
}

TEST(Stimulus, ScheduleCoversNonFearVariety) {
  Rng rng(3);
  const auto schedule = make_schedule(60, 0.3, 60.0, rng);
  std::set<Emotion> seen;
  for (const Stimulus& s : schedule)
    if (!is_fear(s.emotion)) seen.insert(s.emotion);
  EXPECT_GE(seen.size(), 5u);
}

TEST(Stimulus, ScheduleIsShuffled) {
  Rng rng(5);
  const auto schedule = make_schedule(40, 0.5, 60.0, rng);
  // Fear trials must not all be at the front.
  bool fear_after_middle = false;
  for (std::size_t i = schedule.size() / 2; i < schedule.size(); ++i)
    if (is_fear(schedule[i].emotion)) fear_after_middle = true;
  EXPECT_TRUE(fear_after_middle);
}

TEST(Stimulus, ScheduleSetsDuration) {
  Rng rng(7);
  const auto schedule = make_schedule(5, 0.4, 90.0, rng);
  for (const Stimulus& s : schedule) EXPECT_DOUBLE_EQ(s.duration_s, 90.0);
}

TEST(Stimulus, ScheduleValidation) {
  Rng rng(9);
  EXPECT_THROW(make_schedule(1, 0.5, 60.0, rng), Error);
  EXPECT_THROW(make_schedule(10, 0.0, 60.0, rng), Error);
  EXPECT_THROW(make_schedule(10, 1.0, 60.0, rng), Error);
  EXPECT_THROW(make_schedule(10, 0.5, 0.0, rng), Error);
}

TEST(Stimulus, InvalidEmotionNameThrows) {
  EXPECT_THROW(emotion_name(static_cast<Emotion>(99)), Error);
}

}  // namespace
}  // namespace clear::wemac
