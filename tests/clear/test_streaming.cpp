#include "clear/streaming.hpp"

#include <gtest/gtest.h>

#include "clear/pipeline.hpp"
#include "common/error.hpp"
#include "wemac/synth.hpp"

namespace clear::core {
namespace {

ClearConfig stream_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 61;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finalize();
  return c;
}

struct SharedFixture {
  ClearConfig config = stream_config();
  wemac::WemacDataset dataset;
  ClearPipeline pipeline;

  SharedFixture()
      : dataset(wemac::generate_wemac(stream_config().data)),
        pipeline(stream_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
  }

  StreamingConfig streaming() const {
    StreamingConfig sc;
    sc.window_seconds = config.data.window_seconds;
    sc.map_windows = config.data.windows_per_trial;
    sc.bvp_hz = config.data.rates.bvp_hz;
    sc.gsr_hz = config.data.rates.gsr_hz;
    sc.skt_hz = config.data.rates.skt_hz;
    return sc;
  }

  wemac::TrialSignals make_trial(wemac::Emotion emotion, double seconds,
                                 std::uint64_t seed) const {
    Rng rng(seed);
    wemac::Stimulus stim;
    stim.emotion = emotion;
    stim.duration_s = seconds;
    return wemac::synthesize_trial(
        dataset.volunteers().back().profile, stim, config.data.rates, rng);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

TEST(Streaming, NoDetectionBeforeWarmup) {
  auto& f = fixture();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        f.streaming());
  // Feed W-1 windows worth of signal.
  const double seconds =
      f.streaming().window_seconds *
      static_cast<double>(f.streaming().map_windows - 1);
  const auto trial = f.make_trial(wemac::Emotion::kCalm, seconds + 1.0, 1);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  EXPECT_EQ(det.poll(), std::nullopt);
  EXPECT_FALSE(det.warmed_up());
  EXPECT_EQ(det.windows_seen(), f.streaming().map_windows - 1);
}

TEST(Streaming, DetectsAfterWarmupAndPerWindowThereafter) {
  auto& f = fixture();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        f.streaming());
  const StreamingConfig sc = f.streaming();
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  const auto trial = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 2);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  const auto first = det.poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_GE(first->fear_probability, 0.0);
  EXPECT_LE(first->fear_probability, 1.0);
  EXPECT_TRUE(det.warmed_up());
  // No new window -> no new detection.
  EXPECT_EQ(det.poll(), std::nullopt);
  // One more window of data -> exactly one more detection.
  const auto more = f.make_trial(wemac::Emotion::kFear,
                                 sc.window_seconds + 1.0, 3);
  det.push_bvp(std::span<const double>(more.bvp.data(),
                                       static_cast<std::size_t>(
                                           sc.window_seconds * sc.bvp_hz)));
  det.push_gsr(std::span<const double>(more.gsr.data(),
                                       static_cast<std::size_t>(
                                           sc.window_seconds * sc.gsr_hz)));
  det.push_skt(std::span<const double>(more.skt.data(),
                                       static_cast<std::size_t>(
                                           sc.window_seconds * sc.skt_hz)));
  const auto second = det.poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->window_index, first->window_index + 1);
}

TEST(Streaming, ChunkedFeedingEquivalentToBulk) {
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  const auto trial = f.make_trial(wemac::Emotion::kJoy, warmup_s + 1.0, 4);

  StreamingDetector bulk(f.pipeline.cluster_model(1), f.pipeline.normalizer(),
                         sc);
  bulk.push_bvp(trial.bvp);
  bulk.push_gsr(trial.gsr);
  bulk.push_skt(trial.skt);
  const auto a = bulk.poll();

  StreamingDetector chunked(f.pipeline.cluster_model(1),
                            f.pipeline.normalizer(), sc);
  // Feed in awkward chunk sizes.
  for (std::size_t i = 0; i < trial.bvp.size(); i += 97)
    chunked.push_bvp(std::span<const double>(
        trial.bvp.data() + i, std::min<std::size_t>(97, trial.bvp.size() - i)));
  for (std::size_t i = 0; i < trial.gsr.size(); i += 13)
    chunked.push_gsr(std::span<const double>(
        trial.gsr.data() + i, std::min<std::size_t>(13, trial.gsr.size() - i)));
  for (std::size_t i = 0; i < trial.skt.size(); i += 5)
    chunked.push_skt(std::span<const double>(
        trial.skt.data() + i, std::min<std::size_t>(5, trial.skt.size() - i)));
  const auto b = chunked.poll();

  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->fear_probability, b->fear_probability);
  EXPECT_EQ(a->window_index, b->window_index);
}

TEST(Streaming, RollingMapSlidesWindowByWindow) {
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double long_s =
      sc.window_seconds * static_cast<double>(sc.map_windows + 3);
  const auto trial = f.make_trial(wemac::Emotion::kFear, long_s + 1.0, 5);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  // All windows extracted in one poll; only the newest detection returned.
  const auto d = det.poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->window_index, det.windows_seen() - 1);
  EXPECT_GE(det.windows_seen(), sc.map_windows + 3);
}

TEST(Streaming, ConfigValidation) {
  auto& f = fixture();
  StreamingConfig bad = f.streaming();
  bad.window_seconds = 0.0;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), bad),
               Error);
  bad = f.streaming();
  bad.map_windows = 2;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), bad),
               Error);
  features::FeatureNormalizer unfitted;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0), unfitted,
                                 f.streaming()),
               Error);
}

}  // namespace
}  // namespace clear::core
