// Cold-start demo: how reliably does the unsupervised Cluster Assignment
// place brand-new users?
//
// For every volunteer in turn, the pipeline is fitted on the rest of the
// population, and the held-out user is assigned from a small unlabeled
// prefix of their recording. The demo prints, per user, the per-cluster
// scores, the chosen cluster's dominant ground-truth archetype, and whether
// it matches the user's own (the generator's hidden truth — used here only
// to *grade* the assignment, never to make it).
//
// Run:  ./cold_start_demo [--volunteers=14] [--ca-fraction=0.1] [--seed=42]
#include <cstdio>

#include "clear/evaluation.hpp"
#include "clear/pipeline.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = core::smoke_config();
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 14));
  config.data.trials_per_volunteer = 8;
  config.data.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.ca_fraction = args.get_double("ca-fraction", 0.1);
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 3));
  config.finalize();

  std::printf("== CLEAR cold-start demo ==\n");
  const wemac::WemacDataset dataset = wemac::generate_wemac(config.data);
  std::printf("%zu volunteers; assignment uses %.0f%% unlabeled data\n\n",
              dataset.n_volunteers(), config.ca_fraction * 100.0);

  AsciiTable table({"new user", "true archetype", "assigned cluster",
                    "cluster archetype", "scores (per cluster)", "match"});
  std::size_t matches = 0;
  for (std::size_t vx = 0; vx < dataset.n_volunteers(); ++vx) {
    std::vector<std::size_t> others;
    for (std::size_t u = 0; u < dataset.n_volunteers(); ++u)
      if (u != vx) others.push_back(u);
    core::ClearPipeline pipeline(config);
    pipeline.fit(dataset, others, vx + 1);
    const cluster::AssignmentResult r =
        pipeline.assign_user(dataset, vx, config.ca_fraction);
    const std::size_t truth = dataset.volunteers()[vx].archetype_id;
    const std::size_t dominant = core::dominant_archetype(
        dataset, others, pipeline.clustering().clusters[r.cluster]);
    std::string scores;
    for (const double s : r.scores) {
      if (!scores.empty()) scores += " ";
      scores += AsciiTable::num(s, 2);
    }
    const bool match = dominant == truth;
    if (match) ++matches;
    table.add_row({std::to_string(vx),
                   wemac::default_archetypes()[truth].name,
                   std::to_string(r.cluster),
                   wemac::default_archetypes()[dominant].name, scores,
                   match ? "yes" : "NO"});
  }
  table.print();
  std::printf("\ncold-start archetype agreement: %zu/%zu (%.1f%%)\n", matches,
              dataset.n_volunteers(),
              100.0 * static_cast<double>(matches) /
                  static_cast<double>(dataset.n_volunteers()));
  std::printf(
      "(each row trains its own pipeline on the other %zu users; the new\n"
      " user's labels are never read during assignment)\n",
      dataset.n_volunteers() - 1);
  return 0;
}
