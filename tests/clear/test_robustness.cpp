#include "clear/robustness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace clear::core {
namespace {

ClearConfig robust_config() {
  // Mirrors the golden-seed LOSO fixture in test_evaluation.cpp: the
  // zero-fault cell below must reproduce those exact numbers.
  ClearConfig c = smoke_config();
  c.data.seed = 31;
  c.data.n_volunteers = 10;
  c.data.trials_per_volunteer = 6;
  c.train.epochs = 2;
  c.finetune.epochs = 3;
  c.general_model_users = 4;
  c.finalize();
  return c;
}

TEST(Robustness, ZeroFaultCellMatchesGoldenSeedBitForBit) {
  RobustnessOptions opt;
  opt.dropout_rates = {0.0};
  opt.corrupt_rates = {0.0};
  opt.max_folds = 3;
  const auto points = run_robustness_sweep(robust_config(), opt);
  ASSERT_EQ(points.size(), 1u);
  const std::vector<double> golden_acc = {33.333333333333329, 100.0,
                                          33.333333333333329};
  const std::vector<double> golden_f1 = {0.0, 100.0, 50.0};
  EXPECT_EQ(points[0].no_ft.fold_accuracy, golden_acc);
  EXPECT_EQ(points[0].no_ft.fold_f1, golden_f1);
  EXPECT_EQ(points[0].ca_consistency, 1.0);
  EXPECT_EQ(points[0].faults.faulted(), 0u);
}

TEST(Robustness, FaultedSweepCompletesWithFiniteMetrics) {
  // The acceptance bar: a LOSO sweep at 10% dropout + 1% corruption runs
  // end to end without throwing — sanitization keeps every feature map
  // finite through clustering, training, and evaluation.
  RobustnessOptions opt;
  opt.dropout_rates = {0.0, 0.10};
  opt.corrupt_rates = {0.0, 0.01};
  opt.max_folds = 2;
  const auto points = run_robustness_sweep(robust_config(), opt);
  ASSERT_EQ(points.size(), 4u);
  for (const RobustnessPoint& p : points) {
    EXPECT_EQ(p.no_ft.folds(), 2u);
    EXPECT_TRUE(std::isfinite(p.no_ft.accuracy.mean));
    EXPECT_TRUE(std::isfinite(p.no_ft.f1.mean));
    EXPECT_GE(p.ca_consistency, 0.0);
    EXPECT_LE(p.ca_consistency, 1.0);
    if (p.dropout_rate == 0.0 && p.corrupt_rate == 0.0)
      EXPECT_EQ(p.faults.faulted(), 0u);
    else
      EXPECT_GT(p.faults.faulted(), 0u);
  }
  // Dropout-major ordering matches the option lists.
  EXPECT_EQ(points[0].dropout_rate, 0.0);
  EXPECT_EQ(points[0].corrupt_rate, 0.0);
  EXPECT_EQ(points[1].corrupt_rate, 0.01);
  EXPECT_EQ(points[2].dropout_rate, 0.10);
}

TEST(Robustness, CellsAreDeterministicAcrossRuns) {
  RobustnessOptions opt;
  opt.dropout_rates = {0.10};
  opt.corrupt_rates = {0.01};
  opt.max_folds = 2;
  const auto a = run_robustness_sweep(robust_config(), opt);
  const auto b = run_robustness_sweep(robust_config(), opt);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].no_ft.fold_accuracy, b[0].no_ft.fold_accuracy);
  EXPECT_EQ(a[0].no_ft.fold_f1, b[0].no_ft.fold_f1);
  EXPECT_EQ(a[0].faults.dropped, b[0].faults.dropped);
  EXPECT_EQ(a[0].faults.corrupted, b[0].faults.corrupted);
}

TEST(Robustness, ProgressCallbackSeesEveryCell) {
  RobustnessOptions opt;
  opt.dropout_rates = {0.0, 0.05};
  opt.corrupt_rates = {0.0};
  opt.max_folds = 1;
  std::size_t calls = 0;
  opt.progress = [&](std::size_t cell, std::size_t total,
                     const RobustnessPoint& p) {
    EXPECT_EQ(cell, calls);
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(p.dropout_rate, opt.dropout_rates[cell]);
    ++calls;
  };
  run_robustness_sweep(robust_config(), opt);
  EXPECT_EQ(calls, 2u);
}

TEST(Robustness, RejectsOutOfRangeRates) {
  RobustnessOptions opt;
  opt.dropout_rates = {1.5};
  EXPECT_THROW(run_robustness_sweep(robust_config(), opt), Error);
  opt.dropout_rates = {0.1};
  opt.corrupt_rates = {-0.1};
  EXPECT_THROW(run_robustness_sweep(robust_config(), opt), Error);
  opt.corrupt_rates = {};
  EXPECT_THROW(run_robustness_sweep(robust_config(), opt), Error);
}

}  // namespace
}  // namespace clear::core
