// Tensor operations used by the NN layers and the clustering code.
//
// All binary ops validate shapes eagerly. Functions returning a Tensor
// allocate; the *_inplace variants mutate their first argument. matmul is a
// straightforward blocked i-k-j loop — fast enough for the small CNN-LSTM
// models this project trains, with no external BLAS dependency.
#pragma once

#include <cstddef>
#include <functional>

#include "tensor/kernels/kernels.hpp"
#include "tensor/tensor.hpp"

namespace clear::ops {

// -- Elementwise --------------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);
void sub_inplace(Tensor& a, const Tensor& b);
void mul_inplace(Tensor& a, const Tensor& b);
/// a += alpha * b  (axpy).
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);
Tensor scale(const Tensor& a, float s);
void scale_inplace(Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
/// Apply `f` elementwise.
Tensor map(const Tensor& a, const std::function<float(float)>& f);
void map_inplace(Tensor& a, const std::function<float(float)>& f);

// -- Linear algebra -----------------------------------------------------------
/// C[m,n] = A[m,k] * B[k,n]. Both inputs must be rank-2.
Tensor matmul(const Tensor& a, const Tensor& b);
/// matmul into a caller-provided tensor (resized to [m,n] and fully
/// overwritten). Reusing `c` across calls keeps inference hot loops off the
/// allocator; numerics are identical to matmul().
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] += A[m,k] * B[k,n]  (accumulate into an existing tensor).
void matmul_accum(const Tensor& a, const Tensor& b, Tensor& c);
/// matmul_into with a fused epilogue: c = act(a*b + bias), computed in one
/// pass through the active kernel's GEMM. The epilogue is numerically
/// identical to running matmul_into followed by a bias add and activation —
/// each element finishes its full k accumulation before bias/activation are
/// applied — so fusing is purely a bandwidth optimisation. For
/// kernels::BiasMode::kPerRow the bias has extent m; for kPerCol, extent n.
void matmul_fused_into(const Tensor& a, const Tensor& b, Tensor& c,
                       const kernels::Epilogue& ep);
/// B[n,m] = A[m,n]^T.
Tensor transpose2d(const Tensor& a);
/// y[m] = A[m,k] * x[k]; x rank-1.
Tensor matvec(const Tensor& a, const Tensor& x);
/// Add a rank-1 bias to every row of a rank-2 tensor.
void add_row_bias_inplace(Tensor& a, const Tensor& bias);

// -- Reductions ---------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
float min_value(const Tensor& a);
float max_value(const Tensor& a);
/// Frobenius / L2 norm of the flattened tensor.
float l2_norm(const Tensor& a);
/// Index of the maximum element in a rank-1 tensor.
std::size_t argmax(const Tensor& a);
/// Row-wise argmax of a rank-2 tensor.
std::vector<std::size_t> argmax_rows(const Tensor& a);
/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& a);

// -- Convolution support --------------------------------------------------------
/// im2col for NCHW input. Output shape:
/// [C*kh*kw, out_h*out_w] for one image [C,H,W].
/// Padding is zero-padding of `pad` on each side; stride >= 1.
Tensor im2col(const Tensor& image, std::size_t kh, std::size_t kw,
              std::size_t stride, std::size_t pad);
/// im2col into a caller-provided tensor (resized to [C*kh*kw, out_h*out_w]
/// and fully overwritten). The workspace variant used by the conv inference
/// path to avoid a fresh column matrix per sample.
void im2col_into(const Tensor& image, std::size_t kh, std::size_t kw,
                 std::size_t stride, std::size_t pad, Tensor& cols);
/// Inverse scatter-add of im2col (gradient path). `cols` must have the shape
/// produced by im2col for the given geometry; result is [C,H,W].
Tensor col2im(const Tensor& cols, std::size_t channels, std::size_t height,
              std::size_t width, std::size_t kh, std::size_t kw,
              std::size_t stride, std::size_t pad);
/// Output spatial extent for a conv/pool dimension.
std::size_t conv_out_extent(std::size_t in, std::size_t k, std::size_t stride,
                            std::size_t pad);

}  // namespace clear::ops
