#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace clear {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      CLEAR_CHECK_MSG(arg.rfind('-', 0) != 0,
                      "expected --key=value or positional argument, got: "
                          << arg);
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  CLEAR_CHECK_MSG(end && *end == '\0',
                  "flag --" << key << " is not an integer: " << it->second);
  return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CLEAR_CHECK_MSG(end && *end == '\0',
                  "flag --" << key << " is not a number: " << it->second);
  return v;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  CLEAR_CHECK_MSG(false, "flag --" << key << " is not a boolean: " << v);
  return fallback;
}

}  // namespace clear
