// Numerical regression tests for the HRV feature block: synthetic pulse
// trains with *known* inter-beat statistics must yield the textbook values
// of the derived features (RMSSD, SDNN, pNN50, LF/HF, Poincaré).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "features/bvp_features.hpp"

namespace clear::features {
namespace {

std::size_t feature_index(const std::string& name) {
  const auto& names = bvp_feature_names();
  const auto it = std::find(names.begin(), names.end(), name);
  EXPECT_NE(it, names.end()) << name;
  return static_cast<std::size_t>(it - names.begin());
}

/// Render a pulse train whose beat times are given explicitly [s].
std::vector<double> render_beats(const std::vector<double>& beat_times,
                                 double fs, double duration) {
  std::vector<double> x(static_cast<std::size_t>(fs * duration), 0.0);
  for (std::size_t b = 0; b < beat_times.size(); ++b) {
    const double t0 = beat_times[b];
    const double next =
        b + 1 < beat_times.size() ? beat_times[b + 1] : duration;
    const double ibi = next - t0;
    for (std::size_t i = static_cast<std::size_t>(t0 * fs);
         i < x.size() && static_cast<double>(i) / fs < next; ++i) {
      const double phase = (static_cast<double>(i) / fs - t0) / ibi;
      x[i] = std::exp(-std::pow((phase - 0.25) / 0.11, 2.0)) +
             0.38 * std::exp(-std::pow((phase - 0.6) / 0.16, 2.0)) - 0.32;
    }
  }
  return x;
}

/// Beat times with a deterministic alternating IBI pattern:
/// base + delta, base - delta, base + delta, ...
std::vector<double> alternating_beats(double base, double delta,
                                      double duration) {
  std::vector<double> times;
  double t = 0.1;
  bool up = true;
  while (t < duration - base) {
    times.push_back(t);
    t += up ? base + delta : base - delta;
    up = !up;
  }
  return times;
}

TEST(HrvRegression, MeanRateIsExact) {
  const double fs = 64.0;
  const auto beats = alternating_beats(0.8, 0.0, 60.0);
  const auto x = render_beats(beats, fs, 60.0);
  const auto f = extract_bvp_features(x, fs);
  EXPECT_NEAR(f[feature_index("ibi_mean")], 0.8, 0.02);
  EXPECT_NEAR(f[feature_index("hr_mean")], 75.0, 2.0);
}

TEST(HrvRegression, VariabilityFeaturesOrderByTrueVariability) {
  // Absolute beat-to-beat values are biased by the cardiac band-pass (it
  // regularizes detected peak timing) and by window-edge beats, so the
  // contract tested here is ordinal: a truly variable rhythm must score
  // clearly higher on every short-term variability feature than a metronome
  // rhythm rendered and processed identically.
  const double fs = 64.0;
  const auto f_const =
      extract_bvp_features(render_beats(alternating_beats(0.8, 0.0, 60.0),
                                        fs, 60.0),
                           fs);
  const auto f_alt =
      extract_bvp_features(render_beats(alternating_beats(0.8, 0.1, 60.0),
                                        fs, 60.0),
                           fs);
  EXPECT_GT(f_alt[feature_index("hrv_rmssd")],
            1.3 * f_const[feature_index("hrv_rmssd")]);
  EXPECT_GT(f_alt[feature_index("poincare_sd1")],
            1.3 * f_const[feature_index("poincare_sd1")]);
  EXPECT_GT(f_alt[feature_index("hrv_pnn50")],
            f_const[feature_index("hrv_pnn50")] + 0.2);
  // Alternating rhythm: successive IBIs anti-correlate.
  EXPECT_LT(f_alt[feature_index("ibi_autocorr1")],
            f_const[feature_index("ibi_autocorr1")]);
}

TEST(HrvRegression, RespiratorySinusArrhythmiaLandsInHfBand) {
  // IBI modulated at 0.3 Hz (18 breaths/min): HF power must dominate LF.
  const double fs = 64.0;
  std::vector<double> beats;
  double t = 0.1;
  while (t < 119.0) {
    beats.push_back(t);
    t += 0.8 + 0.06 * std::sin(2.0 * M_PI * 0.3 * t);
  }
  const auto x = render_beats(beats, fs, 120.0);
  const auto f = extract_bvp_features(x, fs);
  EXPECT_GT(f[feature_index("hrv_hf_power")],
            2.0 * f[feature_index("hrv_lf_power")]);
  EXPECT_GT(f[feature_index("hrv_hf_norm")], 0.6);
}

TEST(HrvRegression, BaroreflexModulationLandsInLfBand) {
  // IBI modulated at 0.09 Hz: LF power must dominate HF.
  const double fs = 64.0;
  std::vector<double> beats;
  double t = 0.1;
  while (t < 119.0) {
    beats.push_back(t);
    t += 0.8 + 0.06 * std::sin(2.0 * M_PI * 0.09 * t);
  }
  const auto x = render_beats(beats, fs, 120.0);
  const auto f = extract_bvp_features(x, fs);
  EXPECT_GT(f[feature_index("hrv_lf_power")],
            2.0 * f[feature_index("hrv_hf_power")]);
  EXPECT_GT(f[feature_index("hrv_lf_hf")], 2.0);
}

TEST(HrvRegression, BeatCountMatchesSchedule) {
  const double fs = 64.0;
  const auto beats = alternating_beats(0.75, 0.03, 45.0);
  const auto x = render_beats(beats, fs, 45.0);
  const auto f = extract_bvp_features(x, fs);
  EXPECT_NEAR(f[feature_index("bvp_n_beats")],
              static_cast<double>(beats.size()), 2.0);
}

TEST(HrvRegression, PulseSpectrumPeaksAtHeartRate) {
  const double fs = 64.0;
  const auto beats = alternating_beats(0.75, 0.0, 60.0);  // 1.333 Hz.
  const auto x = render_beats(beats, fs, 60.0);
  const auto f = extract_bvp_features(x, fs);
  EXPECT_NEAR(f[feature_index("pw_peak_freq")], 1.0 / 0.75, 0.15);
}

}  // namespace
}  // namespace clear::features
