#include "clear/edge_eval.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear::core {
namespace {

ClearConfig edge_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 41;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 6;
  c.train.epochs = 2;
  c.finetune.epochs = 3;
  c.finalize();
  return c;
}

/// Fold artifacts computed once (each fold trains K models).
struct SharedArtifacts {
  ClearConfig config = edge_config();
  wemac::WemacDataset dataset;
  ClearValidationResult clear_result;

  SharedArtifacts() : dataset(wemac::generate_wemac(edge_config().data)) {
    ClearOptions options;
    options.max_folds = 2;
    options.keep_artifacts = true;
    options.run_finetune = false;
    clear_result = run_clear_validation(dataset, config, options);
  }
};

SharedArtifacts& shared() {
  static SharedArtifacts s;
  return s;
}

TEST(EdgeEval, ModelFromCheckpointBytesRoundTrips) {
  auto& s = shared();
  const std::string& bytes = s.clear_result.artifacts[0].checkpoints[0];
  auto model = model_from_checkpoint_bytes(s.config.model, bytes);
  EXPECT_EQ(model->size(), 10u);
  EXPECT_THROW(model_from_checkpoint_bytes(s.config.model, "junk"),
               Error);
}

TEST(EdgeEval, GpuPrecisionReproducesClearNoFt) {
  auto& s = shared();
  EdgeEvalOptions options;
  options.run_finetune = false;
  const EdgeEvalResult r = run_edge_validation(
      s.dataset, s.config, s.clear_result.artifacts, edge::DeviceKind::kGpu,
      options);
  ASSERT_EQ(r.no_ft.folds(), s.clear_result.no_ft.folds());
  for (std::size_t i = 0; i < r.no_ft.folds(); ++i)
    EXPECT_NEAR(r.no_ft.fold_accuracy[i],
                s.clear_result.no_ft.fold_accuracy[i], 1e-9);
}

TEST(EdgeEval, AllDevicesProduceBoundedMetrics) {
  auto& s = shared();
  EdgeEvalOptions options;
  options.run_finetune = true;
  for (const auto device : {edge::DeviceKind::kCoralTpu,
                            edge::DeviceKind::kPiNcs2}) {
    const EdgeEvalResult r = run_edge_validation(
        s.dataset, s.config, s.clear_result.artifacts, device, options);
    EXPECT_EQ(r.no_ft.folds(), 2u);
    EXPECT_EQ(r.rt.folds(), 2u);
    EXPECT_EQ(r.with_ft.folds(), 2u);
    for (const double v : r.no_ft.fold_accuracy) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
    EXPECT_GT(r.infer_cost.seconds, 0.0);
    EXPECT_GT(r.ft_cost.seconds, 0.0);
    EXPECT_GT(r.infer_cost.power_w, 0.0);
  }
}

TEST(EdgeEval, TpuFasterAndLowerPowerThanNcs2) {
  auto& s = shared();
  EdgeEvalOptions options;
  options.run_finetune = false;
  const EdgeEvalResult tpu = run_edge_validation(
      s.dataset, s.config, s.clear_result.artifacts,
      edge::DeviceKind::kCoralTpu, options);
  const EdgeEvalResult ncs2 = run_edge_validation(
      s.dataset, s.config, s.clear_result.artifacts,
      edge::DeviceKind::kPiNcs2, options);
  EXPECT_LT(tpu.infer_cost.seconds, ncs2.infer_cost.seconds);
  EXPECT_LT(tpu.ft_cost.seconds, ncs2.ft_cost.seconds);
  EXPECT_LT(tpu.infer_cost.power_w, ncs2.infer_cost.power_w);
}

TEST(EdgeEval, RequiresArtifacts) {
  auto& s = shared();
  EXPECT_THROW(run_edge_validation(s.dataset, s.config, {},
                                   edge::DeviceKind::kGpu),
               Error);
}

TEST(EdgeEval, ProgressCallbackFires) {
  auto& s = shared();
  EdgeEvalOptions options;
  options.run_finetune = false;
  std::size_t calls = 0;
  options.progress = [&calls](std::size_t, std::size_t) { ++calls; };
  run_edge_validation(s.dataset, s.config, s.clear_result.artifacts,
                      edge::DeviceKind::kGpu, options);
  EXPECT_EQ(calls, 2u);
}

}  // namespace
}  // namespace clear::core
