// Reproduces Table I: comparison of the proposed method with the existing
// references for WEMAC (fear / non-fear), accuracy and F1 with standard
// deviations across LOSO folds.
//
// Paper reference values are printed next to the measured ones. The two
// state-of-the-art rows (Bindi, Sun et al.) are literature numbers quoted by
// the paper — their systems are out of CLEAR's scope — so they appear as
// reference-only rows.
//
// Flags: --quick --volunteers=N --trials=N --epochs=N --ft-epochs=N
//        --max-folds=N --skip-cl --skip-general --skip-ft --seed=N
//        --cache-dir=DIR
#include "bench_common.hpp"
#include "clear/evaluation.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);

  std::printf("Table I harness: %zu volunteers, %zu maps, K=%zu\n",
              dataset.n_volunteers(), dataset.samples().size(), config.gc.k);

  core::ClearOptions options;
  options.max_folds = static_cast<std::size_t>(args.get_int("max-folds", 0));
  options.run_finetune = !args.get_bool("skip-ft", false);
  options.progress = [](std::size_t fold, std::size_t total) {
    CLEAR_INFO("CLEAR validation fold " << fold + 1 << "/" << total);
  };

  // -- CL validation + RT CL -------------------------------------------------
  core::ClValidationResult cl;
  bool have_cl = !args.get_bool("skip-cl", false);
  if (have_cl) {
    CLEAR_INFO("running CL validation (intra-cluster LOSO)...");
    cl = core::run_cl_validation(dataset, config);
    std::printf("\nGC cluster sizes (paper: 17/13/7/7):");
    for (const std::size_t s : cl.cluster_sizes) std::printf(" %zu", s);
    std::printf("   silhouette=%.3f\n", cl.silhouette);
  }

  // -- General model ----------------------------------------------------------
  core::Aggregate general;
  bool have_general = !args.get_bool("skip-general", false);
  if (have_general) {
    CLEAR_INFO("running General model baseline (x="
               << config.general_model_users << ", no clustering)...");
    general = core::run_general_model(dataset, config);
  }

  // -- CLEAR validation --------------------------------------------------------
  CLEAR_INFO("running CLEAR validation (full LOSO)...");
  const core::ClearValidationResult clear_res =
      core::run_clear_validation(dataset, config, options);

  // -- Render -------------------------------------------------------------------
  AsciiTable table({"Validation func", "Accuracy (paper/meas)",
                    "STD (paper/meas)", "F1 (paper/meas)",
                    "STD F1 (paper/meas)"});
  table.set_title(
      "TABLE I — fear vs non-fear on (synthetic) WEMAC; values in percent");
  table.add_section("Previous works (reference rows from the paper)");
  table.add_row({"Bindi [22]", "64.63 /   --  ", "16.56 /   --  ",
                 "66.67 /   --  ", "17.31 /   --  "});
  table.add_row({"Sun et al. [18]", "79.90 /   --  ", " 4.16 /   --  ",
                 "78.13 /   --  ", " 6.52 /   --  "});
  table.add_section("Without clustering");
  if (have_general) {
    table.add_row({"General Model",
                   bench::paper_vs(75.00, general.accuracy.mean),
                   bench::paper_vs(2.76, general.accuracy.stddev),
                   bench::paper_vs(72.57, general.f1.mean),
                   bench::paper_vs(3.12, general.f1.stddev)});
  }
  table.add_section("Clustering and Learning (CL) validation");
  if (have_cl) {
    table.add_row({"RT CL", bench::paper_vs(64.33, cl.rt.accuracy.mean),
                   bench::paper_vs(1.80, cl.rt.accuracy.stddev),
                   bench::paper_vs(62.42, cl.rt.f1.mean),
                   bench::paper_vs(1.57, cl.rt.f1.stddev)});
    table.add_row({"CL validation",
                   bench::paper_vs(81.90, cl.cl.accuracy.mean),
                   bench::paper_vs(3.44, cl.cl.accuracy.stddev),
                   bench::paper_vs(80.41, cl.cl.f1.mean),
                   bench::paper_vs(3.58, cl.cl.f1.stddev)});
  }
  table.add_section("CLEAR validation");
  table.add_row({"RT CLEAR", bench::paper_vs(72.68, clear_res.rt.accuracy.mean),
                 bench::paper_vs(5.10, clear_res.rt.accuracy.stddev),
                 bench::paper_vs(70.98, clear_res.rt.f1.mean),
                 bench::paper_vs(4.26, clear_res.rt.f1.stddev)});
  table.add_row({"CLEAR w/o FT",
                 bench::paper_vs(80.63, clear_res.no_ft.accuracy.mean),
                 bench::paper_vs(4.22, clear_res.no_ft.accuracy.stddev),
                 bench::paper_vs(79.97, clear_res.no_ft.f1.mean),
                 bench::paper_vs(4.74, clear_res.no_ft.f1.stddev)});
  if (options.run_finetune) {
    table.add_row({"CLEAR w FT",
                   bench::paper_vs(86.34, clear_res.with_ft.accuracy.mean),
                   bench::paper_vs(4.04, clear_res.with_ft.accuracy.stddev),
                   bench::paper_vs(86.03, clear_res.with_ft.f1.mean),
                   bench::paper_vs(5.04, clear_res.with_ft.f1.stddev)});
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\nCA consistency (assigned cluster matches ground-truth archetype "
      "majority): %.1f%%\n",
      clear_res.ca_consistency * 100.0);
  return 0;
}
