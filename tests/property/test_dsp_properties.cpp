// Parameterized property sweeps over the DSP substrate: invariants that
// must hold for *every* size / frequency / cutoff in the supported range,
// not just the hand-picked cases of the unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "signal/fft.hpp"
#include "signal/filter.hpp"
#include "signal/peaks.hpp"
#include "signal/resample.hpp"

namespace clear::dsp {
namespace {

// ---- FFT: round-trip + Parseval for every power-of-two size -----------------

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> data(n);
  for (auto& c : data) c = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  fft(data, true);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-9) << "n=" << n;
}

TEST_P(FftSizeSweep, ParsevalEnergyConserved) {
  const std::size_t n = GetParam();
  Rng rng(n * 31);
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = {rng.normal(), 0.0};
    time_energy += std::norm(c);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n) / time_energy, 1.0, 1e-9);
}

TEST_P(FftSizeSweep, LinearityHolds) {
  const std::size_t n = GetParam();
  Rng rng(n * 7);
  std::vector<std::complex<double>> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.normal(), 0.0};
    b[i] = {rng.normal(), 0.0};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512, 1024,
                                           4096));

// ---- Welch: tone localization across the band --------------------------------

class ToneSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToneSweep, WelchLocatesTone) {
  const double freq = GetParam();
  const double fs = 64.0;
  std::vector<double> x(2048);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * M_PI * freq * static_cast<double>(i) / fs);
  const Psd psd = welch(x, fs, 512);
  EXPECT_NEAR(peak_frequency(psd, 0.3, 31.0), freq, fs / 512.0 + 1e-9);
  EXPECT_NEAR(spectral_centroid(psd), freq, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ToneSweep,
                         ::testing::Values(0.5, 1.0, 2.5, 5.0, 8.0, 12.0, 20.0,
                                           28.0));

// ---- Welch: the PSD integral equals the signal variance ----------------------

class PsdCalibrationSweep : public ::testing::TestWithParam<double> {};

TEST_P(PsdCalibrationSweep, NoisePowerIsConserved) {
  const double sigma = GetParam();
  Rng rng(static_cast<std::uint64_t>(sigma * 100));
  std::vector<double> x(8192);
  for (auto& v : x) v = rng.normal(0.0, sigma);
  const Psd psd = welch(x, 64.0, 512);
  const double integral = band_power(psd, 0.0, 32.0);
  EXPECT_NEAR(integral / stats::variance(x), 1.0, 0.05) << "sigma=" << sigma;
}

TEST_P(PsdCalibrationSweep, TonePowerIsConserved) {
  const double amp = GetParam();
  std::vector<double> x(8192);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = amp * std::sin(2.0 * M_PI * 8.0 * static_cast<double>(i) / 64.0);
  const Psd psd = welch(x, 64.0, 512);
  // A sine of amplitude A carries power A^2/2.
  EXPECT_NEAR(band_power(psd, 0.0, 32.0), amp * amp / 2.0,
              0.02 * amp * amp);
}

INSTANTIATE_TEST_SUITE_P(Scales, PsdCalibrationSweep,
                         ::testing::Values(0.1, 1.0, 3.0, 25.0));

// ---- Butterworth: gain contract across cutoffs --------------------------------

class CutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(CutoffSweep, LowpassGainContract) {
  const double fc = GetParam();
  const double fs = 64.0;
  auto rms_tail = [](const std::vector<double>& v) {
    return stats::rms(std::span<const double>(v.data() + 512, v.size() - 512));
  };
  const Biquad lp = butterworth_lowpass(fc, fs);
  // Deep passband (fc/4): gain ~ 1.
  std::vector<double> pass(4096);
  for (std::size_t i = 0; i < pass.size(); ++i)
    pass[i] = std::sin(2.0 * M_PI * (fc / 4.0) * i / fs);
  EXPECT_NEAR(rms_tail(lp.apply(pass)) / rms_tail(pass), 1.0, 0.05)
      << "fc=" << fc;
  // Deep stopband (4*fc): attenuation > 20 dB.
  if (4.0 * fc < fs / 2.0) {
    std::vector<double> stop(4096);
    for (std::size_t i = 0; i < stop.size(); ++i)
      stop[i] = std::sin(2.0 * M_PI * (4.0 * fc) * i / fs);
    EXPECT_LT(rms_tail(lp.apply(stop)) / rms_tail(stop), 0.1) << "fc=" << fc;
  }
}

TEST_P(CutoffSweep, HighpassMirrorsLowpass) {
  const double fc = GetParam();
  const double fs = 64.0;
  const Biquad hp = butterworth_highpass(fc, fs);
  const std::vector<double> dc(2048, 1.0);
  const auto out = hp.apply(dc);
  EXPECT_NEAR(out.back(), 0.0, 1e-6) << "fc=" << fc;
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CutoffSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 7.0));

// ---- Resampling: structural properties across ratios -------------------------

class ResampleSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ResampleSweep, EndpointsAndMonotonicityPreserved) {
  const auto [in_len, out_len] = GetParam();
  std::vector<double> ramp(in_len);
  for (std::size_t i = 0; i < in_len; ++i) ramp[i] = static_cast<double>(i);
  const auto out = resample_to_length(ramp, out_len);
  ASSERT_EQ(out.size(), out_len);
  EXPECT_NEAR(out.front(), ramp.front(), 1e-9);
  if (out_len > 1)
    EXPECT_NEAR(out.back(), ramp.back(), 1e-9);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_GE(out[i], out[i - 1] - 1e-9);
}

TEST_P(ResampleSweep, ValuesStayWithinInputRange) {
  const auto [in_len, out_len] = GetParam();
  Rng rng(in_len * 1000 + out_len);
  std::vector<double> x(in_len);
  for (auto& v : x) v = rng.normal();
  const double lo = stats::min(x);
  const double hi = stats::max(x);
  for (const double v : resample_to_length(x, out_len)) {
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, ResampleSweep,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(100, 100),
                      std::make_pair<std::size_t, std::size_t>(100, 37),
                      std::make_pair<std::size_t, std::size_t>(37, 100),
                      std::make_pair<std::size_t, std::size_t>(640, 80),
                      std::make_pair<std::size_t, std::size_t>(11, 1000),
                      std::make_pair<std::size_t, std::size_t>(2, 2)));

// ---- Peak detection: count tracks the pulse rate ------------------------------

class PulseRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(PulseRateSweep, BeatCountMatchesRate) {
  const double hz = GetParam();
  const double fs = 64.0;
  const double duration = 30.0;
  std::vector<double> x(static_cast<std::size_t>(duration * fs));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double phase = std::fmod(hz * static_cast<double>(i) / fs, 1.0);
    x[i] = std::exp(-std::pow((phase - 0.3) / 0.08, 2.0));
  }
  PeakOptions opt;
  opt.min_prominence = 0.4;
  opt.min_distance = static_cast<std::size_t>(fs / (hz * 1.5));
  const auto peaks = find_peaks(x, opt);
  EXPECT_NEAR(static_cast<double>(peaks.size()), duration * hz, 2.0)
      << "hz=" << hz;
}

INSTANTIATE_TEST_SUITE_P(Rates, PulseRateSweep,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5, 1.9));

}  // namespace
}  // namespace clear::dsp
