// Quickstart: the CLEAR workflow end to end on a small synthetic population.
//
//   1. Generate a synthetic WEMAC-style dataset (volunteers drawn from four
//      physiological response archetypes).
//   2. Cloud stage: cluster the initial users and pre-train one CNN-LSTM
//      per cluster.
//   3. Edge stage: a new user arrives with *unlabeled* data only — assign
//      them to a cluster (cold start), then personalize with a few labelled
//      maps.
//
// Run:  ./quickstart [--volunteers=16] [--seed=42]
#include <cstdio>

#include "clear/evaluation.hpp"
#include "clear/pipeline.hpp"
#include "common/cli.hpp"
#include "common/logging.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  core::ClearConfig config = core::smoke_config();
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 16));
  config.data.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 5));
  config.finalize();

  std::printf("== CLEAR quickstart ==\n");
  std::printf("generating synthetic WEMAC population (%zu volunteers)...\n",
              config.data.n_volunteers);
  const wemac::WemacDataset dataset = wemac::generate_wemac(config.data);
  std::printf("  %zu feature maps of %zux%zu (features x windows)\n",
              dataset.samples().size(), dataset.feature_dim(),
              config.data.windows_per_trial);

  // Hold the last volunteer out as the "new user".
  const std::size_t new_user = dataset.n_volunteers() - 1;
  std::vector<std::size_t> initial_users;
  for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
    initial_users.push_back(u);

  std::printf("\n-- cloud stage: clustering + per-cluster pre-training --\n");
  core::ClearPipeline pipeline(config);
  pipeline.fit(dataset, initial_users);
  for (std::size_t k = 0; k < pipeline.n_clusters(); ++k)
    std::printf("  cluster %zu: %zu users\n", k,
                pipeline.clustering().clusters[k].members.size());

  std::printf("\n-- edge stage: cold-start assignment for volunteer %zu --\n",
              new_user);
  const cluster::AssignmentResult assignment =
      pipeline.assign_user(dataset, new_user, config.ca_fraction);
  std::printf("  assigned to cluster %zu (scores:", assignment.cluster);
  for (const double s : assignment.scores) std::printf(" %.3f", s);
  std::printf(")\n");

  const core::UserSplit split = core::split_user_samples(
      dataset, new_user, config.ca_fraction, config.ft_fraction);
  const nn::BinaryMetrics before =
      pipeline.evaluate_on(dataset, assignment.cluster, split.test);
  std::printf("  accuracy without fine-tuning: %.2f%% (F1 %.2f%%)\n",
              before.accuracy * 100.0, before.f1 * 100.0);

  std::printf("\n-- personalisation: fine-tune on %zu labelled maps --\n",
              split.ft.size());
  auto personal = pipeline.clone_cluster_model(assignment.cluster);
  pipeline.fine_tune_on(*personal, dataset, split.ft);
  const std::vector<Tensor> test_maps =
      pipeline.normalize_samples(dataset, split.test);
  nn::MapDataset test_set;
  for (std::size_t i = 0; i < test_maps.size(); ++i) {
    test_set.maps.push_back(&test_maps[i]);
    test_set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[split.test[i]].label));
  }
  const nn::BinaryMetrics after = nn::evaluate(*personal, test_set);
  std::printf("  accuracy after fine-tuning:  %.2f%% (F1 %.2f%%)\n",
              after.accuracy * 100.0, after.f1 * 100.0);
  std::printf("\ndone.\n");
  return 0;
}
