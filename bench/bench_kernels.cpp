// Micro-benchmarks (google-benchmark): the op-level kernels behind the
// tables — fp32 GEMM vs int8 GEMM, conv/LSTM forward+backward, end-to-end
// CNN-LSTM inference at each precision, and the 123-feature extraction.
//
// The binary first prints a thread-count sweep (1/2/4/hardware) for the two
// parallelized hot kernels — fp32 GEMM and k-means — with speedups relative
// to 1 thread, then runs the google-benchmark suite (pass --benchmark_filter
// etc. as usual).
//
// `bench_kernels --json[=FILE]` switches to the machine-readable kernel-ISA
// sweep instead: every supported SIMD kernel table (scalar / avx2 / neon)
// is timed single-threaded at the CLEAR layer shapes (the exact GEMMs the
// CNN-LSTM issues per forward, plus the int8 / fp16 / elementwise edge
// paths), speedups are reported relative to the scalar oracle, and outputs
// are cross-checked bit-identical across ISAs while timing. The JSON feeds
// tools/bench_regress.py (ctest `bench_regress`), which gates the committed
// BENCH_kernels.json baseline against silent kernel regressions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "cluster/kmeans.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "edge/engine.hpp"
#include "edge/qkernels.hpp"
#include "features/feature_map.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "wemac/synth.hpp"

namespace {

using namespace clear;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

void BM_MatmulF32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor af = random_tensor({n, n}, 3);
  const Tensor bf = random_tensor({n, n}, 4);
  const auto qa = edge::quantize_tensor(af, edge::calibrate_max_abs(af.flat()));
  const auto qb = edge::quantize_tensor(bf, edge::calibrate_max_abs(bf.flat()));
  std::vector<std::int32_t> acc(n * n);
  for (auto _ : state) {
    edge::int8_gemm(qa, qb, n, n, n, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void BM_QuantizedConv(benchmark::State& state) {
  // The paper model's second conv layer (12 channels over 6) in int8.
  Rng rng(21);
  Tensor w({12, 6 * 3 * 3});
  w.fill_normal(rng, 0.0f, 0.3f);
  Tensor bias({12});
  bias.fill_normal(rng, 0.0f, 0.1f);
  const edge::QuantizedConv2d conv(w, bias, 6, 3, 3, 1, 1);
  Tensor x({1, 6, 61, 6});
  x.fill_normal(rng, 0.0f, 1.0f);
  const edge::QuantParams act = edge::calibrate_max_abs(x.flat());
  for (auto _ : state) {
    Tensor y = conv.forward(x, act);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedConv);

nn::CnnLstmConfig bench_model_config() {
  nn::CnnLstmConfig c;
  c.feature_dim = 123;
  c.window_count = 12;
  c.conv1_channels = 6;
  c.conv2_channels = 12;
  c.lstm_hidden = 32;
  c.dropout = 0.0;
  return c;
}

void BM_CnnLstmForward(benchmark::State& state) {
  Rng rng(5);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  model->set_training(false);
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const Tensor batch = random_tensor({batch_size, 1, 123, 12}, 6);
  for (auto _ : state) {
    Tensor out = model->forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_CnnLstmForward)->Arg(1)->Arg(16);

void BM_CnnLstmTrainStep(benchmark::State& state) {
  Rng rng(7);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  model->set_training(true);
  const Tensor batch = random_tensor({16, 1, 123, 12}, 8);
  std::vector<std::size_t> labels(16);
  for (std::size_t i = 0; i < 16; ++i) labels[i] = i % 2;
  for (auto _ : state) {
    const Tensor logits = model->forward(batch);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    const Tensor grad = model->backward(loss.grad_logits);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_CnnLstmTrainStep);

void BM_EdgeInference(benchmark::State& state) {
  const auto precision = static_cast<edge::Precision>(state.range(0));
  Rng rng(9);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  edge::EngineConfig ec;
  ec.precision = precision;
  edge::EdgeEngine engine(std::move(model), ec);
  std::vector<Tensor> calib;
  for (std::uint64_t i = 0; i < 8; ++i)
    calib.push_back(random_tensor({123, 12}, 10 + i));
  std::vector<const Tensor*> calib_ptrs;
  for (const Tensor& t : calib) calib_ptrs.push_back(&t);
  engine.calibrate(calib_ptrs);
  const Tensor batch = random_tensor({1, 1, 123, 12}, 20);
  for (auto _ : state) {
    Tensor out = engine.forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EdgeInference)
    ->Arg(static_cast<int>(edge::Precision::kFp32))
    ->Arg(static_cast<int>(edge::Precision::kFp16))
    ->Arg(static_cast<int>(edge::Precision::kInt8));

void BM_FeatureExtraction(benchmark::State& state) {
  // One 10 s multi-modal window -> 123 features.
  Rng prof_rng(11);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[0], 0, 0, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kFear;
  stim.duration_s = 10.0;
  Rng trial_rng(12);
  const wemac::TrialSignals trial =
      wemac::synthesize_trial(profile, stim, {}, trial_rng);
  const auto windows = wemac::slice_windows(trial, 10.0);
  for (auto _ : state) {
    auto f = features::extract_window_features(windows[0]);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_TrialSynthesis(benchmark::State& state) {
  Rng prof_rng(13);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[1], 0, 1, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kJoy;
  stim.duration_s = 120.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto t = wemac::synthesize_trial(profile, stim, {}, rng);
    benchmark::DoNotOptimize(t.bvp.data());
  }
}
BENCHMARK(BM_TrialSynthesis);

void BM_Fp16RoundTrip(benchmark::State& state) {
  Tensor t = random_tensor({123, 12}, 14);
  for (auto _ : state) {
    Tensor copy = t;
    edge::fp16_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_FakeQuantize(benchmark::State& state) {
  Tensor t = random_tensor({123, 12}, 15);
  const edge::QuantParams p = edge::calibrate_max_abs(t.flat());
  for (auto _ : state) {
    Tensor copy = t;
    edge::fake_quantize_inplace(copy, p);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FakeQuantize);

void BM_MatmulF32Threads(benchmark::State& state) {
  const NumThreadsGuard guard(static_cast<std::size_t>(state.range(1)));
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulF32Threads)->Apply([](benchmark::internal::Benchmark* b) {
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              hardware_threads()})
    b->Args({256, static_cast<std::int64_t>(t)});
});

void BM_KMeansThreads(benchmark::State& state) {
  const NumThreadsGuard guard(static_cast<std::size_t>(state.range(0)));
  Rng data_rng(31);
  std::vector<cluster::Point> points;
  for (std::size_t i = 0; i < 2000; ++i) {
    cluster::Point p(16);
    const double center = static_cast<double>(i % 8) * 4.0;
    for (double& v : p) v = center + data_rng.normal(0.0, 1.0);
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    Rng rng(7);
    const cluster::KMeansResult r = cluster::kmeans(points, 8, rng);
    benchmark::DoNotOptimize(r.inertia);
  }
}
BENCHMARK(BM_KMeansThreads)->Apply([](benchmark::internal::Benchmark* b) {
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              hardware_threads()})
    b->Args({static_cast<std::int64_t>(t)});
});

// ---------------------------------------------------------------------------
// Thread-count sweep printed before the google-benchmark suite: wall-clock
// and speedup vs 1 thread for the two parallel kernels. Results are
// bit-identical at every row (checked for k-means inertia here; the full
// guarantee is covered by test_parallel_determinism).

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

void print_thread_sweep() {
  std::vector<std::size_t> counts = {1, 2, 4, hardware_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  const Tensor a = random_tensor({384, 384}, 1);
  const Tensor b = random_tensor({384, 384}, 2);
  Rng data_rng(31);
  std::vector<cluster::Point> points;
  for (std::size_t i = 0; i < 2000; ++i) {
    cluster::Point p(16);
    const double center = static_cast<double>(i % 8) * 4.0;
    for (double& v : p) v = center + data_rng.normal(0.0, 1.0);
    points.push_back(std::move(p));
  }

  std::printf("thread sweep (best of 5, ms; speedup vs 1 thread)\n");
  std::printf("%8s %14s %14s\n", "threads", "gemm 384^3", "kmeans 2000x16");
  double gemm_base = 0.0;
  double km_base = 0.0;
  double km_inertia_base = 0.0;
  for (const std::size_t t : counts) {
    const NumThreadsGuard guard(t);
    const double gemm_ms = time_best_of(5, [&] {
      Tensor c = ops::matmul(a, b);
      benchmark::DoNotOptimize(c.data());
    });
    double inertia = 0.0;
    const double km_ms = time_best_of(5, [&] {
      Rng rng(7);
      inertia = cluster::kmeans(points, 8, rng).inertia;
    });
    if (t == 1) {
      gemm_base = gemm_ms;
      km_base = km_ms;
      km_inertia_base = inertia;
    } else if (inertia != km_inertia_base) {
      std::printf("WARNING: k-means inertia drifted at %zu threads\n", t);
    }
    std::printf("%8zu %9.2f %4.2fx %9.2f %4.2fx\n", t, gemm_ms,
                gemm_base / gemm_ms, km_ms, km_base / km_ms);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Kernel-ISA sweep (--json mode): single-threaded throughput of every
// supported SIMD kernel table at the CLEAR layer shapes, emitted as JSON
// for the bench-regression gate. The shapes are the GEMMs the CNN-LSTM
// actually issues (DESIGN.md §6): conv im2col products at F=123, W=12, the
// LSTM gate matmuls at batch 16, and a 256^3 square as a cache-resident
// reference point. bench_regress.py compares *speedups vs scalar* — a
// same-host, same-run ratio — so the committed baseline stays meaningful
// across machines of different absolute speed.

struct GemmShape {
  const char* name;
  std::size_t m, k, n;
};

// conv shapes: weight [out_ch, in_ch*3*3] x im2col cols [.., oh*ow] for the
// paper model on [1, 123, 12] maps; lstm shapes: [batch, in] x [in, 4H].
constexpr GemmShape kF32Shapes[] = {
    {"conv1", 6, 9, 123 * 12},   // Conv2d(1->6, 3x3, pad 1): [6,9]x[9,1476]
    {"conv2", 12, 54, 61 * 6},   // Conv2d(6->12, 3x3, pad 1): [12,54]x[54,366]
    {"lstm_x", 16, 360, 128},    // x_t * Wx at batch 16: [16,360]x[360,128]
    {"lstm_h", 16, 32, 128},     // h_{t-1} * Wh: [16,32]x[32,128]
    {"square256", 256, 256, 256},
};
constexpr GemmShape kI8Shapes[] = {
    {"conv2", 12, 54, 61 * 6},  // The quantized conv path at the same shape.
    {"square256", 256, 256, 256},
};
constexpr std::size_t kElemN = 123 * 12;  ///< One feature map, flattened.

double best_ms_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Repetitions scaled so each (shape, isa) cell costs roughly the same
/// wall-clock regardless of shape size; floor keeps tiny shapes honest.
int reps_for(std::size_t flops) {
  constexpr std::size_t kBudget = 400u * 1000u * 1000u;  // ~0.1 s @ 4 GFLOP/s
  const std::size_t r = kBudget / (flops == 0 ? 1 : flops);
  return static_cast<int>(std::clamp<std::size_t>(r, 5, 2000));
}

struct SweepRow {
  std::string bench;   ///< e.g. "gemm_f32.conv1"
  std::string isa;     ///< "scalar" / "avx2" / "neon"
  std::size_t m, k, n;
  double ms;
  double gflops;  ///< 2*m*k*n based; 0 for the elementwise rows.
};

void json_escape_free_sweep(std::FILE* out, const std::vector<SweepRow>& rows,
                            bool bit_identical) {
  // Names are compile-time identifiers (no escaping needed).
  std::fprintf(out, "{\n  \"schema\": \"clear-bench-kernels-v1\",\n");
  std::fprintf(out, "  \"default_isa\": \"%s\",\n",
               kernels::isa_name(kernels::detect_best()));
  std::fprintf(out, "  \"isas\": [");
  const std::vector<kernels::Isa> isas = kernels::supported_isas();
  for (std::size_t i = 0; i < isas.size(); ++i)
    std::fprintf(out, "%s\"%s\"", i ? ", " : "", kernels::isa_name(isas[i]));
  std::fprintf(out, "],\n  \"bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"bench\": \"%s\", \"isa\": \"%s\", \"m\": %zu, "
                 "\"k\": %zu, \"n\": %zu, \"ms\": %.6f, \"gflops\": %.4f}%s\n",
                 r.bench.c_str(), r.isa.c_str(), r.m, r.k, r.n, r.ms,
                 r.gflops, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"speedups\": {\n");
  // speedups[bench][isa] = scalar_ms / isa_ms for every non-scalar ISA.
  std::vector<std::string> benches;
  for (const SweepRow& r : rows)
    if (std::find(benches.begin(), benches.end(), r.bench) == benches.end())
      benches.push_back(r.bench);
  for (std::size_t bi = 0; bi < benches.size(); ++bi) {
    double scalar_ms = 0.0;
    for (const SweepRow& r : rows)
      if (r.bench == benches[bi] && r.isa == "scalar") scalar_ms = r.ms;
    std::fprintf(out, "    \"%s\": {", benches[bi].c_str());
    bool first = true;
    for (const SweepRow& r : rows) {
      if (r.bench != benches[bi] || r.isa == "scalar") continue;
      std::fprintf(out, "%s\"%s\": %.4f", first ? "" : ", ", r.isa.c_str(),
                   scalar_ms / r.ms);
      first = false;
    }
    std::fprintf(out, "}%s\n", bi + 1 < benches.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
}

int run_kernel_sweep(const std::string& json_path) {
  const std::vector<kernels::Isa> isas = kernels::supported_isas();
  std::vector<SweepRow> rows;
  bool bit_identical = true;

  // fp32 GEMM (with the fused per-col bias + relu epilogue, the densest
  // form the nn layer issues) at each CLEAR shape.
  for (const GemmShape& s : kF32Shapes) {
    const Tensor a = random_tensor({s.m, s.k}, 101);
    const Tensor b = random_tensor({s.k, s.n}, 102);
    const Tensor bias = random_tensor({s.n}, 103);
    const kernels::Epilogue ep{kernels::BiasMode::kPerCol, bias.data(),
                               kernels::Activation::kRelu};
    std::vector<float> c(s.m * s.n), ref;
    const int reps = reps_for(2 * s.m * s.k * s.n);
    for (const kernels::Isa isa : isas) {
      const kernels::KernelTable& kt = kernels::table(isa);
      const double ms = best_ms_of(reps, [&] {
        std::memset(c.data(), 0, c.size() * sizeof(float));
        kt.gemm_f32(a.data(), b.data(), c.data(), s.m, s.k, s.n, &ep);
        benchmark::DoNotOptimize(c.data());
      });
      if (isa == kernels::Isa::kScalar)
        ref = c;
      else if (std::memcmp(ref.data(), c.data(), c.size() * sizeof(float)))
        bit_identical = false;
      rows.push_back({std::string("gemm_f32.") + s.name,
                      kernels::isa_name(isa), s.m, s.k, s.n, ms,
                      2.0 * static_cast<double>(s.m * s.k * s.n) /
                          (ms * 1e6)});
    }
  }

  // int8 GEMM (exact integer accumulation).
  for (const GemmShape& s : kI8Shapes) {
    Rng rng(104);
    std::vector<std::int8_t> a(s.m * s.k), b(s.k * s.n);
    for (std::int8_t& v : a)
      v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (std::int8_t& v : b)
      v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    std::vector<std::int32_t> c(s.m * s.n), ref;
    const int reps = reps_for(2 * s.m * s.k * s.n);
    for (const kernels::Isa isa : isas) {
      const kernels::KernelTable& kt = kernels::table(isa);
      const double ms = best_ms_of(reps, [&] {
        kt.gemm_i8(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        benchmark::DoNotOptimize(c.data());
      });
      if (isa == kernels::Isa::kScalar)
        ref = c;
      else if (ref != c)
        bit_identical = false;
      rows.push_back({std::string("gemm_i8.") + s.name,
                      kernels::isa_name(isa), s.m, s.k, s.n, ms,
                      2.0 * static_cast<double>(s.m * s.k * s.n) /
                          (ms * 1e6)});
    }
  }

  // Edge numeric transforms + the widest elementwise op, one feature map
  // per call (what the fp16/int8 engine paths do per forward).
  struct ElemBench {
    const char* name;
    std::function<void(const kernels::KernelTable&, float*, std::size_t)> fn;
  };
  const float qscale = 0.05f;
  const ElemBench elems[] = {
      {"fp16_round",
       [](const kernels::KernelTable& kt, float* x, std::size_t n) {
         kt.fp16_round_f32(x, n);
       }},
      {"fake_quant",
       [qscale](const kernels::KernelTable& kt, float* x, std::size_t n) {
         kt.fake_quant_f32(x, qscale, n);
       }},
      {"axpy",
       [](const kernels::KernelTable& kt, float* x, std::size_t n) {
         kt.axpy_f32(x, 0.5f, x, n);
       }},
  };
  for (const ElemBench& e : elems) {
    const Tensor src = random_tensor({kElemN}, 105);
    std::vector<float> x(kElemN), ref;
    // ~2000 calls per rep so a cell is micro-seconds, not nano.
    const int reps = 50;
    for (const kernels::Isa isa : isas) {
      const kernels::KernelTable& kt = kernels::table(isa);
      const double ms = best_ms_of(reps, [&] {
                          for (int it = 0; it < 200; ++it) {
                            std::memcpy(x.data(), src.data(),
                                        kElemN * sizeof(float));
                            e.fn(kt, x.data(), kElemN);
                          }
                          benchmark::DoNotOptimize(x.data());
                        }) /
                        200.0;
      if (isa == kernels::Isa::kScalar)
        ref = x;
      else if (std::memcmp(ref.data(), x.data(), x.size() * sizeof(float)))
        bit_identical = false;
      rows.push_back({std::string("elem.") + e.name, kernels::isa_name(isa),
                      1, 1, kElemN, ms, 0.0});
    }
  }

  std::FILE* out = stdout;
  if (!json_path.empty()) {
    out = std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  json_escape_free_sweep(out, rows, bit_identical);
  if (out != stdout) std::fclose(out);

  // Human-readable recap on stderr so the JSON stream stays clean.
  for (const SweepRow& r : rows)
    if (r.isa != "scalar") {
      double scalar_ms = 0.0;
      for (const SweepRow& s : rows)
        if (s.bench == r.bench && s.isa == "scalar") scalar_ms = s.ms;
      std::fprintf(stderr, "%-20s %-6s %8.4f ms  %5.2fx vs scalar\n",
                   r.bench.c_str(), r.isa.c_str(), r.ms, scalar_ms / r.ms);
    }
  if (!bit_identical) {
    std::fprintf(stderr,
                 "ERROR: kernel outputs diverged across ISAs (see "
                 "test_kernel_equivalence)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --json[=FILE]: machine-readable kernel-ISA sweep only (no
  // google-benchmark suite). Handled before benchmark::Initialize, which
  // would reject the flag.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") return run_kernel_sweep("");
    if (arg.rfind("--json=", 0) == 0) return run_kernel_sweep(arg.substr(7));
  }
  print_thread_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
