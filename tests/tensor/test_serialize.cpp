#include "tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::io {
namespace {

TEST(Serialize, TensorRoundTrip) {
  Rng rng(1);
  Tensor t({3, 4, 5});
  t.fill_normal(rng, 0.0f, 2.0f);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  const Tensor u = read_tensor(ss);
  ASSERT_TRUE(u.same_shape(t));
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(u[i], t[i]);
}

TEST(Serialize, Rank1RoundTrip) {
  const Tensor t({4}, {1, 2, 3, 4});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  const Tensor u = read_tensor(ss);
  EXPECT_EQ(u.rank(), 1u);
  EXPECT_EQ(u[2], 3.0f);
}

TEST(Serialize, MultipleTensorsSequential) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, Tensor({2}, {1, 2}));
  write_tensor(ss, Tensor({3}, {3, 4, 5}));
  EXPECT_EQ(read_tensor(ss).numel(), 2u);
  EXPECT_EQ(read_tensor(ss).numel(), 3u);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write("garbagegarbage!!", 16);
  ss.seekg(0);
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(full, Tensor({100}));
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(read_tensor(cut), Error);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_string(ss, "hello world");
  write_string(ss, "");
  EXPECT_EQ(read_string(ss), "hello world");
  EXPECT_EQ(read_string(ss), "");
}

TEST(Serialize, ScalarsRoundTrip) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_u64(ss, 0xDEADBEEFCAFEull);
  write_f64(ss, 3.14159);
  EXPECT_EQ(read_u64(ss), 0xDEADBEEFCAFEull);
  EXPECT_DOUBLE_EQ(read_f64(ss), 3.14159);
}

}  // namespace
}  // namespace clear::io
