#include "nn/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "tensor/serialize.hpp"

namespace clear::nn {

namespace {
constexpr std::uint64_t kCheckpointMagicV1 = 0x434C454152434B50ull;  // "CLEARCKP"
constexpr std::uint64_t kCheckpointMagicV2 = 0x434C454152434B32ull;  // "CLEARCK2"
constexpr std::uint64_t kCheckpointVersion = 2;

void write_payload(std::ostream& os, Sequential& model) {
  const std::vector<Param*> params = model.parameters();
  io::write_u64(os, params.size());
  for (const Param* p : params) {
    io::write_string(os, p->name);
    io::write_tensor(os, p->value);
  }
}

void read_payload(std::istream& is, Sequential& model) {
  const std::vector<Param*> params = model.parameters();
  const std::uint64_t count = io::read_u64(is);
  CLEAR_CHECK_MSG(count == params.size(),
                  "checkpoint parameter count mismatch: file has "
                      << count << ", model has " << params.size());
  for (Param* p : params) {
    const std::string name = io::read_string(is);
    CLEAR_CHECK_MSG(name == p->name, "checkpoint parameter name mismatch: "
                                         << name << " vs " << p->name);
    Tensor t = io::read_tensor(is);
    CLEAR_CHECK_MSG(t.same_shape(p->value),
                    "checkpoint shape mismatch for " << name << ": "
                        << t.shape_str() << " vs " << p->value.shape_str());
    p->value = std::move(t);
  }
}

}  // namespace

void save_checkpoint(std::ostream& os, Sequential& model,
                     CheckpointFormat format) {
  if (format == CheckpointFormat::kLegacyV1) {
    io::write_u64(os, kCheckpointMagicV1);
    write_payload(os, model);
    return;
  }
  std::ostringstream payload_os(std::ios::binary);
  write_payload(payload_os, model);
  const std::string payload = payload_os.str();
  io::write_u64(os, kCheckpointMagicV2);
  io::write_u64(os, kCheckpointVersion);
  io::write_u64(os, payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  io::write_u64(os, crc32(payload));
}

void save_checkpoint_file(const std::string& path, Sequential& model) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  fault::maybe_fail_io("checkpoint open");
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CLEAR_CHECK_MSG(os.good(), "cannot open checkpoint for writing: " << tmp);
    save_checkpoint(os, model);
    CLEAR_CHECK_MSG(os.good(), "IO error writing checkpoint: " << tmp);
  }
  // The guarded rename is the commit point: an injected failure here
  // simulates a crash that leaves only the temp file behind.
  fault::maybe_fail_io("checkpoint rename");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  CLEAR_CHECK_MSG(!ec, "cannot commit checkpoint " << path << ": "
                                                   << ec.message());
}

void load_checkpoint(std::istream& is, Sequential& model) {
  const std::uint64_t magic = io::read_u64(is);
  if (magic == kCheckpointMagicV1) {
    // Pre-integrity format: no length, no CRC. Parse errors are the only
    // corruption signal we can give.
    read_payload(is, model);
    return;
  }
  CLEAR_CHECK_MSG(magic == kCheckpointMagicV2, "bad checkpoint magic");
  const std::uint64_t version = io::read_u64(is);
  CLEAR_CHECK_MSG(version == kCheckpointVersion,
                  "unsupported checkpoint version " << version);
  const std::uint64_t length = io::read_u64(is);
  CLEAR_CHECK_MSG(length < (1ull << 32),
                  "implausible checkpoint payload length " << length);
  std::string payload(length, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(length));
  const auto got = static_cast<std::uint64_t>(is.gcount());
  CLEAR_CHECK_MSG(got == length, "truncated checkpoint: payload has "
                                     << got << " of " << length << " bytes");
  unsigned char footer[8];
  is.read(reinterpret_cast<char*>(footer), 8);
  CLEAR_CHECK_MSG(is.gcount() == 8,
                  "truncated checkpoint: missing CRC footer");
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) stored |= std::uint64_t(footer[i]) << (8 * i);
  const std::uint32_t computed = crc32(payload);
  CLEAR_CHECK_MSG(stored == computed,
                  "checkpoint CRC mismatch: stored " << stored << ", computed "
                                                     << computed
                                                     << " (corrupted blob)");
  std::istringstream payload_is(payload, std::ios::binary);
  read_payload(payload_is, model);
}

void load_checkpoint_file(const std::string& path, Sequential& model) {
  std::ifstream is(path, std::ios::binary);
  CLEAR_CHECK_MSG(is.good(), "cannot open checkpoint: " << path);
  load_checkpoint(is, model);
}

std::vector<Tensor> snapshot_parameters(Sequential& model) {
  std::vector<Tensor> snap;
  for (const Param* p : model.parameters()) snap.push_back(p->value);
  return snap;
}

void restore_parameters(Sequential& model, const std::vector<Tensor>& snap) {
  const std::vector<Param*> params = model.parameters();
  CLEAR_CHECK_MSG(params.size() == snap.size(),
                  "snapshot parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    CLEAR_CHECK_MSG(snap[i].same_shape(params[i]->value),
                    "snapshot shape mismatch");
    params[i]->value = snap[i];
  }
}

}  // namespace clear::nn
