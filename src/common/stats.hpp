// Descriptive statistics over contiguous double sequences.
//
// These are the scalar building blocks used both by the 123-feature extractor
// (src/features) and by the evaluation harness (mean/std of fold metrics).
//
// Numerical contract: sum/mean use Neumaier-compensated summation and the
// second moments (variance, sample_variance, rms) use the corrected two-pass
// form, so large-offset signals — SKT rides a ~30 °C baseline with
// millidegree variation — keep their variation instead of shedding it into
// rounding error. See tests/common/test_stats.cpp (NumericalStability).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clear::stats {

double sum(std::span<const double> v);
double mean(std::span<const double> v);
/// Population variance (divide by n). Returns 0 for n < 1.
double variance(std::span<const double> v);
/// Sample variance (divide by n-1). Returns 0 for n < 2.
double sample_variance(std::span<const double> v);
double stddev(std::span<const double> v);
double sample_stddev(std::span<const double> v);
double min(std::span<const double> v);
double max(std::span<const double> v);
double range(std::span<const double> v);
/// Root mean square.
double rms(std::span<const double> v);
/// Fisher skewness; 0 when the variance underflows.
double skewness(std::span<const double> v);
/// Excess kurtosis; 0 when the variance underflows.
double kurtosis(std::span<const double> v);
/// Linear interpolation percentile, p in [0, 100].
double percentile(std::span<const double> v, double p);
double median(std::span<const double> v);
/// Interquartile range (P75 - P25).
double iqr(std::span<const double> v);
/// Least-squares slope of v against sample index 0..n-1.
double slope(std::span<const double> v);
/// First differences v[i+1] - v[i]; empty input yields empty output.
std::vector<double> diff(std::span<const double> v);
/// Mean of |diff|.
double mean_abs_diff(std::span<const double> v);
/// Number of sign changes of (v - mean(v)).
std::size_t zero_crossings(std::span<const double> v);
/// Fraction of strictly increasing consecutive pairs.
double fraction_increasing(std::span<const double> v);
/// Pearson autocorrelation at the given lag; 0 when undefined.
double autocorrelation(std::span<const double> v, std::size_t lag);
/// Pearson correlation; 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);
/// Shannon entropy (nats) of a histogram of v with `bins` equal-width bins.
double histogram_entropy(std::span<const double> v, std::size_t bins);

/// Hjorth parameters (activity, mobility, complexity) of a signal.
struct Hjorth {
  double activity = 0.0;
  double mobility = 0.0;
  double complexity = 0.0;
};
Hjorth hjorth(std::span<const double> v);

}  // namespace clear::stats
