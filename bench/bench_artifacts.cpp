// bench_artifacts — storage density and cold-load latency of delta-encoded
// personal checkpoints (src/serve/delta) vs full checkpoints.
//
// The workload is the real personalization path, not a synthetic blob
// generator: a pipeline is fitted, then every simulated user runs
// edge_finetune from their cluster's base checkpoint at one of the three
// serving tiers (fp32 / fp16 / int8), exactly as Server::personalize does.
// Each fine-tuned model is serialized as a full v2 checkpoint and
// delta-encoded against its base, and two things are measured per tier:
//
//   density    users-resident-per-GB — how many users' personal checkpoints
//              fit in a GB of storage — for full vs delta encoding. This is
//              a deterministic function of the workload (the codec has no
//              randomness), so the regression gate holds it tightly.
//   cold load  bytes-on-disk -> ready engine. The delta path pays an extra
//              decode (CRC + varint residual application) before the model
//              build; the gate bounds that overhead at the p99.
//
// Flags: --bench-users=24 --load-iters=3 [dataset flags: --seed
//        --volunteers --trials --epochs --ft-epochs --quick]
//        --json=FILE  write the clear-bench-artifacts-v1 report
//                     (tools/bench_regress.py gate, next to
//                     BENCH_artifacts.json)
//
// Gate (exit 1 when missed): int8-tier density gain >= 5x over full
// checkpoints, and delta cold-load p99 <= 1.2x the full-checkpoint p99.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "clear/pipeline.hpp"
#include "edge/engine.hpp"
#include "edge/finetune.hpp"
#include "nn/checkpoint.hpp"
#include "nn/model.hpp"
#include "serve/delta.hpp"
#include "serve/server.hpp"

using namespace clear;

namespace {

std::unique_ptr<nn::Sequential> model_from_blob(
    const nn::CnnLstmConfig& config, const std::string& blob) {
  Rng rng(1);  // Weights are overwritten by the checkpoint.
  auto model = nn::build_cnn_lstm(config, rng);
  std::istringstream is(blob, std::ios::binary);
  nn::load_checkpoint(is, *model);
  return model;
}

/// Build a ready engine from checkpoint bytes — the timed unit of the
/// cold-load measurement. Mirrors Server::build_engine: a delta blob is
/// decoded against its base first; int8 engines calibrate afterwards.
std::unique_ptr<edge::EdgeEngine> cold_load(
    const std::string& blob, const std::string& base_blob,
    const nn::CnnLstmConfig& mc, edge::Precision precision,
    const std::vector<const Tensor*>& calib) {
  const std::string* payload = &blob;
  std::string decoded;
  if (serve::delta::is_delta(blob)) {
    decoded = serve::delta::decode(blob, base_blob);
    payload = &decoded;
  }
  edge::EngineConfig ec;
  ec.precision = precision;
  auto engine = std::make_unique<edge::EdgeEngine>(
      model_from_blob(mc, *payload), ec);
  if (precision == edge::Precision::kInt8) engine->calibrate(calib);
  return engine;
}

double percentile(std::vector<double> v, double p) {
  CLEAR_CHECK_MSG(!v.empty(), "percentile of empty sample set");
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

struct TierStats {
  const char* name = "";
  std::size_t users = 0;
  std::size_t full_bytes = 0;    ///< Sum over users.
  std::size_t stored_bytes = 0;  ///< Sum of what delta storage persists.
  std::size_t fallbacks = 0;     ///< encode() declined; full blob stored.

  double gain() const {
    return static_cast<double>(full_bytes) /
           static_cast<double>(stored_bytes);
  }
  double users_per_gb(std::size_t total) const {
    return static_cast<double>(users) * (1024.0 * 1024.0 * 1024.0) /
           static_cast<double>(total);
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    core::ClearConfig config = bench::config_from_args(args);
    config.finalize();

    const wemac::WemacDataset d = wemac::generate_wemac(config.data);
    std::vector<std::size_t> fit_users;
    for (std::size_t u = 0; u + 2 < d.n_volunteers(); ++u)
      fit_users.push_back(u);
    std::printf("fitting pipeline on %zu of %zu volunteers...\n",
                fit_users.size(), d.n_volunteers());
    std::fflush(stdout);
    core::ClearPipeline pipeline(config);
    pipeline.fit(d, fit_users);
    const serve::ModelSource source =
        serve::ModelSource::from_pipeline(pipeline);

    // int8 activation statistics: volunteer 0's normalized maps stand in
    // for a calibration capture (same convention as clear-cli serve).
    std::vector<Tensor> calib_maps;
    for (const std::size_t s : d.samples_of(0)) {
      Tensor m = d.samples()[s].feature_map;
      source.normalizer.apply_map(m);
      calib_maps.push_back(std::move(m));
    }
    std::vector<const Tensor*> calib;
    for (const Tensor& m : calib_maps) calib.push_back(&m);

    const auto n_users =
        static_cast<std::size_t>(args.get_int("bench-users", 24));
    const auto load_iters =
        static_cast<std::size_t>(args.get_int("load-iters", 5));
    const edge::Precision tiers[] = {edge::Precision::kFp32,
                                     edge::Precision::kFp16,
                                     edge::Precision::kInt8};

    TierStats stats[3];
    std::vector<double> full_us, delta_us;
    std::printf("personalizing %zu users per tier (real edge_finetune)...\n",
                n_users);
    std::fflush(stdout);

    for (std::size_t t = 0; t < 3; ++t) {
      stats[t].name = edge::precision_name(tiers[t]);
      for (std::size_t u = 0; u < n_users; ++u) {
        const std::size_t cluster = u % source.n_clusters();
        const std::string base_blob = source.cluster_blob(cluster);

        // The user's device data: their volunteer's normalized maps.
        const std::size_t vol = fit_users[u % fit_users.size()];
        std::vector<Tensor> maps;
        nn::MapDataset data;
        for (const std::size_t s : d.samples_of(vol)) {
          Tensor m = d.samples()[s].feature_map;
          source.normalizer.apply_map(m);
          maps.push_back(std::move(m));
        }
        for (std::size_t i = 0; i < maps.size(); ++i) {
          data.maps.push_back(&maps[i]);
          data.labels.push_back(d.samples()[d.samples_of(vol)[i]].label);
        }

        edge::EngineConfig ec;
        ec.precision = tiers[t];
        edge::EdgeEngine engine(model_from_blob(config.model, base_blob),
                                ec);
        if (tiers[t] == edge::Precision::kInt8) engine.calibrate(calib);
        edge::EdgeFinetuneConfig fc;
        fc.train = config.finetune;
        fc.train.seed = config.seed ^ 0x5EEDull ^
                        ((u + 1) * 0x9E3779B97F4A7C15ull);
        fc.freeze_boundary = nn::fine_tune_boundary();
        edge::edge_finetune(engine, data, fc);

        std::ostringstream os(std::ios::binary);
        nn::save_checkpoint(os, engine.model());
        const std::string full_blob = os.str();
        const serve::delta::BaseRef ref{serve::delta::BaseRef::Kind::kCluster,
                                        cluster};
        const std::optional<std::string> delta_blob =
            serve::delta::encode(base_blob, ref, full_blob);
        const std::string& stored = delta_blob ? *delta_blob : full_blob;

        ++stats[t].users;
        stats[t].full_bytes += full_blob.size();
        stats[t].stored_bytes += stored.size();
        stats[t].fallbacks += !delta_blob;

        // Cold load, both encodings, interleaved within each iteration so
        // environmental drift hits both paths alike, best-of-iters per
        // sample so the p99 reflects the decode work rather than scheduler
        // noise.
        const auto time_one = [&](const std::string& blob) {
          const auto t0 = std::chrono::steady_clock::now();
          auto e = cold_load(blob, base_blob, config.model, tiers[t], calib);
          const auto t1 = std::chrono::steady_clock::now();
          CLEAR_CHECK_MSG(e != nullptr, "cold load produced no engine");
          return std::chrono::duration<double, std::micro>(t1 - t0).count();
        };
        double best_full = 0.0, best_delta = 0.0;
        for (std::size_t it = 0; it < load_iters; ++it) {
          const double f = time_one(full_blob);
          const double d2 = time_one(stored);
          if (it == 0 || f < best_full) best_full = f;
          if (it == 0 || d2 < best_delta) best_delta = d2;
        }
        full_us.push_back(best_full);
        delta_us.push_back(best_delta);
      }
    }

    const double full_p50 = percentile(full_us, 50.0);
    const double full_p99 = percentile(full_us, 99.0);
    const double delta_p50 = percentile(delta_us, 50.0);
    const double delta_p99 = percentile(delta_us, 99.0);

    AsciiTable table({"tier", "users", "full B/user", "delta B/user",
                      "gain", "users/GB full", "users/GB delta",
                      "fallbacks"});
    table.set_title("delta checkpoint storage density");
    for (const TierStats& s : stats)
      table.add_row(
          {s.name, std::to_string(s.users),
           std::to_string(s.full_bytes / s.users),
           std::to_string(s.stored_bytes / s.users),
           AsciiTable::num(s.gain(), 2),
           AsciiTable::num(s.users_per_gb(s.full_bytes), 0),
           AsciiTable::num(s.users_per_gb(s.stored_bytes), 0),
           std::to_string(s.fallbacks)});
    table.print();
    std::printf(
        "cold load: full p50=%.0fus p99=%.0fus | delta p50=%.0fus "
        "p99=%.0fus (ratio %.2fx)\n",
        full_p50, full_p99, delta_p50, delta_p99, delta_p99 / full_p99);

    if (const std::string json = args.get("json", ""); !json.empty()) {
      std::FILE* f = std::fopen(json.c_str(), "w");
      CLEAR_CHECK_MSG(f != nullptr, "cannot open " << json);
      std::fprintf(f, "{\n  \"schema\": \"clear-bench-artifacts-v1\",\n");
      std::fprintf(f,
                   "  \"config\": {\"bench_users\": %zu, \"seed\": %llu, "
                   "\"volunteers\": %zu, \"trials\": %zu, \"quick\": %s},\n",
                   n_users,
                   static_cast<unsigned long long>(config.data.seed),
                   config.data.n_volunteers, config.data.trials_per_volunteer,
                   args.get_bool("quick", false) ? "true" : "false");
      std::fprintf(f, "  \"density\": {\n");
      for (std::size_t t = 0; t < 3; ++t)
        std::fprintf(f,
                     "    \"%s\": {\"full_bytes\": %zu, \"stored_bytes\": "
                     "%zu, \"fallbacks\": %zu, \"users_per_gb_full\": %.1f, "
                     "\"users_per_gb_delta\": %.1f}%s\n",
                     stats[t].name, stats[t].full_bytes,
                     stats[t].stored_bytes, stats[t].fallbacks,
                     stats[t].users_per_gb(stats[t].full_bytes),
                     stats[t].users_per_gb(stats[t].stored_bytes),
                     t + 1 < 3 ? "," : "");
      std::fprintf(f, "  },\n  \"gains\": {");
      for (std::size_t t = 0; t < 3; ++t)
        std::fprintf(f, "\"%s\": %.4f%s", stats[t].name, stats[t].gain(),
                     t + 1 < 3 ? ", " : "");
      std::fprintf(f,
                   "},\n  \"cold_load\": {\"full_p50_us\": %.1f, "
                   "\"full_p99_us\": %.1f, \"delta_p50_us\": %.1f, "
                   "\"delta_p99_us\": %.1f, \"p99_headroom\": %.4f}\n}\n",
                   full_p50, full_p99, delta_p50, delta_p99,
                   full_p99 / delta_p99);
      std::fclose(f);
      std::printf("report written to %s\n", json.c_str());
    }

    bool pass = true;
    const double int8_gain = stats[2].gain();
    std::printf("int8 density gain: %.2fx (target >= 5x): %s\n", int8_gain,
                int8_gain >= 5.0 ? "PASS" : "FAIL");
    pass = pass && int8_gain >= 5.0;
    const double p99_ratio = delta_p99 / full_p99;
    std::printf("delta cold-load p99: %.2fx full (target <= 1.2x): %s\n",
                p99_ratio, p99_ratio <= 1.2 ? "PASS" : "FAIL");
    pass = pass && p99_ratio <= 1.2;
    return pass ? 0 : 1;
  } catch (const clear::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
