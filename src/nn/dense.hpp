// Fully connected layer: y = x W + b over a [N, in] batch.
#pragma once

#include "nn/layer.hpp"

namespace clear::nn {

class Dense : public Layer {
 public:
  /// Xavier/Glorot-uniform initialized dense layer.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  std::string name() const override { return "Dense"; }
  LayerPtr clone() const override { return std::make_unique<Dense>(*this); }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;  ///< [in, out]
  Param bias_;    ///< [out]
  Tensor cached_input_;
};

}  // namespace clear::nn
