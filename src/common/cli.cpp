#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "tensor/kernels/kernels.hpp"

namespace clear {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      CLEAR_CHECK_MSG(arg.rfind('-', 0) != 0,
                      "expected --key=value or positional argument, got: "
                          << arg);
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '\0' &&
               argv[i + 1][0] != '-') {
      // `--key value` form: the next token is the value unless it is itself
      // a flag (values starting with '-' require the `=` spelling).
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  CLEAR_CHECK_MSG(end && *end == '\0',
                  "flag --" << key << " is not an integer: " << it->second);
  return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CLEAR_CHECK_MSG(end && *end == '\0',
                  "flag --" << key << " is not a number: " << it->second);
  return v;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  CLEAR_CHECK_MSG(false, "flag --" << key << " is not a boolean: " << v);
  return fallback;
}

CommonFlags CommonFlags::apply(const CliArgs& args,
                               const std::string& default_metrics_out) {
  CommonFlags flags;
  if (args.has("threads")) {
    const std::int64_t threads = args.get_int("threads", 1);
    CLEAR_CHECK_MSG(threads >= 0, "--threads must be >= 0");
    set_num_threads(static_cast<std::size_t>(threads));
  }
  flags.threads = num_threads();
  if (args.has("kernel")) {
    const std::string name = args.get("kernel", "");
    kernels::Isa isa;
    CLEAR_CHECK_MSG(kernels::parse_isa(name, isa),
                    "--kernel: unknown kernel '"
                        << name << "' (expected scalar, avx2, or neon)");
    kernels::set_isa(isa);  // throws when unsupported on this host
  }
  flags.kernel = kernels::isa_name(kernels::active_isa());
  flags.metrics_out = args.get("metrics-out", default_metrics_out);
  if (args.get_bool("no-metrics", false)) flags.metrics_out.clear();
  if (!flags.metrics_out.empty()) obs::set_enabled(true);
  return flags;
}

bool CommonFlags::finish() const {
  if (metrics_out.empty()) return false;
  obs::set_enabled(false);
  obs::write_snapshot(metrics_out);
  return true;
}

const char* CommonFlags::help() {
  return "common flags (every subcommand):\n"
         "  --threads=N       0 = all hardware threads; default 1, or the\n"
         "                    CLEAR_NUM_THREADS environment variable\n"
         "  --kernel=K        SIMD kernel table: scalar, avx2, or neon;\n"
         "                    default auto-detect (CPUID), or the\n"
         "                    CLEAR_KERNEL environment variable. Results are\n"
         "                    bit-identical across kernels; only speed\n"
         "                    changes\n"
         "  --metrics-out=F   record metrics for the run and write the JSON\n"
         "                    snapshot + Chrome trace to F on exit\n";
}

}  // namespace clear
