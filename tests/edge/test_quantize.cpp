#include "edge/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::edge {
namespace {

TEST(Quantize, MaxAbsCalibration) {
  const std::vector<float> data = {-2.0f, 1.0f, 0.5f};
  const QuantParams p = calibrate_max_abs(data);
  EXPECT_FLOAT_EQ(p.scale, 2.0f / 127.0f);
}

TEST(Quantize, MaxAbsOfZerosIsUnitScale) {
  const std::vector<float> zeros(10, 0.0f);
  EXPECT_FLOAT_EQ(calibrate_max_abs(zeros).scale, 1.0f);
}

TEST(Quantize, PercentileClipsOutliers) {
  std::vector<float> data(1000, 0.1f);
  data[0] = 100.0f;  // One huge outlier.
  const QuantParams pct = calibrate_percentile(data, 99.0);
  const QuantParams max = calibrate_max_abs(data);
  EXPECT_LT(pct.scale, max.scale / 100.0f);
}

TEST(Quantize, CalibrationValidation) {
  EXPECT_THROW(calibrate_max_abs({}), Error);
  const std::vector<float> d = {1.0f};
  EXPECT_THROW(calibrate_percentile(d, 0.0), Error);
  EXPECT_THROW(calibrate_percentile(d, 101.0), Error);
}

TEST(Quantize, ValueRoundTripWithinHalfStep) {
  QuantParams p;
  p.scale = 0.1f;
  for (const float v : {0.0f, 0.05f, -0.32f, 1.0f, -12.0f}) {
    const float rt = dequantize_value(quantize_value(v, p), p);
    EXPECT_NEAR(rt, v, 0.05f + 1e-6f);
  }
}

TEST(Quantize, SaturatesAtInt8Range) {
  QuantParams p;
  p.scale = 0.1f;
  EXPECT_EQ(quantize_value(1000.0f, p), 127);
  EXPECT_EQ(quantize_value(-1000.0f, p), -127);
}

TEST(Quantize, TensorRoundTripErrorBounded) {
  Rng rng(1);
  Tensor t({1000});
  t.fill_normal(rng, 0.0f, 1.0f);
  const QuantParams p = calibrate_max_abs(t.flat());
  Tensor q = t;
  fake_quantize_inplace(q, p);
  for (std::size_t i = 0; i < t.numel(); ++i)
    EXPECT_NEAR(q[i], t[i], p.scale / 2.0f + 1e-6f);
}

TEST(Quantize, FakeQuantIsIdempotent) {
  Rng rng(2);
  Tensor t({100});
  t.fill_normal(rng, 0.0f, 1.0f);
  const QuantParams p = calibrate_max_abs(t.flat());
  Tensor once = t;
  fake_quantize_inplace(once, p);
  Tensor twice = once;
  fake_quantize_inplace(twice, p);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(once[i], twice[i]);
}

TEST(Quantize, QuantizeTensorMatchesScalarPath) {
  const Tensor t({3}, {0.5f, -0.25f, 1.0f});
  QuantParams p;
  p.scale = 1.0f / 127.0f;
  const auto q = quantize_tensor(t, p);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(q[i], quantize_value(t[i], p));
}

TEST(Fp16, ExactValuesSurvive) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2048.0f, -0.125f}) {
    EXPECT_EQ(round_fp16(v), v);
  }
}

TEST(Fp16, RoundingErrorBounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 10.0));
    const float r = round_fp16(v);
    // Half precision: ~2^-11 relative error.
    EXPECT_NEAR(r, v, std::abs(v) * 1.0e-3f + 1e-7f);
  }
}

TEST(Fp16, SubnormalsHandled) {
  const float tiny = 3.0e-5f;  // Below the fp16 normal range (6.1e-5).
  const float r = round_fp16(tiny);
  EXPECT_GE(r, 0.0f);
  EXPECT_NEAR(r, tiny, 6e-8f + tiny * 0.05f);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(round_fp16(1.0e-9f), 0.0f);
}

TEST(Fp16, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(round_fp16(1.0e6f)));
  EXPECT_TRUE(std::isinf(round_fp16(-1.0e6f)));
  EXPECT_LT(round_fp16(-1.0e6f), 0.0f);
}

TEST(Fp16, MaxHalfValueSurvives) {
  EXPECT_EQ(round_fp16(65504.0f), 65504.0f);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half value
  // 1 + 2^-10; RNE rounds to the even mantissa (1.0).
  const float halfway = 1.0f + std::pow(2.0f, -11.0f);
  EXPECT_EQ(round_fp16(halfway), 1.0f);
}

TEST(Fp16, TensorInplace) {
  Rng rng(4);
  Tensor t({100});
  t.fill_normal(rng, 0.0f, 1.0f);
  Tensor ref = t;
  fp16_inplace(t);
  for (std::size_t i = 0; i < t.numel(); ++i)
    EXPECT_NEAR(t[i], ref[i], std::abs(ref[i]) * 1e-3f + 1e-7f);
}

}  // namespace
}  // namespace clear::edge
