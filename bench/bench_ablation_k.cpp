// Ablation A — number of clusters K (paper §IV-A: "K = 4 offered the best
// balance between intra-cluster similarity and inter-cluster separation").
//
// Sweeps K over [2, k-max], reporting the clustering quality indices
// (silhouette, Davies-Bouldin, inertia for the elbow) and the downstream
// CLEAR w/o FT accuracy over a subset of LOSO folds per K.
//
// Flags: --quick --k-min=2 --k-max=7 --folds-per-k=10 --epochs=N --seed=N
//        --cache-dir=DIR --skip-downstream
#include "bench_common.hpp"
#include "clear/evaluation.hpp"
#include "cluster/validity.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);

  const auto k_min = static_cast<std::size_t>(args.get_int("k-min", 2));
  const auto k_max = static_cast<std::size_t>(args.get_int("k-max", 7));
  const auto folds_per_k =
      static_cast<std::size_t>(args.get_int("folds-per-k", 10));
  const bool downstream = !args.get_bool("skip-downstream", false);

  std::printf("Ablation: cluster count K in [%zu, %zu] (%zu volunteers)\n",
              k_min, k_max, dataset.n_volunteers());

  // Cluster-quality indices on the full population.
  std::vector<std::size_t> all_users(dataset.n_volunteers());
  for (std::size_t u = 0; u < all_users.size(); ++u) all_users[u] = u;
  const features::FeatureNormalizer norm =
      core::fit_normalizer(dataset, all_users);
  const std::vector<Tensor> maps = core::normalize_all_maps(dataset, norm);
  std::vector<std::vector<cluster::Point>> user_obs(dataset.n_volunteers());
  std::vector<cluster::Point> user_points(dataset.n_volunteers());
  for (std::size_t u = 0; u < dataset.n_volunteers(); ++u) {
    user_obs[u] = core::map_observations(maps, dataset.samples_of(u));
    user_points[u] = cluster::user_representation(user_obs[u]);
  }

  AsciiTable table({"K", "silhouette", "Davies-Bouldin", "inertia",
                    "CLEAR w/o FT acc", "CA consistency"});
  table.set_title("Cluster-count ablation (paper picked K = 4)");

  for (std::size_t k = k_min; k <= k_max; ++k) {
    Rng rng(config.seed ^ (k * 77));
    cluster::GlobalClusteringConfig gc = config.gc;
    gc.k = k;
    const cluster::GlobalClusteringResult r =
        cluster::global_clustering(user_obs, gc, rng);
    const double sil =
        cluster::silhouette(user_points, r.user_cluster, k);
    const double db =
        cluster::davies_bouldin(user_points, r.user_cluster, k);
    std::vector<cluster::Point> centroids;
    for (const auto& c : r.clusters) centroids.push_back(c.centroid);
    const double inertia =
        cluster::within_cluster_sse(user_points, r.user_cluster, centroids);

    std::string acc = "--";
    std::string ca = "--";
    if (downstream) {
      CLEAR_INFO("downstream CLEAR folds for K=" << k << "...");
      core::ClearConfig kconfig = config;
      kconfig.gc.k = k;
      core::ClearOptions options;
      options.max_folds = folds_per_k;
      options.run_finetune = false;
      const core::ClearValidationResult res =
          core::run_clear_validation(dataset, kconfig, options);
      acc = AsciiTable::num(res.no_ft.accuracy.mean) + " ± " +
            AsciiTable::num(res.no_ft.accuracy.stddev);
      ca = AsciiTable::num(res.ca_consistency * 100.0, 1) + "%";
    }
    table.add_row({std::to_string(k), AsciiTable::num(sil, 3),
                   AsciiTable::num(db, 3), AsciiTable::num(inertia, 1), acc,
                   ca});
  }
  std::printf("\n");
  table.print();
  return 0;
}
