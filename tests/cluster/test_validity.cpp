#include "cluster/validity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear::cluster {
namespace {

std::vector<Point> two_blobs(double separation, std::size_t per_blob,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (std::size_t i = 0; i < per_blob; ++i)
    points.push_back({rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)});
  for (std::size_t i = 0; i < per_blob; ++i)
    points.push_back(
        {separation + rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)});
  return points;
}

std::vector<std::size_t> true_labels(std::size_t per_blob, std::size_t blobs) {
  std::vector<std::size_t> labels;
  for (std::size_t b = 0; b < blobs; ++b)
    labels.insert(labels.end(), per_blob, b);
  return labels;
}

TEST(Silhouette, HighForSeparatedLowForOverlapping) {
  const auto separated = two_blobs(10.0, 20, 1);
  const auto overlapping = two_blobs(0.5, 20, 2);
  const auto labels = true_labels(20, 2);
  const double s_sep = silhouette(separated, labels, 2);
  const double s_ovl = silhouette(overlapping, labels, 2);
  EXPECT_GT(s_sep, 0.8);
  EXPECT_LT(s_ovl, 0.4);
  EXPECT_GT(s_sep, s_ovl);
}

TEST(Silhouette, WrongLabelsScoreNegative) {
  const auto points = two_blobs(10.0, 10, 3);
  // Deliberately shuffle half the labels across blobs.
  std::vector<std::size_t> wrong = true_labels(10, 2);
  for (std::size_t i = 0; i < 10; i += 2) std::swap(wrong[i], wrong[10 + i]);
  EXPECT_LT(silhouette(points, wrong, 2),
            silhouette(points, true_labels(10, 2), 2));
}

TEST(Silhouette, Validation) {
  const std::vector<Point> p = {{0, 0}, {1, 1}};
  EXPECT_THROW(silhouette(p, {0}, 2), Error);        // Size mismatch.
  EXPECT_THROW(silhouette(p, {0, 1}, 1), Error);     // k < 2.
  EXPECT_THROW(silhouette(p, {0, 5}, 2), Error);     // Label out of range.
}

TEST(DaviesBouldin, LowerForBetterSeparation) {
  const auto separated = two_blobs(10.0, 20, 4);
  const auto overlapping = two_blobs(1.0, 20, 5);
  const auto labels = true_labels(20, 2);
  EXPECT_LT(davies_bouldin(separated, labels, 2),
            davies_bouldin(overlapping, labels, 2));
}

TEST(DaviesBouldin, DegenerateEmptyCluster) {
  const std::vector<Point> p = {{0, 0}, {1, 1}};
  // Cluster 1 empty (all labelled 0) -> large sentinel.
  EXPECT_GT(davies_bouldin(p, {0, 0}, 2), 1e10);
}

TEST(WithinClusterSse, MatchesManualComputation) {
  const std::vector<Point> p = {{0, 0}, {2, 0}, {10, 0}};
  const std::vector<std::size_t> a = {0, 0, 1};
  const std::vector<Point> c = {{1, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(within_cluster_sse(p, a, c), 2.0);
}

TEST(SelectK, FindsTrueNumberOfBlobs) {
  Rng rng(6);
  std::vector<Point> points;
  const std::vector<Point> centers = {{0, 0}, {12, 0}, {0, 12}, {12, 12}};
  for (const Point& c : centers)
    for (std::size_t i = 0; i < 15; ++i)
      points.push_back({c[0] + rng.normal(0.0, 0.5),
                        c[1] + rng.normal(0.0, 0.5)});
  Rng krng(7);
  const KSelection sel = select_k(points, 2, 7, krng);
  EXPECT_EQ(sel.best_k, 4u);
  EXPECT_EQ(sel.silhouettes.size(), 6u);
  // Inertia must be monotonically non-increasing in k.
  for (std::size_t i = 1; i < sel.inertias.size(); ++i)
    EXPECT_LE(sel.inertias[i], sel.inertias[i - 1] + 1e-6);
}

TEST(SelectK, Validation) {
  Rng rng(8);
  const std::vector<Point> p = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_THROW(select_k(p, 1, 2, rng), Error);
  EXPECT_THROW(select_k(p, 3, 2, rng), Error);
  EXPECT_THROW(select_k(p, 2, 3, rng), Error);  // Needs > k_max points.
}

}  // namespace
}  // namespace clear::cluster
