// Non-linear dynamics descriptors used by the BVP/HRV feature block:
// entropies, detrended fluctuation analysis, Poincaré geometry, and
// higher-order crossings.
#pragma once

#include <cstddef>
#include <span>

namespace clear::features {

/// Sample entropy SampEn(m, r): -ln( A / B ) with template length m and
/// tolerance r (absolute units). Returns 0 when undefined (too few samples
/// or no matches).
double sample_entropy(std::span<const double> x, std::size_t m, double r);

/// Approximate entropy ApEn(m, r).
double approximate_entropy(std::span<const double> x, std::size_t m, double r);

/// Short-range detrended fluctuation analysis exponent (alpha-1), computed
/// over box sizes 4..min(16, n/4). Returns 0 when the series is too short.
double dfa_alpha1(std::span<const double> x);

/// Poincaré plot descriptors of successive-difference geometry.
struct Poincare {
  double sd1 = 0.0;          ///< Short-term variability (perpendicular).
  double sd2 = 0.0;          ///< Long-term variability (along identity).
  double ratio = 0.0;        ///< SD1/SD2 (0 when SD2 underflows).
  double ellipse_area = 0.0; ///< pi * SD1 * SD2.
  double csi = 0.0;          ///< Cardiac sympathetic index (SD2/SD1).
  double cvi = 0.0;          ///< Cardiac vagal index log10(SD1*SD2*16).
};
Poincare poincare(std::span<const double> ibi);

/// Number of zero crossings of the k-th difference of the mean-removed
/// series (higher-order crossings, k >= 0; k = 0 is plain zero crossings).
std::size_t higher_order_crossings(std::span<const double> x, std::size_t k);

/// Fraction of pairs of embedded points (m = 1) closer than r — a cheap
/// recurrence-rate style statistic.
double recurrence_rate(std::span<const double> x, double r);

}  // namespace clear::features
