#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::nn {
namespace {

/// Minimize f(w) = 0.5 * ||w - target||^2 whose gradient is (w - target).
void quadratic_grad(Param& p, const Tensor& target) {
  for (std::size_t i = 0; i < p.value.numel(); ++i)
    p.grad[i] = p.value[i] - target[i];
}

TEST(Sgd, ConvergesOnQuadratic) {
  Param p("w", Tensor({3}, {5.0f, -3.0f, 1.0f}));
  const Tensor target({3}, {1.0f, 2.0f, -1.0f});
  Sgd opt({&p}, 0.1);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    quadratic_grad(p, target);
    opt.step();
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-4f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Param plain("w", Tensor({1}, {10.0f}));
  Param mom("w", Tensor({1}, {10.0f}));
  const Tensor target({1}, {0.0f});
  Sgd opt_plain({&plain}, 0.01);
  Sgd opt_mom({&mom}, 0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    opt_plain.zero_grad();
    quadratic_grad(plain, target);
    opt_plain.step();
    opt_mom.zero_grad();
    quadratic_grad(mom, target);
    opt_mom.step();
  }
  EXPECT_LT(std::abs(mom.value[0]), std::abs(plain.value[0]));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p("w", Tensor({1}, {1.0f}));
  Sgd opt({&p}, 0.1, 0.0, 0.5);
  opt.zero_grad();  // Zero gradient: only decay acts.
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Sgd, FrozenParamUntouched) {
  Param p("w", Tensor({1}, {3.0f}));
  p.frozen = true;
  p.grad[0] = 100.0f;
  Sgd opt({&p}, 0.1);
  opt.step();
  EXPECT_EQ(p.value[0], 3.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p("w", Tensor({3}, {5.0f, -3.0f, 1.0f}));
  const Tensor target({3}, {1.0f, 2.0f, -1.0f});
  Adam opt({&p}, 0.1);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    quadratic_grad(p, target);
    opt.step();
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-3f);
}

TEST(Adam, FirstStepSizeIsLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Param p("w", Tensor({1}, {0.0f}));
  Adam opt({&p}, 0.01);
  opt.zero_grad();
  p.grad[0] = 123.0f;  // Any positive gradient.
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
}

TEST(Adam, FrozenParamUntouched) {
  Param p("w", Tensor({1}, {3.0f}));
  p.frozen = true;
  p.grad[0] = 1.0f;
  Adam opt({&p}, 0.1);
  opt.step();
  EXPECT_EQ(p.value[0], 3.0f);
}

TEST(Adam, HandlesSparseZeroGradients) {
  Param p("w", Tensor({2}, {1.0f, 1.0f}));
  Adam opt({&p}, 0.1);
  for (int i = 0; i < 10; ++i) {
    opt.zero_grad();
    p.grad[0] = 1.0f;  // Only element 0 has gradient.
    opt.step();
  }
  EXPECT_LT(p.value[0], 1.0f);
  EXPECT_EQ(p.value[1], 1.0f);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Param a("a", Tensor({2}, {1.0f, 2.0f}));
  Param b("b", Tensor({1}, {3.0f}));
  a.grad.fill(5.0f);
  b.grad.fill(7.0f);
  Sgd opt({&a, &b}, 0.1);
  opt.zero_grad();
  EXPECT_EQ(a.grad[0], 0.0f);
  EXPECT_EQ(b.grad[0], 0.0f);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  Param p("w", Tensor({2}, {0.0f, 0.0f}));
  p.grad = Tensor({2}, {3.0f, 4.0f});  // Norm 5.
  Sgd opt({&p}, 0.1);
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(std::hypot(p.grad[0], p.grad[1]), 1.0, 1e-5);
}

TEST(Optimizer, ClipGradNormNoOpWhenSmall) {
  Param p("w", Tensor({2}, {0.0f, 0.0f}));
  p.grad = Tensor({2}, {0.3f, 0.4f});
  Sgd opt({&p}, 0.1);
  opt.clip_grad_norm(10.0);
  EXPECT_FLOAT_EQ(p.grad[0], 0.3f);
}

TEST(Optimizer, ClipIgnoresFrozenParams) {
  Param frozen("f", Tensor({1}, {0.0f}));
  frozen.frozen = true;
  frozen.grad[0] = 1000.0f;
  Param live("l", Tensor({1}, {0.0f}));
  live.grad[0] = 3.0f;
  Sgd opt({&frozen, &live}, 0.1);
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 3.0, 1e-6);        // Frozen grad not counted...
  EXPECT_EQ(frozen.grad[0], 1000.0f); // ...and not scaled.
  EXPECT_NEAR(live.grad[0], 1.0f, 1e-5f);
}

TEST(Optimizer, ClipValidation) {
  Param p("w", Tensor({1}));
  Sgd opt({&p}, 0.1);
  EXPECT_THROW(opt.clip_grad_norm(0.0), Error);
}

}  // namespace
}  // namespace clear::nn
