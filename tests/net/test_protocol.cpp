// Wire-codec property tests: round-trip identity on every field and
// hostile-input safety. Every malformed byte stream must produce an
// addressed DecodeStatus/error — never a crash, never a silently wrong
// frame. These are the suites the ASan/UBSAN legs of
// tools/run_sanitizer_tests.sh replay.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"

namespace clear::net {
namespace {

WireRequest sample_request() {
  WireRequest r;
  r.request_id = 0x1122334455667788ull;
  r.user_id = 42;
  r.arrival_us = 1234567;
  r.quality = 0.8125;  // Exactly representable: survives any correct codec.
  r.label = 1;
  r.map = Tensor({3, 4});
  auto flat = r.map.flat();
  for (std::size_t i = 0; i < flat.size(); ++i)
    flat[i] = static_cast<float>(i) * 0.25f - 1.0f;
  flat[0] = std::numeric_limits<float>::quiet_NaN();  // Bit-pattern transit.
  flat[1] = -0.0f;
  return r;
}

Frame decode_one(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame;
}

std::uint32_t f32_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(Protocol, RequestRoundTripsEveryFieldBitExactly) {
  const WireRequest original = sample_request();
  const Frame frame = decode_one(encode_request(original));
  ASSERT_EQ(frame.type, FrameType::kRequest);

  WireRequest decoded;
  std::string error;
  ASSERT_TRUE(parse_request(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.request_id, original.request_id);
  EXPECT_EQ(decoded.user_id, original.user_id);
  EXPECT_EQ(decoded.arrival_us, original.arrival_us);
  EXPECT_EQ(decoded.quality, original.quality);
  EXPECT_EQ(decoded.label, original.label);
  ASSERT_EQ(decoded.map.rank(), 2u);
  ASSERT_EQ(decoded.map.extent(0), 3u);
  ASSERT_EQ(decoded.map.extent(1), 4u);
  const auto a = original.map.flat();
  const auto b = decoded.map.flat();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(f32_bits(a[i]), f32_bits(b[i])) << "cell " << i;
}

TEST(Protocol, RequestWithoutLabelRoundTrips) {
  WireRequest original = sample_request();
  original.label.reset();
  WireRequest decoded;
  std::string error;
  ASSERT_TRUE(parse_request(decode_one(encode_request(original)), decoded,
                            error))
      << error;
  EXPECT_FALSE(decoded.label.has_value());
}

TEST(Protocol, ResponseRoundTripsEveryField) {
  WireResponse original;
  original.request_id = 7;
  original.user_id = 9;
  original.shed = true;
  original.predicted = -1;
  original.fear_probability = 0.62109375f;
  original.session_state = 3;
  original.degraded = true;
  original.route_kind = 2;
  original.route_id = 11;
  original.batch_rows = 5;
  original.arrival_us = 1000;
  original.exec_us = 3000;
  original.error = "shed: admission queue full";

  const Frame frame = decode_one(encode_response(original));
  ASSERT_EQ(frame.type, FrameType::kResponse);
  WireResponse decoded;
  std::string error;
  ASSERT_TRUE(parse_response(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.request_id, original.request_id);
  EXPECT_EQ(decoded.user_id, original.user_id);
  EXPECT_EQ(decoded.shed, original.shed);
  EXPECT_EQ(decoded.predicted, original.predicted);
  EXPECT_EQ(f32_bits(decoded.fear_probability),
            f32_bits(original.fear_probability));
  EXPECT_EQ(decoded.session_state, original.session_state);
  EXPECT_EQ(decoded.degraded, original.degraded);
  EXPECT_EQ(decoded.route_kind, original.route_kind);
  EXPECT_EQ(decoded.route_id, original.route_id);
  EXPECT_EQ(decoded.batch_rows, original.batch_rows);
  EXPECT_EQ(decoded.arrival_us, original.arrival_us);
  EXPECT_EQ(decoded.exec_us, original.exec_us);
  EXPECT_EQ(decoded.error, original.error);
}

TEST(Protocol, ControlFramesRoundTrip) {
  EXPECT_EQ(decode_one(encode_drain()).type, FrameType::kDrain);
  EXPECT_EQ(decode_one(encode_shutdown()).type, FrameType::kShutdown);

  WireDrainAck ack;
  ack.requests = 100;
  ack.ok = 93;
  ack.shed = 7;
  const Frame frame = decode_one(encode_drain_ack(ack));
  ASSERT_EQ(frame.type, FrameType::kDrainAck);
  WireDrainAck decoded;
  std::string error;
  ASSERT_TRUE(parse_drain_ack(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.requests, 100u);
  EXPECT_EQ(decoded.ok, 93u);
  EXPECT_EQ(decoded.shed, 7u);
}

TEST(Protocol, PingPongRoundTrip) {
  const Frame ping = decode_one(encode_ping(0xDEADBEEFCAFEF00Dull));
  ASSERT_EQ(ping.type, FrameType::kPing);
  std::uint64_t nonce = 0;
  std::string error;
  ASSERT_TRUE(parse_ping(ping, nonce, error)) << error;
  EXPECT_EQ(nonce, 0xDEADBEEFCAFEF00Dull);

  WirePong pong;
  pong.nonce = nonce;
  pong.sessions = 17;
  const Frame reply = decode_one(encode_pong(pong));
  ASSERT_EQ(reply.type, FrameType::kPong);
  WirePong decoded;
  ASSERT_TRUE(parse_pong(reply, decoded, error)) << error;
  EXPECT_EQ(decoded.nonce, pong.nonce);
  EXPECT_EQ(decoded.sessions, 17u);
}

TEST(Protocol, SessionImageRoundTripsBitExactly) {
  const Frame exp = decode_one(encode_export(99));
  ASSERT_EQ(exp.type, FrameType::kExport);
  std::uint64_t user = 0;
  std::string error;
  ASSERT_TRUE(parse_export(exp, user, error)) << error;
  EXPECT_EQ(user, 99u);

  WireSessionImage image;
  image.user_id = 99;
  image.found = true;
  image.image = std::string("\x00\xFF\x7Fimage-bytes\x01", 14);
  image.checkpoint = std::string("ckpt\x00\x80", 6);
  const Frame frame = decode_one(encode_session_image(image));
  ASSERT_EQ(frame.type, FrameType::kSessionImage);
  WireSessionImage decoded;
  ASSERT_TRUE(parse_session_image(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.user_id, 99u);
  EXPECT_TRUE(decoded.found);
  EXPECT_EQ(decoded.image, image.image);  // Byte-exact, embedded NULs intact.
  EXPECT_EQ(decoded.checkpoint, image.checkpoint);

  // The not-found reply carries no payload bytes beyond the header fields.
  WireSessionImage missing;
  missing.user_id = 7;
  const Frame none = decode_one(encode_session_image(missing));
  ASSERT_TRUE(parse_session_image(none, decoded, error)) << error;
  EXPECT_FALSE(decoded.found);
  EXPECT_TRUE(decoded.image.empty());
  EXPECT_TRUE(decoded.checkpoint.empty());
}

TEST(Protocol, ImportAndAdoptAcksRoundTrip) {
  WireImportAck iack;
  iack.user_id = 4;
  iack.ok = false;
  iack.error = "session table full";
  std::string error;
  WireImportAck idec;
  ASSERT_TRUE(
      parse_import_ack(decode_one(encode_import_ack(iack)), idec, error))
      << error;
  EXPECT_EQ(idec.user_id, 4u);
  EXPECT_FALSE(idec.ok);
  EXPECT_EQ(idec.error, "session table full");

  std::string dir;
  ASSERT_TRUE(parse_adopt(decode_one(encode_adopt("/tmp/jd with space")),
                          dir, error))
      << error;
  EXPECT_EQ(dir, "/tmp/jd with space");

  WireAdoptAck aack;
  aack.sessions = 12;
  aack.personalized = 5;
  aack.failed = 1;
  WireAdoptAck adec;
  ASSERT_TRUE(parse_adopt_ack(decode_one(encode_adopt_ack(aack)), adec, error))
      << error;
  EXPECT_EQ(adec.sessions, 12u);
  EXPECT_EQ(adec.personalized, 5u);
  EXPECT_EQ(adec.failed, 1u);
}

TEST(Protocol, MetricsFramesRoundTrip) {
  EXPECT_EQ(decode_one(encode_metrics_pull()).type, FrameType::kMetricsPull);
  const std::string json = "{\"counters\": {\"serve.requests\": 3}}";
  std::string decoded;
  std::string error;
  ASSERT_TRUE(parse_metrics_json(decode_one(encode_metrics_json(json)),
                                 decoded, error))
      << error;
  EXPECT_EQ(decoded, json);
}

TEST(Protocol, VerbatimPayloadReencodeIsByteIdentical) {
  // The coordinator forwards frames by re-framing the decoded payload with
  // encode_frame. That round trip must reproduce the original bytes
  // exactly — it is the mechanism behind the fleet's bit-identity
  // guarantee.
  std::vector<std::string> frames;
  frames.push_back(encode_request(sample_request()));
  frames.push_back(encode_response(WireResponse{}));
  WireSessionImage image;
  image.user_id = 3;
  image.found = true;
  image.image = "abc";
  image.checkpoint = std::string("\x00\x01", 2);
  frames.push_back(encode_session_image(image));
  for (const std::string& bytes : frames) {
    const Frame frame = decode_one(bytes);
    EXPECT_EQ(encode_frame(frame.type, frame.payload), bytes);
  }
}

TEST(Protocol, ShardFrameParsersRejectWrongTypeAndTruncation) {
  std::string error;
  std::uint64_t nonce = 0;
  EXPECT_FALSE(parse_ping(decode_one(encode_drain()), nonce, error));

  WireSessionImage image;
  image.user_id = 1;
  image.found = true;
  image.image = "0123456789";
  image.checkpoint = "abcdef";
  const Frame good = decode_one(encode_session_image(image));
  WireSessionImage out;
  for (std::size_t cut = 0; cut < good.payload.size(); ++cut) {
    Frame trunc = good;
    trunc.payload.resize(cut);
    // Either rejected outright, or (when the cut lands exactly on the
    // not-found prefix) parsed without trailing garbage — never a crash.
    std::string why;
    if (parse_session_image(trunc, out, why)) {
      EXPECT_FALSE(out.found) << "cut " << cut;
    }
  }

  WireAdoptAck aack;
  Frame bad = decode_one(encode_adopt_ack(WireAdoptAck{}));
  bad.payload.resize(bad.payload.size() - 1);
  EXPECT_FALSE(parse_adopt_ack(bad, aack, error));
  EXPECT_FALSE(error.empty());
}

TEST(Protocol, DecodesAcrossOneByteFeeds) {
  std::string stream = encode_request(sample_request());
  stream += encode_drain();
  stream += encode_response(WireResponse{});

  FrameDecoder decoder;
  std::vector<FrameType> types;
  Frame frame;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (decoder.next(frame) == DecodeStatus::kFrame)
      types.push_back(frame.type);
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], FrameType::kRequest);
  EXPECT_EQ(types[1], FrameType::kDrain);
  EXPECT_EQ(types[2], FrameType::kResponse);
  EXPECT_EQ(decoder.frames_decoded(), 3u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Protocol, DecodesAtEverySplitPoint) {
  const std::string bytes = encode_request(sample_request());
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder decoder;
    Frame frame;
    decoder.feed(bytes.data(), split);
    const DecodeStatus first = decoder.next(frame);
    if (split < bytes.size())
      ASSERT_EQ(first, DecodeStatus::kNeedMore) << "split " << split;
    decoder.feed(bytes.data() + split, bytes.size() - split);
    if (first != DecodeStatus::kFrame)
      ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame)
          << "split " << split;
    EXPECT_EQ(frame.type, FrameType::kRequest) << "split " << split;
    EXPECT_EQ(decoder.buffered(), 0u) << "split " << split;
  }
}

TEST(Protocol, TruncatedFrameStaysPendingAndReportsBufferedBytes) {
  const std::string bytes = encode_request(sample_request());
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 5);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
  // The partial frame is visible: this is how the server detects a peer
  // that died mid-request.
  EXPECT_EQ(decoder.buffered(), bytes.size() - 5);
  EXPECT_TRUE(decoder.error().empty());
}

TEST(Protocol, BadMagicIsAddressed) {
  std::string bytes = encode_drain();
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
  EXPECT_NE(decoder.error().find("bad magic"), std::string::npos)
      << decoder.error();
  EXPECT_NE(decoder.error().find("frame 0"), std::string::npos)
      << decoder.error();
}

TEST(Protocol, BadVersionIsAddressed) {
  std::string bytes = encode_drain();
  bytes[4] = 9;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadVersion);
  EXPECT_NE(decoder.error().find("version 9"), std::string::npos)
      << decoder.error();
}

TEST(Protocol, UnknownTypeAndReservedBytesAreBadHeaders) {
  std::string bytes = encode_drain();
  bytes[5] = 77;  // No such frame type.
  FrameDecoder a;
  a.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(a.next(frame), DecodeStatus::kBadHeader);

  bytes = encode_drain();
  bytes[6] = 1;  // Reserved bytes must be zero.
  FrameDecoder b;
  b.feed(bytes.data(), bytes.size());
  EXPECT_EQ(b.next(frame), DecodeStatus::kBadHeader);
}

TEST(Protocol, OversizedLengthIsRejectedWithoutBuffering) {
  // Header declares a payload far past the bound: the decoder must reject
  // from the header alone instead of waiting for (or allocating) 4 GiB.
  std::string bytes = encode_drain();
  bytes[8] = static_cast<char>(0xFF);
  bytes[9] = static_cast<char>(0xFF);
  bytes[10] = static_cast<char>(0xFF);
  bytes[11] = static_cast<char>(0x7F);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadLength);
  EXPECT_NE(decoder.error().find("exceeds the bound"), std::string::npos)
      << decoder.error();
}

TEST(Protocol, CorruptPayloadFailsCrc) {
  std::string bytes = encode_request(sample_request());
  bytes[kHeaderSize + 3] ^= 0x40;  // One flipped payload bit.
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadCrc);
  EXPECT_NE(decoder.error().find("CRC mismatch"), std::string::npos)
      << decoder.error();
}

TEST(Protocol, DecoderLatchesAfterFirstError) {
  std::string bytes = encode_drain();
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
  // Even a perfectly good frame cannot resynchronize a lost stream.
  const std::string good = encode_drain();
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
  EXPECT_EQ(decoder.frames_decoded(), 0u);
}

TEST(Protocol, ErrorsAreAddressedByFrameIndex) {
  std::string stream = encode_drain();
  stream += encode_drain();
  std::string bad = encode_drain();
  bad[6] = 1;
  stream += bad;
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadHeader);
  EXPECT_NE(decoder.error().find("frame 2"), std::string::npos)
      << decoder.error();
}

TEST(Protocol, RequestPayloadTruncationIsAddressed) {
  const std::string full = encode_request(sample_request());
  // Re-frame successively shorter prefixes of the payload: every length
  // must parse as an addressed error, never crash.
  const std::string payload = full.substr(kHeaderSize);
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    const Frame frame{FrameType::kRequest, payload.substr(0, keep)};
    WireRequest out;
    std::string error;
    EXPECT_FALSE(parse_request(frame, out, error)) << "keep " << keep;
    EXPECT_FALSE(error.empty()) << "keep " << keep;
  }
}

TEST(Protocol, RequestDimsMustMatchPayloadLength) {
  WireRequest request = sample_request();
  std::string bytes = encode_request(request);
  // Payload offset 36 holds the row count; declare one extra row.
  bytes[kHeaderSize + 36] = 4;
  // Fix the CRC so only the semantic check can catch it.
  const std::string payload = bytes.substr(kHeaderSize);
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i)
    bytes[12 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);

  Frame frame;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  WireRequest out;
  std::string error;
  EXPECT_FALSE(parse_request(frame, out, error));
  EXPECT_NE(error.find("declared 4x4"), std::string::npos) << error;
}

TEST(Protocol, RequestDimsOverflowIsRejectedNotAllocated) {
  // rows = cols = 2^31: cells = 2^62, so a naive `44 + 4 * cells` expected
  // size wraps to 44 modulo 2^64 — a CRC-valid 44-byte payload would pass
  // the dims-vs-length check and attempt a ~2^64-byte tensor allocation.
  std::string payload =
      encode_request(sample_request()).substr(kHeaderSize, 44);
  for (int i = 0; i < 4; ++i) {
    payload[36 + i] = static_cast<char>(i == 3 ? 0x80 : 0x00);  // rows
    payload[40 + i] = static_cast<char>(i == 3 ? 0x80 : 0x00);  // cols
  }
  const Frame frame{FrameType::kRequest, payload};
  WireRequest out;
  std::string error;
  EXPECT_FALSE(parse_request(frame, out, error));
  EXPECT_NE(error.find("cells"), std::string::npos) << error;
}

TEST(Protocol, RequestRejectsBadLabelAndZeroDims) {
  WireRequest request = sample_request();
  Frame frame = decode_one(encode_request(request));
  // Payload offset 32 is the label.
  frame.payload[32] = 5;
  WireRequest out;
  std::string error;
  EXPECT_FALSE(parse_request(frame, out, error));
  EXPECT_NE(error.find("label"), std::string::npos) << error;

  frame = decode_one(encode_request(request));
  frame.payload[36] = 0;  // rows = 0
  error.clear();
  EXPECT_FALSE(parse_request(frame, out, error));
  EXPECT_NE(error.find("nonzero"), std::string::npos) << error;
}

TEST(Protocol, ResponseRejectsOutOfRangeEnums) {
  WireResponse response;
  Frame frame = decode_one(encode_response(response));
  frame.payload[16] = 2;  // status must be 0/1.
  WireResponse out;
  std::string error;
  EXPECT_FALSE(parse_response(frame, out, error));
  EXPECT_NE(error.find("status"), std::string::npos) << error;

  frame = decode_one(encode_response(response));
  frame.payload[32] = 9;  // degraded must be 0/1.
  error.clear();
  EXPECT_FALSE(parse_response(frame, out, error));
  EXPECT_NE(error.find("degraded"), std::string::npos) << error;
}

TEST(Protocol, ResponseErrorStringLengthIsBoundsChecked) {
  WireResponse response;
  response.error = "xy";
  Frame frame = decode_one(encode_response(response));
  // Inflate the declared error length past the payload end.
  frame.payload[68] = static_cast<char>(0xFF);
  WireResponse out;
  std::string error;
  EXPECT_FALSE(parse_response(frame, out, error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

// Deterministic fuzz: hashed mutations of valid frames plus pure garbage.
// The property is total safety — every input yields a DecodeStatus (and on
// error a nonempty message); nothing crashes, loops, or over-reads. ASan /
// UBSAN runs of this loop are the memory-safety proof.
TEST(Protocol, FuzzedStreamsNeverCrashTheDecoder) {
  const std::string seed_frames[] = {
      encode_request(sample_request()),
      encode_response(WireResponse{}),
      encode_drain(),
      encode_drain_ack(WireDrainAck{}),
      encode_shutdown(),
  };
  std::size_t decoded = 0;
  std::size_t rejected = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    std::string bytes = seed_frames[round % 5];
    // Up to 8 hashed byte mutations (offset, value) per round.
    const std::uint64_t n_mutations = fault::mix(99, round, 0, 0) % 8;
    for (std::uint64_t m = 0; m < n_mutations; ++m) {
      const std::uint64_t h = fault::mix(99, round, 1, m);
      bytes[h % bytes.size()] = static_cast<char>(h >> 32);
    }
    // A third of the rounds prepend garbage so the header checks fire too.
    if (round % 3 == 0) {
      const std::uint64_t h = fault::mix(99, round, 2, 0);
      bytes.insert(0, std::string(1 + h % 7, static_cast<char>(h >> 40)));
    }

    FrameDecoder decoder;
    // Feed in hashed chunk sizes to stress the incremental path.
    std::size_t off = 0;
    std::size_t chunk_index = 0;
    Frame frame;
    while (off < bytes.size()) {
      const std::size_t n = 1 + fault::mix(99, round, 3, chunk_index++) % 37;
      const std::size_t take = std::min(n, bytes.size() - off);
      decoder.feed(bytes.data() + off, take);
      off += take;
      DecodeStatus status;
      while ((status = decoder.next(frame)) == DecodeStatus::kFrame) {
        ++decoded;
        // Whatever survived framing gets thrown at the payload parsers;
        // they must stay total as well.
        WireRequest request;
        WireResponse response;
        WireDrainAck ack;
        std::string error;
        parse_request(frame, request, error);
        parse_response(frame, response, error);
        parse_drain_ack(frame, ack, error);
      }
      if (status != DecodeStatus::kNeedMore) {
        EXPECT_FALSE(decoder.error().empty());
        ++rejected;
        break;
      }
    }
  }
  // The loop must have exercised both sides of the property.
  EXPECT_GT(decoded, 20u);
  EXPECT_GT(rejected, 100u);
}

TEST(Protocol, EncodeRejectsOversizedPayloadLoudly) {
  WireRequest request = sample_request();
  request.map = Tensor({600, 600});  // 1.44 MB of floats > 1 MiB bound.
  EXPECT_THROW(encode_request(request), clear::Error);
}

}  // namespace
}  // namespace clear::net
