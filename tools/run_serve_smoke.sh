#!/bin/sh
# Serve smoke test: replay a short seeded multi-user workload through
# `clear-cli serve`, validate the metrics snapshot against the checked-in
# schema (tools/metrics_schema.json), check the serve-specific counters /
# histograms / spans are recorded, and assert the per-request predictions
# are bit-identical to the golden file (tools/serve_golden.txt), unchanged
# with metrics on or off, and unchanged at --threads 1 vs 8.
#
# An optional fourth argument points at a clear-cli from a -DCLEAR_OBS=OFF
# build (instrumentation compiled out, not just disabled): its predictions
# must hit the same golden. tools/run_sanitizer_tests.sh's `obsoff` leg
# builds that binary and invokes this script with it.
# Usage: run_serve_smoke.sh <clear-cli> <schema> <golden> [obs-off-cli]
set -eu

CLI="$1"
SCHEMA="$2"
GOLDEN="$3"
OBS_OFF_CLI="${4:-}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

SLICE="--volunteers=6 --trials=4 --epochs=1 --ft-epochs=1 \
--data-seed=42 --users=12 --requests=16 --seed=7"

# 1. Metrics on, single thread: the reference run.
"$CLI" serve $SLICE --threads=1 --metrics-out=metrics.json \
  >on.txt 2>on.err
test -s metrics.json

# 2. The snapshot must not be vacuously valid: an empty registry (e.g. a
#    CLEAR_OBS=OFF binary handed the metrics-on role, or instrumentation
#    silently broken) satisfies the schema, so require substance before
#    validating shape.
jq -e '(.counters | length) > 0' metrics.json >/dev/null ||
  { echo "metrics snapshot has no counters — obs recorded nothing" >&2
    exit 1; }
jq -e '(.histograms | length) > 0' metrics.json >/dev/null ||
  { echo "metrics snapshot has no histograms — obs recorded nothing" >&2
    exit 1; }
jq -e '(.traceEvents | length) > 0' metrics.json >/dev/null ||
  { echo "metrics snapshot has no trace events — obs recorded nothing" >&2
    exit 1; }

# 3. The snapshot must satisfy the schema.
python3 - "$SCHEMA" metrics.json <<'EOF'
import json, sys
import jsonschema
with open(sys.argv[1]) as f:
    schema = json.load(f)
with open(sys.argv[2]) as f:
    snapshot = json.load(f)
jsonschema.validate(snapshot, schema)
EOF

# 4. The serving layer's own signals must be recorded: request/batch
#    counters, queue/batch/time-to-first-prediction histograms, and the
#    assignment + batch-execution spans.
for c in serve.requests serve.batches serve.rows serve.assignments \
         serve.cache.misses; do
  jq -e --arg c "$c" '.counters[$c] > 0' metrics.json >/dev/null ||
    { echo "missing serve counter: $c" >&2; exit 1; }
done
for h in serve.batch_size serve.queue_wait_us serve.ttfp_us; do
  jq -e --arg h "$h" '.histograms[$h].count > 0' metrics.json >/dev/null ||
    { echo "missing serve histogram: $h" >&2; exit 1; }
done
for s in serve.assign serve.batch; do
  jq -e --arg s "$s" \
    '[.traceEvents[] | select(.name == $s)] | length > 0' metrics.json \
    >/dev/null || { echo "missing serve span: $s" >&2; exit 1; }
done
jq -e '.droppedTraceEvents == 0' metrics.json >/dev/null

# 5. Metrics off: stdout must be byte-identical (observability never
#    changes a prediction).
"$CLI" serve $SLICE --threads=1 --no-metrics >off.txt 2>off.err
cmp on.txt off.txt

# 6. Thread count must not change a single byte either.
"$CLI" serve $SLICE --threads=8 --no-metrics >t8.txt 2>t8.err
cmp off.txt t8.txt

# 7. Per-request predictions must match the checked-in golden exactly —
#    any drift in the serving pipeline's numerics shows up here.
grep '^user=' on.txt >predictions.txt
cmp predictions.txt "$GOLDEN" || {
  echo "predictions diverge from $GOLDEN" >&2
  diff "$GOLDEN" predictions.txt | head -20 >&2
  exit 1
}

# 8. Compiled-out observability (-DCLEAR_OBS=OFF) must hit the same golden:
#    the macros expand to nothing in that build, so this is the only check
#    that the *absence* of instrumentation code paths changes no byte.
if [ -n "$OBS_OFF_CLI" ]; then
  "$OBS_OFF_CLI" serve $SLICE --threads=1 --no-metrics \
    >obsoff.txt 2>obsoff.err
  grep '^user=' obsoff.txt >obsoff_predictions.txt
  cmp obsoff_predictions.txt "$GOLDEN" || {
    echo "obs-off build predictions diverge from $GOLDEN" >&2
    diff "$GOLDEN" obsoff_predictions.txt | head -20 >&2
    exit 1
  }
  echo "serve smoke OK (incl. obs-off golden)"
else
  echo "serve smoke OK (obs-off leg skipped: no -DCLEAR_OBS=OFF binary given)"
fi
