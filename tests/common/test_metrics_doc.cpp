// docs/METRICS.md <-> registry cross-check (the "docs that cannot rot"
// satellite). Three directions, so the reference and the code can only
// move together:
//
//   1. every metric-name string literal at an instrumentation call site in
//      src/ + tools/ is documented,
//   2. every documented name still exists — in the source scan or in the
//      registry/trace of a real run (dynamic names like
//      "edge.forward_us.<precision>" only materialize at runtime),
//   3. every name a miniature end-to-end run (pipeline fit -> serve ->
//      edge forwards at all precisions) actually registers is documented.
//
// The doc encodes families with two spellings this test understands:
// a token ending in '.' is a prefix ("edge.forward_us." covers
// "edge.forward_us.int8"), and a token with an <angle> placeholder is a
// prefix+suffix pattern ("span.<name>_us" covers "span.train.epoch_us").
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "clear/pipeline.hpp"
#include "common/obs.hpp"
#include "edge/engine.hpp"
#include "nn/model.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "wemac/synth.hpp"

#ifndef CLEAR_SOURCE_DIR
#error "CLEAR_SOURCE_DIR must point at the repository root"
#endif

namespace clear {
namespace {

namespace fs = std::filesystem;

enum class Kind { kCounter, kGauge, kHistogram, kSpan };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
    case Kind::kSpan: return "span";
  }
  return "?";
}

using NameSets = std::map<Kind, std::set<std::string>>;

/// True when documented token `tok` covers metric name `name` (exact,
/// trailing-dot prefix, or <placeholder> prefix+suffix).
bool token_matches(const std::string& tok, const std::string& name) {
  if (tok == name) return true;
  if (!tok.empty() && tok.back() == '.' && name.size() > tok.size() &&
      name.compare(0, tok.size(), tok) == 0)
    return true;
  const std::size_t lt = tok.find('<');
  const std::size_t gt = tok.find('>');
  if (lt != std::string::npos && gt != std::string::npos && gt > lt) {
    const std::string pre = tok.substr(0, lt);
    const std::string suf = tok.substr(gt + 1);
    return name.size() >= pre.size() + suf.size() &&
           name.compare(0, pre.size(), pre) == 0 &&
           name.compare(name.size() - suf.size(), suf.size(), suf) == 0;
  }
  return false;
}

bool any_token_matches(const std::set<std::string>& toks,
                       const std::string& name) {
  for (const std::string& t : toks)
    if (token_matches(t, name)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// docs/METRICS.md parsing: section headings select the kind; the first
// `backtick token` of each table row is the documented name.
// ---------------------------------------------------------------------------

NameSets parse_doc(const fs::path& doc_path) {
  std::ifstream in(doc_path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << doc_path;
  NameSets doc;
  std::string line;
  Kind kind = Kind::kCounter;
  bool in_table_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("## ", 0) == 0) {
      in_table_section = true;
      if (line.find("Counters") != std::string::npos) kind = Kind::kCounter;
      else if (line.find("Gauges") != std::string::npos) kind = Kind::kGauge;
      else if (line.find("Histograms") != std::string::npos)
        kind = Kind::kHistogram;
      else if (line.find("Trace spans") != std::string::npos)
        kind = Kind::kSpan;
      else in_table_section = false;  // schema / prose sections
      continue;
    }
    if (!in_table_section || line.empty() || line[0] != '|') continue;
    const std::size_t open = line.find('`');
    if (open == std::string::npos) continue;  // header / separator row
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    doc[kind].insert(line.substr(open + 1, close - open - 1));
  }
  return doc;
}

// ---------------------------------------------------------------------------
// Source scan: instrumentation-macro and direct-registry call sites.
// ---------------------------------------------------------------------------

/// If `pattern(` [std::string(] `"...` follows at `pos`, extract the
/// literal; otherwise return "".
std::string literal_after(const std::string& line, std::size_t pos,
                          const std::string& pattern) {
  std::size_t p = pos + pattern.size();
  const std::string wrapper = "std::string(";
  if (line.compare(p, wrapper.size(), wrapper) == 0) p += wrapper.size();
  if (p >= line.size() || line[p] != '"') return "";
  const std::size_t close = line.find('"', p + 1);
  if (close == std::string::npos) return "";
  return line.substr(p + 1, close - p - 1);
}

void scan_line(const std::string& raw, NameSets& out) {
  // Drop line comments so prose mentioning names can't satisfy the check.
  std::string line = raw;
  if (const std::size_t c = line.find("//"); c != std::string::npos)
    line.resize(c);
  static const std::pair<std::string, Kind> kPatterns[] = {
      {"CLEAR_OBS_COUNT(", Kind::kCounter},
      {"CLEAR_OBS_GAUGE(", Kind::kGauge},
      {"CLEAR_OBS_RECORD(", Kind::kHistogram},
      {"CLEAR_OBS_SPAN(", Kind::kSpan},
      {"obs::counter(", Kind::kCounter},
      {"obs::gauge(", Kind::kGauge},
      {"obs::histogram(", Kind::kHistogram},
  };
  for (const auto& [pat, kind] : kPatterns) {
    for (std::size_t pos = line.find(pat); pos != std::string::npos;
         pos = line.find(pat, pos + 1)) {
      const std::string name = literal_after(line, pos, pat);
      if (!name.empty()) out[kind].insert(name);
    }
  }
}

NameSets scan_sources(const fs::path& root) {
  NameSets found;
  std::size_t files = 0;
  for (const char* dir : {"src", "tools"}) {
    for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      // The registry itself defines the macros; its internals are not
      // call sites.
      if (entry.path().filename() == "obs.hpp" ||
          entry.path().filename() == "obs.cpp")
        continue;
      ++files;
      std::ifstream in(entry.path());
      std::string line;
      while (std::getline(in, line)) scan_line(line, found);
    }
  }
  EXPECT_GT(files, 50u) << "source scan found suspiciously few files under "
                        << root;
  return found;
}

// ---------------------------------------------------------------------------
// Runtime exercise: smallest run that touches pipeline, serve, and all
// three edge precisions, with the registry recording.
// ---------------------------------------------------------------------------

NameSets runtime_names() {
  obs::set_enabled(true);
  obs::reset();

  core::ClearConfig config = core::smoke_config();
  config.data.seed = 91;
  config.data.n_volunteers = 6;
  config.data.trials_per_volunteer = 3;
  config.train.epochs = 1;
  config.finetune.epochs = 1;
  config.finalize();
  const wemac::WemacDataset d = wemac::generate_wemac(config.data);
  core::ClearPipeline pipeline(config);
  pipeline.fit(d, {0, 1, 2, 3});

  serve::WorkloadConfig wc;
  wc.n_users = 4;
  wc.requests_per_user = 6;
  wc.seed = 5;
  wc.labeled_fraction = 0.5;   // exercise serve.finetunes
  wc.degraded_user_fraction = 0.5;  // exercise sanitize/degrade counters
  serve::Server server(serve::ModelSource::from_pipeline(pipeline),
                       serve::ServeConfig{});
  server.run(serve::make_workload(d, wc));

  // Edge forwards per precision (tiny standalone model) so the dynamic
  // "edge.forward_us.<p>" histograms and "edge.forward.<p>" spans register.
  nn::CnnLstmConfig mc;
  mc.feature_dim = 16;
  mc.window_count = 8;
  mc.conv1_channels = 2;
  mc.conv2_channels = 3;
  mc.lstm_hidden = 5;
  mc.dropout = 0.0;
  Rng rng(3);
  Tensor map({16, 8});
  for (std::size_t i = 0; i < map.numel(); ++i)
    map[i] = static_cast<float>(rng.normal(0.0, 1.0));
  const Tensor batch = nn::stack_batch({&map}, {0});
  for (const edge::Precision p :
       {edge::Precision::kFp32, edge::Precision::kFp16,
        edge::Precision::kInt8}) {
    edge::EngineConfig ec;
    ec.precision = p;
    edge::EdgeEngine engine(nn::build_cnn_lstm(mc, rng), ec);
    if (p == edge::Precision::kInt8) engine.calibrate({&map});
    engine.forward(batch);
  }

  NameSets names;
  const obs::RegisteredNames reg = obs::registered_names();
  names[Kind::kCounter].insert(reg.counters.begin(), reg.counters.end());
  names[Kind::kGauge].insert(reg.gauges.begin(), reg.gauges.end());
  names[Kind::kHistogram].insert(reg.histograms.begin(),
                                 reg.histograms.end());
  for (const obs::TraceEvent& e : obs::trace_events())
    names[Kind::kSpan].insert(e.name);
  obs::set_enabled(false);
  obs::reset();
  return names;
}

struct Inventory {
  NameSets doc, source, runtime;
  Inventory() {
    const fs::path root(CLEAR_SOURCE_DIR);
    doc = parse_doc(root / "docs" / "METRICS.md");
    source = scan_sources(root);
    runtime = runtime_names();
  }
};

const Inventory& inventory() {
  static Inventory inv;
  return inv;
}

constexpr Kind kAllKinds[] = {Kind::kCounter, Kind::kGauge, Kind::kHistogram,
                              Kind::kSpan};

TEST(MetricsDoc, DocParsesAndIsNonTrivial) {
  const NameSets& doc = inventory().doc;
  EXPECT_GE(doc.at(Kind::kCounter).size(), 40u);
  EXPECT_GE(doc.at(Kind::kGauge).size(), 3u);
  EXPECT_GE(doc.at(Kind::kHistogram).size(), 4u);
  EXPECT_GE(doc.at(Kind::kSpan).size(), 20u);
}

TEST(MetricsDoc, EverySourceLiteralIsDocumented) {
  const Inventory& inv = inventory();
  for (const Kind kind : kAllKinds) {
    const auto it = inv.source.find(kind);
    if (it == inv.source.end()) continue;
    for (const std::string& name : it->second)
      EXPECT_TRUE(any_token_matches(inv.doc.at(kind), name))
          << kind_name(kind) << " \"" << name
          << "\" is instrumented in the source but missing from "
             "docs/METRICS.md";
  }
}

TEST(MetricsDoc, EveryDocumentedNameExists) {
  const Inventory& inv = inventory();
  for (const Kind kind : kAllKinds) {
    for (const std::string& tok : inv.doc.at(kind)) {
      bool found = false;
      for (const NameSets* names : {&inv.source, &inv.runtime}) {
        const auto it = names->find(kind);
        if (it == names->end()) continue;
        for (const std::string& name : it->second)
          if (token_matches(tok, name)) {
            found = true;
            break;
          }
        if (found) break;
      }
      EXPECT_TRUE(found)
          << kind_name(kind) << " \"" << tok
          << "\" is documented in docs/METRICS.md but no longer exists in "
             "the source or registers at runtime";
    }
  }
}

TEST(MetricsDoc, EveryRuntimeRegistrationIsDocumented) {
  const Inventory& inv = inventory();
  // Sanity: the miniature run must have exercised the main subsystems,
  // otherwise this direction of the check is vacuous.
  EXPECT_TRUE(inv.runtime.at(Kind::kCounter).count("pipeline.fits"));
  EXPECT_TRUE(inv.runtime.at(Kind::kCounter).count("serve.requests"));
  EXPECT_TRUE(
      inv.runtime.at(Kind::kHistogram).count("edge.forward_us.int8"));
  for (const Kind kind : kAllKinds) {
    const auto it = inv.runtime.find(kind);
    if (it == inv.runtime.end()) continue;
    for (const std::string& name : it->second)
      EXPECT_TRUE(any_token_matches(inv.doc.at(kind), name))
          << kind_name(kind) << " \"" << name
          << "\" registered at runtime but is missing from docs/METRICS.md";
  }
}

}  // namespace
}  // namespace clear
