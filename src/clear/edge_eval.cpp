#include "clear/edge_eval.hpp"

#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "edge/finetune.hpp"
#include "nn/checkpoint.hpp"

namespace clear::core {

std::unique_ptr<nn::Sequential> model_from_checkpoint_bytes(
    const nn::CnnLstmConfig& config, const std::string& bytes) {
  Rng rng(1);  // Weights come from the checkpoint.
  auto model = nn::build_cnn_lstm(config, rng);
  std::istringstream is(bytes, std::ios::binary);
  nn::load_checkpoint(is, *model);
  return model;
}

namespace {

/// Normalized maps (owned) + labels for the given samples.
struct OwnedSet {
  std::vector<Tensor> maps;
  nn::MapDataset set;
};

OwnedSet make_owned_set(const wemac::WemacDataset& dataset,
                        const features::FeatureNormalizer& normalizer,
                        const std::vector<std::size_t>& sample_indices) {
  OwnedSet out;
  out.maps.reserve(sample_indices.size());
  for (const std::size_t s : sample_indices) {
    Tensor m = dataset.samples()[s].feature_map;
    normalizer.apply_map(m);
    out.maps.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < out.maps.size(); ++i) {
    out.set.maps.push_back(&out.maps[i]);
    out.set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[sample_indices[i]].label));
  }
  return out;
}

/// Training samples of one cluster (for int8 activation calibration).
std::vector<std::size_t> cluster_training_samples(
    const wemac::WemacDataset& dataset, const ClearFoldArtifacts& fold,
    std::size_t k) {
  std::vector<std::size_t> out;
  for (const std::size_t member : fold.clustering.clusters[k].members) {
    const std::size_t user = fold.fitted_users[member];
    for (const std::size_t s : dataset.samples_of(user)) out.push_back(s);
  }
  return out;
}

edge::EdgeEngine make_engine(const wemac::WemacDataset& dataset,
                             const ClearConfig& config,
                             const ClearFoldArtifacts& fold, std::size_t k,
                             edge::Precision precision,
                             double act_percentile) {
  edge::EngineConfig ec;
  ec.precision = precision;
  ec.act_percentile = act_percentile;
  edge::EdgeEngine engine(
      model_from_checkpoint_bytes(config.model, fold.checkpoints[k]), ec);
  if (precision == edge::Precision::kInt8) {
    const std::vector<std::size_t> calib =
        cluster_training_samples(dataset, fold, k);
    CLEAR_CHECK_MSG(!calib.empty(), "no calibration data for cluster");
    // A modest calibration subset is enough for stable percentiles.
    std::vector<std::size_t> subset;
    const std::size_t stride = std::max<std::size_t>(1, calib.size() / 32);
    for (std::size_t i = 0; i < calib.size(); i += stride)
      subset.push_back(calib[i]);
    OwnedSet owned = make_owned_set(dataset, fold.normalizer, subset);
    engine.calibrate(owned.set.maps);
  }
  return engine;
}

}  // namespace

EdgeEvalResult run_edge_validation(const wemac::WemacDataset& dataset,
                                   const ClearConfig& config,
                                   const std::vector<ClearFoldArtifacts>& folds,
                                   edge::DeviceKind device,
                                   const EdgeEvalOptions& options) {
  CLEAR_CHECK_MSG(!folds.empty(), "edge validation needs fold artifacts");
  EdgeEvalResult result;
  result.device = device;
  const edge::DeviceSpec spec = edge::device_spec(device);

  // Folds rebuild their engines from checkpoint bytes and salt the
  // fine-tuning seed with the fold's test user, so they are independent and
  // run concurrently; outcomes are merged in fold order below so aggregates
  // match the serial loop bit for bit at any thread count.
  struct FoldOutcome {
    nn::BinaryMetrics no_ft;
    bool has_rt = false;
    double rt_acc = 0.0;
    double rt_f1 = 0.0;
    bool has_ft = false;
    nn::BinaryMetrics with_ft;
  };
  std::vector<FoldOutcome> outcomes(folds.size());
  std::mutex progress_mutex;

  parallel_for(0, folds.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t f = lo; f < hi; ++f) {
      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(f, folds.size());
      }
      const ClearFoldArtifacts& fold = folds[f];
      FoldOutcome& out = outcomes[f];
      const std::size_t k = fold.assigned_cluster;
      OwnedSet test = make_owned_set(dataset, fold.normalizer, fold.split.test);

      // Deployed accuracy without fine-tuning.
      edge::EdgeEngine engine = make_engine(dataset, config, fold, k,
                                            spec.precision,
                                            options.act_percentile);
      out.no_ft = engine.evaluate(test.set);

      // RT at device precision: other clusters' deployed models.
      std::vector<double> rt_acc;
      std::vector<double> rt_f1;
      for (std::size_t other = 0; other < fold.checkpoints.size(); ++other) {
        if (other == k) continue;
        edge::EdgeEngine rt_engine = make_engine(dataset, config, fold, other,
                                                 spec.precision,
                                                 options.act_percentile);
        const nn::BinaryMetrics m = rt_engine.evaluate(test.set);
        rt_acc.push_back(m.accuracy * 100.0);
        rt_f1.push_back(m.f1 * 100.0);
      }
      if (!rt_acc.empty()) {
        out.has_rt = true;
        out.rt_acc = nn::mean_std(rt_acc).mean;
        out.rt_f1 = nn::mean_std(rt_f1).mean;
      }

      // On-device fine-tuning.
      if (options.run_finetune) {
        OwnedSet ft = make_owned_set(dataset, fold.normalizer, fold.split.ft);
        edge::EdgeFinetuneConfig fc;
        fc.train = config.finetune;
        fc.train.seed = config.seed ^ 0xED6E ^ fold.test_user;
        fc.freeze_boundary = nn::fine_tune_boundary();
        edge::edge_finetune(engine, ft.set, fc);
        out.has_ft = true;
        out.with_ft = engine.evaluate(test.set);
      }
    }
  });

  for (const FoldOutcome& out : outcomes) {
    result.no_ft.add(out.no_ft);
    if (out.has_rt) result.rt.add_percent(out.rt_acc, out.rt_f1);
    if (out.has_ft) result.with_ft.add(out.with_ft);
  }

  result.no_ft.finalize();
  result.rt.finalize();
  result.with_ft.finalize();

  // Cost model: per-map inference and one fine-tuning session.
  const double macs = edge::model_inference_macs(config.model);
  result.infer_cost = edge::estimate_inference(spec, macs);
  const std::size_t ft_samples = folds.front().split.ft.size();
  result.ft_cost = edge::estimate_finetuning(
      spec, macs, ft_samples, config.finetune.epochs, config.finetune.batch_size);
  return result;
}

}  // namespace clear::core
