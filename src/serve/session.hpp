// Per-user serving sessions (DESIGN.md §12).
//
// Each user connecting to the server walks the paper's cold-start protocol
// as a state machine:
//
//   COLD ── first request ──▶ ASSIGNING ── CA ready ──▶ ASSIGNED
//     ASSIGNED ── enough labelled maps ──▶ FINE_TUNING ──▶ PERSONALIZED
//
// COLD/ASSIGNING users are served by the population-general model while the
// session buffers unlabeled observations for Cluster Assignment; ASSIGNED
// users get their cluster's pre-trained model; PERSONALIZED users get their
// own fine-tuned engine (owned by the session).
//
// DEGRADED is a parallel failure state: `degrade_after` consecutive requests
// below the signal-quality floor park the session on the general model (a
// cluster/personal model fed garbage is worse than the population prior) and
// pause CA/FT buffering; `recover_after` consecutive good requests restore
// the exact pre-degradation state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/kmeans.hpp"
#include "edge/engine.hpp"
#include "serve/batcher.hpp"
#include "tensor/tensor.hpp"

namespace clear::serve {

enum class SessionState {
  kCold,          ///< No data seen yet.
  kAssigning,     ///< Buffering unlabeled observations for CA.
  kAssigned,      ///< Serving the assigned cluster's model.
  kFineTuning,    ///< Labelled buffer full; personalization in progress.
  kPersonalized,  ///< Serving the user's own fine-tuned engine.
  kDegraded,      ///< Sustained bad signal; parked on the general model.
};

const char* session_state_name(SessionState s);

struct SessionPolicy {
  std::size_t ca_windows = 6;   ///< Observations buffered before CA runs.
  std::size_t ft_maps = 4;      ///< Labelled maps buffered before fine-tune.
  bool enable_finetune = true;  ///< false: sessions stop at ASSIGNED.
  double min_quality = 0.7;     ///< Quality floor for a "good" request.
  std::size_t degrade_after = 3;  ///< Consecutive bad requests to degrade.
  std::size_t recover_after = 3;  ///< Consecutive good requests to recover.
};

/// One labelled (normalized) feature map buffered for fine-tuning.
struct LabelledMap {
  Tensor map;
  int label = 0;
};

/// Complete serializable session state: everything needed to rebuild the
/// session bit-identically except the personal engine itself, which the
/// recovery path re-attaches from the CRC-verified checkpoint store (the
/// image only records that one exists). Snapshots persist these; the
/// journal replays mutations on top of them.
struct SessionImage {
  std::uint64_t user_id = 0;
  SessionState state = SessionState::kCold;
  SessionState saved_state = SessionState::kCold;
  std::uint64_t bad_streak = 0;
  std::uint64_t good_streak = 0;
  std::uint64_t cluster = 0;
  std::vector<cluster::Point> observations;
  std::vector<LabelledMap> labelled;
  /// false after abort_finetune() disabled retries for this session.
  bool finetune_enabled = true;
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;
  std::uint64_t predictions = 0;
  std::uint64_t first_arrival_us = 0;
  std::optional<std::uint64_t> first_prediction_us;
  /// True when a personal checkpoint backs this session on disk.
  bool has_personal = false;
};

class Session {
 public:
  Session(std::uint64_t user_id, SessionPolicy policy,
          edge::Precision precision);

  std::uint64_t user_id() const { return user_id_; }
  edge::Precision precision() const { return precision_; }
  SessionState state() const { return state_; }
  bool degraded() const { return state_ == SessionState::kDegraded; }

  // -- Signal quality / degradation -----------------------------------------
  enum class QualityEvent { kNone, kDegraded, kRecovered };
  /// Track one request's quality; may flip into/out of DEGRADED.
  QualityEvent note_quality(double quality);

  // -- Cluster assignment ----------------------------------------------------
  /// Buffer one unlabeled observation (COLD/ASSIGNING only; COLD advances
  /// to ASSIGNING).
  void add_observation(cluster::Point observation);
  bool ca_ready() const;
  const std::vector<cluster::Point>& observations() const {
    return observations_;
  }
  /// Record the CA verdict and advance to ASSIGNED (drops the buffer).
  void set_assignment(std::size_t cluster);
  std::size_t cluster() const { return cluster_; }
  bool assigned() const;

  // -- Fine-tuning -----------------------------------------------------------
  /// Buffer one labelled map (ASSIGNED only; ignored when fine-tuning is
  /// disabled or the session has already personalized).
  void add_labelled(Tensor normalized_map, int label);
  bool ft_ready() const;
  const std::vector<LabelledMap>& labelled() const { return labelled_; }
  /// Enter FINE_TUNING (the server runs the training synchronously).
  void begin_finetune();
  /// Install the fine-tuned engine and advance to PERSONALIZED.
  void set_personal_engine(std::unique_ptr<edge::EdgeEngine> engine);
  edge::EdgeEngine* personal_engine() { return personal_engine_.get(); }
  bool has_personal_engine() const { return personal_engine_ != nullptr; }
  /// Roll back a failed fine-tune to ASSIGNED and stop retrying (e.g. the
  /// cluster checkpoint turned out to be unusable).
  void abort_finetune();

  // -- Durability ------------------------------------------------------------
  /// Freeze the full session state. Never called mid-fine-tune (the server
  /// fine-tunes synchronously), so FINE_TUNING never appears in an image.
  SessionImage image() const;
  /// Rebuild from an image. `engine` must be non-null exactly when
  /// `image.has_personal` — recovery demotes the image first when the
  /// backing checkpoint turned out to be unusable.
  void restore_image(const SessionImage& image,
                     std::unique_ptr<edge::EdgeEngine> engine);

  // -- Bookkeeping -----------------------------------------------------------
  std::size_t requests = 0;
  std::size_t shed = 0;
  std::size_t predictions = 0;
  std::uint64_t first_arrival_us = 0;
  /// Virtual time of the first completed prediction (time-to-first-
  /// prediction = this - first_arrival_us).
  std::optional<std::uint64_t> first_prediction_us;

 private:
  std::uint64_t user_id_;
  SessionPolicy policy_;
  edge::Precision precision_;
  SessionState state_ = SessionState::kCold;
  SessionState saved_state_ = SessionState::kCold;  ///< Restored on recovery.
  std::size_t bad_streak_ = 0;
  std::size_t good_streak_ = 0;
  std::size_t cluster_ = 0;
  std::vector<cluster::Point> observations_;
  std::vector<LabelledMap> labelled_;
  std::unique_ptr<edge::EdgeEngine> personal_engine_;
};

class SessionManager {
 public:
  SessionManager(SessionPolicy policy,
                 std::vector<edge::Precision> precisions,
                 std::size_t max_sessions);

  /// The user's session, created on first contact. Returns nullptr when the
  /// session table is full and the user is new (admission control).
  Session* get_or_create(std::uint64_t user_id);
  Session* find(std::uint64_t user_id);
  /// Install a recovered session from its image (the user must not already
  /// have one; admission control applies as for get_or_create).
  Session* restore(const SessionImage& image,
                   std::unique_ptr<edge::EdgeEngine> engine);
  /// Drop one session (recovery quarantines corrupt ones this way; the
  /// user's next request starts a fresh COLD session).
  void erase(std::uint64_t user_id);
  /// The precision get_or_create would hand this user.
  edge::Precision precision_for(std::uint64_t user_id) const {
    return precisions_[user_id % precisions_.size()];
  }
  std::size_t size() const { return sessions_.size(); }

  /// Sessions in user-id order (deterministic reporting).
  std::vector<const Session*> sessions() const;

 private:
  SessionPolicy policy_;
  std::vector<edge::Precision> precisions_;
  std::size_t max_sessions_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
};

}  // namespace clear::serve
