// Parameterized dataset-generation properties: structural invariants of the
// synthetic WEMAC substrate across population sizes and trial geometries.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "features/feature_map.hpp"
#include "wemac/dataset.hpp"

namespace clear::wemac {
namespace {

struct ShapeCase {
  std::size_t volunteers, trials, windows;
  double window_seconds;
};

class DatasetShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

WemacConfig config_for(const ShapeCase& c, std::uint64_t seed = 5) {
  WemacConfig cfg;
  cfg.seed = seed;
  cfg.n_volunteers = c.volunteers;
  cfg.trials_per_volunteer = c.trials;
  cfg.windows_per_trial = c.windows;
  cfg.window_seconds = c.window_seconds;
  return cfg;
}

TEST_P(DatasetShapeSweep, CountsAndShapesHold) {
  const ShapeCase c = GetParam();
  const WemacDataset d = generate_wemac(config_for(c));
  EXPECT_EQ(d.n_volunteers(), c.volunteers);
  EXPECT_EQ(d.samples().size(), c.volunteers * c.trials);
  for (const Sample& s : d.samples()) {
    EXPECT_EQ(s.feature_map.extent(0), features::kTotalFeatureCount);
    EXPECT_EQ(s.feature_map.extent(1), c.windows);
  }
}

TEST_P(DatasetShapeSweep, EveryValueFinite) {
  const ShapeCase c = GetParam();
  const WemacDataset d = generate_wemac(config_for(c));
  for (const Sample& s : d.samples())
    for (const float v : s.feature_map.flat())
      EXPECT_TRUE(std::isfinite(v));
}

TEST_P(DatasetShapeSweep, ClassBalanceMatchesScheduleContract) {
  const ShapeCase c = GetParam();
  const WemacDataset d = generate_wemac(config_for(c));
  std::size_t fear = 0;
  for (const Sample& s : d.samples()) fear += static_cast<std::size_t>(s.label);
  // make_schedule puts exactly max(1, round(ff * trials)) fear trials in
  // every volunteer's schedule, so the population share is deterministic.
  const auto fear_per_user = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.5 * static_cast<double>(c.trials) + 0.5));
  EXPECT_EQ(fear, fear_per_user * c.volunteers);
}

TEST_P(DatasetShapeSweep, VolunteerIndexPartitionsSamples) {
  const ShapeCase c = GetParam();
  const WemacDataset d = generate_wemac(config_for(c));
  std::set<std::size_t> seen;
  for (std::size_t v = 0; v < d.n_volunteers(); ++v) {
    for (const std::size_t s : d.samples_of(v)) {
      EXPECT_TRUE(seen.insert(s).second) << "sample listed twice";
      EXPECT_EQ(d.samples()[s].volunteer_id, v);
    }
  }
  EXPECT_EQ(seen.size(), d.samples().size());
}

INSTANTIATE_TEST_SUITE_P(Shapes, DatasetShapeSweep,
                         ::testing::Values(ShapeCase{4, 3, 4, 6.0},
                                           ShapeCase{6, 4, 8, 8.0},
                                           ShapeCase{8, 6, 6, 10.0},
                                           ShapeCase{12, 3, 12, 5.0}));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SeedFullyDeterminesDataset) {
  const std::uint64_t seed = GetParam();
  const ShapeCase c{5, 3, 6, 8.0};
  const WemacDataset a = generate_wemac(config_for(c, seed));
  const WemacDataset b = generate_wemac(config_for(c, seed));
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].label, b.samples()[i].label);
    const Tensor& ma = a.samples()[i].feature_map;
    const Tensor& mb = b.samples()[i].feature_map;
    for (std::size_t j = 0; j < ma.numel(); ++j)
      ASSERT_EQ(ma[j], mb[j]) << "seed=" << seed;
  }
  for (std::size_t v = 0; v < a.n_volunteers(); ++v)
    EXPECT_EQ(a.volunteers()[v].archetype_id, b.volunteers()[v].archetype_id);
}

TEST_P(SeedSweep, ArchetypeMixCoversAllGroups) {
  const std::uint64_t seed = GetParam();
  const WemacDataset d = generate_wemac(config_for({6, 3, 4, 6.0}, seed));
  std::set<std::size_t> archetypes;
  for (const VolunteerMeta& m : d.volunteers())
    archetypes.insert(m.archetype_id);
  EXPECT_EQ(archetypes.size(), kNumArchetypes) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace clear::wemac
