// Linear-interpolation resampling. The three WEMAC modalities are recorded at
// different native rates (BVP fast, GSR/SKT slow); windows are resampled to a
// common grid before feature extraction where needed.
#pragma once

#include <span>
#include <vector>

namespace clear::dsp {

/// Resample to exactly `out_len` samples covering the same time span.
std::vector<double> resample_to_length(std::span<const double> x,
                                       std::size_t out_len);

/// Resample from `in_rate` Hz to `out_rate` Hz.
std::vector<double> resample_rate(std::span<const double> x, double in_rate,
                                  double out_rate);

}  // namespace clear::dsp
