#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace clear {

namespace {

/// Depth of parallel regions entered on this thread (workers and callers).
thread_local int t_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++t_region_depth; }
  ~RegionGuard() { --t_region_depth; }
};

}  // namespace

bool in_parallel_region() { return t_region_depth > 0; }

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

// ---------------------------------------------------------------------------
// ThreadPool

struct ThreadPool::Job {
  std::function<void(std::size_t, std::size_t)> fn;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

struct ThreadPool::Impl {
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable wake;      ///< Workers wait for a new job.
  std::condition_variable finished;  ///< run() waits for completion.
  std::mutex region_mutex;           ///< One region at a time.
  std::shared_ptr<Job> job;          ///< Current job (null between regions).
  std::uint64_t job_seq = 0;
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  n_workers_ = workers;
  impl_->threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    impl_->threads.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    // Let an in-flight region drain before tearing the pool down.
    std::lock_guard<std::mutex> region(impl_->region_mutex);
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

void ThreadPool::execute_chunks(Job& job, std::size_t worker_id) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) return;
    {
      RegionGuard guard;  // Nested primitives inside fn run inline.
      try {
        job.fn(c, worker_id);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
    }
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_main(std::size_t worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->wake.wait(
          lock, [&] { return impl_->stop || impl_->job_seq != seen; });
      if (impl_->stop) return;
      seen = impl_->job_seq;
      job = impl_->job;
    }
    if (!job) continue;
    execute_chunks(*job, worker_id);
    if (job->done.load(std::memory_order_acquire) == job->n_chunks) {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->finished.notify_all();
    }
  }
}

void ThreadPool::run(
    std::size_t n_chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n_chunks == 0) return;
  // Inline when nested, when the pool has no workers, or when there is
  // nothing to share — same chunk order, exceptions propagate directly.
  if (t_region_depth > 0 || n_workers_ == 0 || n_chunks == 1) {
    RegionGuard guard;
    for (std::size_t c = 0; c < n_chunks; ++c) fn(c, n_workers_);
    return;
  }
  std::lock_guard<std::mutex> region(impl_->region_mutex);
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->job_seq;
  }
  impl_->wake.notify_all();
  execute_chunks(*job, n_workers_);  // The caller takes worker index W.
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->finished.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->n_chunks;
    });
    impl_->job = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

// ---------------------------------------------------------------------------
// Process-wide thread count + global pool

namespace {

/// Hard ceiling on the thread count: guards against absurd requests (a
/// negative CLI value cast to size_t, a typo'd env var) turning into a
/// multi-billion-thread spawn attempt.
constexpr std::size_t kMaxThreads = 256;

std::mutex g_pool_mutex;
std::shared_ptr<ThreadPool> g_pool;       ///< Null while serial.
std::size_t g_num_threads = 0;            ///< 0 = not yet resolved.

/// First-use default: CLEAR_NUM_THREADS when set and valid, else 1 (serial).
std::size_t default_num_threads() {
  const char* env = std::getenv("CLEAR_NUM_THREADS");
  if (env && *env) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end && *end == '\0' && v >= 0) {
      const std::size_t n =
          v == 0 ? hardware_threads() : static_cast<std::size_t>(v);
      return n < kMaxThreads ? n : kMaxThreads;
    }
  }
  return 1;
}

/// Resolved thread count + pool under g_pool_mutex.
std::size_t resolve_locked() {
  if (g_num_threads == 0) {
    g_num_threads = default_num_threads();
    if (g_num_threads > 1)
      g_pool = std::make_shared<ThreadPool>(g_num_threads - 1);
  }
  return g_num_threads;
}

std::shared_ptr<ThreadPool> acquire_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  resolve_locked();
  return g_pool;
}

}  // namespace

void set_num_threads(std::size_t n) {
  std::size_t target = n == 0 ? hardware_threads() : n;
  if (target > kMaxThreads) target = kMaxThreads;
  std::shared_ptr<ThreadPool> old;  // Destroyed (joined) outside the lock.
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_num_threads == target) return;
    old = std::move(g_pool);
    g_pool.reset();
    g_num_threads = target;
    if (target > 1) g_pool = std::make_shared<ThreadPool>(target - 1);
  }
}

std::size_t num_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return resolve_locked();
}

std::size_t parallel_workers() { return num_threads(); }

// ---------------------------------------------------------------------------
// Loop primitives

void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t n_chunks = (end - begin + g - 1) / g;
  const auto chunk_body = [&](std::size_t c, std::size_t) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = lo + g < end ? lo + g : end;
    body(c, lo, hi);
  };
  std::shared_ptr<ThreadPool> pool;
  if (!in_parallel_region() && n_chunks > 1) pool = acquire_pool();
  if (pool) {
    pool->run(n_chunks, chunk_body);
  } else {
    RegionGuard guard;
    for (std::size_t c = 0; c < n_chunks; ++c) chunk_body(c, 0);
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_chunks(begin, end, grain,
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        body(lo, hi);
                      });
}

void parallel_for_workers(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t n_chunks = (end - begin + g - 1) / g;
  const auto chunk_body = [&](std::size_t c, std::size_t worker) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = lo + g < end ? lo + g : end;
    body(worker, lo, hi);
  };
  std::shared_ptr<ThreadPool> pool;
  if (!in_parallel_region() && n_chunks > 1) pool = acquire_pool();
  if (pool) {
    CLEAR_CHECK_MSG(pool->workers() + 1 <= parallel_workers(),
                    "worker index bound mismatch");
    pool->run(n_chunks, chunk_body);
  } else {
    RegionGuard guard;
    for (std::size_t c = 0; c < n_chunks; ++c) chunk_body(c, 0);
  }
}

}  // namespace clear
