#include "clear/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "clear/pipeline.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "wemac/synth.hpp"

namespace clear::core {
namespace {

ClearConfig stream_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 61;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finalize();
  return c;
}

struct SharedFixture {
  ClearConfig config = stream_config();
  wemac::WemacDataset dataset;
  ClearPipeline pipeline;

  SharedFixture()
      : dataset(wemac::generate_wemac(stream_config().data)),
        pipeline(stream_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
  }

  StreamingConfig streaming() const {
    StreamingConfig sc;
    sc.window_seconds = config.data.window_seconds;
    sc.map_windows = config.data.windows_per_trial;
    sc.bvp_hz = config.data.rates.bvp_hz;
    sc.gsr_hz = config.data.rates.gsr_hz;
    sc.skt_hz = config.data.rates.skt_hz;
    return sc;
  }

  wemac::TrialSignals make_trial(wemac::Emotion emotion, double seconds,
                                 std::uint64_t seed) const {
    Rng rng(seed);
    wemac::Stimulus stim;
    stim.emotion = emotion;
    stim.duration_s = seconds;
    return wemac::synthesize_trial(
        dataset.volunteers().back().profile, stim, config.data.rates, rng);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

// --- StreamingConfig::validate -------------------------------------------

/// Expects `cfg.validate()` to throw with a message naming the bad field.
void expect_invalid(const StreamingConfig& cfg, const std::string& field) {
  try {
    cfg.validate();
    FAIL() << "expected validate() to reject bad " << field;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message \"" << e.what() << "\" does not name " << field;
  }
}

TEST(StreamingConfigValidate, DefaultsAndEqualLimitsAreValid) {
  StreamingConfig sc;
  EXPECT_NO_THROW(sc.validate());
  // Degenerate lo == hi is allowed (a constant channel); only lo > hi is
  // an inverted range.
  sc.skt_limits = {30.0, 30.0};
  EXPECT_NO_THROW(sc.validate());
}

TEST(StreamingConfigValidate, RejectsInvertedLimitsPerChannel) {
  StreamingConfig sc;
  sc.bvp_limits = {1.0, -1.0};
  expect_invalid(sc, "bvp_limits");
  sc = StreamingConfig{};
  sc.gsr_limits = {5.0, 0.0};
  expect_invalid(sc, "gsr_limits");
  sc = StreamingConfig{};
  sc.skt_limits = {40.0, 20.0};
  expect_invalid(sc, "skt_limits");
}

TEST(StreamingConfigValidate, RejectsNonPositiveSampleRates) {
  for (const double bad :
       {0.0, -64.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    StreamingConfig sc;
    sc.bvp_hz = bad;
    expect_invalid(sc, "bvp_hz");
    sc = StreamingConfig{};
    sc.gsr_hz = bad;
    expect_invalid(sc, "gsr_hz");
    sc = StreamingConfig{};
    sc.skt_hz = bad;
    expect_invalid(sc, "skt_hz");
  }
}

TEST(StreamingConfigValidate, RejectsZeroMapWindows) {
  StreamingConfig sc;
  sc.map_windows = 0;
  expect_invalid(sc, "map_windows");
}

TEST(StreamingConfigValidate, RejectsBadWindowSeconds) {
  StreamingConfig sc;
  sc.window_seconds = 0.0;
  expect_invalid(sc, "window_seconds");
  sc.window_seconds = -10.0;
  expect_invalid(sc, "window_seconds");
  sc.window_seconds = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(sc, "window_seconds");
}

TEST(StreamingConfigValidate, RejectsDegradedThresholdOutsideUnitInterval) {
  StreamingConfig sc;
  sc.degraded_threshold = -0.01;
  expect_invalid(sc, "degraded_threshold");
  sc.degraded_threshold = 1.01;
  expect_invalid(sc, "degraded_threshold");
  sc.degraded_threshold = 1.0;
  EXPECT_NO_THROW(sc.validate());
  sc.degraded_threshold = 0.0;
  EXPECT_NO_THROW(sc.validate());
}

TEST(StreamingConfigValidate, DetectorConstructorRunsValidation) {
  SharedFixture& f = fixture();
  StreamingConfig sc = f.streaming();
  sc.gsr_limits = {3.0, -3.0};
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), sc),
               Error);
}

TEST(Streaming, NoDetectionBeforeWarmup) {
  auto& f = fixture();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        f.streaming());
  // Feed W-1 windows worth of signal.
  const double seconds =
      f.streaming().window_seconds *
      static_cast<double>(f.streaming().map_windows - 1);
  const auto trial = f.make_trial(wemac::Emotion::kCalm, seconds + 1.0, 1);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  EXPECT_EQ(det.poll(), std::nullopt);
  EXPECT_FALSE(det.warmed_up());
  EXPECT_EQ(det.windows_seen(), f.streaming().map_windows - 1);
}

TEST(Streaming, DetectsAfterWarmupAndPerWindowThereafter) {
  auto& f = fixture();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        f.streaming());
  const StreamingConfig sc = f.streaming();
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  const auto trial = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 2);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  const auto first = det.poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_GE(first->fear_probability, 0.0);
  EXPECT_LE(first->fear_probability, 1.0);
  EXPECT_TRUE(det.warmed_up());
  // No new window -> no new detection.
  EXPECT_EQ(det.poll(), std::nullopt);
  // One more window of data -> exactly one more detection.
  const auto more = f.make_trial(wemac::Emotion::kFear,
                                 sc.window_seconds + 1.0, 3);
  det.push_bvp(std::span<const double>(more.bvp.data(),
                                       static_cast<std::size_t>(
                                           sc.window_seconds * sc.bvp_hz)));
  det.push_gsr(std::span<const double>(more.gsr.data(),
                                       static_cast<std::size_t>(
                                           sc.window_seconds * sc.gsr_hz)));
  det.push_skt(std::span<const double>(more.skt.data(),
                                       static_cast<std::size_t>(
                                           sc.window_seconds * sc.skt_hz)));
  const auto second = det.poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->window_index, first->window_index + 1);
}

TEST(Streaming, ChunkedFeedingEquivalentToBulk) {
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  const auto trial = f.make_trial(wemac::Emotion::kJoy, warmup_s + 1.0, 4);

  StreamingDetector bulk(f.pipeline.cluster_model(1), f.pipeline.normalizer(),
                         sc);
  bulk.push_bvp(trial.bvp);
  bulk.push_gsr(trial.gsr);
  bulk.push_skt(trial.skt);
  const auto a = bulk.poll();

  StreamingDetector chunked(f.pipeline.cluster_model(1),
                            f.pipeline.normalizer(), sc);
  // Feed in awkward chunk sizes.
  for (std::size_t i = 0; i < trial.bvp.size(); i += 97)
    chunked.push_bvp(std::span<const double>(
        trial.bvp.data() + i, std::min<std::size_t>(97, trial.bvp.size() - i)));
  for (std::size_t i = 0; i < trial.gsr.size(); i += 13)
    chunked.push_gsr(std::span<const double>(
        trial.gsr.data() + i, std::min<std::size_t>(13, trial.gsr.size() - i)));
  for (std::size_t i = 0; i < trial.skt.size(); i += 5)
    chunked.push_skt(std::span<const double>(
        trial.skt.data() + i, std::min<std::size_t>(5, trial.skt.size() - i)));
  const auto b = chunked.poll();

  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->fear_probability, b->fear_probability);
  EXPECT_EQ(a->window_index, b->window_index);
}

TEST(Streaming, RollingMapSlidesWindowByWindow) {
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double long_s =
      sc.window_seconds * static_cast<double>(sc.map_windows + 3);
  const auto trial = f.make_trial(wemac::Emotion::kFear, long_s + 1.0, 5);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  // All windows extracted in one poll; only the newest detection returned.
  const auto d = det.poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->window_index, det.windows_seen() - 1);
  EXPECT_GE(det.windows_seen(), sc.map_windows + 3);
}

// ---------------------------------------------------------------------------
// Self-healing: dropout gaps, glitches, and out-of-range samples are
// repaired, counted, and reported — never consumed raw.

TEST(StreamingQuality, CleanStreamReportsFullQuality) {
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  const auto trial = f.make_trial(wemac::Emotion::kCalm, warmup_s + 1.0, 11);
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  const auto d = det.poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->quality.repaired(), 0u);
  EXPECT_DOUBLE_EQ(d->quality.ok_fraction(), 1.0);
  EXPECT_FALSE(d->degraded);
  EXPECT_EQ(det.health().repaired(), 0u);
}

TEST(StreamingQuality, DropoutIsGapFilledAndCounted) {
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  auto trial = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 12);
  // Blank half a second of BVP mid-stream — the radio-dropout failure mode.
  const auto gap_len = static_cast<std::size_t>(0.5 * sc.bvp_hz);
  const std::size_t gap_at = trial.bvp.size() / 2;
  for (std::size_t i = 0; i < gap_len; ++i)
    trial.bvp[gap_at + i] = std::nan("");
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  const auto d = det.poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(std::isfinite(d->fear_probability));
  EXPECT_EQ(det.health().bvp.filled, gap_len);
  EXPECT_EQ(det.health().gsr.filled, 0u);
  EXPECT_LT(det.health().ok_fraction(), 1.0);
}

TEST(StreamingQuality, DegradedFlagFollowsThreshold) {
  auto& f = fixture();
  StreamingConfig sc = f.streaming();
  sc.degraded_threshold = 0.0;  // Any repair in the map degrades.
  StreamingDetector strict(f.pipeline.cluster_model(0),
                           f.pipeline.normalizer(), sc);
  sc.degraded_threshold = 0.9;  // Tolerates up to 90% repaired samples.
  StreamingDetector lax(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  auto trial = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 13);
  trial.bvp[trial.bvp.size() / 2] = std::nan("");
  for (StreamingDetector* det : {&strict, &lax}) {
    det->push_bvp(trial.bvp);
    det->push_gsr(trial.gsr);
    det->push_skt(trial.skt);
  }
  const auto ds = strict.poll();
  const auto dl = lax.poll();
  ASSERT_TRUE(ds.has_value());
  ASSERT_TRUE(dl.has_value());
  EXPECT_TRUE(ds->degraded);
  EXPECT_FALSE(dl->degraded);
  // The repaired data is identical either way — only the flag differs.
  EXPECT_DOUBLE_EQ(ds->fear_probability, dl->fear_probability);
}

TEST(StreamingQuality, ClampingCountsOutOfRangeSamples) {
  auto& f = fixture();
  StreamingConfig sc = f.streaming();
  sc.skt_limits = {20.0, 45.0};  // Physiological skin-temperature rails.
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  auto trial = f.make_trial(wemac::Emotion::kCalm, warmup_s + 1.0, 14);
  trial.skt[10] = 500.0;  // ADC saturation glitch.
  trial.skt[11] = -40.0;
  det.push_bvp(trial.bvp);
  det.push_gsr(trial.gsr);
  det.push_skt(trial.skt);
  const auto d = det.poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(det.health().skt.clamped, 2u);
  EXPECT_TRUE(std::isfinite(d->fear_probability));
}

TEST(StreamingQuality, HoldLastAndInterpBothRecoverFromDropout) {
  auto& f = fixture();
  const double warmup_s = f.streaming().window_seconds *
                          static_cast<double>(f.streaming().map_windows);
  auto trial = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 15);
  const std::size_t gap_at = trial.gsr.size() / 3;
  for (std::size_t i = 0; i < 8; ++i) trial.gsr[gap_at + i] = std::nan("");
  for (const fault::GapFill policy :
       {fault::GapFill::kHoldLast, fault::GapFill::kLinearInterp}) {
    StreamingConfig sc = f.streaming();
    sc.gap_fill = policy;
    StreamingDetector det(f.pipeline.cluster_model(0),
                          f.pipeline.normalizer(), sc);
    det.push_bvp(trial.bvp);
    det.push_gsr(trial.gsr);
    det.push_skt(trial.skt);
    const auto d = det.poll();
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(std::isfinite(d->fear_probability));
    EXPECT_EQ(det.health().gsr.filled, 8u);
  }
}

TEST(StreamingQuality, InterpolationDefersTrailingGap) {
  auto& f = fixture();
  StreamingConfig sc = f.streaming();
  sc.gap_fill = fault::GapFill::kLinearInterp;
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  // A trailing NaN run cannot be interpolated yet: those samples must not
  // count as delivered until the next good sample closes the gap.
  det.push_skt(std::vector<double>{30.0, 31.0});
  const std::size_t before = det.health().skt.total;
  det.push_skt(std::vector<double>{std::nan(""), std::nan("")});
  EXPECT_EQ(det.health().skt.total, before);  // Withheld, not delivered.
  det.push_skt(std::vector<double>{34.0});
  EXPECT_EQ(det.health().skt.total, before + 3);
  EXPECT_EQ(det.health().skt.filled, 2u);
}

TEST(StreamingQuality, DetectionRecoversAfterTotalChannelDropout) {
  // Dropout-recovery: a full window of one channel goes dark, the detector
  // keeps emitting (degraded), and quality returns to clean afterwards.
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  StreamingDetector det(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                        sc);
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  const auto n_bvp = static_cast<std::size_t>(sc.window_seconds * sc.bvp_hz);
  const auto n_gsr = static_cast<std::size_t>(sc.window_seconds * sc.gsr_hz);
  const auto n_skt = static_cast<std::size_t>(sc.window_seconds * sc.skt_hz);
  // Push exactly W windows so the buffers are empty at each window edge.
  const auto trial = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 16);
  det.push_bvp(std::span<const double>(trial.bvp.data(),
                                       n_bvp * sc.map_windows));
  det.push_gsr(std::span<const double>(trial.gsr.data(),
                                       n_gsr * sc.map_windows));
  det.push_skt(std::span<const double>(trial.skt.data(),
                                       n_skt * sc.map_windows));
  ASSERT_TRUE(det.poll().has_value());

  // One whole window where GSR is dark.
  const auto more = f.make_trial(wemac::Emotion::kFear,
                                 2.0 * sc.window_seconds + 1.0, 17);
  det.push_bvp(std::span<const double>(more.bvp.data(), n_bvp));
  const std::vector<double> dark(n_gsr, std::nan(""));
  det.push_gsr(dark);
  det.push_skt(std::span<const double>(more.skt.data(), n_skt));
  const auto during = det.poll();
  ASSERT_TRUE(during.has_value());
  EXPECT_TRUE(std::isfinite(during->fear_probability));
  EXPECT_TRUE(during->degraded);
  EXPECT_EQ(during->quality.gsr.filled, n_gsr);

  // Next window: the link is back. The *new* window is clean even though
  // the rolling map still contains the dark window.
  det.push_bvp(std::span<const double>(more.bvp.data() + n_bvp, n_bvp));
  det.push_gsr(std::span<const double>(more.gsr.data() + n_gsr, n_gsr));
  det.push_skt(std::span<const double>(more.skt.data() + n_skt, n_skt));
  const auto after = det.poll();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->quality.gsr.filled, n_gsr);  // Map still spans the gap.
  EXPECT_EQ(det.health().gsr.filled, n_gsr);    // But no new repairs.
}

TEST(StreamingQuality, SanitizedStreamMatchesPreSanitizedStream) {
  // Feeding a faulty stream must equal feeding the stream the detector's
  // own sanitizer would have produced — repairs happen at ingest, once.
  auto& f = fixture();
  const StreamingConfig sc = f.streaming();
  const double warmup_s =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  auto faulty = f.make_trial(wemac::Emotion::kFear, warmup_s + 1.0, 18);
  for (std::size_t i = 200; i < 230; ++i) faulty.bvp[i] = std::nan("");
  std::vector<double> repaired = faulty.bvp;
  fault::sanitize(repaired, fault::GapFill::kHoldLast,
                  -std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity());

  StreamingDetector a(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                      sc);
  a.push_bvp(faulty.bvp);
  a.push_gsr(faulty.gsr);
  a.push_skt(faulty.skt);
  StreamingDetector b(f.pipeline.cluster_model(0), f.pipeline.normalizer(),
                      sc);
  b.push_bvp(repaired);
  b.push_gsr(faulty.gsr);
  b.push_skt(faulty.skt);
  const auto da = a.poll();
  const auto db = b.poll();
  ASSERT_TRUE(da.has_value());
  ASSERT_TRUE(db.has_value());
  EXPECT_DOUBLE_EQ(da->fear_probability, db->fear_probability);
  // Only the quality report knows the difference.
  EXPECT_EQ(da->quality.bvp.filled, 30u);
  EXPECT_EQ(db->quality.bvp.filled, 0u);
}

TEST(StreamingQuality, LimitValidation) {
  auto& f = fixture();
  StreamingConfig bad = f.streaming();
  bad.gsr_limits = {5.0, -5.0};  // lo > hi.
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), bad),
               Error);
  bad = f.streaming();
  bad.degraded_threshold = 1.5;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), bad),
               Error);
}

TEST(Streaming, ConfigValidation) {
  auto& f = fixture();
  StreamingConfig bad = f.streaming();
  bad.window_seconds = 0.0;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), bad),
               Error);
  bad = f.streaming();
  bad.map_windows = 2;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0),
                                 f.pipeline.normalizer(), bad),
               Error);
  features::FeatureNormalizer unfitted;
  EXPECT_THROW(StreamingDetector(f.pipeline.cluster_model(0), unfitted,
                                 f.streaming()),
               Error);
}

}  // namespace
}  // namespace clear::core
