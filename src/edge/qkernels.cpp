#include "edge/qkernels.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace clear::edge {

void int8_gemm(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
               std::size_t m, std::size_t k, std::size_t n,
               std::span<std::int32_t> c) {
  CLEAR_CHECK_MSG(a.size() == m * k && b.size() == k * n && c.size() == m * n,
                  "int8_gemm size mismatch");
  // One branch on the disabled path — bench_kernels pins this at <1%.
  CLEAR_OBS_COUNT("edge.int8_gemm.calls", 1);
  CLEAR_OBS_COUNT("edge.int8_gemm.macs", m * k * n);
  // Integer accumulation is exact, so every kernel ISA returns the same
  // int32 matrix — dispatch only changes wall-clock time.
  kernels::active().gemm_i8(a.data(), b.data(), c.data(), m, k, n);
}

void dequantize_accum(std::span<const std::int32_t> acc, float scale_a,
                      float scale_b, std::span<float> out) {
  CLEAR_CHECK_MSG(acc.size() == out.size(), "dequantize size mismatch");
  kernels::active().dequantize_i32(acc.data(), scale_a * scale_b, out.data(),
                                   out.size());
}

QuantizedDense::QuantizedDense(const Tensor& weight, const Tensor& bias) {
  CLEAR_CHECK_MSG(weight.rank() == 2 && bias.rank() == 1 &&
                      bias.extent(0) == weight.extent(1),
                  "QuantizedDense expects weight [in, out] and bias [out]");
  in_ = weight.extent(0);
  out_ = weight.extent(1);
  w_params_ = calibrate_max_abs(weight.flat());
  weight_q_ = quantize_tensor(weight, w_params_);
  bias_.assign(bias.data(), bias.data() + bias.numel());
}

Tensor QuantizedDense::forward(const Tensor& x,
                               const QuantParams& act_params) const {
  CLEAR_CHECK_MSG(x.rank() == 2 && x.extent(1) == in_,
                  "QuantizedDense input shape mismatch");
  const std::size_t n = x.extent(0);
  const std::vector<std::int8_t> xq = quantize_tensor(x, act_params);
  std::vector<std::int32_t> acc(n * out_);
  int8_gemm(xq, weight_q_, n, in_, out_, acc);
  Tensor y({n, out_});
  dequantize_accum(acc, act_params.scale, w_params_.scale, y.flat());
  kernels::active().bias_rows_f32(y.data(), bias_.data(), n, out_);
  return y;
}

QuantizedConv2d::QuantizedConv2d(const Tensor& weight, const Tensor& bias,
                                 std::size_t in_channels, std::size_t kh,
                                 std::size_t kw, std::size_t stride,
                                 std::size_t pad)
    : in_ch_(in_channels),
      out_ch_(weight.rank() == 2 ? weight.extent(0) : 0),
      kh_(kh),
      kw_(kw),
      stride_(stride),
      pad_(pad) {
  CLEAR_CHECK_MSG(weight.rank() == 2 &&
                      weight.extent(1) == in_channels * kh * kw,
                  "QuantizedConv2d expects weight [out_ch, in_ch*kh*kw]");
  CLEAR_CHECK_MSG(bias.rank() == 1 && bias.extent(0) == out_ch_,
                  "QuantizedConv2d bias shape mismatch");
  CLEAR_CHECK_MSG(stride_ >= 1 && kh_ >= 1 && kw_ >= 1, "bad conv geometry");
  w_params_ = calibrate_max_abs(weight.flat());
  weight_q_ = quantize_tensor(weight, w_params_);
  bias_.assign(bias.data(), bias.data() + bias.numel());
}

Tensor QuantizedConv2d::forward(const Tensor& x,
                                const QuantParams& act_params) const {
  CLEAR_CHECK_MSG(x.rank() == 4 && x.extent(1) == in_ch_,
                  "QuantizedConv2d input shape mismatch");
  const std::size_t n = x.extent(0);
  const std::size_t h = x.extent(2);
  const std::size_t w = x.extent(3);
  const std::size_t oh = ops::conv_out_extent(h, kh_, stride_, pad_);
  const std::size_t ow = ops::conv_out_extent(w, kw_, stride_, pad_);
  const std::size_t cols_rows = in_ch_ * kh_ * kw_;
  Tensor y({n, out_ch_, oh, ow});
  for (std::size_t b = 0; b < n; ++b) {
    Tensor image({in_ch_, h, w});
    const float* src = x.data() + b * in_ch_ * h * w;
    std::copy(src, src + in_ch_ * h * w, image.data());
    const Tensor cols = ops::im2col(image, kh_, kw_, stride_, pad_);
    // Quantize the patch matrix with the activation scale; the zero padding
    // quantizes to exactly 0, matching the float path.
    const std::vector<std::int8_t> cols_q = quantize_tensor(cols, act_params);
    std::vector<std::int32_t> acc(out_ch_ * oh * ow);
    int8_gemm(weight_q_, cols_q, out_ch_, cols_rows, oh * ow, acc);
    float* dst = y.data() + b * out_ch_ * oh * ow;
    dequantize_accum(acc, w_params_.scale, act_params.scale,
                     std::span<float>(dst, out_ch_ * oh * ow));
    for (std::size_t oc = 0; oc < out_ch_; ++oc)
      kernels::active().add_scalar_f32(dst + oc * oh * ow, bias_[oc], oh * ow);
  }
  return y;
}

}  // namespace clear::edge
