// Property tests for the CLRART01 artifact container and the delta
// checkpoint codec: byte-identical reconstruction for every unfrozen-layer
// shape and serving tier, addressed rejection of damaged containers, and
// legacy compatibility.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "artifact/store.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "edge/quantize.hpp"
#include "nn/checkpoint.hpp"
#include "nn/model.hpp"
#include "nn/sequential.hpp"
#include "serve/delta.hpp"

namespace clear {
namespace {

using serve::delta::BaseRef;
using serve::delta::EncodeStats;

nn::CnnLstmConfig small_config() {
  nn::CnnLstmConfig config;
  config.feature_dim = 20;
  config.window_count = 4;
  config.conv1_channels = 3;
  config.conv2_channels = 4;
  config.lstm_hidden = 8;
  return config;
}

std::unique_ptr<nn::Sequential> make_model(std::uint64_t seed) {
  Rng rng(seed);
  auto model = nn::build_cnn_lstm(small_config(), rng);
  model->freeze_below(nn::fine_tune_boundary());
  return model;
}

std::string blob_of(nn::Sequential& model,
                    nn::CheckpointFormat format = nn::CheckpointFormat::kCrcV2) {
  std::ostringstream os(std::ios::binary);
  nn::save_checkpoint(os, model, format);
  return os.str();
}

/// Nudge every unfrozen weight by a small relative step — the shape of an
/// fp32 fine-tune (nearly every weight changes, each by a few ULPs).
void perturb_unfrozen_fp32(nn::Sequential& model, std::uint64_t seed) {
  Rng rng(seed);
  for (nn::Param* p : model.parameters()) {
    if (p->frozen) continue;
    for (float& v : p->value.flat())
      v += v * static_cast<float>(rng.uniform(-3e-3, 3e-3)) +
           static_cast<float>(rng.normal(0.0, 1e-7));
  }
}

/// Project every parameter through the fp16 grid (the NCS2 serving tier
/// stores fp16-representable values in the personal checkpoint).
void project_fp16(nn::Sequential& model) {
  for (nn::Param* p : model.parameters())
    for (float& v : p->value.flat()) v = edge::round_fp16(v);
}

/// Project every parameter onto its own symmetric int8 grid (the Edge-TPU
/// serving tier: values are exactly scale * q after fake quantization).
void project_int8(nn::Sequential& model) {
  for (nn::Param* p : model.parameters()) {
    const edge::QuantParams qp = edge::calibrate_max_abs(p->value.flat());
    for (float& v : p->value.flat())
      v = edge::dequantize_value(edge::quantize_value(v, qp), qp);
  }
}

// ---------------------------------------------------------------------------
// Artifact container
// ---------------------------------------------------------------------------

TEST(ArtifactStore, RoundTripsBlocksWithAlignment) {
  artifact::Writer writer;
  writer.add_block("alpha", "hello");
  writer.add_block("beta", std::string(1, '\0') + "binary\xff");
  writer.add_block("gamma", "");
  const std::string bytes = writer.finish();

  ASSERT_TRUE(artifact::Reader::is_artifact(bytes));
  const artifact::Reader reader(bytes);
  ASSERT_EQ(reader.block_count(), 3u);
  EXPECT_EQ(reader.block("alpha"), "hello");
  EXPECT_EQ(reader.block(1), std::string(1, '\0') + "binary\xff");
  EXPECT_EQ(reader.block("gamma"), "");
  EXPECT_EQ(reader.info(0).name, "alpha");
  EXPECT_EQ(reader.info(1).offset % 8, 0u) << "blocks must be 8-byte aligned";
  EXPECT_EQ(reader.find("delta"), nullptr);
  EXPECT_THROW(reader.block("delta"), Error);
}

TEST(ArtifactStore, RejectsBitFlipsWithAddressedErrors) {
  artifact::Writer writer;
  writer.add_block("payload", std::string(300, 'x'));
  const std::string good = writer.finish();
  const artifact::Reader good_reader(good);
  const std::size_t block_off =
      static_cast<std::size_t>(good_reader.info(0).offset);

  std::string bad = good;
  bad[block_off + 7] ^= 0x40;  // inside block 0
  const artifact::Reader reader(bad);  // index still intact
  try {
    (void)reader.block(0);
    FAIL() << "corrupt block accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("payload"), std::string::npos) << msg;
    EXPECT_NE(msg.find("CRC mismatch"), std::string::npos) << msg;
  }
}

TEST(ArtifactStore, RejectsTruncation) {
  artifact::Writer writer;
  writer.add_block("payload", std::string(100, 'y'));
  const std::string good = writer.finish();
  for (const std::size_t keep :
       {good.size() - 1, good.size() - 20, std::size_t{40}, std::size_t{0}}) {
    EXPECT_THROW(artifact::Reader r(good.substr(0, keep)), Error)
        << "accepted truncation to " << keep << " bytes";
  }
}

TEST(ArtifactStore, FuzzNeverCrashes) {
  artifact::Writer writer;
  writer.add_block("a", std::string(64, 'a'));
  writer.add_block("b", std::string(17, 'b'));
  const std::string good = writer.finish();
  Rng rng(0xA27Full);
  for (int iter = 0; iter < 400; ++iter) {
    std::string bytes = good;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int m = 0; m < mutations; ++m)
      bytes[rng.uniform_index(bytes.size())] ^=
          static_cast<char>(1u << rng.uniform_index(8));
    try {
      const artifact::Reader reader(bytes);
      for (std::size_t i = 0; i < reader.block_count(); ++i)
        (void)reader.block(i);
    } catch (const Error&) {
      // Rejection is the expected outcome; crashing or UB is the bug.
    }
  }
  // Pure garbage, arbitrary lengths.
  for (int iter = 0; iter < 400; ++iter) {
    std::string bytes(rng.uniform_index(200), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_u64());
    try {
      const artifact::Reader reader(bytes);
      for (std::size_t i = 0; i < reader.block_count(); ++i)
        (void)reader.block(i);
    } catch (const Error&) {
    }
  }
}

// ---------------------------------------------------------------------------
// Delta codec: bit-identical round-trips
// ---------------------------------------------------------------------------

TEST(DeltaCodec, RoundTripsFp32FineTune) {
  auto base = make_model(11);
  auto ft = make_model(11);
  perturb_unfrozen_fp32(*ft, 99);
  const std::string base_blob = blob_of(*base);
  const std::string ft_blob = blob_of(*ft);

  EncodeStats stats;
  const auto delta =
      serve::delta::encode(base_blob, BaseRef{BaseRef::Kind::kCluster, 3},
                           ft_blob, &stats);
  ASSERT_TRUE(delta.has_value());
  EXPECT_LT(delta->size(), ft_blob.size());
  EXPECT_GT(stats.same, 0u) << "frozen conv tensors should encode as kSame";
  EXPECT_GT(stats.ulp, 0u) << "small fp32 steps should pick kUlpDelta";
  EXPECT_TRUE(serve::delta::is_delta(*delta));
  EXPECT_FALSE(serve::delta::is_delta(ft_blob));

  const BaseRef ref = serve::delta::base_of(*delta);
  EXPECT_EQ(ref.kind, BaseRef::Kind::kCluster);
  EXPECT_EQ(ref.id, 3u);

  EXPECT_EQ(serve::delta::decode(*delta, base_blob), ft_blob);
}

TEST(DeltaCodec, RoundTripsFp16Tier) {
  auto base = make_model(21);
  auto ft = make_model(21);
  perturb_unfrozen_fp32(*ft, 7);
  project_fp16(*ft);
  const std::string base_blob = blob_of(*base);
  const std::string ft_blob = blob_of(*ft);

  EncodeStats stats;
  const auto delta = serve::delta::encode(
      base_blob, BaseRef{BaseRef::Kind::kGeneral, 0}, ft_blob, &stats);
  ASSERT_TRUE(delta.has_value());
  EXPECT_GT(stats.half, 0u) << "fp16-projected tensors should pick kHalf";
  EXPECT_LT(delta->size() * 2, ft_blob.size())
      << "fp16 tier should compress at least 2x";
  EXPECT_EQ(serve::delta::decode(*delta, base_blob), ft_blob);
}

TEST(DeltaCodec, RoundTripsInt8Tier) {
  auto base = make_model(31);
  auto ft = make_model(31);
  perturb_unfrozen_fp32(*ft, 8);
  project_int8(*ft);
  const std::string base_blob = blob_of(*base);
  const std::string ft_blob = blob_of(*ft);

  EncodeStats stats;
  const auto delta = serve::delta::encode(
      base_blob, BaseRef{BaseRef::Kind::kCluster, 0}, ft_blob, &stats);
  ASSERT_TRUE(delta.has_value());
  EXPECT_GT(stats.grid8, 0u) << "int8-projected tensors should pick kGrid8";
  EXPECT_LT(delta->size() * 3, ft_blob.size())
      << "int8 tier should compress at least 3x";
  EXPECT_EQ(serve::delta::decode(*delta, base_blob), ft_blob);
}

TEST(DeltaCodec, RoundTripsEveryUnfrozenTensorShape) {
  // Perturb one unfrozen tensor at a time: every parameter shape in the
  // fine-tunable head must reconstruct bit-identically on its own.
  auto base = make_model(41);
  const std::string base_blob = blob_of(*base);
  const std::vector<nn::Param*> params = base->parameters();
  std::size_t unfrozen = 0;
  for (std::size_t target = 0; target < params.size(); ++target) {
    if (params[target]->frozen) continue;
    ++unfrozen;
    auto ft = make_model(41);
    nn::Param* p = ft->parameters()[target];
    Rng rng(1000 + target);
    for (float& v : p->value.flat())
      v += static_cast<float>(rng.normal(0.0, 1e-4));
    const std::string ft_blob = blob_of(*ft);
    const auto delta = serve::delta::encode(
        base_blob, BaseRef{BaseRef::Kind::kCluster, 0}, ft_blob, nullptr);
    ASSERT_TRUE(delta.has_value()) << "param " << target;
    EXPECT_EQ(serve::delta::decode(*delta, base_blob), ft_blob)
        << "param " << target << " (" << p->name << ")";
  }
  EXPECT_GT(unfrozen, 0u);
}

// ---------------------------------------------------------------------------
// Delta codec: fallbacks and legacy compatibility
// ---------------------------------------------------------------------------

TEST(DeltaCodec, FallsBackOnMismatchedArchitectures) {
  auto base = make_model(51);
  Rng rng(52);
  nn::CnnLstmConfig other = small_config();
  other.lstm_hidden = 16;
  auto ft = nn::build_cnn_lstm(other, rng);
  EXPECT_FALSE(serve::delta::encode(blob_of(*base),
                                    BaseRef{BaseRef::Kind::kCluster, 0},
                                    blob_of(*ft), nullptr)
                   .has_value());
}

TEST(DeltaCodec, FallsBackOnLegacyV1Input) {
  // A v1 fine-tune blob cannot be reconstructed byte-identically from a v2
  // re-serialization, so the encoder must decline rather than mangle it.
  auto base = make_model(61);
  auto ft = make_model(61);
  perturb_unfrozen_fp32(*ft, 62);
  const auto delta = serve::delta::encode(
      blob_of(*base), BaseRef{BaseRef::Kind::kCluster, 0},
      blob_of(*ft, nn::CheckpointFormat::kLegacyV1), nullptr);
  EXPECT_FALSE(delta.has_value());
}

TEST(DeltaCodec, LegacyBlobsAreNotDeltas) {
  auto model = make_model(71);
  EXPECT_FALSE(serve::delta::is_delta(blob_of(*model)));
  EXPECT_FALSE(serve::delta::is_delta(
      blob_of(*model, nn::CheckpointFormat::kLegacyV1)));
  EXPECT_FALSE(serve::delta::is_delta(""));
}

TEST(DeltaCodec, RejectsWrongBaseWithAddressedError) {
  auto base = make_model(81);
  auto ft = make_model(81);
  perturb_unfrozen_fp32(*ft, 82);
  const std::string base_blob = blob_of(*base);
  const std::string ft_blob = blob_of(*ft);
  const auto delta = serve::delta::encode(
      base_blob, BaseRef{BaseRef::Kind::kCluster, 5}, ft_blob, nullptr);
  ASSERT_TRUE(delta.has_value());

  auto drifted = make_model(83);  // different weights: CRC cannot match
  try {
    (void)serve::delta::decode(*delta, blob_of(*drifted));
    FAIL() << "drifted base accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("delta base mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cluster 5"), std::string::npos) << msg;
  }
}

TEST(DeltaCodec, RejectsCorruptionOrReconstructsExactly) {
  auto base = make_model(91);
  auto ft = make_model(91);
  perturb_unfrozen_fp32(*ft, 92);
  const std::string base_blob = blob_of(*base);
  const std::string ft_blob = blob_of(*ft);
  const auto delta = serve::delta::encode(
      base_blob, BaseRef{BaseRef::Kind::kCluster, 0}, ft_blob, nullptr);
  ASSERT_TRUE(delta.has_value());

  // Truncations are always rejected.
  for (const std::size_t keep : {delta->size() - 1, delta->size() / 2}) {
    EXPECT_THROW((void)serve::delta::decode(delta->substr(0, keep), base_blob),
                 Error);
  }

  // Random bit flips: every outcome must be either an addressed rejection
  // or (when the flip lands in alignment padding) the exact original blob.
  Rng rng(0xDE17Aull);
  int rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string bytes = *delta;
    bytes[rng.uniform_index(bytes.size())] ^=
        static_cast<char>(1u << rng.uniform_index(8));
    try {
      EXPECT_EQ(serve::delta::decode(bytes, base_blob), ft_blob);
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace clear
