// Raw physiological signal synthesis for the synthetic WEMAC substrate.
//
// Given a volunteer profile (sampled from an archetype) and a stimulus, this
// renders the three wearable channels as continuous time series:
//   BVP — a beat-by-beat pulse train. Beat times integrate an instantaneous
//         heart rate that tracks arousal; each inter-beat interval is
//         modulated by LF (~0.1 Hz baroreflex) and HF (respiratory) rhythms
//         whose depth the fear response suppresses or enhances. Each beat is
//         rendered as a systolic wave plus dicrotic notch; amplitude carries
//         respiratory modulation and fear-driven vasoconstriction.
//   GSR — tonic level with drift plus phasic skin-conductance responses:
//         Poisson-arriving SCR events with exponential rise/decay kernels,
//         whose rate and amplitude track arousal and fear.
//   SKT — slow thermal dynamics: first-order drift toward a fear-dependent
//         setpoint plus a small random walk.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "features/feature_map.hpp"
#include "wemac/archetype.hpp"
#include "wemac/stimulus.hpp"

namespace clear::wemac {

/// Per-user physiological parameters, sampled once per volunteer from an
/// archetype. Field meanings mirror ArchetypeParams.
struct VolunteerProfile {
  std::size_t volunteer_id = 0;
  std::size_t archetype_id = 0;  ///< Ground truth; never shown to algorithms.

  double hr_base = 72.0;
  double hr_fear_delta = 10.0;
  double hr_arousal_delta = 6.0;
  double hrv_sd = 0.045;
  double hrv_fear_scale = 0.7;
  double resp_rate = 0.25;
  double bvp_amp = 1.0;
  double bvp_amp_fear_scale = 0.85;
  double scr_rate_base = 3.0;
  double scr_rate_fear = 9.0;
  double scr_amp = 0.35;
  double scr_amp_fear_scale = 1.6;
  double gsr_tonic = 6.0;
  double gsr_fear_slope = 0.02;
  double skt_base = 33.5;
  double skt_fear_drop = 0.5;
  double bvp_noise = 0.06;
  double gsr_noise = 0.03;
  double skt_noise = 0.01;

  /// Per-user channel response gains (idiosyncratic expression strength of
  /// the stimulus response in each modality; 1 = archetype-typical).
  double cardiac_gain = 1.0;
  double gsr_gain = 1.0;
  double skt_gain = 1.0;
};

/// Sample a volunteer from an archetype (applies the archetype's relative
/// jitter to every physiological parameter, with floors keeping the result
/// physically plausible).
VolunteerProfile sample_profile(const ArchetypeParams& archetype,
                                std::size_t volunteer_id,
                                std::size_t archetype_id, Rng& rng);

/// Linear interpolation between two volunteer profiles: alpha = 0 returns
/// `from`, 1 returns `to` (ids stay `from`'s — the morph models one person's
/// physiology shifting, not a change of identity). Drift experiments use
/// this to move a volunteer's distribution toward another archetype's.
VolunteerProfile morph_profile(const VolunteerProfile& from,
                               const VolunteerProfile& to, double alpha);

/// Sample rates of the three channels.
struct SignalRates {
  double bvp_hz = 64.0;
  double gsr_hz = 8.0;
  double skt_hz = 4.0;
};

/// Continuous signals for one full trial.
struct TrialSignals {
  std::vector<double> bvp;
  std::vector<double> gsr;
  std::vector<double> skt;
  SignalRates rates;
};

/// Render one trial of the given stimulus for a volunteer.
TrialSignals synthesize_trial(const VolunteerProfile& profile,
                              const Stimulus& stimulus,
                              const SignalRates& rates, Rng& rng);

/// Slice a trial into consecutive analysis windows of `window_seconds`.
/// Trailing samples that do not fill a whole window are dropped.
std::vector<features::PhysioWindow> slice_windows(const TrialSignals& trial,
                                                  double window_seconds);

}  // namespace clear::wemac
