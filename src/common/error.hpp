// Error handling primitives shared by every clear_* library.
//
// The libraries throw `clear::Error` (derived from std::runtime_error) for
// all recoverable failure conditions: malformed input, shape mismatches,
// invalid configuration. Programming errors (violated preconditions that
// indicate a bug in the caller) use the same type so that tests can assert
// on them uniformly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace clear {

/// Exception type thrown by all clear_* libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace clear

/// CLEAR_CHECK(cond) / CLEAR_CHECK_MSG(cond, msg): throw clear::Error when
/// `cond` is false. Active in all build types — these guard library
/// invariants, not hot inner loops.
#define CLEAR_CHECK(cond)                                             \
  do {                                                                \
    if (!(cond)) ::clear::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CLEAR_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream os_;                                        \
      os_ << msg;                                                    \
      ::clear::detail::fail(#cond, __FILE__, __LINE__, os_.str());   \
    }                                                                \
  } while (0)
