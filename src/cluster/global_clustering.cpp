#include "cluster/global_clustering.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/obs.hpp"

namespace clear::cluster {

Point user_representation(const std::vector<Point>& observations) {
  CLEAR_CHECK_MSG(!observations.empty(), "user has no observations");
  std::vector<const Point*> ptrs;
  ptrs.reserve(observations.size());
  for (const Point& p : observations) ptrs.push_back(&p);
  return mean_point(ptrs);
}

namespace {

/// Mean of a random subset (at least one element) of a user's observations.
Point subsampled_representation(const std::vector<Point>& observations,
                                double fraction, Rng& rng) {
  const std::size_t n = observations.size();
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5));
  if (keep >= n) return user_representation(observations);
  const std::vector<std::size_t> perm = rng.permutation(n);
  std::vector<const Point*> ptrs;
  ptrs.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) ptrs.push_back(&observations[perm[i]]);
  return mean_point(ptrs);
}

/// Centroids of the current assignment over the given user points. Empty
/// clusters inherit their previous centroid.
void recompute_centroids(const std::vector<Point>& user_points,
                         const std::vector<std::size_t>& assignment,
                         std::vector<Point>& centroids) {
  const std::size_t k = centroids.size();
  std::vector<std::vector<const Point*>> members(k);
  for (std::size_t u = 0; u < user_points.size(); ++u)
    members[assignment[u]].push_back(&user_points[u]);
  for (std::size_t c = 0; c < k; ++c)
    if (!members[c].empty()) centroids[c] = mean_point(members[c]);
}

}  // namespace

GlobalClusteringResult global_clustering(
    const std::vector<std::vector<Point>>& user_observations,
    const GlobalClusteringConfig& config, Rng& rng) {
  CLEAR_OBS_SPAN("cluster");
  const std::size_t n_users = user_observations.size();
  CLEAR_OBS_COUNT("cluster.fits", 1);
  CLEAR_OBS_COUNT("cluster.users", n_users);
  CLEAR_CHECK_MSG(n_users >= config.k,
                  "need at least k users (" << n_users << " < " << config.k
                                            << ")");
  CLEAR_CHECK_MSG(config.subsample_fraction > 0.0 &&
                      config.subsample_fraction <= 1.0,
                  "subsample_fraction must lie in (0, 1]");

  // Full-data user representations and the initial k-means partition.
  std::vector<Point> full_points(n_users);
  for (std::size_t u = 0; u < n_users; ++u)
    full_points[u] = user_representation(user_observations[u]);
  const KMeansResult init = kmeans(full_points, config.k, rng, config.kmeans);

  GlobalClusteringResult result;
  result.user_cluster = init.assignment;
  std::vector<Point> centroids = init.centroids;

  // Iterative refinement (paper: "training subsets of data are repeatedly
  // sampled, and the centroids are recalculated; users are reassigned if
  // their current cluster is no longer the closest").
  for (std::size_t round = 0; round < config.refinement_rounds; ++round) {
    result.rounds_run = round + 1;
    std::vector<Point> round_points(n_users);
    for (std::size_t u = 0; u < n_users; ++u)
      round_points[u] = subsampled_representation(
          user_observations[u], config.subsample_fraction, rng);
    recompute_centroids(round_points, result.user_cluster, centroids);
    bool changed = false;
    for (std::size_t u = 0; u < n_users; ++u) {
      // Reassignment is decided on the stable full-data representation so a
      // single unlucky subsample cannot evict a well-placed user.
      const std::size_t best = nearest_centroid(full_points[u], centroids);
      if (best != result.user_cluster[u]) {
        result.user_cluster[u] = best;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  CLEAR_OBS_COUNT("cluster.refinement_rounds", result.rounds_run);

  // Final centroids over full representations.
  recompute_centroids(full_points, result.user_cluster, centroids);

  // Build cluster models with internal sub-cluster centroids over the pooled
  // member observations.
  result.clusters.resize(config.k);
  for (std::size_t c = 0; c < config.k; ++c) {
    ClusterModel& model = result.clusters[c];
    model.centroid = centroids[c];
    for (std::size_t u = 0; u < n_users; ++u)
      if (result.user_cluster[u] == c) model.members.push_back(u);
    std::vector<Point> pooled;
    for (const std::size_t u : model.members)
      pooled.insert(pooled.end(), user_observations[u].begin(),
                    user_observations[u].end());
    if (pooled.empty()) {
      model.sub_centroids = {model.centroid};
      continue;
    }
    const std::size_t ik = std::min(config.sub_clusters, pooled.size());
    if (ik <= 1) {
      model.sub_centroids = {user_representation(pooled)};
    } else {
      KMeansOptions sub_opts = config.kmeans;
      sub_opts.restarts = std::max<std::size_t>(2, config.kmeans.restarts / 2);
      const KMeansResult sub = kmeans(pooled, ik, rng, sub_opts);
      model.sub_centroids = sub.centroids;
    }
  }
  return result;
}

}  // namespace clear::cluster
