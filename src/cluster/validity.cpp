#include "cluster/validity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace clear::cluster {

double silhouette(const std::vector<Point>& points,
                  const std::vector<std::size_t>& assignment, std::size_t k) {
  CLEAR_CHECK_MSG(points.size() == assignment.size(),
                  "assignment size mismatch");
  CLEAR_CHECK_MSG(k >= 2, "silhouette requires k >= 2");
  const std::size_t n = points.size();
  std::vector<std::size_t> counts(k, 0);
  for (const std::size_t a : assignment) {
    CLEAR_CHECK_MSG(a < k, "assignment id out of range");
    ++counts[a];
  }
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ci = assignment[i];
    if (counts[ci] <= 1) continue;  // Singleton contributes 0.
    // Mean distance to own cluster (a) and nearest other cluster (b).
    std::vector<double> sums(k, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[assignment[j]] += distance(points[i], points[j]);
    }
    const double a =
        sums[ci] / static_cast<double>(counts[ci] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == ci || counts[c] == 0) continue;
      b = std::min(b, sums[c] / static_cast<double>(counts[c]));
    }
    if (b == std::numeric_limits<double>::max()) continue;
    const double denom = std::max(a, b);
    if (denom > 1e-12) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

double davies_bouldin(const std::vector<Point>& points,
                      const std::vector<std::size_t>& assignment,
                      std::size_t k) {
  CLEAR_CHECK_MSG(points.size() == assignment.size(),
                  "assignment size mismatch");
  CLEAR_CHECK_MSG(k >= 2, "davies_bouldin requires k >= 2");
  // Centroids and intra-cluster scatter.
  std::vector<std::vector<const Point*>> members(k);
  for (std::size_t i = 0; i < points.size(); ++i)
    members[assignment[i]].push_back(&points[i]);
  std::vector<Point> centroids(k);
  std::vector<double> scatter(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    if (members[c].empty()) return 1e12;
    centroids[c] = mean_point(members[c]);
    for (const Point* p : members[c]) scatter[c] += distance(*p, centroids[c]);
    scatter[c] /= static_cast<double>(members[c].size());
  }
  double db = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double sep = distance(centroids[i], centroids[j]);
      if (sep < 1e-12) return 1e12;
      worst = std::max(worst, (scatter[i] + scatter[j]) / sep);
    }
    db += worst;
  }
  return db / static_cast<double>(k);
}

double within_cluster_sse(const std::vector<Point>& points,
                          const std::vector<std::size_t>& assignment,
                          const std::vector<Point>& centroids) {
  CLEAR_CHECK_MSG(points.size() == assignment.size(),
                  "assignment size mismatch");
  double sse = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    CLEAR_CHECK_MSG(assignment[i] < centroids.size(),
                    "assignment id out of range");
    sse += squared_distance(points[i], centroids[assignment[i]]);
  }
  return sse;
}

KSelection select_k(const std::vector<Point>& points, std::size_t k_min,
                    std::size_t k_max, Rng& rng,
                    const KMeansOptions& options) {
  CLEAR_CHECK_MSG(k_min >= 2, "select_k requires k_min >= 2");
  CLEAR_CHECK_MSG(k_max >= k_min, "select_k requires k_max >= k_min");
  CLEAR_CHECK_MSG(points.size() > k_max, "need more points than k_max");
  KSelection sel;
  double best_sil = -2.0;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    const KMeansResult r = kmeans(points, k, rng, options);
    const double sil = silhouette(points, r.assignment, k);
    sel.silhouettes.push_back(sil);
    sel.inertias.push_back(r.inertia);
    if (sil > best_sil) {
      best_sil = sil;
      sel.best_k = k;
    }
  }
  return sel;
}

}  // namespace clear::cluster
