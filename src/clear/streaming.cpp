#include "clear/streaming.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace clear::core {

StreamingDetector::StreamingDetector(nn::Sequential& model,
                                     features::FeatureNormalizer normalizer,
                                     const StreamingConfig& config)
    : model_(model), normalizer_(std::move(normalizer)), config_(config) {
  CLEAR_CHECK_MSG(config.window_seconds > 0, "window_seconds must be positive");
  CLEAR_CHECK_MSG(config.map_windows >= 4,
                  "need at least 4 windows per map (two 2x2 poolings)");
  CLEAR_CHECK_MSG(normalizer_.fitted(), "normalizer must be fitted");
  bvp_per_window_ =
      static_cast<std::size_t>(config.window_seconds * config.bvp_hz);
  gsr_per_window_ =
      static_cast<std::size_t>(config.window_seconds * config.gsr_hz);
  skt_per_window_ =
      static_cast<std::size_t>(config.window_seconds * config.skt_hz);
  CLEAR_CHECK_MSG(bvp_per_window_ >= 64 && gsr_per_window_ >= 8 &&
                      skt_per_window_ >= 2,
                  "window too short for the configured sample rates");
}

void StreamingDetector::push_bvp(std::span<const double> samples) {
  bvp_.insert(bvp_.end(), samples.begin(), samples.end());
}
void StreamingDetector::push_gsr(std::span<const double> samples) {
  gsr_.insert(gsr_.end(), samples.begin(), samples.end());
}
void StreamingDetector::push_skt(std::span<const double> samples) {
  skt_.insert(skt_.end(), samples.begin(), samples.end());
}

bool StreamingDetector::window_ready() const {
  return bvp_.size() >= bvp_per_window_ && gsr_.size() >= gsr_per_window_ &&
         skt_.size() >= skt_per_window_;
}

void StreamingDetector::extract_one_window() {
  features::PhysioWindow window;
  window.bvp_rate = config_.bvp_hz;
  window.gsr_rate = config_.gsr_hz;
  window.skt_rate = config_.skt_hz;
  window.bvp.assign(bvp_.begin(),
                    bvp_.begin() + static_cast<std::ptrdiff_t>(bvp_per_window_));
  window.gsr.assign(gsr_.begin(),
                    gsr_.begin() + static_cast<std::ptrdiff_t>(gsr_per_window_));
  window.skt.assign(skt_.begin(),
                    skt_.begin() + static_cast<std::ptrdiff_t>(skt_per_window_));
  bvp_.erase(bvp_.begin(),
             bvp_.begin() + static_cast<std::ptrdiff_t>(bvp_per_window_));
  gsr_.erase(gsr_.begin(),
             gsr_.begin() + static_cast<std::ptrdiff_t>(gsr_per_window_));
  skt_.erase(skt_.begin(),
             skt_.begin() + static_cast<std::ptrdiff_t>(skt_per_window_));

  std::vector<double> column = features::extract_window_features(window);
  normalizer_.apply(column);
  columns_.push_back(std::move(column));
  while (columns_.size() > config_.map_windows) columns_.pop_front();
  ++windows_seen_;
  pending_detection_ = true;
}

std::optional<Detection> StreamingDetector::poll() {
  while (window_ready()) extract_one_window();
  if (!pending_detection_ || !warmed_up()) return std::nullopt;
  pending_detection_ = false;

  // Assemble the rolling map [F, W] (oldest column first).
  const std::size_t f = columns_.front().size();
  const std::size_t w = config_.map_windows;
  Tensor batch({1, 1, f, w});
  for (std::size_t c = 0; c < w; ++c)
    for (std::size_t r = 0; r < f; ++r)
      batch.at4(0, 0, r, c) = static_cast<float>(columns_[c][r]);

  model_.set_training(false);
  const Tensor logits = model_.forward(batch);
  const Tensor proba = ops::softmax_rows(logits.reshaped(
      {1, logits.numel()}));
  Detection d;
  d.fear_probability = proba.at2(0, 1);
  d.window_index = windows_seen_ - 1;
  return d;
}

}  // namespace clear::core
