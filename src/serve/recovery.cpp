// Crash recovery by deterministic replay (see recovery.hpp).
//
// Invariants this file leans on:
//   * The journal records *outcomes* (the CA verdict, the checkpoint the
//     fine-tune produced), so replay touches no cluster math and no
//     training — it re-applies each mutation with the same Session calls
//     the live path used, in the same order, which is what makes the
//     restored table bit-identical.
//   * Records at or below the snapshot's sequence number are already folded
//     into it (they only exist when a crash landed between snapshot commit
//     and log truncation) and are skipped silently.
//   * Failures quarantine the session a record names, never the process.
//     A session whose only damage is its personal checkpoint is demoted to
//     ASSIGNED instead of erased — its history survives, its engine is
//     rebuilt from the cluster model on the next fine-tune or lost for
//     good, but it never silently serves wrong weights.
#include "serve/recovery.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "serve/server.hpp"

namespace clear::serve {

std::string RecoveryReport::str() const {
  std::ostringstream os;
  os << "recovery: snapshot "
     << (snapshot_corrupt ? "CORRUPT" : snapshot_loaded ? "loaded" : "absent");
  if (snapshot_loaded) os << " (" << snapshot_sessions << " sessions)";
  os << "\n  journal: " << records_replayed << " records replayed, "
     << records_skipped << " skipped, " << tail_bytes_dropped
     << " torn tail bytes dropped";
  os << "\n  sessions: " << sessions << " restored, " << personalized << "/"
     << personalized_expected << " personalized re-attached, "
     << session_fallbacks << " fell back";
  os << "\n  adaptation: " << reassessing << " re-assessing, " << shadowing
     << " shadowing restored, " << unknown_kind_records
     << " unknown-kind records";
  os << "\n  result: " << (clean() ? "CLEAN" : "DEGRADED") << "\n";
  return os.str();
}

RecoveryReport Server::recover() {
  CLEAR_CHECK_MSG(!config_.journal.directory.empty(),
                  "recover requires a configured journal directory");
  CLEAR_CHECK_MSG(!journal_, "recover must run before journaling starts");
  CLEAR_CHECK_MSG(counters_.requests == 0 && sessions_.size() == 0,
                  "recover requires a freshly constructed server");
  const std::string& dir = config_.journal.directory;
  RecoveryReport report;
  CLEAR_OBS_SPAN("serve.recovery.replay");

  // 1. Snapshot: the bulk of the state, one image per session.
  SnapshotData snap;
  try {
    if (std::optional<SnapshotData> loaded = read_snapshot(dir)) {
      snap = std::move(*loaded);
      report.snapshot_loaded = true;
    }
  } catch (const Error& e) {
    // Journal-only recovery: with the snapshot gone there is no way to
    // prove any journaled user had no pre-snapshot history, so the replay
    // loop below quarantines every session it sees rather than recreating
    // one COLD over lost state.
    report.snapshot_corrupt = true;
    CLEAR_WARN("recovery: snapshot unusable (" << e.what()
                                               << "); continuing journal-only");
  }

  std::set<std::uint64_t> quarantined;
  const auto quarantine = [&](std::uint64_t user, const std::string& why) {
    if (!quarantined.insert(user).second) return;
    ++report.session_fallbacks;
    sessions_.erase(user);
    CLEAR_WARN("recovery: user " << user << ": " << why
                                 << "; session quarantined (restarts COLD on "
                                    "next contact)");
  };
  // Softer than quarantine, and counted separately: the session survives
  // with its history, only the personalization is lost — which the report
  // surfaces as personalized < personalized_expected (never CLEAN).
  const auto demote_finetune = [&](std::uint64_t user, const Error& e) {
    CLEAR_WARN("recovery: user " << user << ": personal checkpoint unusable ("
                                 << e.what()
                                 << "); demoting PERSONALIZED -> ASSIGNED");
  };

  if (report.snapshot_loaded) {
    report.snapshot_sessions = snap.sessions.size();
    last_arrival_us_ = snap.last_arrival_us;
    counters_.requests = snap.counters.requests;
    counters_.ok = snap.counters.ok;
    counters_.shed = snap.counters.shed;
    counters_.assignments = snap.counters.assignments;
    counters_.finetunes = snap.counters.finetunes;
    counters_.finetune_failures = snap.counters.finetune_failures;
    counters_.sanitized = snap.counters.sanitized;
    counters_.degraded = snap.counters.degraded;
    counters_.recovered = snap.counters.recovered;
    counters_.drift_ticks = snap.counters.drift_ticks;
    counters_.drift_detected = snap.counters.drift_detected;
    counters_.reassessments = snap.counters.reassessments;
    counters_.drift_false_alarms = snap.counters.drift_false_alarms;
    counters_.shadow_ticks = snap.counters.shadow_ticks;
    counters_.promotions = snap.counters.promotions;
    counters_.demotions = snap.counters.demotions;
    for (const SessionImage& original : snap.sessions) {
      SessionImage image = original;
      std::unique_ptr<edge::EdgeEngine> engine;
      if (image.has_personal) {
        ++report.personalized_expected;
        try {
          const std::string blob = read_user_checkpoint(dir, image.user_id);
          CLEAR_CHECK_MSG(!blob.empty(), "personal checkpoint missing");
          engine = build_engine(blob, sessions_.precision_for(image.user_id));
        } catch (const Error& e) {
          // Demote, don't erase: the state machine survives, only the
          // engine is lost. The session serves its cluster model again and
          // may fine-tune afresh from future labelled requests.
          demote_finetune(image.user_id, e);
          image.has_personal = false;
          if (image.state == SessionState::kPersonalized)
            image.state = SessionState::kAssigned;
          if (image.saved_state == SessionState::kPersonalized)
            image.saved_state = SessionState::kAssigned;
          // A session frozen mid-adaptation would otherwise demote back
          // into PERSONALIZED with no engine behind it.
          if (image.reassess_from == SessionState::kPersonalized)
            image.reassess_from = SessionState::kAssigned;
        }
      }
      try {
        Session* restored = sessions_.restore(image, std::move(engine));
        CLEAR_CHECK_MSG(restored, "session table full during recovery");
      } catch (const Error& e) {
        quarantine(image.user_id, e.what());
      }
    }
  }

  // 2. Replay journal records past the snapshot, oldest first.
  const auto find_session = [&](std::uint64_t user) -> Session& {
    Session* s = sessions_.find(user);
    CLEAR_CHECK_MSG(s != nullptr, "record for an unknown session");
    return *s;
  };
  const auto apply = [&](const JournalRecord& rec) {
    switch (rec.type) {
      case RecordType::kRequest: {
        Session* s = sessions_.get_or_create(rec.user_id);
        CLEAR_CHECK_MSG(s != nullptr, "session table full during replay");
        ++counters_.requests;
        ++s->requests;
        if (s->requests == 1) s->first_arrival_us = rec.time_us;
        switch (s->note_quality(rec.quality)) {
          case Session::QualityEvent::kDegraded:
            ++counters_.degraded;
            break;
          case Session::QualityEvent::kRecovered:
            ++counters_.recovered;
            break;
          case Session::QualityEvent::kNone:
            break;
        }
        last_arrival_us_ = std::max(last_arrival_us_, rec.time_us);
        break;
      }
      case RecordType::kObservation:
        find_session(rec.user_id).add_observation(rec.point);
        break;
      case RecordType::kAssign:
        find_session(rec.user_id)
            .set_assignment(static_cast<std::size_t>(rec.cluster));
        ++counters_.assignments;
        break;
      case RecordType::kLabelled:
        find_session(rec.user_id)
            .add_labelled(rec.map, static_cast<int>(rec.label));
        break;
      case RecordType::kFinetune: {
        Session& s = find_session(rec.user_id);
        ++report.personalized_expected;
        std::unique_ptr<edge::EdgeEngine> engine;
        try {
          const std::string blob = read_user_checkpoint(dir, rec.user_id);
          CLEAR_CHECK_MSG(!blob.empty(), "personal checkpoint missing");
          CLEAR_CHECK_MSG(
              blob.size() == rec.ckpt_bytes && crc32(blob) == rec.ckpt_crc,
              "personal checkpoint does not match its journal record");
          engine = build_engine(blob, s.precision());
        } catch (const Error& e) {
          // Demote: keep the session's history, drop only the fine-tune.
          // The on-disk checkpoint is known-bad, so retries stay off.
          demote_finetune(rec.user_id, e);
          ++counters_.finetune_failures;
          s.begin_finetune();
          s.abort_finetune();
          break;
        }
        s.begin_finetune();
        s.set_personal_engine(std::move(engine));
        ++counters_.finetunes;
        break;
      }
      case RecordType::kFinetuneAbort: {
        Session& s = find_session(rec.user_id);
        ++counters_.finetune_failures;
        s.begin_finetune();
        s.abort_finetune();
        break;
      }
      case RecordType::kShed: {
        // Table-full sheds were turned away before admission journaled a
        // kRequest, so the request count rides on this record; they also
        // name no session, so only charged sheds touch the table.
        if (rec.shed_unadmitted) ++counters_.requests;
        if (rec.shed_charged) ++find_session(rec.user_id).shed;
        ++counters_.shed;
        break;
      }
      case RecordType::kPredict: {
        Session& s = find_session(rec.user_id);
        ++s.predictions;
        if (!s.first_prediction_us) s.first_prediction_us = rec.time_us;
        ++counters_.ok;
        break;
      }
      // Online adaptation: replay re-applies each recorded verdict with the
      // same Session mutators drift_monitor used, in the same order.
      case RecordType::kDriftTick: {
        Session& s = find_session(rec.user_id);
        ++counters_.drift_ticks;
        if (s.drift_tick(rec.drifting) == Session::DriftEvent::kTriggered)
          ++counters_.drift_detected;
        break;
      }
      case RecordType::kReassessObs:
        find_session(rec.user_id).add_reassess_observation(rec.point);
        break;
      case RecordType::kReassign: {
        Session& s = find_session(rec.user_id);
        ++counters_.reassessments;
        if (!s.reassess_verdict(static_cast<std::size_t>(rec.cluster)))
          ++counters_.drift_false_alarms;
        break;
      }
      case RecordType::kShadowTick:
        ++counters_.shadow_ticks;
        find_session(rec.user_id).shadow_tick(rec.shadow_won);
        break;
      case RecordType::kPromote: {
        Session& s = find_session(rec.user_id);
        // No batches are pending during replay, so the displaced personal
        // engine (if any) can be dropped outright.
        s.promote_to_candidate();
        ++counters_.promotions;
        break;
      }
      case RecordType::kDemote:
        find_session(rec.user_id).demote_to_incumbent();
        ++counters_.demotions;
        break;
      case RecordType::kUnknown:
        // Handled before apply() in the replay loop; unreachable here.
        CLEAR_CHECK_MSG(false, "unknown-kind record reached apply()");
        break;
    }
  };

  const JournalReadResult wal = read_journal(dir);
  report.tail_bytes_dropped = wal.tail_bytes_dropped;
  if (!wal.header_error.empty())
    CLEAR_WARN("recovery: " << wal.header_error);
  std::uint64_t max_seq = snap.last_seq;
  for (const JournalRecord& rec : wal.records) {
    max_seq = std::max(max_seq, rec.seq);
    if (rec.seq <= snap.last_seq) continue;  // Folded into the snapshot.
    if (quarantined.count(rec.user_id) != 0) {
      ++report.records_skipped;
      continue;
    }
    if (rec.type == RecordType::kUnknown) {
      // A CRC-intact record of a kind this binary does not know: a newer
      // format wrote it, and replaying *around* it would rebuild the
      // session wrong. Quarantine just that session; the rest of the
      // journal stays trusted.
      ++report.unknown_kind_records;
      ++report.records_skipped;
      std::ostringstream why;
      why << "journal format v" << kJournalFormatVersion
          << " reader: record of unknown kind " << rec.raw_kind
          << " at journal.log offset " << rec.file_offset
          << " (written by a newer format?)";
      quarantine(rec.user_id, why.str());
      continue;
    }
    if (report.snapshot_corrupt && sessions_.find(rec.user_id) == nullptr) {
      // A post-snapshot record cannot distinguish a genuinely new user
      // from one whose pre-snapshot history died with the snapshot;
      // get_or_create would silently rebuild the latter COLD and later
      // records (observations, sheds) would apply cleanly on top of the
      // wrong state. Quarantine instead — the user restarts COLD on next
      // contact, loudly.
      ++report.records_skipped;
      quarantine(rec.user_id, "first seen via replay after a corrupt "
                              "snapshot; pre-snapshot history cannot be "
                              "ruled out");
      continue;
    }
    try {
      apply(rec);
      ++report.records_replayed;
    } catch (const Error& e) {
      ++report.records_skipped;
      quarantine(rec.user_id, std::string("replaying a ") +
                                  record_type_name(rec.type) +
                                  " record failed (" + e.what() + ")");
    }
  }

  // 3. Tally what came back. drift_active_ is derived, not journaled:
  // recount the sessions restored mid-adaptation so the serve.drift.adapting
  // gauge resumes exactly where the crashed process left it.
  drift_active_ = 0;
  for (const Session* s : sessions_.sessions()) {
    ++report.sessions;
    if (s->has_personal_engine()) ++report.personalized;
    if (s->adapting()) {
      ++drift_active_;
      if (s->effective_state() == SessionState::kShadowing)
        ++report.shadowing;
      else
        ++report.reassessing;
    }
  }
  CLEAR_OBS_COUNT("serve.recovery.sessions", report.sessions);
  CLEAR_OBS_COUNT("serve.recovery.personalized", report.personalized);
  CLEAR_OBS_COUNT("serve.recovery.records", report.records_replayed);
  CLEAR_OBS_COUNT("serve.recovery.skipped_records", report.records_skipped);
  CLEAR_OBS_COUNT("serve.recovery.session_fallbacks",
                  report.session_fallbacks);
  CLEAR_OBS_COUNT("serve.recovery.torn_tail_bytes",
                  report.tail_bytes_dropped);

  // 4. Resume journaling. The recovered state becomes the new baseline
  // snapshot *before* the Journal constructor truncates the log — the
  // crash-safe order — and sequence numbers continue where the old run
  // stopped, so a pre-truncation crash still replays correctly.
  try {
    write_snapshot_file(dir, make_snapshot(max_seq), config_.journal.fsync);
    journal_ = std::make_unique<Journal>(config_.journal, max_seq + 1);
    ++counters_.journal_snapshots;
    CLEAR_OBS_COUNT("serve.journal.snapshots", 1);
  } catch (const Error& e) {
    journal_disable(e, "post-recovery snapshot");
  }
  return report;
}

}  // namespace clear::serve
