#include "serve/session.hpp"

#include "common/error.hpp"

namespace clear::serve {

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kCold: return "COLD";
    case SessionState::kAssigning: return "ASSIGNING";
    case SessionState::kAssigned: return "ASSIGNED";
    case SessionState::kFineTuning: return "FINE_TUNING";
    case SessionState::kPersonalized: return "PERSONALIZED";
    case SessionState::kDegraded: return "DEGRADED";
    case SessionState::kReassessing: return "RE_ASSESSING";
    case SessionState::kShadowing: return "SHADOWING";
  }
  return "?";
}

Session::Session(std::uint64_t user_id, SessionPolicy policy,
                 edge::Precision precision)
    : user_id_(user_id), policy_(policy), precision_(precision) {
  CLEAR_CHECK_MSG(policy_.ca_windows >= 1, "ca_windows must be >= 1");
  CLEAR_CHECK_MSG(policy_.ft_maps >= 2,
                  "ft_maps must be >= 2 (fine-tuning needs two samples)");
  CLEAR_CHECK_MSG(policy_.degrade_after >= 1 && policy_.recover_after >= 1,
                  "degrade/recover streaks must be >= 1");
  if (policy_.drift_after > 0) {
    CLEAR_CHECK_MSG(policy_.drift_ratio > 0.0,
                    "drift_ratio must be positive");
    CLEAR_CHECK_MSG(policy_.reassess_windows >= 1 &&
                        policy_.shadow_windows >= 1,
                    "reassess/shadow windows must be >= 1");
  }
}

Session::QualityEvent Session::note_quality(double quality) {
  if (quality < policy_.min_quality) {
    good_streak_ = 0;
    ++bad_streak_;
    if (state_ != SessionState::kDegraded &&
        bad_streak_ >= policy_.degrade_after) {
      saved_state_ = state_;
      state_ = SessionState::kDegraded;
      return QualityEvent::kDegraded;
    }
    return QualityEvent::kNone;
  }
  bad_streak_ = 0;
  ++good_streak_;
  if (state_ == SessionState::kDegraded &&
      good_streak_ >= policy_.recover_after) {
    state_ = saved_state_;
    return QualityEvent::kRecovered;
  }
  return QualityEvent::kNone;
}

void Session::add_observation(cluster::Point observation) {
  if (state_ == SessionState::kCold) state_ = SessionState::kAssigning;
  CLEAR_CHECK_MSG(state_ == SessionState::kAssigning,
                  "observations buffer only while ASSIGNING (state "
                      << session_state_name(state_) << ")");
  observations_.push_back(std::move(observation));
}

bool Session::ca_ready() const {
  return state_ == SessionState::kAssigning &&
         observations_.size() >= policy_.ca_windows;
}

void Session::set_assignment(std::size_t cluster) {
  CLEAR_CHECK_MSG(state_ == SessionState::kAssigning,
                  "assignment requires ASSIGNING (state "
                      << session_state_name(state_) << ")");
  cluster_ = cluster;
  state_ = SessionState::kAssigned;
  observations_.clear();
  observations_.shrink_to_fit();
}

namespace {

/// Every state at or past ASSIGNED — including the adaptation states, which
/// keep serving the incumbent cluster while they evaluate a candidate.
bool state_is_assigned(SessionState s) {
  return s == SessionState::kAssigned || s == SessionState::kFineTuning ||
         s == SessionState::kPersonalized ||
         s == SessionState::kReassessing || s == SessionState::kShadowing;
}

}  // namespace

bool Session::assigned() const {
  return state_is_assigned(state_ == SessionState::kDegraded ? saved_state_
                                                             : state_);
}

bool Session::adapting() const {
  const SessionState s = effective_state();
  return s == SessionState::kReassessing || s == SessionState::kShadowing;
}

void Session::add_labelled(Tensor normalized_map, int label) {
  if (!policy_.enable_finetune || state_ != SessionState::kAssigned) return;
  labelled_.push_back(LabelledMap{std::move(normalized_map), label});
}

bool Session::ft_ready() const {
  if (!policy_.enable_finetune || state_ != SessionState::kAssigned)
    return false;
  if (labelled_.size() < policy_.ft_maps) return false;
  // Single-class adaptation sets collapse the classifier; wait for both.
  bool has[2] = {false, false};
  for (const LabelledMap& m : labelled_) has[m.label > 0 ? 1 : 0] = true;
  return has[0] && has[1];
}

void Session::begin_finetune() {
  CLEAR_CHECK_MSG(state_ == SessionState::kAssigned,
                  "fine-tuning requires ASSIGNED (state "
                      << session_state_name(state_) << ")");
  state_ = SessionState::kFineTuning;
}

void Session::set_personal_engine(
    std::unique_ptr<edge::EdgeEngine> engine) {
  CLEAR_CHECK_MSG(state_ == SessionState::kFineTuning,
                  "personal engine lands from FINE_TUNING (state "
                      << session_state_name(state_) << ")");
  CLEAR_CHECK_MSG(engine != nullptr, "null personal engine");
  personal_engine_ = std::move(engine);
  state_ = SessionState::kPersonalized;
  labelled_.clear();
  labelled_.shrink_to_fit();
}

SessionImage Session::image() const {
  CLEAR_CHECK_MSG(state_ != SessionState::kFineTuning,
                  "cannot image a session mid-fine-tune");
  SessionImage img;
  img.user_id = user_id_;
  img.state = state_;
  img.saved_state = saved_state_;
  img.bad_streak = bad_streak_;
  img.good_streak = good_streak_;
  img.cluster = cluster_;
  img.observations = observations_;
  img.labelled = labelled_;
  img.finetune_enabled = policy_.enable_finetune;
  img.requests = requests;
  img.shed = shed;
  img.predictions = predictions;
  img.first_arrival_us = first_arrival_us;
  img.first_prediction_us = first_prediction_us;
  img.has_personal = personal_engine_ != nullptr;
  img.drift_streak = drift_streak_;
  img.reassess_from = reassess_from_;
  img.candidate_cluster = candidate_cluster_;
  img.shadow_wins = shadow_wins_;
  img.shadow_seen = shadow_seen_;
  return img;
}

void Session::restore_image(const SessionImage& image,
                            std::unique_ptr<edge::EdgeEngine> engine) {
  CLEAR_CHECK_MSG(image.user_id == user_id_,
                  "session image for user " << image.user_id
                                            << " restored into session "
                                            << user_id_);
  CLEAR_CHECK_MSG(image.state != SessionState::kFineTuning &&
                      image.saved_state != SessionState::kFineTuning,
                  "FINE_TUNING is transient and never lands in an image");
  CLEAR_CHECK_MSG((engine != nullptr) == image.has_personal,
                  "personal engine presence must match the image");
  state_ = image.state;
  saved_state_ = image.saved_state;
  bad_streak_ = static_cast<std::size_t>(image.bad_streak);
  good_streak_ = static_cast<std::size_t>(image.good_streak);
  cluster_ = static_cast<std::size_t>(image.cluster);
  observations_ = image.observations;
  labelled_ = image.labelled;
  policy_.enable_finetune = image.finetune_enabled;
  requests = static_cast<std::size_t>(image.requests);
  shed = static_cast<std::size_t>(image.shed);
  predictions = static_cast<std::size_t>(image.predictions);
  first_arrival_us = image.first_arrival_us;
  first_prediction_us = image.first_prediction_us;
  personal_engine_ = std::move(engine);
  drift_streak_ = static_cast<std::size_t>(image.drift_streak);
  reassess_from_ = image.reassess_from;
  candidate_cluster_ = static_cast<std::size_t>(image.candidate_cluster);
  shadow_wins_ = static_cast<std::size_t>(image.shadow_wins);
  shadow_seen_ = static_cast<std::size_t>(image.shadow_seen);
}

void Session::abort_finetune() {
  CLEAR_CHECK_MSG(state_ == SessionState::kFineTuning,
                  "abort_finetune outside FINE_TUNING");
  state_ = SessionState::kAssigned;
  policy_.enable_finetune = false;  // Do not retry a known-bad checkpoint.
  labelled_.clear();
  labelled_.shrink_to_fit();
}

Session::DriftEvent Session::drift_tick(bool drifting) {
  CLEAR_CHECK_MSG(policy_.drift_after > 0, "drift monitor is disabled");
  CLEAR_CHECK_MSG(drift_monitorable(),
                  "drift ticks only in ASSIGNED/PERSONALIZED (state "
                      << session_state_name(state_) << ")");
  if (!drifting) {
    drift_streak_ = 0;
    return DriftEvent::kNone;
  }
  ++drift_streak_;
  if (drift_streak_ < policy_.drift_after) return DriftEvent::kNone;
  // Sustained drift: remember where to fall back to, start a fresh CA
  // buffer, and re-assess. The incumbent engine keeps serving throughout.
  reassess_from_ = state_;
  state_ = SessionState::kReassessing;
  drift_streak_ = 0;
  observations_.clear();
  return DriftEvent::kTriggered;
}

void Session::add_reassess_observation(cluster::Point observation) {
  CLEAR_CHECK_MSG(state_ == SessionState::kReassessing,
                  "re-assessment windows buffer only while RE_ASSESSING "
                  "(state "
                      << session_state_name(state_) << ")");
  observations_.push_back(std::move(observation));
}

bool Session::reassess_ready() const {
  return state_ == SessionState::kReassessing &&
         observations_.size() >= policy_.reassess_windows;
}

bool Session::reassess_verdict(std::size_t candidate) {
  CLEAR_CHECK_MSG(state_ == SessionState::kReassessing,
                  "re-assessment verdict requires RE_ASSESSING (state "
                      << session_state_name(state_) << ")");
  observations_.clear();
  observations_.shrink_to_fit();
  if (candidate == cluster_) {
    // False alarm: CA still prefers the incumbent; resume where we were.
    state_ = reassess_from_;
    return false;
  }
  candidate_cluster_ = candidate;
  shadow_wins_ = 0;
  shadow_seen_ = 0;
  state_ = SessionState::kShadowing;
  return true;
}

void Session::shadow_tick(bool candidate_won) {
  CLEAR_CHECK_MSG(state_ == SessionState::kShadowing,
                  "shadow ticks only while SHADOWING (state "
                      << session_state_name(state_) << ")");
  ++shadow_seen_;
  if (candidate_won) ++shadow_wins_;
}

bool Session::shadow_done() const {
  return state_ == SessionState::kShadowing &&
         shadow_seen_ >= policy_.shadow_windows;
}

bool Session::shadow_promotes() const {
  return 2 * shadow_wins_ > shadow_seen_;  // Strict majority.
}

void Session::promote_to_candidate() {
  CLEAR_CHECK_MSG(state_ == SessionState::kShadowing,
                  "promotion requires SHADOWING (state "
                      << session_state_name(state_) << ")");
  cluster_ = candidate_cluster_;
  // A personal engine was fine-tuned from the *old* cluster's model; it
  // does not follow the user to the new cluster. The labelled buffer is
  // stale for the same reason. Fine-tuning stays enabled (unless a previous
  // abort disabled it), so the session may re-personalize on fresh labels.
  personal_engine_.reset();
  labelled_.clear();
  labelled_.shrink_to_fit();
  state_ = SessionState::kAssigned;
  shadow_wins_ = 0;
  shadow_seen_ = 0;
}

void Session::demote_to_incumbent() {
  CLEAR_CHECK_MSG(state_ == SessionState::kShadowing,
                  "demotion requires SHADOWING (state "
                      << session_state_name(state_) << ")");
  state_ = reassess_from_;
  shadow_wins_ = 0;
  shadow_seen_ = 0;
}

SessionManager::SessionManager(SessionPolicy policy,
                               std::vector<edge::Precision> precisions,
                               std::size_t max_sessions)
    : policy_(policy),
      precisions_(std::move(precisions)),
      max_sessions_(max_sessions) {
  CLEAR_CHECK_MSG(!precisions_.empty(), "at least one serving precision");
  CLEAR_CHECK_MSG(max_sessions_ >= 1, "max_sessions must be >= 1");
}

Session* SessionManager::get_or_create(std::uint64_t user_id) {
  const auto it = sessions_.find(user_id);
  if (it != sessions_.end()) return it->second.get();
  if (sessions_.size() >= max_sessions_) return nullptr;
  // Users cycle deterministically through the configured precisions — the
  // multi-platform story (GPU/NCS2/TPU) without per-user configuration.
  const edge::Precision p = precisions_[user_id % precisions_.size()];
  auto session = std::make_unique<Session>(user_id, policy_, p);
  Session* raw = session.get();
  sessions_[user_id] = std::move(session);
  return raw;
}

Session* SessionManager::restore(const SessionImage& image,
                                 std::unique_ptr<edge::EdgeEngine> engine) {
  CLEAR_CHECK_MSG(sessions_.find(image.user_id) == sessions_.end(),
                  "user " << image.user_id << " already has a session");
  if (sessions_.size() >= max_sessions_) return nullptr;
  auto session = std::make_unique<Session>(image.user_id, policy_,
                                           precision_for(image.user_id));
  session->restore_image(image, std::move(engine));
  Session* raw = session.get();
  sessions_[image.user_id] = std::move(session);
  return raw;
}

void SessionManager::erase(std::uint64_t user_id) {
  sessions_.erase(user_id);
}

Session* SessionManager::find(std::uint64_t user_id) {
  const auto it = sessions_.find(user_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<const Session*> SessionManager::sessions() const {
  std::vector<const Session*> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) out.push_back(s.get());
  return out;
}

}  // namespace clear::serve
