// Layer abstraction for the training stack.
//
// Layers own their parameters (value + gradient pairs) and cache whatever
// activations their backward pass needs. The contract is strict
// forward-then-backward: backward(grad_out) must be called with the
// gradient of the loss w.r.t. the most recent forward()'s output, and
// returns the gradient w.r.t. that forward()'s input.
//
// Parameters can be frozen (set_frozen), which the optimizers honour — this
// is the mechanism behind the paper's on-edge fine-tuning, where the
// convolutional feature extractor stays fixed and only the LSTM head adapts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace clear::nn {

/// One trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  bool frozen = false;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch. Caches activations for backward.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backward pass: gradient w.r.t. the last forward input. Accumulates
  /// parameter gradients (callers zero them via Optimizer::zero_grad).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> parameters() { return {}; }

  /// Deep copy of this layer (parameters, config, and RNG state). Used by
  /// the batched-inference paths to give every worker thread its own
  /// activation caches. Layers that cannot be copied return nullptr, which
  /// makes callers fall back to serial execution.
  virtual std::unique_ptr<Layer> clone() const { return nullptr; }

  /// Human-readable layer type/name.
  virtual std::string name() const = 0;

  /// Training vs. inference mode (dropout etc.).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Freeze/unfreeze every parameter of this layer.
  void set_frozen(bool frozen);

 protected:
  bool training_ = true;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace clear::nn
