// NetServer: the epoll front end that puts CLEAR-Serve on a wire.
//
// A single-threaded, level-triggered epoll event loop owns every socket.
// Frames arrive on nonblocking connections, are decoded incrementally
// (src/net/protocol), and feed the embedded serve::Server — which keeps its
// virtual-clock determinism: batch release and shedding are driven by the
// arrival timestamps carried *in the frames*, never by wall-clock receive
// times. One connection submitting in order therefore reproduces the
// library-driven serve path bit-for-bit; multiple connections interleave at
// the socket layer, and arrivals that would run the virtual clock backwards
// are clamped to the server's high-water mark (counted, never reordered).
//
// Shutdown is drain-on-shutdown: a kShutdown frame (or stop()) flushes every
// pending batch, delivers every result the wire can still carry, lets the
// write buffers empty, and only then exits the loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"

namespace clear::net {

struct NetServerConfig {
  Endpoint listen;  ///< Port 0 binds an ephemeral port (see port()).
  std::size_t max_connections = 64;
  /// When nonempty, the bound port is written here (a single decimal line)
  /// after listen succeeds — how scripts discover an ephemeral port.
  std::string port_file;
  /// Virtual-time batching is arrival-driven: with no further arrivals (and
  /// no drain frame) the tail of a stream would sit in the batcher forever.
  /// After this many milliseconds of wire silence with requests in flight,
  /// the server drains itself. 0 disables — the deterministic loopback
  /// tests do, so batch composition stays a pure function of the arrival
  /// stream.
  std::uint64_t idle_flush_ms = 50;
};

/// Wire-level counters, deterministic for a deterministic workload (except
/// bytes split across reads, which the kernel decides; byte *totals* are
/// deterministic).
struct NetCounters {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t rejected = 0;  ///< Accepts refused at max_connections.
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t decode_errors = 0;      ///< Framing/payload errors (fatal).
  std::uint64_t partial_drops = 0;      ///< Conn died mid-frame.
  std::uint64_t dropped_responses = 0;  ///< Result outlived its connection.
  std::uint64_t clamped_arrivals = 0;   ///< Arrivals clamped monotonic.
};

class NetServer {
 public:
  /// Binds and listens immediately (so port() is valid before run()).
  /// The serve::Server must outlive the NetServer; the net layer is its
  /// only driver while run() executes.
  NetServer(serve::Server& server, NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }
  const NetCounters& counters() const { return counters_; }

  /// Run the event loop until a kShutdown frame arrives or stop() is
  /// called. Blocking; call from the thread that owns the server.
  void run();

  /// Thread-safe shutdown request: the loop drains the serve::Server,
  /// flushes write buffers, and exits.
  void stop();

 private:
  struct Connection {
    FaultedStream stream;
    FrameDecoder decoder;
    std::string outbuf;
    std::size_t outpos = 0;
    std::uint64_t id = 0;
    bool writable_armed = false;  ///< EPOLLOUT interest currently on.
    std::uint64_t submitted = 0;  ///< Requests handed to the serve layer.
  };

  void accept_ready();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  /// Decode + dispatch every complete frame buffered on `conn`.
  /// Returns false when the connection must close (framing error).
  bool pump_frames(Connection& conn);
  bool on_request(Connection& conn, const Frame& frame);
  // Shard-coordination handlers (coordinator-driven; see src/shard).
  bool on_export(Connection& conn, const Frame& frame);
  bool on_import(Connection& conn, const Frame& frame);
  bool on_adopt(Connection& conn, const Frame& frame);
  void begin_shutdown();
  /// Pull completed results out of the serve layer and route each to its
  /// connection (or count it dropped).
  void dispatch_results();
  void send_frame(Connection& conn, const std::string& frame);
  void flush(Connection& conn);
  void update_write_interest(Connection& conn);
  void close_connection(std::uint64_t id, const char* why);
  WireDrainAck ack_snapshot() const;

  serve::Server& server_;
  NetServerConfig config_;
  NetCounters counters_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< Self-pipe backing stop().
  std::uint16_t port_ = 0;

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  /// Closed connections parked until the next loop iteration, so a close
  /// deep inside flush() cannot free a Connection& still on the stack.
  std::vector<std::unique_ptr<Connection>> graveyard_;
  /// (user_id, request_id) -> connection id, for routing responses.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> routes_;
  bool stopping_ = false;
};

}  // namespace clear::net
