#!/usr/bin/env bash
# Back-compat wrapper: the sanitizer flow moved to run_sanitizer_tests.sh,
# which also covers UBSAN. This entry point keeps the original TSAN-only
# invocation working ("build-tsan" remains the default build directory; a
# trailing "-tsan" on a custom directory argument is normalized away).
#
#   tools/run_tsan_tests.sh [build-dir]
set -euo pipefail
DIR="${1:-build-tsan}"
exec "$(dirname "$0")/run_sanitizer_tests.sh" thread "${DIR%-tsan}"
