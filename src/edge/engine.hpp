// Edge inference engine: owns a deployed model and emulates the numeric
// behaviour of the target device.
//
//   kFp32 — reference execution (the paper's "GPU baseline").
//   kFp16 — weights and inter-layer activations rounded through IEEE half
//           (Raspberry Pi + Intel NCS2).
//   kInt8 — weights quantized per-tensor symmetric; activations fake-
//           quantized between layers with scales calibrated offline on the
//           cluster's training maps (Coral Edge TPU).
//
// Fake quantization here is bit-compatible with the integer kernels in
// qkernels.hpp (verified by tests); it lets the same layer graph serve all
// three precisions.
#pragma once

#include <memory>

#include "edge/quantize.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace clear::edge {

enum class Precision { kFp32, kFp16, kInt8 };

const char* precision_name(Precision p);

struct EngineConfig {
  Precision precision = Precision::kFp32;
  /// Percentile for activation calibration (int8). Max-abs when == 100.
  double act_percentile = 99.5;
};

class EdgeEngine {
 public:
  /// Take ownership of a trained model and apply the weight-side precision
  /// transform. For int8, calibrate() must be called before inference.
  EdgeEngine(std::unique_ptr<nn::Sequential> model, EngineConfig config);

  /// Calibrate per-layer activation scales by running representative maps
  /// (each [F, W]) through the network. Required for int8; a no-op
  /// otherwise.
  void calibrate(const std::vector<const Tensor*>& maps);

  /// Precision-emulated forward pass over a [N, 1, F, W] batch.
  Tensor forward(const Tensor& batch);

  std::vector<std::size_t> predict(const nn::MapDataset& data,
                                   std::size_t batch_size = 32);
  nn::BinaryMetrics evaluate(const nn::MapDataset& data,
                             std::size_t batch_size = 32);

  /// Re-apply the weight-side precision transform (after fine-tuning).
  void requantize_weights();

  /// Bytes this engine actually occupies resident: parameter values +
  /// gradients plus the activation calibration table. This — not the size
  /// of whatever on-disk encoding the engine was built from — is what a
  /// byte-budgeted cache must charge (a delta-stored checkpoint is small on
  /// disk but reconstructs to a full-size model in memory).
  std::size_t resident_bytes();

  nn::Sequential& model() { return *model_; }
  Precision precision() const { return config_.precision; }
  bool calibrated() const { return !act_params_.empty(); }
  const std::vector<QuantParams>& activation_params() const {
    return act_params_;
  }

 private:
  void apply_weight_transform();

  std::unique_ptr<nn::Sequential> model_;
  EngineConfig config_;
  /// Activation quant params: index 0 = input, i+1 = output of layer i.
  std::vector<QuantParams> act_params_;
};

}  // namespace clear::edge
