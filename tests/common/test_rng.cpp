#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace clear {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, GammaMeanAndVariance) {
  Rng rng(23);
  const int n = 100000;
  const double shape = 3.0;
  const double scale = 2.0;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gamma(shape, scale);
    EXPECT_GT(v, 0.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, shape * scale * scale, 0.4);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.5, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(31);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(31);
  EXPECT_THROW(rng.categorical({}), Error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), Error);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(37);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(37);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(Rng, ForkStreamsAreIndependentOfParentDraws) {
  Rng a(41);
  Rng b(41);
  (void)a.next_u64();  // Parent draw count differs...
  Rng fa = a.fork(9);
  Rng fb = b.fork(9);
  // ...but forks from the same logical state differ only if state advanced.
  // What we require: same-parent-state forks agree.
  Rng c(41);
  Rng d(41);
  EXPECT_EQ(c.fork(9).next_u64(), d.fork(9).next_u64());
  // Different stream ids give different streams.
  EXPECT_NE(c.fork(1).next_u64(), d.fork(2).next_u64());
  (void)fa;
  (void)fb;
}

}  // namespace
}  // namespace clear
