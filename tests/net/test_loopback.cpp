// Deterministic loopback end-to-end test: the same hashed WEMAC workload
// produces *bit-identical* detections whether it drives serve::Server
// directly (library path) or crosses a real TCP socket through the epoll
// front end (wire path). One connection submitting in arrival order, with
// the server's idle flush disabled, makes batch composition a pure function
// of the request stream on both paths — so every field, including the
// float probability's bit pattern, must match, at --threads 1 and 4.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clear/pipeline.hpp"
#include "common/parallel.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "wemac/dataset.hpp"

namespace clear::net {
namespace {

core::ClearConfig net_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 77;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

// One fitted pipeline shared by every test in this file; each server run
// consumes its own copy of the captured ModelSource.
struct LoopbackFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  serve::ModelSource source;

  LoopbackFixture()
      : dataset(wemac::generate_wemac(net_config().data)),
        pipeline(net_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = serve::ModelSource::from_pipeline(pipeline);
  }
};

LoopbackFixture& fixture() {
  static LoopbackFixture f;
  return f;
}

serve::ServeConfig quick_serve_config() {
  serve::ServeConfig sc;
  sc.batch.max_batch = 4;
  sc.session.ca_windows = 3;
  sc.session.ft_maps = 2;
  return sc;
}

serve::WorkloadConfig small_workload() {
  serve::WorkloadConfig wc;
  wc.n_users = 6;
  wc.requests_per_user = 10;
  wc.seed = 7;
  return wc;
}

using ResultKey = std::pair<std::uint64_t, std::uint64_t>;

std::map<ResultKey, serve::ServeResult> library_results(
    const serve::ServeConfig& sc, std::vector<serve::ServeRequest> requests) {
  serve::Server server(fixture().source, sc);
  std::map<ResultKey, serve::ServeResult> out;
  for (serve::ServeResult& r : server.run(std::move(requests)))
    out[{r.user_id, r.request_id}] = r;
  return out;
}

std::map<ResultKey, WireResponse> wire_results(
    const serve::ServeConfig& sc, const std::vector<serve::ServeRequest>& requests) {
  serve::Server server(fixture().source, sc);
  NetServerConfig nc;
  nc.listen.port = 0;
  nc.idle_flush_ms = 0;  // Purely arrival-driven batching: exact replay.
  NetServer net_server(server, nc);
  std::thread server_thread([&net_server] { net_server.run(); });

  std::map<ResultKey, WireResponse> out;
  {
    BlockingClient client({"127.0.0.1", net_server.port()});
    // Submit the whole stream in arrival order on one connection, exactly
    // as Server::run feeds the library path.
    for (const serve::ServeRequest& r : requests) {
      WireRequest wire;
      wire.request_id = r.request_id;
      wire.user_id = r.user_id;
      wire.arrival_us = r.arrival_us;
      wire.quality = r.quality;
      wire.label = r.label;
      wire.map = r.map;
      client.send_request(wire);
    }
    client.send_drain();
    // Everything the stream owes us arrives before the drain ack.
    Frame frame;
    while (true) {
      if (!client.recv_frame(frame)) {
        ADD_FAILURE() << "connection closed before the drain ack";
        break;
      }
      if (frame.type == FrameType::kDrainAck) break;
      if (frame.type != FrameType::kResponse) {
        ADD_FAILURE() << "unexpected frame type "
                      << static_cast<int>(frame.type);
        break;
      }
      WireResponse response;
      std::string error;
      if (!parse_response(frame, response, error)) {
        ADD_FAILURE() << error;
        break;
      }
      out[{response.user_id, response.request_id}] = response;
    }
    client.send_shutdown();
  }
  server_thread.join();
  EXPECT_EQ(net_server.counters().decode_errors, 0u);
  EXPECT_EQ(net_server.counters().clamped_arrivals, 0u);
  return out;
}

std::uint32_t f32_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void expect_wire_matches_library(
    const std::map<ResultKey, serve::ServeResult>& lib,
    const std::map<ResultKey, WireResponse>& wire) {
  ASSERT_EQ(lib.size(), wire.size());
  for (const auto& [key, l] : lib) {
    const auto it = wire.find(key);
    ASSERT_NE(it, wire.end())
        << "user " << key.first << " request " << key.second
        << " missing from the wire path";
    const WireResponse& w = it->second;
    const std::string where = "user " + std::to_string(key.first) +
                              " request " + std::to_string(key.second);
    EXPECT_EQ(w.shed, l.status == serve::ServeResult::Status::kShed) << where;
    EXPECT_EQ(w.error, l.error) << where;
    EXPECT_EQ(w.predicted, l.predicted) << where;
    // The detection itself, compared as raw bits: the wire must be
    // invisible to the model output.
    EXPECT_EQ(f32_bits(w.fear_probability), f32_bits(l.fear_probability))
        << where;
    EXPECT_EQ(w.session_state,
              static_cast<std::uint32_t>(l.session_state))
        << where;
    EXPECT_EQ(w.degraded, l.degraded) << where;
    EXPECT_EQ(w.route_kind, static_cast<std::uint32_t>(l.route.kind))
        << where;
    EXPECT_EQ(w.route_id, l.route.id) << where;
    EXPECT_EQ(w.batch_rows, l.batch_rows) << where;
    EXPECT_EQ(w.arrival_us, l.arrival_us) << where;
    EXPECT_EQ(w.exec_us, l.exec_us) << where;
  }
}

TEST(Loopback, WireDetectionsMatchLibraryPathBitExactly) {
  const std::vector<serve::ServeRequest> requests =
      serve::make_workload(fixture().dataset, small_workload());
  ASSERT_FALSE(requests.empty());
  const serve::ServeConfig sc = quick_serve_config();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const NumThreadsGuard guard(threads);
    const auto lib = library_results(sc, requests);
    const auto wire = wire_results(sc, requests);
    expect_wire_matches_library(lib, wire);
  }
}

TEST(Loopback, DrainAckReportsServerCounters) {
  const std::vector<serve::ServeRequest> requests =
      serve::make_workload(fixture().dataset, small_workload());
  serve::Server server(fixture().source, quick_serve_config());
  NetServerConfig nc;
  nc.listen.port = 0;
  nc.idle_flush_ms = 0;
  NetServer net_server(server, nc);
  std::thread server_thread([&net_server] { net_server.run(); });
  {
    BlockingClient client({"127.0.0.1", net_server.port()});
    for (const serve::ServeRequest& r : requests) {
      WireRequest wire;
      wire.request_id = r.request_id;
      wire.user_id = r.user_id;
      wire.arrival_us = r.arrival_us;
      wire.quality = r.quality;
      wire.label = r.label;
      wire.map = r.map;
      client.send_request(wire);
    }
    client.send_drain();
    WireDrainAck ack;
    ASSERT_TRUE(client.recv_drain_ack(ack));
    EXPECT_EQ(ack.requests, requests.size());
    EXPECT_EQ(ack.ok + ack.shed, requests.size());
    client.send_shutdown();
  }
  server_thread.join();
  // Drain-on-shutdown: every admitted request was answered before exit.
  EXPECT_EQ(net_server.counters().frames_in, requests.size() + 2);
  EXPECT_EQ(net_server.counters().dropped_responses, 0u);
  EXPECT_EQ(net_server.counters().partial_drops, 0u);
}

TEST(Loopback, ServerRejectsWrongGeometryMapsWithoutDying) {
  serve::Server server(fixture().source, quick_serve_config());
  NetServerConfig nc;
  nc.listen.port = 0;
  nc.idle_flush_ms = 0;
  NetServer net_server(server, nc);
  std::thread server_thread([&net_server] { net_server.run(); });
  {
    // A well-formed frame whose map does not match the deployed model: the
    // offending connection dies, the server does not.
    BlockingClient bad({"127.0.0.1", net_server.port()});
    WireRequest wrong;
    wrong.request_id = 1;
    wrong.user_id = 1;
    wrong.map = Tensor({2, 2});
    bad.send_request(wrong);
    Frame frame;
    EXPECT_FALSE(bad.recv_frame(frame));  // Closed, no response.
  }
  {
    // The server is still alive and serving.
    BlockingClient good({"127.0.0.1", net_server.port()});
    const auto& samples =
        fixture().dataset.samples_of(fixture().dataset.n_volunteers() - 1);
    WireRequest ok_request;
    ok_request.request_id = 1;
    ok_request.user_id = 5;
    ok_request.arrival_us = 100;
    ok_request.map = fixture().dataset.samples()[samples[0]].feature_map;
    good.send_request(ok_request);
    good.send_drain();
    WireResponse response;
    ASSERT_TRUE(good.recv_response(response));
    EXPECT_EQ(response.request_id, 1u);
    good.send_shutdown();
  }
  server_thread.join();
  EXPECT_EQ(net_server.counters().decode_errors, 1u);
  EXPECT_EQ(net_server.counters().accepted, 2u);
}

}  // namespace
}  // namespace clear::net
