// Ablation D — label-free personalization (paper §V future work: "reduce
// the need for labelled data").
//
// Compares, on the same LOSO folds and test maps:
//   1. the assigned cluster model as-is (CLEAR w/o FT),
//   2. pseudo-label self-training on the user's *unlabeled* maps,
//   3. supervised fine-tuning with the paper's 20 % labelled budget.
// Also reports the pseudo-label precision (how often the self-assigned
// labels were right).
//
// Flags: --quick --folds=16 --epochs=N --ft-epochs=N --confidence=0.8
//        --rounds=2 --seed=N --cache-dir=DIR
#include "bench_common.hpp"
#include "clear/evaluation.hpp"
#include "clear/pseudo_label.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);
  const std::size_t folds = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("folds", 16)),
      dataset.n_volunteers());

  core::PseudoLabelConfig pl;
  pl.confidence_threshold = args.get_double("confidence", 0.80);
  pl.rounds = static_cast<std::size_t>(args.get_int("rounds", 2));
  pl.train = config.finetune;
  pl.freeze_boundary = nn::fine_tune_boundary();

  std::printf(
      "Ablation: label-free personalization (%zu folds, confidence %.2f)\n",
      folds, pl.confidence_threshold);

  core::Aggregate no_ft;
  core::Aggregate pseudo;
  core::Aggregate supervised;
  std::size_t adopted_total = 0;
  std::size_t adopted_correct = 0;

  for (std::size_t vx = 0; vx < folds; ++vx) {
    CLEAR_INFO("fold " << vx + 1 << "/" << folds);
    std::vector<std::size_t> train_users;
    for (std::size_t u = 0; u < dataset.n_volunteers(); ++u)
      if (u != vx) train_users.push_back(u);
    core::ClearPipeline pipeline(config);
    pipeline.fit(dataset, train_users, vx + 1);
    const auto assignment =
        pipeline.assign_user(dataset, vx, config.ca_fraction);
    const core::UserSplit split = core::split_user_samples(
        dataset, vx, config.ca_fraction, config.ft_fraction);

    const std::vector<Tensor> test_maps =
        pipeline.normalize_samples(dataset, split.test);
    nn::MapDataset test_set;
    for (std::size_t i = 0; i < test_maps.size(); ++i) {
      test_set.maps.push_back(&test_maps[i]);
      test_set.labels.push_back(static_cast<std::size_t>(
          dataset.samples()[split.test[i]].label));
    }

    // 1. Cluster model as deployed.
    {
      auto model = pipeline.clone_cluster_model(assignment.cluster);
      no_ft.add(nn::evaluate(*model, test_set));
    }

    // 2. Pseudo-label adaptation on the unlabeled CA+FT share (labels unread).
    {
      std::vector<std::size_t> unl_idx = split.ca;
      unl_idx.insert(unl_idx.end(), split.ft.begin(), split.ft.end());
      const std::vector<Tensor> unl_maps =
          pipeline.normalize_samples(dataset, unl_idx);
      std::vector<const Tensor*> unl_ptrs;
      std::vector<std::size_t> truth;
      for (std::size_t i = 0; i < unl_maps.size(); ++i) {
        unl_ptrs.push_back(&unl_maps[i]);
        truth.push_back(static_cast<std::size_t>(
            dataset.samples()[unl_idx[i]].label));
      }
      auto model = pipeline.clone_cluster_model(assignment.cluster);
      core::PseudoLabelConfig fold_pl = pl;
      fold_pl.train.seed = config.seed ^ 0x9D ^ vx;
      const core::PseudoLabelResult r =
          core::pseudo_label_adapt(*model, unl_ptrs, fold_pl, &truth);
      adopted_total += r.adopted_last_round;
      adopted_correct += r.adopted_correct;
      pseudo.add(nn::evaluate(*model, test_set));
    }

    // 3. Supervised fine-tuning (paper's 20 % labelled budget).
    {
      auto model = pipeline.clone_cluster_model(assignment.cluster);
      pipeline.fine_tune_on(*model, dataset, split.ft, vx + 1);
      supervised.add(nn::evaluate(*model, test_set));
    }
  }
  no_ft.finalize();
  pseudo.finalize();
  supervised.finalize();

  AsciiTable table({"Personalization", "labels used", "Accuracy", "STD",
                    "F1", "STD F1"});
  table.set_title("Label-free personalization ablation");
  table.add_row({"none (CLEAR w/o FT)", "0",
                 AsciiTable::num(no_ft.accuracy.mean),
                 AsciiTable::num(no_ft.accuracy.stddev),
                 AsciiTable::num(no_ft.f1.mean),
                 AsciiTable::num(no_ft.f1.stddev)});
  table.add_row({"pseudo-label self-training", "0",
                 AsciiTable::num(pseudo.accuracy.mean),
                 AsciiTable::num(pseudo.accuracy.stddev),
                 AsciiTable::num(pseudo.f1.mean),
                 AsciiTable::num(pseudo.f1.stddev)});
  table.add_row({"supervised FT (paper)", "20%",
                 AsciiTable::num(supervised.accuracy.mean),
                 AsciiTable::num(supervised.accuracy.stddev),
                 AsciiTable::num(supervised.f1.mean),
                 AsciiTable::num(supervised.f1.stddev)});
  std::printf("\n");
  table.print();
  if (adopted_total > 0) {
    std::printf("\npseudo-label precision: %.1f%% (%zu of %zu adopted maps)\n",
                100.0 * static_cast<double>(adopted_correct) /
                    static_cast<double>(adopted_total),
                adopted_correct, adopted_total);
  }
  return 0;
}
