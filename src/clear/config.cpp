#include "clear/config.hpp"

namespace clear::core {

void ClearConfig::finalize() {
  model.feature_dim = 123;
  model.window_count = data.windows_per_trial;
}

ClearConfig default_config() {
  ClearConfig c;
  c.data.seed = 42;
  c.data.n_volunteers = 47;
  c.data.trials_per_volunteer = 17;
  c.data.windows_per_trial = 12;
  c.data.window_seconds = 10.0;

  c.gc.k = 4;
  c.gc.refinement_rounds = 12;
  c.gc.subsample_fraction = 0.7;
  c.gc.sub_clusters = 3;

  c.model.conv1_channels = 6;
  c.model.conv2_channels = 12;
  c.model.lstm_hidden = 32;
  c.model.dropout = 0.15;

  c.train.epochs = 10;
  c.train.batch_size = 16;
  c.train.lr = 1.5e-3;
  c.train.weight_decay = 1e-4;
  c.train.validation_fraction = 0.15;
  c.train.keep_best = true;

  c.finetune.epochs = 25;
  c.finetune.batch_size = 4;
  c.finetune.lr = 1e-3;
  c.finetune.weight_decay = 1e-4;
  c.finetune.validation_fraction = 0.0;  // Too few samples to split.
  c.finetune.keep_best = false;

  c.finalize();
  return c;
}

ClearConfig smoke_config() {
  ClearConfig c = default_config();
  c.data.n_volunteers = 12;
  c.data.trials_per_volunteer = 6;
  c.data.windows_per_trial = 8;
  c.data.window_seconds = 8.0;
  c.gc.refinement_rounds = 4;
  c.train.epochs = 3;
  c.finetune.epochs = 4;
  c.general_model_users = 5;
  c.finalize();
  return c;
}

}  // namespace clear::core
