// clear-cli — command-line front end to the CLEAR library.
//
// The tool walks through the whole life cycle of the system on the
// synthetic WEMAC substrate:
//
//   clear-cli generate  --cache-dir=DIR [--volunteers=N --trials=N --seed=S]
//       Generate (and cache) the synthetic dataset; print a summary.
//
//   clear-cli train     --artifacts=DIR [--holdout=N] [dataset flags]
//       Cloud stage: fit the pipeline on all volunteers except the last
//       `holdout` ones and save the deployment artifacts.
//
//   clear-cli info      --artifacts=DIR
//       Describe saved artifacts (clusters, sizes, model).
//
//   clear-cli assign    --artifacts=DIR --user=N [--fraction=0.1]
//       Cold-start: assign a (held-out) user from unlabeled data.
//
//   clear-cli evaluate  --artifacts=DIR --user=N
//       Evaluate every cluster model on a user's maps.
//
//   clear-cli personalize --artifacts=DIR --user=N [--ft-fraction=0.2]
//       Assign, fine-tune on the labelled share, and report before/after.
//
//   clear-cli robustness [--dropout=0,0.05,0.1] [--corrupt=0,0.01]
//                        [--jitter=0] [--folds=0] [--fault-seed=1]
//       Fault-injection sweep: rerun the CLEAR LOSO protocol on datasets
//       degraded with every (dropout, corruption) pair and print the
//       accuracy-vs-fault-rate table. The zero-fault row is bit-identical
//       to the clean `evaluate` results.
//
//   clear-cli profile   [--volunteers=6 --trials=4 --epochs=2 --folds=1]
//                       [--metrics-out=clear_profile.json]
//       Observability demo: run a tiny in-memory LOSO slice (feature
//       extraction, clustering, assignment, fine-tuning, evaluation) plus a
//       per-precision edge forward sweep with the metrics registry enabled,
//       and write the combined JSON snapshot / Chrome trace-event file.
//       Numeric results go to stdout and are bit-identical whether or not
//       metrics are recorded; the span summary goes to stderr.
//
//   clear-cli serve     [--users=32 --requests=24 --seed=7]
//                       [--artifacts=DIR] [--precisions=fp32,fp16,int8]
//                       [--max-batch=8 --max-wait-us=2000 --queue-cap=32]
//       CLEAR-Serve demo: replay a deterministic synthetic multi-user
//       workload through the session/micro-batching server. Without
//       --artifacts a small pipeline is fitted in memory first. Per-request
//       predictions and the run summary are bit-identical at any --threads
//       setting and with metrics on or off.
//
// Every command accepts the shared flags --threads=N and --metrics-out=FILE
// (see CommonFlags::help()); flags take either --key=value or --key value
// form. Results are bit-identical at any thread count, with or without
// metrics.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <map>

#include "clear/artifacts.hpp"
#include "clear/evaluation.hpp"
#include "clear/robustness.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "edge/engine.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "shard/coordinator.hpp"

using namespace clear;

namespace {

int usage(std::FILE* out = stderr) {
  std::fprintf(out,
               "usage: clear-cli <generate|train|info|assign|evaluate|"
               "personalize|robustness|profile|serve|loadgen|coord> "
               "[--flags]\n%s"
               "run `clear-cli <command> --help` for that command's flags.\n",
               CommonFlags::help());
  return out == stderr ? 2 : 0;
}

/// Per-subcommand flag reference, printed by `clear-cli <command> --help`.
/// tools/check_docs.sh greps this output to verify that every flag the
/// documentation mentions actually exists, so keep it exhaustive.
const char* command_help(const std::string& command) {
  static const std::map<std::string, const char*> kHelp = {
      {"generate",
       "clear-cli generate — generate (and cache) the synthetic WEMAC "
       "dataset\n"
       "  --cache-dir=DIR   dataset cache directory (default wemac_cache)\n"
       "  --volunteers=N    number of synthetic volunteers\n"
       "  --trials=N        trials per volunteer\n"
       "  --seed=S          dataset RNG seed\n"},
      {"train",
       "clear-cli train — cloud stage: fit the pipeline, save artifacts\n"
       "  --artifacts=DIR   output directory (required)\n"
       "  --holdout=N       volunteers held out from the fit (default 1)\n"
       "  --cache-dir=DIR   dataset cache directory (default wemac_cache)\n"
       "  --volunteers=N    number of synthetic volunteers\n"
       "  --trials=N        trials per volunteer\n"
       "  --seed=S          dataset RNG seed\n"
       "  --epochs=N        pre-training epochs per cluster model\n"
       "  --k=N             number of general clusters\n"},
      {"info",
       "clear-cli info — describe saved artifacts\n"
       "  --artifacts=DIR   artifact directory (default clear_artifacts)\n"},
      {"assign",
       "clear-cli assign — cold-start cluster assignment for one user\n"
       "  --artifacts=DIR   artifact directory (default clear_artifacts)\n"
       "  --user=N          volunteer index (default: last volunteer)\n"
       "  --fraction=F      unlabeled share used for assignment (default "
       "0.1)\n"
       "  --cache-dir=DIR   dataset cache directory (default wemac_cache)\n"
       "  --volunteers=N    number of synthetic volunteers\n"
       "  --trials=N        trials per volunteer\n"
       "  --seed=S          dataset RNG seed\n"},
      {"evaluate",
       "clear-cli evaluate — run every cluster model on a user's maps\n"
       "  --artifacts=DIR   artifact directory (default clear_artifacts)\n"
       "  --user=N          volunteer index (default: last volunteer)\n"
       "  --cache-dir=DIR   dataset cache directory (default wemac_cache)\n"
       "  --volunteers=N    number of synthetic volunteers\n"
       "  --trials=N        trials per volunteer\n"
       "  --seed=S          dataset RNG seed\n"},
      {"personalize",
       "clear-cli personalize — assign, fine-tune, report before/after\n"
       "  --artifacts=DIR   artifact directory (default clear_artifacts)\n"
       "  --user=N          volunteer index (default: last volunteer)\n"
       "  --ft-fraction=F   labelled share used for fine-tuning (default "
       "0.2)\n"
       "  --cache-dir=DIR   dataset cache directory (default wemac_cache)\n"
       "  --volunteers=N    number of synthetic volunteers\n"
       "  --trials=N        trials per volunteer\n"
       "  --seed=S          dataset RNG seed\n"},
      {"robustness",
       "clear-cli robustness — fault-injection accuracy sweep (LOSO)\n"
       "  --dropout=A,B,..  sample dropout rates (default 0,0.05,0.1)\n"
       "  --corrupt=A,B,..  sample corruption rates (default 0,0.01)\n"
       "  --jitter=F        label jitter rate (default 0)\n"
       "  --folds=N         cap on LOSO folds, 0 = all (default 0)\n"
       "  --fault-seed=S    fault-injection RNG seed (default 1)\n"
       "  --volunteers=N    number of synthetic volunteers\n"
       "  --trials=N        trials per volunteer\n"
       "  --seed=S          dataset RNG seed\n"
       "  --epochs=N        pre-training epochs per cluster model\n"
       "  --k=N             number of general clusters\n"},
      {"profile",
       "clear-cli profile — tiny LOSO slice with metrics enabled\n"
       "  --volunteers=N    number of synthetic volunteers (default 6)\n"
       "  --trials=N        trials per volunteer (default 4)\n"
       "  --epochs=N        pre-training epochs (default 2)\n"
       "  --ft-epochs=N     fine-tuning epochs (default 2)\n"
       "  --folds=N         LOSO folds to run (default 1)\n"
       "  --k=N             number of general clusters\n"
       "  --seed=S          dataset RNG seed\n"
       "  --metrics-out=F   snapshot path (default clear_profile.json)\n"
       "  --no-metrics      disable the default metrics snapshot\n"},
      {"serve",
       "clear-cli serve — replay a synthetic multi-user serving workload\n"
       "  --users=N             workload users (default 32)\n"
       "  --requests=N          requests per user (default 24)\n"
       "  --seed=S              workload RNG seed (default 7)\n"
       "  --labeled-fraction=F  share of labelled requests\n"
       "  --degraded-fraction=F share of degraded-signal users\n"
       "  --drift-fraction=F    share of users whose signal distribution\n"
       "                        shifts mid-stream (default 0)\n"
       "  --drift-at=F          drift onset as a fraction of each user's\n"
       "                        requests (default 0.5)\n"
       "  --drift-blend=F       blend weight toward the other volunteer's\n"
       "                        maps past the onset (default 0.8)\n"
       "  --drift-after=N       drift monitor: consecutive drifting windows\n"
       "                        before re-assessment; 0 disables (default 0)\n"
       "  --drift-ratio=R       drift margin: a window drifts when the\n"
       "                        incumbent's CA score exceeds R x the best\n"
       "                        other cluster's (default 1.25)\n"
       "  --reassess-windows=N  fresh windows buffered in RE_ASSESSING\n"
       "                        (default 6)\n"
       "  --shadow-windows=N    verdict windows scored in SHADOWING\n"
       "                        (default 8)\n"
       "  --artifacts=DIR       serve a trained deployment instead of\n"
       "                        fitting a small pipeline in memory\n"
       "  --precisions=LIST     fp32,fp16,int8 engines to run (default "
       "fp32)\n"
       "  --max-batch=N         micro-batch row cap (default 8)\n"
       "  --max-wait-us=N       micro-batch wait budget (default 2000)\n"
       "  --queue-cap=N         per-tick admission queue slots (default "
       "32)\n"
       "  --max-pending=N       admission-control pending cap (default "
       "256)\n"
       "  --ca-windows=N        windows buffered before assignment "
       "(default 6)\n"
       "  --ft-maps=N           labelled maps before fine-tune (default "
       "4)\n"
       "  --no-finetune         disable per-session fine-tuning\n"
       "  --cache-budget-kb=N   checkpoint cache budget (default 4096)\n"
       "  --max-sessions=N      session table cap (default 4096)\n"
       "  --data-seed=S         in-memory dataset seed (default 42)\n"
       "  --volunteers=N        in-memory dataset volunteers (default 8)\n"
       "  --trials=N            trials per volunteer (default 5)\n"
       "  --epochs=N            pre-training epochs (default 2)\n"
       "  --ft-epochs=N         fine-tuning epochs (default 2)\n"
       "  --k=N                 number of general clusters\n"
       "  --listen=HOST:PORT    serve over TCP (epoll front end) instead of\n"
       "                        replaying the synthetic workload; port 0\n"
       "                        binds an ephemeral port\n"
       "  --port-file=FILE      write the bound port here after listen\n"
       "  --max-connections=N   concurrent connection cap (default 64)\n"
       "  --idle-flush-ms=N     drain pending batches after N ms of wire\n"
       "                        silence; 0 keeps batching purely\n"
       "                        arrival-driven (default 50)\n"
       "  --journal-dir=DIR     write-ahead session journal + compacting\n"
       "                        snapshots under DIR; refuses to start over\n"
       "                        existing journal state without --recover\n"
       "  --recover             replay DIR's snapshot + journal before\n"
       "                        serving, restoring every session (requires\n"
       "                        --journal-dir); prints a recovery report\n"
       "  --snapshot-every=N    compact the journal every N records\n"
       "                        (default 1024)\n"
       "  --journal-fsync       fsync every journal append (machine-crash\n"
       "                        durability; process-crash durability needs\n"
       "                        no fsync)\n"
       "  --full-checkpoints    persist personal checkpoints as full blobs\n"
       "                        instead of deltas against the cluster base\n"
       "                        (either format always loads)\n"
       "  --rewrite-checkpoints after --recover, re-encode every persisted\n"
       "                        personal checkpoint in the current storage\n"
       "                        format, then continue serving\n"
       "  In --listen mode SIGINT/SIGTERM drain gracefully: stop accepting,\n"
       "  flush pending batches, write a final snapshot, exit 0.\n"
       "  exit codes: 0 graceful shutdown, 1 runtime error, 2 usage error\n"},
      {"coord",
       "clear-cli coord — route clients across N CLEAR-Serve shards\n"
       "  --shards=H:P,..       shard endpoints, comma-separated (required);\n"
       "                        list order defines shard ids 0..N-1\n"
       "  --shard-journals=D,.. each shard's --journal-dir, comma-separated\n"
       "                        and order-matched to --shards; an empty cell\n"
       "                        disables crash adoption for that shard\n"
       "  --listen=HOST:PORT    client-facing endpoint (default\n"
       "                        127.0.0.1:0); port 0 binds an ephemeral\n"
       "                        port and prints LISTENING <port>\n"
       "  --port-file=FILE      write the bound client-facing port here\n"
       "  --vnodes=N            consistent-hash virtual nodes per shard\n"
       "                        (default 128)\n"
       "  --ring-seed=S         placement hash seed (default 1)\n"
       "  --heartbeat-ms=N      shard liveness probe period; 0 disables\n"
       "                        (default 200)\n"
       "  --missed-limit=N      consecutive missed beats before a shard is\n"
       "                        declared dead (default 3)\n"
       "  --max-connections=N   concurrent client cap (default 64)\n"
       "  --decommission-shard=K  drain shard K mid-run, migrate its\n"
       "                        sessions to the ring survivors, shut it\n"
       "                        down (-1 disables; default -1)\n"
       "  --decommission-after=N  routed requests before the decommission\n"
       "                        starts (default 0)\n"
       "  SIGINT/SIGTERM drain gracefully: shards are drained, their\n"
       "  metrics folded under coord.*, and the fleet is shut down.\n"
       "  exit codes: 0 graceful shutdown, 1 runtime error, 2 usage error\n"},
      {"loadgen",
       "clear-cli loadgen — open-loop load generator for serve --listen\n"
       "  --connect=HOST:PORT   target server (required)\n"
       "  --connections=N       concurrent connections (default 4)\n"
       "  --requests=N          total requests, striped over connections\n"
       "                        (default 256)\n"
       "  --rate=R              offered rate in requests/sec (default 200)\n"
       "  --burstiness=B        burst factor >= 1; 1 = Poisson (default 1)\n"
       "  --seed=S              hashed-schedule seed (default 1)\n"
       "  --users=N             distinct user ids in the stream (default 8)\n"
       "  --features=N          feature-map rows (default: model default)\n"
       "  --window=N            feature-map cols (default: model default)\n"
       "  --label-fraction=F    share of labelled requests (default 0.25)\n"
       "  --timeout=SEC         give up on missing responses (default 30);\n"
       "                        unanswered requests count as dropped, the\n"
       "                        generator never hangs\n"
       "  --shutdown-after      send a shutdown frame when done\n"
       "  --drift-users=N       user ids below N drift: their maps shift by\n"
       "                        a constant offset past --drift-after-index\n"
       "                        (default 0 = no drift)\n"
       "  --drift-after-index=N absolute request index where drifting users'\n"
       "                        maps start shifting (default 0 = off)\n"
       "  --drift-shift=F       additive per-sample offset for drifted maps\n"
       "                        (default 1.5)\n"
       "  --start-index=N       resume the hashed stream at absolute request\n"
       "                        index N: sends exactly what requests\n"
       "                        [N, N+requests) of a --start-index=0 run\n"
       "                        would have sent, virtual arrivals included\n"
       "  --responses=FILE      write one line per response (sorted by\n"
       "                        request id, deterministic fields only) for\n"
       "                        bit-identity diffs across runs\n"
       "  --json=FILE           write a clear-bench-loadgen-v1 report\n"},
  };
  const auto it = kHelp.find(command);
  return it == kHelp.end() ? nullptr : it->second;
}

core::ClearConfig config_from(const CliArgs& args) {
  core::ClearConfig config = core::default_config();
  config.data.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.data.seed)));
  config.data.n_volunteers = static_cast<std::size_t>(args.get_int(
      "volunteers", static_cast<std::int64_t>(config.data.n_volunteers)));
  config.data.trials_per_volunteer = static_cast<std::size_t>(args.get_int(
      "trials", static_cast<std::int64_t>(config.data.trials_per_volunteer)));
  config.train.epochs = static_cast<std::size_t>(
      args.get_int("epochs", static_cast<std::int64_t>(config.train.epochs)));
  config.gc.k = static_cast<std::size_t>(
      args.get_int("k", static_cast<std::int64_t>(config.gc.k)));
  config.finalize();
  return config;
}

wemac::WemacDataset dataset_from(const core::ClearConfig& config,
                                 const CliArgs& args) {
  return wemac::generate_or_load(config.data,
                                 args.get("cache-dir", "wemac_cache"));
}

int cmd_generate(const CliArgs& args) {
  const core::ClearConfig config = config_from(args);
  const wemac::WemacDataset d = dataset_from(config, args);
  std::printf("volunteers: %zu\n", d.n_volunteers());
  std::printf("feature maps: %zu (%zu features x %zu windows)\n",
              d.samples().size(), d.feature_dim(),
              config.data.windows_per_trial);
  std::size_t fear = 0;
  for (const wemac::Sample& s : d.samples()) fear += s.label;
  std::printf("fear share: %.1f%%\n",
              100.0 * static_cast<double>(fear) /
                  static_cast<double>(d.samples().size()));
  std::vector<std::size_t> arch(wemac::kNumArchetypes, 0);
  for (const auto& v : d.volunteers()) ++arch[v.archetype_id];
  std::printf("archetype mix:");
  for (std::size_t a = 0; a < arch.size(); ++a)
    std::printf(" %s=%zu", wemac::default_archetypes()[a].name.c_str(),
                arch[a]);
  std::printf("\n");
  return 0;
}

int cmd_train(const CliArgs& args) {
  const std::string out = args.get("artifacts", "");
  if (out.empty()) {
    std::fprintf(stderr, "train requires --artifacts=DIR\n");
    return 2;
  }
  const core::ClearConfig config = config_from(args);
  const wemac::WemacDataset d = dataset_from(config, args);
  const auto holdout = static_cast<std::size_t>(args.get_int("holdout", 1));
  if (holdout + 4 > d.n_volunteers()) {
    std::fprintf(stderr, "holdout leaves too few training users\n");
    return 2;
  }
  std::vector<std::size_t> users;
  for (std::size_t u = 0; u + holdout < d.n_volunteers(); ++u)
    users.push_back(u);
  std::printf("fitting pipeline on %zu users (%zu held out)...\n",
              users.size(), holdout);
  core::ClearPipeline pipeline(config);
  pipeline.fit(d, users);
  for (std::size_t k = 0; k < pipeline.n_clusters(); ++k)
    std::printf("  cluster %zu: %zu users\n", k,
                pipeline.clustering().clusters[k].members.size());
  core::save_pipeline(pipeline, out);
  std::printf("artifacts written to %s\n", out.c_str());
  return 0;
}

int cmd_info(const CliArgs& args) {
  core::ClearPipeline pipeline =
      core::load_pipeline(args.get("artifacts", "clear_artifacts"));
  const auto& config = pipeline.config();
  std::printf("clusters: %zu\n", pipeline.n_clusters());
  for (std::size_t k = 0; k < pipeline.n_clusters(); ++k) {
    const auto& c = pipeline.clustering().clusters[k];
    std::printf("  cluster %zu: %zu users, %zu sub-centroids\n", k,
                c.members.size(), c.sub_centroids.size());
  }
  std::printf("model: %zux%zu map, conv %zu->%zu, LSTM %zu, %zu params\n",
              config.model.feature_dim, config.model.window_count,
              config.model.conv1_channels, config.model.conv2_channels,
              config.model.lstm_hidden,
              pipeline.cluster_model(0).parameter_count());
  std::printf("fitted users: %zu\n", pipeline.fitted_users().size());
  return 0;
}

int cmd_assign(const CliArgs& args) {
  const core::ClearConfig config = config_from(args);
  const wemac::WemacDataset d = dataset_from(config, args);
  core::ClearPipeline pipeline =
      core::load_pipeline(args.get("artifacts", "clear_artifacts"));
  const auto user = static_cast<std::size_t>(args.get_int("user",
      static_cast<std::int64_t>(d.n_volunteers() - 1)));
  const double fraction = args.get_double("fraction", 0.1);
  const cluster::AssignmentResult r =
      pipeline.assign_user(d, user, fraction);
  std::printf("user %zu -> cluster %zu (from %.0f%% unlabeled data)\n", user,
              r.cluster, fraction * 100.0);
  for (std::size_t k = 0; k < r.scores.size(); ++k)
    std::printf("  cluster %zu score: %.4f%s\n", k, r.scores[k],
                k == r.cluster ? "  <-- assigned" : "");
  return 0;
}

int cmd_evaluate(const CliArgs& args) {
  const core::ClearConfig config = config_from(args);
  const wemac::WemacDataset d = dataset_from(config, args);
  core::ClearPipeline pipeline =
      core::load_pipeline(args.get("artifacts", "clear_artifacts"));
  const auto user = static_cast<std::size_t>(args.get_int("user",
      static_cast<std::int64_t>(d.n_volunteers() - 1)));
  const auto& samples = d.samples_of(user);
  const std::vector<std::size_t> idx(samples.begin(), samples.end());
  AsciiTable table({"cluster", "accuracy", "F1"});
  table.set_title("user " + std::to_string(user) + " on every cluster model");
  for (std::size_t k = 0; k < pipeline.n_clusters(); ++k) {
    const nn::BinaryMetrics m = pipeline.evaluate_on(d, k, idx);
    table.add_row({std::to_string(k),
                   AsciiTable::num(m.accuracy * 100.0, 1) + "%",
                   AsciiTable::num(m.f1 * 100.0, 1) + "%"});
  }
  table.print();
  return 0;
}

int cmd_personalize(const CliArgs& args) {
  core::ClearConfig config = config_from(args);
  config.ft_fraction = args.get_double("ft-fraction", config.ft_fraction);
  const wemac::WemacDataset d = dataset_from(config, args);
  core::ClearPipeline pipeline =
      core::load_pipeline(args.get("artifacts", "clear_artifacts"));
  const auto user = static_cast<std::size_t>(args.get_int("user",
      static_cast<std::int64_t>(d.n_volunteers() - 1)));
  const auto assignment = pipeline.assign_user(d, user, config.ca_fraction);
  const core::UserSplit split = core::split_user_samples(
      d, user, config.ca_fraction, config.ft_fraction);
  const nn::BinaryMetrics before =
      pipeline.evaluate_on(d, assignment.cluster, split.test);
  auto personal = pipeline.clone_cluster_model(assignment.cluster);
  pipeline.fine_tune_on(*personal, d, split.ft);
  const std::vector<Tensor> test_maps = pipeline.normalize_samples(d, split.test);
  nn::MapDataset test_set;
  for (std::size_t i = 0; i < test_maps.size(); ++i) {
    test_set.maps.push_back(&test_maps[i]);
    test_set.labels.push_back(
        static_cast<std::size_t>(d.samples()[split.test[i]].label));
  }
  const nn::BinaryMetrics after = nn::evaluate(*personal, test_set);
  std::printf("user %zu (cluster %zu, %zu labelled maps):\n", user,
              assignment.cluster, split.ft.size());
  std::printf("  before fine-tuning: %.1f%% accuracy / %.1f%% F1\n",
              before.accuracy * 100.0, before.f1 * 100.0);
  std::printf("  after fine-tuning:  %.1f%% accuracy / %.1f%% F1\n",
              after.accuracy * 100.0, after.f1 * 100.0);
  return 0;
}

std::vector<double> rate_list(const CliArgs& args, const std::string& flag,
                              std::vector<double> fallback) {
  const std::string raw = args.get(flag, "");
  if (raw.empty()) return fallback;
  std::vector<double> rates;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t comma = raw.find(',', start);
    const std::string cell =
        raw.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    rates.push_back(csv::parse_double(cell, 0, rates.size()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  CLEAR_CHECK_MSG(!rates.empty(), "--" << flag << " needs at least one rate");
  return rates;
}

int cmd_robustness(const CliArgs& args) {
  const core::ClearConfig config = config_from(args);
  core::RobustnessOptions options;
  options.dropout_rates = rate_list(args, "dropout", {0.0, 0.05, 0.10});
  options.corrupt_rates = rate_list(args, "corrupt", {0.0, 0.01});
  options.jitter_rate = args.get_double("jitter", 0.0);
  options.max_folds = static_cast<std::size_t>(args.get_int("folds", 0));
  options.fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  options.progress = [](std::size_t cell, std::size_t total,
                        const core::RobustnessPoint& p) {
    std::printf("[%zu/%zu] dropout=%.3f corrupt=%.3f ...\n", cell + 1, total,
                p.dropout_rate, p.corrupt_rate);
    std::fflush(stdout);
  };

  const std::vector<core::RobustnessPoint> points =
      core::run_robustness_sweep(config, options);

  AsciiTable table({"dropout", "corrupt", "faulted", "w/o FT acc",
                    "w/o FT F1", "RT acc", "CA cons"});
  table.set_title("CLEAR accuracy vs fault rate (LOSO, fault seed " +
                  std::to_string(options.fault_seed) + ")");
  for (const core::RobustnessPoint& p : points) {
    table.add_row({AsciiTable::num(p.dropout_rate * 100.0, 1) + "%",
                   AsciiTable::num(p.corrupt_rate * 100.0, 1) + "%",
                   AsciiTable::num(p.faults.faulted_fraction() * 100.0, 2) +
                       "%",
                   AsciiTable::num(p.no_ft.accuracy.mean, 1) + "±" +
                       AsciiTable::num(p.no_ft.accuracy.stddev, 1),
                   AsciiTable::num(p.no_ft.f1.mean, 1) + "±" +
                       AsciiTable::num(p.no_ft.f1.stddev, 1),
                   AsciiTable::num(p.rt.accuracy.mean, 1),
                   AsciiTable::num(p.ca_consistency, 2)});
  }
  table.print();
  return 0;
}

int cmd_profile(const CliArgs& args) {
  core::ClearConfig config = core::default_config();
  config.data.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.data.seed)));
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 6));
  config.data.trials_per_volunteer =
      static_cast<std::size_t>(args.get_int("trials", 4));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 2));
  config.finetune.epochs =
      static_cast<std::size_t>(args.get_int("ft-epochs", 2));
  config.gc.k = static_cast<std::size_t>(
      args.get_int("k", static_cast<std::int64_t>(config.gc.k)));
  config.finalize();

  // Generate in memory (no cache) so the feature-extraction spans of every
  // synthesized window land in the trace instead of being skipped by a
  // cache hit.
  const wemac::WemacDataset d = wemac::generate_wemac(config.data);

  core::ClearOptions options;
  options.max_folds = static_cast<std::size_t>(args.get_int("folds", 1));
  options.run_finetune = true;
  const core::ClearValidationResult r =
      core::run_clear_validation(d, config, options);

  // Numeric results on stdout: bit-identical with metrics on or off (the
  // registry is write-only from the pipeline's point of view).
  AsciiTable table({"fold", "w/o FT acc", "w/o FT F1", "w FT acc", "w FT F1"});
  table.set_title("profile slice (" + std::to_string(options.max_folds) +
                  " LOSO fold(s))");
  for (std::size_t f = 0; f < r.no_ft.folds(); ++f)
    table.add_row({std::to_string(f),
                   AsciiTable::num(r.no_ft.fold_accuracy[f], 4),
                   AsciiTable::num(r.no_ft.fold_f1[f], 4),
                   AsciiTable::num(r.with_ft.fold_accuracy[f], 4),
                   AsciiTable::num(r.with_ft.fold_f1[f], 4)});
  table.print();

  // Per-precision edge forward sweep so the trace carries the edge engine's
  // kernel timings next to the pipeline phases.
  const std::vector<std::size_t>& samples = d.samples_of(0);
  std::vector<Tensor> maps;
  std::vector<const Tensor*> map_ptrs;
  nn::MapDataset edge_set;
  for (const std::size_t s : samples) {
    maps.push_back(d.samples()[s].feature_map);
    edge_set.labels.push_back(
        static_cast<std::size_t>(d.samples()[s].label));
  }
  for (const Tensor& m : maps) {
    map_ptrs.push_back(&m);
    edge_set.maps.push_back(&m);
  }
  for (const edge::Precision p :
       {edge::Precision::kFp32, edge::Precision::kFp16,
        edge::Precision::kInt8}) {
    Rng rng(config.seed ^ 0xED6E);
    edge::EngineConfig ec;
    ec.precision = p;
    edge::EdgeEngine engine(nn::build_cnn_lstm(config.model, rng), ec);
    if (p == edge::Precision::kInt8) engine.calibrate(map_ptrs);
    const nn::BinaryMetrics m = engine.evaluate(edge_set);
    std::printf("edge %s: %.4f accuracy over %zu maps\n",
                edge::precision_name(p), m.accuracy, edge_set.size());
  }
  return 0;
}

std::vector<edge::Precision> precisions_from(const CliArgs& args) {
  const std::string raw = args.get("precisions", "fp32");
  std::vector<edge::Precision> out;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t comma = raw.find(',', start);
    const std::string cell =
        raw.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (cell == "fp32") out.push_back(edge::Precision::kFp32);
    else if (cell == "fp16") out.push_back(edge::Precision::kFp16);
    else if (cell == "int8") out.push_back(edge::Precision::kInt8);
    else CLEAR_CHECK_MSG(false, "unknown precision: " << cell);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  CLEAR_CHECK_MSG(!out.empty(), "--precisions needs at least one entry");
  return out;
}

void print_serve_summary(const serve::Server& server) {
  const serve::ServeCounters& c = server.counters();
  std::printf("-- serve summary --\n");
  std::printf(
      "requests=%zu ok=%zu shed=%zu batches=%zu rows=%zu max_batch=%zu\n",
      c.requests, c.ok, c.shed, c.batches, c.rows, c.max_batch_rows);
  std::printf(
      "assignments=%zu finetunes=%zu ft_failures=%zu sanitized=%zu "
      "degraded=%zu recovered=%zu\n",
      c.assignments, c.finetunes, c.finetune_failures, c.sanitized,
      c.degraded, c.recovered);
  // Gated on activity so drift-disabled runs (the goldens) print nothing new.
  if (c.drift_ticks > 0)
    std::printf(
        "drift: ticks=%zu detected=%zu reassessments=%zu false_alarms=%zu "
        "shadow_ticks=%zu promotions=%zu demotions=%zu\n",
        c.drift_ticks, c.drift_detected, c.reassessments,
        c.drift_false_alarms, c.shadow_ticks, c.promotions, c.demotions);
  // Gated on activity like drift: journal-less runs print nothing new.
  if (c.delta_encoded + c.delta_full_fallbacks + c.delta_loads > 0)
    std::printf(
        "delta: encoded=%zu full_fallbacks=%zu loads=%zu bytes_saved=%zu\n",
        c.delta_encoded, c.delta_full_fallbacks, c.delta_loads,
        c.delta_bytes_saved);
  const serve::CacheStats& cs = server.cache().stats();
  std::printf(
      "cache: hits=%zu misses=%zu evictions=%zu fallbacks=%zu resident=%zu "
      "bytes=%zu\n",
      cs.hits, cs.misses, cs.evictions, cs.fallbacks, server.cache().size(),
      cs.bytes_in_use);
}

// SIGINT/SIGTERM → graceful drain for `serve --listen`. NetServer::stop()
// is async-signal-safe (it writes one byte to a self-pipe), so the handler
// may call it directly; the event loop then stops accepting, flushes every
// pending batch, writes a final snapshot when journaling, and run() returns.
std::atomic<net::NetServer*> g_signal_target{nullptr};

extern "C" void on_stop_signal(int) {
  net::NetServer* target = g_signal_target.load(std::memory_order_relaxed);
  if (target != nullptr) target->stop();
}

int cmd_serve(const CliArgs& args) {
  // The serve demo is sized like `profile`, not like a full cloud run: a
  // small dataset is generated in memory and (unless --artifacts points at a
  // trained deployment) a pipeline is fitted on all but the last two
  // volunteers, so the replayed workload contains genuinely cold users.
  // When --artifacts is given, pass the same dataset flags used at train
  // time so the workload's feature maps match the model geometry.
  core::ClearConfig config = core::default_config();
  config.data.seed =
      static_cast<std::uint64_t>(args.get_int("data-seed", 42));
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 8));
  config.data.trials_per_volunteer =
      static_cast<std::size_t>(args.get_int("trials", 5));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 2));
  config.finetune.epochs =
      static_cast<std::size_t>(args.get_int("ft-epochs", 2));
  config.gc.k = static_cast<std::size_t>(
      args.get_int("k", static_cast<std::int64_t>(config.gc.k)));
  config.finalize();

  const wemac::WemacDataset d = wemac::generate_wemac(config.data);

  serve::ModelSource source;
  const std::string artifacts = args.get("artifacts", "");
  if (!artifacts.empty()) {
    source = serve::ModelSource::from_artifacts(artifacts);
  } else {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < d.n_volunteers(); ++u) users.push_back(u);
    std::printf("fitting pipeline on %zu of %zu volunteers...\n",
                users.size(), d.n_volunteers());
    std::fflush(stdout);
    core::ClearPipeline pipeline(config);
    pipeline.fit(d, users);
    source = serve::ModelSource::from_pipeline(pipeline);
  }

  serve::ServeConfig sc;
  sc.batch.max_batch =
      static_cast<std::size_t>(args.get_int("max-batch", 8));
  sc.batch.max_wait_us =
      static_cast<std::uint64_t>(args.get_int("max-wait-us", 2000));
  sc.batch.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 32));
  sc.batch.max_pending =
      static_cast<std::size_t>(args.get_int("max-pending", 256));
  sc.session.ca_windows =
      static_cast<std::size_t>(args.get_int("ca-windows", 6));
  sc.session.ft_maps = static_cast<std::size_t>(args.get_int("ft-maps", 4));
  sc.session.enable_finetune = !args.get_bool("no-finetune", false);
  sc.session.drift_after =
      static_cast<std::size_t>(args.get_int("drift-after", 0));
  sc.session.drift_ratio =
      args.get_double("drift-ratio", sc.session.drift_ratio);
  sc.session.reassess_windows = static_cast<std::size_t>(args.get_int(
      "reassess-windows",
      static_cast<std::int64_t>(sc.session.reassess_windows)));
  sc.session.shadow_windows = static_cast<std::size_t>(args.get_int(
      "shadow-windows", static_cast<std::int64_t>(sc.session.shadow_windows)));
  sc.cache_budget_bytes =
      static_cast<std::size_t>(args.get_int("cache-budget-kb", 4096)) * 1024;
  sc.max_sessions =
      static_cast<std::size_t>(args.get_int("max-sessions", 4096));
  sc.precisions = precisions_from(args);
  sc.journal.directory = args.get("journal-dir", "");
  sc.journal.snapshot_every =
      static_cast<std::size_t>(args.get_int("snapshot-every", 1024));
  sc.journal.fsync = args.get_bool("journal-fsync", false);
  const bool recover = args.get_bool("recover", false);
  if (recover && sc.journal.directory.empty()) {
    std::fprintf(stderr, "--recover requires --journal-dir=DIR\n");
    return 2;
  }
  sc.delta_checkpoints = !args.get_bool("full-checkpoints", false);
  const bool rewrite_ckpts = args.get_bool("rewrite-checkpoints", false);
  if (rewrite_ckpts && !recover) {
    std::fprintf(stderr, "--rewrite-checkpoints requires --recover\n");
    return 2;
  }

  bool wants_int8 = false;
  for (const edge::Precision p : sc.precisions)
    wants_int8 |= p == edge::Precision::kInt8;
  if (wants_int8) {
    // int8 engines need activation statistics; volunteer 0's normalized
    // maps stand in for a calibration capture.
    for (const std::size_t s : d.samples_of(0)) {
      Tensor m = d.samples()[s].feature_map;
      source.normalizer.apply_map(m);
      sc.calibration_maps.push_back(std::move(m));
    }
  }

  const std::string listen = args.get("listen", "");
  if (!listen.empty()) {
    // Wire mode: the epoll front end drives the server; requests arrive as
    // frames instead of a replayed workload. Runs until a shutdown frame.
    net::NetServerConfig nc;
    nc.listen = net::parse_endpoint(listen);
    nc.max_connections =
        static_cast<std::size_t>(args.get_int("max-connections", 64));
    nc.port_file = args.get("port-file", "");
    nc.idle_flush_ms =
        static_cast<std::uint64_t>(args.get_int("idle-flush-ms", 50));
    serve::Server server(std::move(source), sc);
    if (!sc.journal.directory.empty()) {
      if (recover) {
        const serve::RecoveryReport rr = server.recover();
        std::printf("%s", rr.str().c_str());
        if (rewrite_ckpts)
          std::printf("rewrote %zu personal checkpoints\n",
                      server.rewrite_user_checkpoints());
      } else {
        server.open_journal();
        std::printf("journaling to %s (snapshot every %zu records)\n",
                    sc.journal.directory.c_str(), sc.journal.snapshot_every);
      }
    }
    net::NetServer net_server(server, nc);
    std::printf("listening on %s:%u\n", nc.listen.host.c_str(),
                net_server.port());
    // Machine-readable port line (stable contract for scripts; with port 0
    // this is how a launcher learns the ephemeral port without a file).
    std::printf("LISTENING %u\n", net_server.port());
    std::fflush(stdout);
    g_signal_target.store(&net_server);
    std::signal(SIGINT, on_stop_signal);
    std::signal(SIGTERM, on_stop_signal);
    net_server.run();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_signal_target.store(nullptr);
    print_serve_summary(server);
    const net::NetCounters& n = net_server.counters();
    std::printf(
        "net: accepted=%llu closed=%llu rejected=%llu frames_in=%llu "
        "frames_out=%llu\n",
        static_cast<unsigned long long>(n.accepted),
        static_cast<unsigned long long>(n.closed),
        static_cast<unsigned long long>(n.rejected),
        static_cast<unsigned long long>(n.frames_in),
        static_cast<unsigned long long>(n.frames_out));
    std::printf(
        "net: bytes_in=%llu bytes_out=%llu decode_errors=%llu "
        "partial_drops=%llu dropped_responses=%llu clamped=%llu\n",
        static_cast<unsigned long long>(n.bytes_in),
        static_cast<unsigned long long>(n.bytes_out),
        static_cast<unsigned long long>(n.decode_errors),
        static_cast<unsigned long long>(n.partial_drops),
        static_cast<unsigned long long>(n.dropped_responses),
        static_cast<unsigned long long>(n.clamped_arrivals));
    return 0;
  }

  serve::WorkloadConfig wc;
  wc.n_users = static_cast<std::size_t>(args.get_int("users", 32));
  wc.requests_per_user =
      static_cast<std::size_t>(args.get_int("requests", 24));
  wc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  wc.labeled_fraction =
      args.get_double("labeled-fraction", wc.labeled_fraction);
  wc.degraded_user_fraction =
      args.get_double("degraded-fraction", wc.degraded_user_fraction);
  wc.drift_user_fraction =
      args.get_double("drift-fraction", wc.drift_user_fraction);
  wc.drift_at_fraction = args.get_double("drift-at", wc.drift_at_fraction);
  wc.drift_blend = args.get_double("drift-blend", wc.drift_blend);

  std::vector<serve::ServeRequest> requests = serve::make_workload(d, wc);
  std::printf("replaying %zu requests from %zu users (seed %llu)\n",
              requests.size(), wc.n_users,
              static_cast<unsigned long long>(wc.seed));
  std::fflush(stdout);

  serve::Server server(std::move(source), sc);
  if (!sc.journal.directory.empty()) {
    if (recover) {
      const serve::RecoveryReport rr = server.recover();
      std::printf("%s", rr.str().c_str());
      if (rewrite_ckpts)
        std::printf("rewrote %zu personal checkpoints\n",
                    server.rewrite_user_checkpoints());
    } else {
      server.open_journal();
    }
  }
  const std::vector<serve::ServeResult> results =
      server.run(std::move(requests));

  for (const serve::ServeResult& r : results) {
    if (r.status == serve::ServeResult::Status::kOk) {
      std::printf(
          "user=%llu req=%llu pred=%d p=%.6f route=%s state=%s batch=%zu "
          "wait=%lluus\n",
          static_cast<unsigned long long>(r.user_id),
          static_cast<unsigned long long>(r.request_id), r.predicted,
          static_cast<double>(r.fear_probability), r.route.str().c_str(),
          serve::session_state_name(r.session_state), r.batch_rows,
          static_cast<unsigned long long>(r.exec_us - r.arrival_us));
    } else {
      std::printf("user=%llu req=%llu SHED %s\n",
                  static_cast<unsigned long long>(r.user_id),
                  static_cast<unsigned long long>(r.request_id),
                  r.error.c_str());
    }
  }

  print_serve_summary(server);

  std::map<serve::SessionState, std::size_t> by_state;
  double ttfp_total = 0.0;
  std::size_t ttfp_n = 0;
  for (const serve::Session* s : server.sessions().sessions()) {
    ++by_state[s->state()];
    if (s->first_prediction_us) {
      ttfp_total += static_cast<double>(*s->first_prediction_us -
                                        s->first_arrival_us);
      ++ttfp_n;
    }
  }
  std::printf("sessions:");
  for (const auto& [state, n] : by_state)
    std::printf(" %s=%zu", serve::session_state_name(state), n);
  std::printf("\n");
  if (ttfp_n > 0)
    std::printf(
        "mean time-to-first-prediction: %.1fus (virtual, %zu users)\n",
        ttfp_total / static_cast<double>(ttfp_n), ttfp_n);
  return 0;
}

// SIGINT/SIGTERM → graceful fleet shutdown for `coord` (same self-pipe
// pattern as the serve handler above).
std::atomic<shard::Coordinator*> g_coord_signal_target{nullptr};

extern "C" void on_coord_stop_signal(int) {
  shard::Coordinator* target =
      g_coord_signal_target.load(std::memory_order_relaxed);
  if (target != nullptr) target->stop();
}

/// Split a comma-separated list, keeping empty cells ("a,,c" has three).
std::vector<std::string> split_list(const std::string& raw) {
  std::vector<std::string> cells;
  if (raw.empty()) return cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = raw.find(',', start);
    cells.push_back(raw.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) return cells;
    start = comma + 1;
  }
}

int cmd_coord(const CliArgs& args) {
  const std::string shards_raw = args.get("shards", "");
  if (shards_raw.empty()) {
    std::fprintf(stderr, "coord requires --shards=HOST:PORT,...\n");
    return 2;
  }
  const std::vector<std::string> specs = split_list(shards_raw);
  const std::vector<std::string> journals =
      split_list(args.get("shard-journals", ""));
  if (!journals.empty() && journals.size() != specs.size()) {
    std::fprintf(stderr,
                 "--shard-journals has %zu cells but --shards has %zu\n",
                 journals.size(), specs.size());
    return 2;
  }
  shard::CoordinatorConfig cc;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    shard::ShardSpec spec;
    spec.endpoint = net::parse_endpoint(specs[i]);
    if (i < journals.size()) spec.journal_dir = journals[i];
    cc.shards.push_back(std::move(spec));
  }
  cc.listen = net::parse_endpoint(args.get("listen", "127.0.0.1:0"));
  cc.port_file = args.get("port-file", "");
  cc.ring.vnodes = static_cast<std::uint32_t>(args.get_int("vnodes", 128));
  cc.ring.seed = static_cast<std::uint64_t>(args.get_int("ring-seed", 1));
  cc.heartbeat_ms =
      static_cast<std::uint64_t>(args.get_int("heartbeat-ms", 200));
  cc.missed_limit =
      static_cast<std::size_t>(args.get_int("missed-limit", 3));
  cc.max_connections =
      static_cast<std::size_t>(args.get_int("max-connections", 64));
  cc.decommission_shard = args.get_int("decommission-shard", -1);
  cc.decommission_after =
      static_cast<std::uint64_t>(args.get_int("decommission-after", 0));

  shard::Coordinator coord(cc);
  std::printf("coordinating %zu shards\n", cc.shards.size());
  std::printf("LISTENING %u\n", coord.port());
  std::fflush(stdout);
  g_coord_signal_target.store(&coord);
  std::signal(SIGINT, on_coord_stop_signal);
  std::signal(SIGTERM, on_coord_stop_signal);
  coord.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_coord_signal_target.store(nullptr);

  const shard::CoordinatorCounters& c = coord.counters();
  std::printf("-- coord summary --\n");
  std::printf(
      "requests=%llu forwarded=%llu queued=%llu responses=%llu\n",
      static_cast<unsigned long long>(c.requests),
      static_cast<unsigned long long>(c.forwarded),
      static_cast<unsigned long long>(c.queued),
      static_cast<unsigned long long>(c.responses));
  std::printf(
      "pings=%llu missed=%llu deaths=%llu adoptions=%llu adopted=%llu "
      "migrations=%llu failed=%llu\n",
      static_cast<unsigned long long>(c.pings),
      static_cast<unsigned long long>(c.heartbeats_missed),
      static_cast<unsigned long long>(c.shard_deaths),
      static_cast<unsigned long long>(c.adoptions),
      static_cast<unsigned long long>(c.adopted_sessions),
      static_cast<unsigned long long>(c.migrations),
      static_cast<unsigned long long>(c.migrations_failed));
  return 0;
}

int cmd_loadgen(const CliArgs& args) {
  const std::string connect = args.get("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "loadgen requires --connect=HOST:PORT\n");
    return 2;
  }
  const core::ClearConfig defaults = core::default_config();
  net::LoadgenConfig lc;
  lc.target = net::parse_endpoint(connect);
  lc.connections =
      static_cast<std::size_t>(args.get_int("connections", 4));
  lc.requests = static_cast<std::size_t>(args.get_int("requests", 256));
  lc.rate_rps = args.get_double("rate", 200.0);
  lc.burstiness = args.get_double("burstiness", 1.0);
  lc.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  lc.users = static_cast<std::size_t>(args.get_int("users", 8));
  lc.features = static_cast<std::size_t>(args.get_int(
      "features", static_cast<std::int64_t>(defaults.model.feature_dim)));
  lc.window = static_cast<std::size_t>(args.get_int(
      "window", static_cast<std::int64_t>(defaults.model.window_count)));
  lc.label_fraction = args.get_double("label-fraction", 0.25);
  lc.timeout_seconds = args.get_double("timeout", 30.0);
  lc.shutdown_after = args.get_bool("shutdown-after", false);
  lc.start_index =
      static_cast<std::size_t>(args.get_int("start-index", 0));
  lc.drift_users = static_cast<std::size_t>(args.get_int("drift-users", 0));
  lc.drift_after_index =
      static_cast<std::size_t>(args.get_int("drift-after-index", 0));
  lc.drift_shift = args.get_double("drift-shift", lc.drift_shift);
  lc.responses_path = args.get("responses", "");

  const net::LoadgenReport report = net::run_loadgen(lc);

  std::printf("-- loadgen summary --\n");
  std::printf("sent=%zu received=%zu ok=%zu shed=%zu dropped=%zu\n",
              report.sent, report.received, report.ok, report.shed,
              report.dropped);
  std::printf("wall=%.3fs offered=%.1f rps achieved=%.1f rps\n",
              report.wall_seconds, report.offered_rps, report.achieved_rps);
  std::printf(
      "latency: p50=%.0fus p90=%.0fus p99=%.0fus p99.9=%.0fus max=%.0fus "
      "mean=%.0fus\n",
      report.latency.p50_us, report.latency.p90_us, report.latency.p99_us,
      report.latency.p999_us, report.latency.max_us, report.latency.mean_us);

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = report.json(lc);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report written to %s\n", json_path.c_str());
  }
  // A run where nothing came back is a failed run, whatever the counters
  // say; partial drops are reported but left to callers to gate on.
  return report.received > 0 ? 0 : 1;
}

/// Top-of-registry span summary on stderr (stdout stays numeric-only so a
/// metrics-on run is byte-comparable to a metrics-off run).
void print_span_summary() {
  const std::vector<obs::TraceEvent> events = obs::trace_events();
  struct Row {
    std::size_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, Row> rows;
  for (const obs::TraceEvent& e : events) {
    Row& row = rows[e.name];
    ++row.count;
    row.total_us += e.dur_us;
    row.max_us = std::max<std::uint64_t>(row.max_us, e.dur_us);
  }
  std::fprintf(stderr, "-- span summary (%zu events) --\n", events.size());
  for (const auto& [name, row] : rows)
    std::fprintf(stderr, "  %-24s count=%-6zu total=%.3fms max=%.3fms\n",
                 name.c_str(), row.count,
                 static_cast<double>(row.total_us) / 1000.0,
                 static_cast<double>(row.max_us) / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    if (args.positional().empty())
      return usage(args.get_bool("help", false) ? stdout : stderr);
    const std::string& command = args.positional()[0];
    if (args.get_bool("help", false)) {
      // Handled before CommonFlags::apply so `profile --help` does not
      // enable (and later snapshot) the metrics registry.
      const char* help = command_help(command);
      if (help == nullptr) {
        std::fprintf(stderr, "unknown command: %s\n", command.c_str());
        return usage();
      }
      std::printf("%s%s", help, CommonFlags::help());
      return 0;
    }
    // Shared flags (--threads / --metrics-out) behave identically across
    // every subcommand; `profile` defaults the metrics snapshot on.
    const CommonFlags flags = CommonFlags::apply(
        args, command == "profile" ? "clear_profile.json" : "");

    int rc = 2;
    bool known = true;
    if (command == "generate") rc = cmd_generate(args);
    else if (command == "train") rc = cmd_train(args);
    else if (command == "info") rc = cmd_info(args);
    else if (command == "assign") rc = cmd_assign(args);
    else if (command == "evaluate") rc = cmd_evaluate(args);
    else if (command == "personalize") rc = cmd_personalize(args);
    else if (command == "robustness") rc = cmd_robustness(args);
    else if (command == "profile") rc = cmd_profile(args);
    else if (command == "serve") rc = cmd_serve(args);
    else if (command == "loadgen") rc = cmd_loadgen(args);
    else if (command == "coord") rc = cmd_coord(args);
    else known = false;
    if (!known) {
      std::fprintf(stderr, "unknown command: %s\n", command.c_str());
      return usage();
    }
    if (!flags.metrics_out.empty()) print_span_summary();
    if (flags.finish())
      std::fprintf(stderr, "metrics written to %s\n",
                   flags.metrics_out.c_str());
    return rc;
  } catch (const clear::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
