// Shard-coordination frames over a real loopback socket: ping/pong
// liveness (including the injected heartbeat drop), session export /
// import handoff, and journal adoption — the wire mechanics the
// coordinator (src/shard) drives during rebalances and crash healing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "clear/pipeline.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "wemac/dataset.hpp"

namespace clear::net {
namespace {

namespace fs = std::filesystem;

core::ClearConfig shard_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 77;
  c.data.n_volunteers = 6;
  c.data.trials_per_volunteer = 4;
  c.train.epochs = 1;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

struct ShardFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  serve::ModelSource source;

  ShardFixture()
      : dataset(wemac::generate_wemac(shard_config().data)),
        pipeline(shard_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = serve::ModelSource::from_pipeline(pipeline);
  }
};

ShardFixture& fixture() {
  static ShardFixture f;
  return f;
}

serve::ServeConfig shard_serve_config(const std::string& journal_dir = "") {
  serve::ServeConfig sc;
  sc.session.ca_windows = 2;
  sc.session.ft_maps = 2;
  sc.journal.directory = journal_dir;
  return sc;
}

WireRequest wire_req(std::uint64_t user, std::uint64_t id, std::uint64_t t,
                     std::optional<int> label = std::nullopt) {
  auto& f = fixture();
  const auto& samples = f.dataset.samples_of(f.dataset.n_volunteers() - 1);
  const std::size_t s = samples[id % samples.size()];
  WireRequest r;
  r.user_id = user;
  r.request_id = id;
  r.arrival_us = t;
  r.quality = 1.0;
  r.label = label;
  r.map = f.dataset.samples()[s].feature_map;
  return r;
}

/// One NetServer on an ephemeral port, run on a background thread; the
/// test drives it through a BlockingClient and must send_shutdown before
/// the harness joins.
struct WireHarness {
  serve::Server server;
  NetServer net_server;
  std::thread thread;

  explicit WireHarness(const serve::ServeConfig& sc)
      : server(fixture().source, sc), net_server(server, make_net_config()) {
    if (!sc.journal.directory.empty()) server.open_journal();
    thread = std::thread([this] { net_server.run(); });
  }

  static NetServerConfig make_net_config() {
    NetServerConfig nc;
    nc.listen.port = 0;
    nc.idle_flush_ms = 0;
    return nc;
  }

  ~WireHarness() {
    if (thread.joinable()) thread.join();
  }
};

/// Submit requests [0, n) for `user`, labelling requests 2 and 3 so the
/// session crosses into PERSONALIZED, then collect every response.
void personalize_over_wire(BlockingClient& client, std::uint64_t user) {
  for (std::uint64_t i = 0; i < 5; ++i) {
    std::optional<int> label;
    if (i == 2) label = 0;
    if (i == 3) label = 1;
    client.send_request(wire_req(user, i, i * 1000, label));
  }
  client.send_drain();
  Frame frame;
  std::size_t responses = 0;
  while (client.recv_frame(frame)) {
    if (frame.type == FrameType::kDrainAck) break;
    ASSERT_EQ(frame.type, FrameType::kResponse);
    ++responses;
  }
  ASSERT_EQ(responses, 5u);
}

TEST(ShardFrames, PingPongEchoesNonceAndSessionCount) {
  WireHarness h(shard_serve_config());
  BlockingClient client({"127.0.0.1", h.net_server.port()});
  personalize_over_wire(client, 1);

  client.send_bytes(encode_ping(0xABCDEF).data(),
                    encode_ping(0xABCDEF).size());
  Frame frame;
  ASSERT_TRUE(client.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kPong);
  WirePong pong;
  std::string error;
  ASSERT_TRUE(parse_pong(frame, pong, error)) << error;
  EXPECT_EQ(pong.nonce, 0xABCDEFu);
  EXPECT_EQ(pong.sessions, 1u);
  client.send_shutdown();
}

TEST(ShardFrames, ArmedHeartbeatDropSwallowsExactlyOnePing) {
  WireHarness h(shard_serve_config());
  BlockingClient client({"127.0.0.1", h.net_server.port()});
  fault::arm_shard_drop_heartbeat(1);
  const std::string ping1 = encode_ping(111);
  const std::string ping2 = encode_ping(222);
  client.send_bytes(ping1.data(), ping1.size());  // swallowed
  client.send_bytes(ping2.data(), ping2.size());
  Frame frame;
  ASSERT_TRUE(client.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kPong);
  WirePong pong;
  std::string error;
  ASSERT_TRUE(parse_pong(frame, pong, error)) << error;
  // The first pong on the wire answers the *second* ping: the armed drop
  // fired once and disarmed itself.
  EXPECT_EQ(pong.nonce, 222u);
  fault::disarm_shard_drop_heartbeat();
  client.send_shutdown();
}

TEST(ShardFrames, ExportImportHandoffOverTheWire) {
  WireHarness losing(shard_serve_config());
  BlockingClient client_a({"127.0.0.1", losing.net_server.port()});
  personalize_over_wire(client_a, 1);

  // Export of a user this shard has never seen: found = false.
  std::string exp = encode_export(99);
  client_a.send_bytes(exp.data(), exp.size());
  Frame frame;
  ASSERT_TRUE(client_a.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kSessionImage);
  WireSessionImage image;
  std::string error;
  ASSERT_TRUE(parse_session_image(frame, image, error)) << error;
  EXPECT_FALSE(image.found);

  // Real export: image + personal checkpoint come back...
  exp = encode_export(1);
  client_a.send_bytes(exp.data(), exp.size());
  ASSERT_TRUE(client_a.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kSessionImage);
  ASSERT_TRUE(parse_session_image(frame, image, error)) << error;
  EXPECT_TRUE(image.found);
  EXPECT_FALSE(image.image.empty());
  EXPECT_FALSE(image.checkpoint.empty());

  // ...and the losing shard retired the session: a second export is empty.
  client_a.send_bytes(exp.data(), exp.size());
  ASSERT_TRUE(client_a.recv_frame(frame));
  WireSessionImage gone;
  ASSERT_TRUE(parse_session_image(frame, gone, error)) << error;
  EXPECT_FALSE(gone.found);
  client_a.send_shutdown();

  // The gaining shard accepts the image once and refuses the duplicate.
  WireHarness gaining(shard_serve_config());
  BlockingClient client_b({"127.0.0.1", gaining.net_server.port()});
  const std::string import_frame = encode_session_image(image);
  client_b.send_bytes(import_frame.data(), import_frame.size());
  ASSERT_TRUE(client_b.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kImportAck);
  WireImportAck ack;
  ASSERT_TRUE(parse_import_ack(frame, ack, error)) << error;
  EXPECT_TRUE(ack.ok) << ack.error;
  EXPECT_EQ(ack.user_id, 1u);

  client_b.send_bytes(import_frame.data(), import_frame.size());
  ASSERT_TRUE(client_b.recv_frame(frame));
  ASSERT_TRUE(parse_import_ack(frame, ack, error)) << error;
  EXPECT_FALSE(ack.ok);
  EXPECT_FALSE(ack.error.empty());

  // The migrated session serves on the gaining shard. (A drain forces the
  // flush — a lone request would otherwise sit in the batcher.)
  client_b.send_request(wire_req(1, 10, 50000));
  client_b.send_drain();
  std::optional<WireResponse> response;
  while (client_b.recv_frame(frame)) {
    if (frame.type == FrameType::kDrainAck) break;
    ASSERT_EQ(frame.type, FrameType::kResponse);
    WireResponse r;
    ASSERT_TRUE(parse_response(frame, r, error)) << error;
    response = r;
  }
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->user_id, 1u);
  client_b.send_shutdown();
}

TEST(ShardFrames, AdoptReplaysADeadShardsJournal) {
  const std::string dir =
      (fs::temp_directory_path() / "clear_shard_adopt_jd").string();
  fs::remove_all(dir);
  {
    // The "dead" shard: personalize one session, then shut down. (recover()
    // reads snapshot + journal the same way after SIGKILL — the soak covers
    // the kill; here the wire mechanics are under test.)
    WireHarness victim(shard_serve_config(dir));
    BlockingClient client({"127.0.0.1", victim.net_server.port()});
    personalize_over_wire(client, 1);
    client.send_shutdown();
  }
  ASSERT_TRUE(fs::exists(dir));

  WireHarness survivor(shard_serve_config());
  BlockingClient client({"127.0.0.1", survivor.net_server.port()});
  const std::string adopt = encode_adopt(dir);
  client.send_bytes(adopt.data(), adopt.size());
  Frame frame;
  ASSERT_TRUE(client.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kAdoptAck);
  WireAdoptAck ack;
  std::string error;
  ASSERT_TRUE(parse_adopt_ack(frame, ack, error)) << error;
  EXPECT_EQ(ack.sessions, 1u);
  EXPECT_EQ(ack.personalized, 1u);
  EXPECT_EQ(ack.failed, 0u);

  // The adopted session is live here now.
  client.send_request(wire_req(1, 20, 90000));
  client.send_drain();
  std::optional<WireResponse> response;
  while (client.recv_frame(frame)) {
    if (frame.type == FrameType::kDrainAck) break;
    ASSERT_EQ(frame.type, FrameType::kResponse);
    WireResponse r;
    std::string parse_err;
    ASSERT_TRUE(parse_response(frame, r, parse_err)) << parse_err;
    response = r;
  }
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->user_id, 1u);
  client.send_shutdown();
  fs::remove_all(dir);
}

TEST(ShardFrames, MetricsPullReturnsJson) {
  WireHarness h(shard_serve_config());
  BlockingClient client({"127.0.0.1", h.net_server.port()});
  const std::string pull = encode_metrics_pull();
  client.send_bytes(pull.data(), pull.size());
  Frame frame;
  ASSERT_TRUE(client.recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kMetricsJson);
  std::string json;
  std::string error;
  ASSERT_TRUE(parse_metrics_json(frame, json, error)) << error;
  // The payload is the same snapshot `--metrics-out` would write — the
  // coordinator folds it through obs::parse_snapshot / merge_snapshot.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  client.send_shutdown();
}

}  // namespace
}  // namespace clear::net
