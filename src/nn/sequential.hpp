// Sequential container: a pipeline of layers trained end-to-end.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace clear::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference for chaining.
  Sequential& add(LayerPtr layer);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  std::string name() const override { return "Sequential"; }
  void set_training(bool training) override;
  LayerPtr clone() const override;

  /// Deep copy preserving layer order, parameters, RNG state, and the
  /// training flag. Returns nullptr if any contained layer cannot clone
  /// itself (callers fall back to serial single-model execution).
  std::unique_ptr<Sequential> clone_sequential() const;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Freeze every layer whose index is < `boundary` (feature extractor) and
  /// unfreeze the rest — the fine-tuning split used at the edge.
  void freeze_below(std::size_t boundary);

  /// Total number of scalar parameters.
  std::size_t parameter_count();

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace clear::nn
