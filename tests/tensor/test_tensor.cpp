#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructWithData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_EQ(t.at2(1, 1), 4.0f);
}

TEST(Tensor, RejectsDataSizeMismatch) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, RejectsZeroExtent) {
  EXPECT_THROW(Tensor({2, 0}), Error);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  Tensor u({2, 2, 2});
  u.at3(1, 0, 1) = 3.0f;
  EXPECT_EQ(u[5], 3.0f);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 9.0f);
}

TEST(Tensor, BoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at2(2, 0), Error);
  EXPECT_THROW(t.at2(0, 3), Error);
  const std::size_t idx[] = {0};
  EXPECT_THROW(t.at(idx), Error);  // Rank mismatch.
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6});
  t.reshape({3, 4});
  EXPECT_EQ(t.extent(0), 3u);
  EXPECT_EQ(t.extent(1), 4u);
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  const Tensor u = t.reshaped({4});
  EXPECT_EQ(u.rank(), 1u);
  EXPECT_EQ(u[3], 4.0f);
  EXPECT_EQ(t.rank(), 2u);  // Original untouched.
}

TEST(Tensor, FillAndFactories) {
  Tensor t = Tensor::full({3}, 2.5f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
  const Tensor ones = Tensor::ones({2, 2});
  EXPECT_EQ(ones[3], 1.0f);
  t.zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, FillNormalHasRightMoments) {
  Rng rng(5);
  Tensor t({10000});
  t.fill_normal(rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (const float v : t.flat()) sum += v;
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.1);
}

TEST(Tensor, FillUniformRespectsBounds) {
  Rng rng(5);
  Tensor t({1000});
  t.fill_uniform(rng, -1.0f, 1.0f);
  for (const float v : t.flat()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).same_shape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).same_shape(Tensor({3, 2})));
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3}).shape_str(), "[2, 3]");
}

}  // namespace
}  // namespace clear
