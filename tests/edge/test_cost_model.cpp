#include "edge/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear::edge {
namespace {

nn::CnnLstmConfig paper_model() {
  nn::CnnLstmConfig c;
  c.feature_dim = 123;
  c.window_count = 12;
  c.conv1_channels = 6;
  c.conv2_channels = 12;
  c.lstm_hidden = 32;
  return c;
}

TEST(CostModel, DeviceNames) {
  EXPECT_STREQ(device_name(DeviceKind::kGpu), "GPU");
  EXPECT_STREQ(device_name(DeviceKind::kCoralTpu), "Coral TPU");
  EXPECT_STREQ(device_name(DeviceKind::kPiNcs2), "Pi + NCS2");
}

TEST(CostModel, DevicePrecisionsMatchPaper) {
  EXPECT_EQ(device_spec(DeviceKind::kGpu).precision, Precision::kFp32);
  EXPECT_EQ(device_spec(DeviceKind::kCoralTpu).precision, Precision::kInt8);
  EXPECT_EQ(device_spec(DeviceKind::kPiNcs2).precision, Precision::kFp16);
}

TEST(CostModel, MacCountPositiveAndScalesWithModel) {
  const double base = model_inference_macs(paper_model());
  EXPECT_GT(base, 1e5);
  nn::CnnLstmConfig bigger = paper_model();
  bigger.conv2_channels *= 2;
  EXPECT_GT(model_inference_macs(bigger), base);
  nn::CnnLstmConfig wider = paper_model();
  wider.lstm_hidden *= 2;
  EXPECT_GT(model_inference_macs(wider), base);
}

TEST(CostModel, InferenceLatencyOrdering) {
  // Table II: TPU test 47 ms << NCS2 test 240 ms; GPU far below both.
  const double macs = model_inference_macs(paper_model());
  const double gpu = estimate_inference(device_spec(DeviceKind::kGpu), macs).seconds;
  const double tpu =
      estimate_inference(device_spec(DeviceKind::kCoralTpu), macs).seconds;
  const double ncs2 =
      estimate_inference(device_spec(DeviceKind::kPiNcs2), macs).seconds;
  EXPECT_LT(gpu, tpu);
  EXPECT_LT(tpu, ncs2);
  EXPECT_GT(ncs2 / tpu, 3.0);
}

TEST(CostModel, InferenceLatencyNearPaperValues) {
  const double macs = model_inference_macs(paper_model());
  const double tpu_ms =
      estimate_inference(device_spec(DeviceKind::kCoralTpu), macs).seconds * 1e3;
  const double ncs2_ms =
      estimate_inference(device_spec(DeviceKind::kPiNcs2), macs).seconds * 1e3;
  EXPECT_NEAR(tpu_ms, 47.31, 15.0);
  EXPECT_NEAR(ncs2_ms, 239.70, 60.0);
}

TEST(CostModel, FinetuningLatencyOrderingAndMagnitude) {
  const double macs = model_inference_macs(paper_model());
  // The paper's FT protocol: ~4 labelled maps, 25 epochs, batch 4.
  const auto tpu = estimate_finetuning(device_spec(DeviceKind::kCoralTpu),
                                       macs, 4, 25, 4);
  const auto ncs2 = estimate_finetuning(device_spec(DeviceKind::kPiNcs2),
                                        macs, 4, 25, 4);
  EXPECT_LT(tpu.seconds, ncs2.seconds);
  EXPECT_NEAR(tpu.seconds, 32.48, 12.0);
  EXPECT_NEAR(ncs2.seconds, 78.52, 25.0);
}

TEST(CostModel, PowerOrderingMatchesPaper) {
  const DeviceSpec tpu = device_spec(DeviceKind::kCoralTpu);
  const DeviceSpec ncs2 = device_spec(DeviceKind::kPiNcs2);
  // Idle < inference < training on each device.
  EXPECT_LT(tpu.idle_power_w, tpu.infer_power_w);
  EXPECT_LT(tpu.infer_power_w, tpu.train_power_w);
  EXPECT_LT(ncs2.idle_power_w, ncs2.infer_power_w);
  EXPECT_LT(ncs2.infer_power_w, ncs2.train_power_w);
  // TPU draws less than the Pi+NCS2 stack across the board.
  EXPECT_LT(tpu.idle_power_w, ncs2.idle_power_w);
  EXPECT_LT(tpu.train_power_w, ncs2.train_power_w);
}

TEST(CostModel, PaperPowerValues) {
  const DeviceSpec tpu = device_spec(DeviceKind::kCoralTpu);
  EXPECT_NEAR(tpu.idle_power_w, 1.28, 1e-9);
  EXPECT_NEAR(tpu.infer_power_w, 1.64, 1e-9);
  EXPECT_NEAR(tpu.train_power_w, 1.82, 1e-9);
  const DeviceSpec ncs2 = device_spec(DeviceKind::kPiNcs2);
  EXPECT_NEAR(ncs2.idle_power_w, 2.76, 1e-9);
  EXPECT_NEAR(ncs2.infer_power_w, 3.43, 1e-9);
  EXPECT_NEAR(ncs2.train_power_w, 3.78, 1e-9);
}

TEST(CostModel, EnergyIsPowerTimesTime) {
  const auto e = estimate_inference(device_spec(DeviceKind::kCoralTpu), 1e6);
  EXPECT_NEAR(e.energy_j, e.seconds * e.power_w, 1e-12);
}

TEST(CostModel, FinetuningScalesWithEpochs) {
  const double macs = 1e6;
  const DeviceSpec spec = device_spec(DeviceKind::kCoralTpu);
  const double t10 = estimate_finetuning(spec, macs, 4, 10, 4).seconds;
  const double t20 = estimate_finetuning(spec, macs, 4, 20, 4).seconds;
  EXPECT_GT(t20, t10 * 1.5);
}

TEST(CostModel, Validation) {
  const DeviceSpec spec = device_spec(DeviceKind::kGpu);
  EXPECT_THROW(estimate_inference(spec, 0.0), Error);
  EXPECT_THROW(estimate_finetuning(spec, 1e6, 0, 1, 1), Error);
  EXPECT_THROW(estimate_finetuning(spec, 1e6, 1, 0, 1), Error);
  EXPECT_THROW(estimate_finetuning(spec, 1e6, 1, 1, 0), Error);
}

}  // namespace
}  // namespace clear::edge
