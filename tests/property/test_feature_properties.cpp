// Parameterized feature-extraction properties: well-defined behaviour of the
// 123-feature recipe under input transformations (offsets, gains, window
// lengths) and the stimulus-response monotonicity the task relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "features/feature_map.hpp"
#include "features/gsr_features.hpp"
#include "features/skt_features.hpp"
#include "wemac/synth.hpp"

namespace clear::features {
namespace {

std::vector<double> noisy_gsr(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n, 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 8.0;
    for (double t0 = 1.5; t0 < t; t0 += 6.0) {
      const double dt = t - t0;
      if (dt < 20.0)
        x[i] += 0.4 * (1.0 - std::exp(-dt / 0.7)) * std::exp(-dt / 4.0);
    }
    x[i] += rng.normal(0.0, 0.02);
  }
  return x;
}

// ---- GSR: offset invariance of dispersion/dynamics features -------------------

class OffsetSweep : public ::testing::TestWithParam<double> {};

TEST_P(OffsetSweep, GsrDispersionFeaturesOffsetInvariant) {
  const double offset = GetParam();
  const auto base = noisy_gsr(400, 3);
  std::vector<double> shifted = base;
  for (double& v : shifted) v += offset;
  const auto f0 = extract_gsr_features(base, 8.0);
  const auto f1 = extract_gsr_features(shifted, 8.0);
  const auto& names = gsr_feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& n = names[i];
    // Location features shift by exactly the offset...
    if (n == "gsr_mean" || n == "gsr_min" || n == "gsr_max" ||
        n == "gsr_median" || n == "gsr_tonic_mean") {
      EXPECT_NEAR(f1[i] - f0[i], offset, 0.05 + 1e-3 * std::abs(offset)) << n;
    }
    // ...while dispersion/dynamics/event features are offset-invariant.
    if (n == "gsr_std" || n == "gsr_iqr" || n == "gsr_range" ||
        n == "gsr_std_d1" || n == "gsr_scr_count" || n == "gsr_slope" ||
        n == "gsr_phasic_std") {
      EXPECT_NEAR(f1[i], f0[i], 0.05 + 0.02 * std::abs(f0[i])) << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetSweep,
                         ::testing::Values(-3.0, -0.5, 0.5, 2.0, 10.0));

// ---- SKT: exact affine behaviour ------------------------------------------------

class SktGainSweep : public ::testing::TestWithParam<double> {};

TEST_P(SktGainSweep, FeaturesScaleLinearly) {
  const double gain = GetParam();
  Rng rng(7);
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 33.0 + 0.005 * static_cast<double>(i) + rng.normal(0.0, 0.01);
  std::vector<double> scaled = x;
  for (double& v : scaled) v *= gain;
  const auto f0 = extract_skt_features(x, 4.0);
  const auto f1 = extract_skt_features(scaled, 4.0);
  // All five SKT features (mean, std, slope, min, max) are homogeneous of
  // degree 1 under positive gains.
  for (std::size_t i = 0; i < f0.size(); ++i)
    EXPECT_NEAR(f1[i], f0[i] * gain, 1e-6 * std::abs(f0[i] * gain) + 1e-9)
        << skt_feature_names()[i];
}

INSTANTIATE_TEST_SUITE_P(Gains, SktGainSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 10.0));

// ---- Window length: every supported length yields finite 123-vectors ----------

class WindowLengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(WindowLengthSweep, FullVectorFiniteAtEveryLength) {
  const double seconds = GetParam();
  Rng prof_rng(11);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[1], 0, 1, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kFear;
  stim.duration_s = std::max(seconds + 1.0, 12.0);
  Rng rng(13);
  const wemac::TrialSignals trial =
      wemac::synthesize_trial(profile, stim, {}, rng);
  const auto windows = wemac::slice_windows(trial, seconds);
  ASSERT_FALSE(windows.empty());
  const auto f = extract_window_features(windows[0]);
  ASSERT_EQ(f.size(), kTotalFeatureCount);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_TRUE(std::isfinite(f[i])) << all_feature_names()[i];
}

INSTANTIATE_TEST_SUITE_P(Lengths, WindowLengthSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0, 30.0));

// ---- Stimulus monotonicity: stronger fear -> larger electrodermal response -----

class ArousalSweep : public ::testing::TestWithParam<double> {};

TEST_P(ArousalSweep, PhasicEnergyGrowsWithFearRate) {
  // Note: the *count* of detected SCRs saturates at high event rates
  // (overlapping responses merge), so the monotone observable is the
  // phasic energy, which keeps integrating every event.
  const double rate_scale = GetParam();
  const auto idx = 21u;  // gsr_phasic_energy.
  ASSERT_EQ(gsr_feature_names()[idx], "gsr_phasic_energy");
  auto total_count = [&](double scale) {
    Rng prof_rng(17);
    wemac::VolunteerProfile p = wemac::sample_profile(
        wemac::default_archetypes()[0], 0, 0, prof_rng);
    p.gsr_gain = 1.0;
    p.scr_rate_fear = p.scr_rate_base + scale * 8.0;
    wemac::Stimulus fear;
    fear.emotion = wemac::Emotion::kFear;
    fear.duration_s = 120.0;
    double count = 0.0;
    for (std::uint64_t s = 0; s < 6; ++s) {
      Rng rng(700 + s);
      const auto trial = wemac::synthesize_trial(p, fear, {}, rng);
      for (const auto& w : wemac::slice_windows(trial, 30.0))
        count += extract_gsr_features(w.gsr, w.gsr_rate)[idx];
    }
    return count;
  };
  // Doubling the fear-driven SCR rate must not reduce the detected count.
  EXPECT_GE(total_count(rate_scale * 2.0), total_count(rate_scale) * 0.9)
      << "scale=" << rate_scale;
}

INSTANTIATE_TEST_SUITE_P(Rates, ArousalSweep,
                         ::testing::Values(0.25, 0.75, 1.5));

}  // namespace
}  // namespace clear::features
