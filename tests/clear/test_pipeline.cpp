#include "clear/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear::core {
namespace {

ClearConfig test_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 21;
  c.data.n_volunteers = 10;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finalize();
  return c;
}

/// Dataset + fitted pipeline shared across tests (fitting trains 4 models).
struct SharedFixture {
  ClearConfig config = test_config();
  wemac::WemacDataset dataset;
  ClearPipeline pipeline;
  std::vector<std::size_t> initial_users;

  SharedFixture()
      : dataset(wemac::generate_wemac(test_config().data)),
        pipeline(test_config()) {
    for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
      initial_users.push_back(u);
    pipeline.fit(dataset, initial_users);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

TEST(Pipeline, FitProducesKClustersAndModels) {
  auto& f = fixture();
  EXPECT_TRUE(f.pipeline.fitted());
  EXPECT_EQ(f.pipeline.n_clusters(), f.config.gc.k);
  EXPECT_EQ(f.pipeline.clustering().clusters.size(), f.config.gc.k);
  std::size_t members = 0;
  for (const auto& c : f.pipeline.clustering().clusters)
    members += c.members.size();
  EXPECT_EQ(members, f.initial_users.size());
}

TEST(Pipeline, FittedUsersRecorded) {
  auto& f = fixture();
  EXPECT_EQ(f.pipeline.fitted_users(), f.initial_users);
}

TEST(Pipeline, AssignUserReturnsValidCluster) {
  auto& f = fixture();
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  const cluster::AssignmentResult r =
      f.pipeline.assign_user(f.dataset, new_user, 0.2);
  EXPECT_LT(r.cluster, f.config.gc.k);
  EXPECT_EQ(r.scores.size(), f.config.gc.k);
  // Chosen cluster has the minimal score.
  for (const double s : r.scores) EXPECT_GE(s, r.scores[r.cluster]);
}

TEST(Pipeline, AssignmentStrategiesAllWork) {
  auto& f = fixture();
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  for (const auto strategy :
       {cluster::AssignStrategy::kSubCentroidSum,
        cluster::AssignStrategy::kFlatCentroid,
        cluster::AssignStrategy::kObservationVote}) {
    const auto r = f.pipeline.assign_user(f.dataset, new_user, 0.3, strategy);
    EXPECT_LT(r.cluster, f.config.gc.k);
  }
}

TEST(Pipeline, EvaluateOnReturnsSaneMetrics) {
  auto& f = fixture();
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  const auto& samples = f.dataset.samples_of(new_user);
  const nn::BinaryMetrics m = f.pipeline.evaluate_on(
      f.dataset, 0, std::vector<std::size_t>(samples.begin(), samples.end()));
  EXPECT_EQ(m.count(), samples.size());
  EXPECT_GE(m.accuracy, 0.0);
  EXPECT_LE(m.accuracy, 1.0);
}

TEST(Pipeline, CloneIsIndependentCopy) {
  auto& f = fixture();
  auto clone = f.pipeline.clone_cluster_model(0);
  // Same outputs initially.
  const std::size_t user = f.dataset.n_volunteers() - 1;
  const auto idx = f.dataset.samples_of(user);
  const std::vector<Tensor> maps = f.pipeline.normalize_samples(
      f.dataset, std::vector<std::size_t>(idx.begin(), idx.end()));
  nn::MapDataset set;
  for (std::size_t i = 0; i < maps.size(); ++i) {
    set.maps.push_back(&maps[i]);
    set.labels.push_back(
        static_cast<std::size_t>(f.dataset.samples()[idx[i]].label));
  }
  clone->set_training(false);
  f.pipeline.cluster_model(0).set_training(false);
  const auto p_orig = nn::predict_classes(f.pipeline.cluster_model(0), set);
  const auto p_clone = nn::predict_classes(*clone, set);
  EXPECT_EQ(p_orig, p_clone);
  // Mutating the clone leaves the original untouched.
  clone->parameters()[0]->value.fill(0.0f);
  EXPECT_NE(f.pipeline.cluster_model(0).parameters()[0]->value[0], 0.0f);
}

TEST(Pipeline, FineTuneImprovesOrMaintainsUserFit) {
  auto& f = fixture();
  const std::size_t user = f.dataset.n_volunteers() - 1;
  const auto assignment = f.pipeline.assign_user(f.dataset, user, 0.2);
  const UserSplit split = split_user_samples(f.dataset, user, 0.2, 0.4);
  auto personal = f.pipeline.clone_cluster_model(assignment.cluster);
  const nn::TrainHistory h =
      f.pipeline.fine_tune_on(*personal, f.dataset, split.ft);
  EXPECT_EQ(h.train_loss.size(), f.config.finetune.epochs);
  // Fine-tuning must reduce loss on its own adaptation data.
  EXPECT_LE(h.train_loss.back(), h.train_loss.front() + 0.1);
  // All parameters unfrozen afterwards.
  for (nn::Param* p : personal->parameters()) EXPECT_FALSE(p->frozen);
}

TEST(Pipeline, SerializeRoundTrip) {
  auto& f = fixture();
  const std::string bytes = f.pipeline.serialize_cluster_model(1);
  EXPECT_GT(bytes.size(), 1000u);
  auto restored = f.pipeline.model_from_bytes(bytes);
  const auto pa = f.pipeline.cluster_model(1).parameters();
  const auto pb = restored->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Pipeline, UnfittedAccessorsThrow) {
  ClearPipeline p(test_config());
  EXPECT_FALSE(p.fitted());
  EXPECT_THROW(p.assign_observations({{1.0}}), Error);
  EXPECT_THROW(p.cluster_model(0), Error);
}

TEST(Pipeline, AssignFractionValidation) {
  auto& f = fixture();
  EXPECT_THROW(f.pipeline.assign_user(f.dataset, 0, 0.0), Error);
  EXPECT_THROW(f.pipeline.assign_user(f.dataset, 0, 1.5), Error);
}

TEST(Pipeline, FitNeedsAtLeastKUsers) {
  ClearPipeline p(test_config());
  auto& f = fixture();
  EXPECT_THROW(p.fit(f.dataset, {0, 1}), Error);
}

TEST(Pipeline, AutoKSelectsReasonableClusterCount) {
  ClearConfig config = test_config();
  config.gc.k = 0;  // Automatic silhouette-based selection.
  config.train.epochs = 1;
  ClearPipeline p(config);
  auto& f = fixture();
  p.fit(f.dataset, f.initial_users);
  EXPECT_GE(p.n_clusters(), 2u);
  EXPECT_LE(p.n_clusters(), 8u);
  // Still usable end to end.
  const auto r = p.assign_user(f.dataset, f.dataset.n_volunteers() - 1, 0.3);
  EXPECT_LT(r.cluster, p.n_clusters());
}

}  // namespace
}  // namespace clear::core
