#include "clear/data_prep.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/obs.hpp"

namespace clear::core {

features::FeatureNormalizer fit_normalizer(
    const wemac::WemacDataset& dataset,
    const std::vector<std::size_t>& user_ids) {
  CLEAR_CHECK_MSG(!user_ids.empty(), "normalizer needs at least one user");
  std::vector<Tensor> maps;
  for (const std::size_t user : user_ids)
    for (const std::size_t s : dataset.samples_of(user))
      maps.push_back(dataset.samples()[s].feature_map);
  features::FeatureNormalizer normalizer;
  normalizer.fit_maps(maps);
  return normalizer;
}

std::vector<Tensor> normalize_all_maps(
    const wemac::WemacDataset& dataset,
    const features::FeatureNormalizer& normalizer) {
  CLEAR_OBS_SPAN("normalize.maps");
  CLEAR_OBS_COUNT("data.maps_normalized", dataset.samples().size());
  std::vector<Tensor> maps;
  maps.reserve(dataset.samples().size());
  for (const wemac::Sample& s : dataset.samples()) {
    Tensor m = s.feature_map;
    normalizer.apply_map(m);
    maps.push_back(std::move(m));
  }
  return maps;
}

std::vector<cluster::Point> map_observations(
    const std::vector<Tensor>& normalized_maps,
    const std::vector<std::size_t>& sample_indices) {
  std::vector<cluster::Point> obs;
  obs.reserve(sample_indices.size());
  for (const std::size_t s : sample_indices) {
    CLEAR_CHECK_MSG(s < normalized_maps.size(), "sample index out of range");
    obs.push_back(features::feature_map_mean(normalized_maps[s]));
  }
  return obs;
}

nn::MapDataset make_map_dataset(
    const wemac::WemacDataset& dataset,
    const std::vector<Tensor>& normalized_maps,
    const std::vector<std::size_t>& sample_indices) {
  nn::MapDataset out;
  out.maps.reserve(sample_indices.size());
  out.labels.reserve(sample_indices.size());
  for (const std::size_t s : sample_indices) {
    CLEAR_CHECK_MSG(s < normalized_maps.size(), "sample index out of range");
    out.maps.push_back(&normalized_maps[s]);
    out.labels.push_back(static_cast<std::size_t>(dataset.samples()[s].label));
  }
  return out;
}

UserSplit split_user_samples(const wemac::WemacDataset& dataset,
                             std::size_t user_id, double ca_fraction,
                             double ft_fraction) {
  CLEAR_CHECK_MSG(ca_fraction >= 0.0 && ft_fraction >= 0.0 &&
                      ca_fraction + ft_fraction < 1.0,
                  "CA+FT fractions must leave room for a test set");
  const std::vector<std::size_t>& all = dataset.samples_of(user_id);
  CLEAR_CHECK_MSG(all.size() >= 3, "user has too few samples to split");
  const double n = static_cast<double>(all.size());
  auto n_ca = static_cast<std::size_t>(std::ceil(ca_fraction * n));
  auto n_ft = static_cast<std::size_t>(std::ceil(ft_fraction * n));
  if (ca_fraction > 0.0) n_ca = std::max<std::size_t>(1, n_ca);
  if (ft_fraction > 0.0) n_ft = std::max<std::size_t>(2, n_ft);
  CLEAR_CHECK_MSG(n_ca + n_ft < all.size(),
                  "CA+FT split leaves no test samples");
  UserSplit split;
  for (std::size_t i = 0; i < n_ca; ++i) split.ca.push_back(all[i]);
  // FT selection is stratified: alternate classes in trial order so the few
  // labelled adaptation maps cover both fear and non-fear whenever the user
  // has both. A single-class adaptation set would make fine-tuning
  // destructive rather than personalizing.
  std::vector<std::size_t> remaining(all.begin() +
                                         static_cast<std::ptrdiff_t>(n_ca),
                                     all.end());
  std::vector<std::size_t> by_class[2];
  for (const std::size_t s : remaining)
    by_class[dataset.samples()[s].label ? 1 : 0].push_back(s);
  std::size_t take[2] = {0, 0};
  for (std::size_t i = 0; i < n_ft; ++i) {
    std::size_t cls = i % 2 == 0 ? 1 : 0;  // Alternate, fear (1) first.
    if (take[cls] >= by_class[cls].size()) cls = 1 - cls;
    if (take[cls] >= by_class[cls].size()) break;  // Both exhausted.
    split.ft.push_back(by_class[cls][take[cls]++]);
  }
  std::sort(split.ft.begin(), split.ft.end());
  for (const std::size_t s : remaining)
    if (!std::binary_search(split.ft.begin(), split.ft.end(), s))
      split.test.push_back(s);
  return split;
}

}  // namespace clear::core
