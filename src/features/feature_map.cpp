#include "features/feature_map.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "features/bvp_features.hpp"
#include "features/gsr_features.hpp"
#include "features/skt_features.hpp"

namespace clear::features {

const std::vector<std::string>& all_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all;
    const auto& g = gsr_feature_names();
    const auto& b = bvp_feature_names();
    const auto& s = skt_feature_names();
    all.insert(all.end(), g.begin(), g.end());
    all.insert(all.end(), b.begin(), b.end());
    all.insert(all.end(), s.begin(), s.end());
    CLEAR_CHECK_MSG(all.size() == kTotalFeatureCount,
                    "total feature count drifted: " << all.size());
    return all;
  }();
  return names;
}

std::vector<double> extract_window_features(const PhysioWindow& window) {
  CLEAR_OBS_SPAN("feature-extract");
  CLEAR_OBS_COUNT("features.windows", 1);
  CLEAR_OBS_COUNT("features.samples",
                  window.bvp.size() + window.gsr.size() + window.skt.size());
  std::vector<double> f = extract_gsr_features(window.gsr, window.gsr_rate);
  const std::vector<double> b =
      extract_bvp_features(window.bvp, window.bvp_rate);
  const std::vector<double> s =
      extract_skt_features(window.skt, window.skt_rate);
  f.insert(f.end(), b.begin(), b.end());
  f.insert(f.end(), s.begin(), s.end());
  CLEAR_CHECK_MSG(f.size() == kTotalFeatureCount,
                  "window feature count drifted: " << f.size());
  return f;
}

Tensor build_feature_map(const std::vector<std::vector<double>>& columns) {
  CLEAR_CHECK_MSG(!columns.empty(), "feature map needs at least one window");
  const std::size_t f = columns.front().size();
  const std::size_t w = columns.size();
  Tensor map({f, w});
  for (std::size_t c = 0; c < w; ++c) {
    CLEAR_CHECK_MSG(columns[c].size() == f,
                    "inconsistent feature vector length at window " << c);
    for (std::size_t r = 0; r < f; ++r)
      map.at2(r, c) = static_cast<float>(columns[c][r]);
  }
  return map;
}

std::vector<double> feature_map_mean(const Tensor& map) {
  CLEAR_CHECK_MSG(map.rank() == 2, "feature_map_mean expects [F, W]");
  const std::size_t f = map.extent(0);
  const std::size_t w = map.extent(1);
  std::vector<double> mean(f, 0.0);
  for (std::size_t r = 0; r < f; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < w; ++c) s += map.at2(r, c);
    mean[r] = s / static_cast<double>(w);
  }
  return mean;
}

void FeatureNormalizer::fit(const std::vector<std::vector<double>>& vectors) {
  CLEAR_OBS_SPAN("normalize.fit");
  CLEAR_CHECK_MSG(!vectors.empty(), "normalizer fit needs data");
  const std::size_t f = vectors.front().size();
  mean_.assign(f, 0.0);
  std_.assign(f, 0.0);
  for (const auto& v : vectors) {
    CLEAR_CHECK_MSG(v.size() == f, "inconsistent vector length in fit");
    for (std::size_t i = 0; i < f; ++i) mean_[i] += v[i];
  }
  const double n = static_cast<double>(vectors.size());
  for (double& m : mean_) m /= n;
  for (const auto& v : vectors)
    for (std::size_t i = 0; i < f; ++i)
      std_[i] += (v[i] - mean_[i]) * (v[i] - mean_[i]);
  for (double& s : std_) s = std::sqrt(s / n);
}

void FeatureNormalizer::fit_maps(const std::vector<Tensor>& maps) {
  CLEAR_CHECK_MSG(!maps.empty(), "normalizer fit needs maps");
  std::vector<std::vector<double>> columns;
  for (const Tensor& m : maps) {
    CLEAR_CHECK_MSG(m.rank() == 2, "fit_maps expects [F, W] maps");
    const std::size_t f = m.extent(0);
    const std::size_t w = m.extent(1);
    for (std::size_t c = 0; c < w; ++c) {
      std::vector<double> col(f);
      for (std::size_t r = 0; r < f; ++r) col[r] = m.at2(r, c);
      columns.push_back(std::move(col));
    }
  }
  fit(columns);
}

FeatureNormalizer FeatureNormalizer::from_moments(std::vector<double> mean,
                                                  std::vector<double> stddev) {
  CLEAR_CHECK_MSG(!mean.empty() && mean.size() == stddev.size(),
                  "from_moments requires matching non-empty mean/stddev");
  FeatureNormalizer n;
  n.mean_ = std::move(mean);
  n.std_ = std::move(stddev);
  return n;
}

void FeatureNormalizer::apply(std::vector<double>& v) const {
  CLEAR_CHECK_MSG(fitted(), "normalizer not fitted");
  CLEAR_CHECK_MSG(v.size() == mean_.size(), "normalizer dimension mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double s = std_[i] > 1e-9 ? std_[i] : 1.0;
    v[i] = (v[i] - mean_[i]) / s;
  }
}

void FeatureNormalizer::apply_map(Tensor& map) const {
  CLEAR_CHECK_MSG(fitted(), "normalizer not fitted");
  CLEAR_CHECK_MSG(map.rank() == 2 && map.extent(0) == mean_.size(),
                  "normalizer/map dimension mismatch");
  const std::size_t f = map.extent(0);
  const std::size_t w = map.extent(1);
  for (std::size_t r = 0; r < f; ++r) {
    const double s = std_[r] > 1e-9 ? std_[r] : 1.0;
    for (std::size_t c = 0; c < w; ++c)
      map.at2(r, c) =
          static_cast<float>((map.at2(r, c) - mean_[r]) / s);
  }
}

}  // namespace clear::features
