#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "features/bvp_features.hpp"
#include "features/gsr_features.hpp"
#include "features/skt_features.hpp"

namespace clear::features {
namespace {

std::vector<double> synthetic_gsr(std::size_t n, double fs, double scr_every_s,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n, 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = i / fs;
    // SCR events at fixed cadence.
    for (double t0 = 2.0; t0 < t; t0 += scr_every_s) {
      const double dt = t - t0;
      if (dt < 20.0)
        x[i] += 0.5 * (1.0 - std::exp(-dt / 0.7)) * std::exp(-dt / 4.0);
    }
    x[i] += rng.normal(0.0, 0.01);
  }
  return x;
}

std::vector<double> synthetic_bvp(std::size_t n, double fs, double hr_hz) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = std::fmod(hr_hz * i / fs, 1.0);
    x[i] = std::exp(-std::pow((phase - 0.25) / 0.11, 2.0)) +
           0.38 * std::exp(-std::pow((phase - 0.6) / 0.16, 2.0)) - 0.3;
  }
  return x;
}

TEST(GsrFeatures, CountMatchesContract) {
  EXPECT_EQ(gsr_feature_names().size(), kGsrFeatureCount);
  const auto x = synthetic_gsr(160, 8.0, 5.0, 1);
  EXPECT_EQ(extract_gsr_features(x, 8.0).size(), kGsrFeatureCount);
}

TEST(GsrFeatures, NamesAreUniqueAndPrefixed) {
  const auto& names = gsr_feature_names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& n : names) EXPECT_EQ(n.rfind("gsr_", 0), 0u);
}

TEST(GsrFeatures, MeanFeatureMatchesSignalMean) {
  const std::vector<double> flat(80, 4.0);
  const auto f = extract_gsr_features(flat, 8.0);
  EXPECT_NEAR(f[0], 4.0, 1e-9);  // gsr_mean.
  EXPECT_NEAR(f[1], 0.0, 1e-9);  // gsr_std.
}

TEST(GsrFeatures, ScrCountTracksEventDensity) {
  const auto sparse = synthetic_gsr(800, 8.0, 20.0, 2);
  const auto dense = synthetic_gsr(800, 8.0, 4.0, 2);
  const auto idx = 22u;  // gsr_scr_count.
  EXPECT_EQ(gsr_feature_names()[idx], "gsr_scr_count");
  const double sparse_count = extract_gsr_features(sparse, 8.0)[idx];
  const double dense_count = extract_gsr_features(dense, 8.0)[idx];
  EXPECT_GT(dense_count, sparse_count);
}

TEST(GsrFeatures, RejectsTooShortOrBadRate) {
  EXPECT_THROW(extract_gsr_features(std::vector<double>(4, 1.0), 8.0), Error);
  EXPECT_THROW(extract_gsr_features(std::vector<double>(80, 1.0), 0.0), Error);
}

TEST(BvpFeatures, CountMatchesContract) {
  EXPECT_EQ(bvp_feature_names().size(), kBvpFeatureCount);
  const auto x = synthetic_bvp(640, 64.0, 1.2);
  EXPECT_EQ(extract_bvp_features(x, 64.0).size(), kBvpFeatureCount);
}

TEST(BvpFeatures, NamesAreUnique) {
  const auto& names = bvp_feature_names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(BvpFeatures, RecoversHeartRate) {
  const double hr_hz = 1.25;  // 75 bpm.
  const auto x = synthetic_bvp(64 * 15, 64.0, hr_hz);
  const auto f = extract_bvp_features(x, 64.0);
  const auto& names = bvp_feature_names();
  const auto hr_idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "hr_mean") - names.begin());
  EXPECT_NEAR(f[hr_idx], hr_hz * 60.0, 4.0);
  const auto ibi_idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "ibi_mean") - names.begin());
  EXPECT_NEAR(f[ibi_idx], 1.0 / hr_hz, 0.05);
}

TEST(BvpFeatures, BeatCountScalesWithRate) {
  const auto slow = synthetic_bvp(64 * 15, 64.0, 1.0);
  const auto fast = synthetic_bvp(64 * 15, 64.0, 1.6);
  const auto& names = bvp_feature_names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "bvp_n_beats") - names.begin());
  EXPECT_GT(extract_bvp_features(fast, 64.0)[idx],
            extract_bvp_features(slow, 64.0)[idx]);
}

TEST(BvpFeatures, HandlesFlatlineWithoutCrashing) {
  // Pathological input: no detectable beats. Everything HRV-ish becomes 0.
  const std::vector<double> flat(640, 0.5);
  const auto f = extract_bvp_features(flat, 64.0);
  EXPECT_EQ(f.size(), kBvpFeatureCount);
  for (const double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(BvpFeatures, RejectsSubSecondWindow) {
  EXPECT_THROW(extract_bvp_features(std::vector<double>(30, 1.0), 64.0),
               Error);
}

TEST(SktFeatures, CountAndValues) {
  EXPECT_EQ(skt_feature_names().size(), kSktFeatureCount);
  std::vector<double> x(40);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 33.0 + 0.01 * static_cast<double>(i);
  const auto f = extract_skt_features(x, 4.0);
  ASSERT_EQ(f.size(), kSktFeatureCount);
  EXPECT_NEAR(f[0], 33.0 + 0.01 * 19.5, 1e-9);  // mean
  EXPECT_NEAR(f[2], 0.01 * 4.0, 1e-9);          // slope per second
  EXPECT_NEAR(f[3], 33.0, 1e-9);                // min
  EXPECT_NEAR(f[4], 33.0 + 0.39, 1e-9);         // max
}

TEST(SktFeatures, RejectsDegenerate) {
  EXPECT_THROW(extract_skt_features(std::vector<double>{1.0}, 4.0), Error);
  EXPECT_THROW(extract_skt_features(std::vector<double>{1.0, 2.0}, 0.0),
               Error);
}

// ---------------------------------------------------------------------------
// NaN/Inf audit (fault model): degenerate-but-finite windows must produce
// all-finite features, and non-finite samples must be rejected loudly with
// the sample index — never consumed into NaN-poisoned features.

void expect_all_finite(const std::vector<double>& f,
                       const std::vector<std::string>& names,
                       const char* input) {
  ASSERT_EQ(f.size(), names.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_TRUE(std::isfinite(f[i]))
        << names[i] << " on " << input << " input = " << f[i];
}

TEST(ExtractorAudit, DegenerateWindowsStayFinite) {
  struct Case {
    const char* name;
    std::vector<double> v;
  };
  std::vector<Case> cases;
  cases.push_back({"constant", std::vector<double>(512, 5.0)});
  cases.push_back({"zeros", std::vector<double>(512, 0.0)});
  {
    // One huge spike on a flat floor: zero variance everywhere else, no
    // plausible peaks, rails stressed.
    std::vector<double> s(512, 0.0);
    s[100] = 1e6;
    cases.push_back({"spike", s});
  }
  {
    // Amplitudes near the double denormal floor.
    std::vector<double> a(512);
    for (std::size_t i = 0; i < a.size(); ++i)
      a[i] = (i % 2 != 0) ? 1e-15 : -1e-15;
    cases.push_back({"tiny", a});
  }
  for (const Case& c : cases) {
    expect_all_finite(extract_bvp_features(c.v, 64.0), bvp_feature_names(),
                      c.name);
    expect_all_finite(extract_gsr_features(c.v, 4.0), gsr_feature_names(),
                      c.name);
    expect_all_finite(extract_skt_features(c.v, 4.0), skt_feature_names(),
                      c.name);
  }
}

TEST(ExtractorAudit, NonFiniteSamplesRejectedWithIndex) {
  std::vector<double> v(128, 1.0);
  v[37] = std::nan("");
  for (const auto& fn : {std::function<void()>([&] {
                           extract_bvp_features(v, 64.0);
                         }),
                         std::function<void()>([&] {
                           extract_gsr_features(v, 4.0);
                         }),
                         std::function<void()>([&] {
                           extract_skt_features(v, 4.0);
                         })}) {
    try {
      fn();
      FAIL() << "expected rejection of the NaN sample";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("index 37"), std::string::npos)
          << "actual error: " << e.what();
    }
  }
  v[37] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(extract_bvp_features(v, 64.0), Error);
  EXPECT_THROW(extract_gsr_features(v, 4.0), Error);
  EXPECT_THROW(extract_skt_features(v, 4.0), Error);
}

}  // namespace
}  // namespace clear::features
