#include "features/gsr_features.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "signal/fft.hpp"
#include "signal/filter.hpp"
#include "signal/peaks.hpp"

namespace clear::features {

const std::vector<std::string>& gsr_feature_names() {
  static const std::vector<std::string> names = {
      "gsr_mean",          "gsr_std",           "gsr_min",
      "gsr_max",           "gsr_range",         "gsr_median",
      "gsr_iqr",           "gsr_rms",           "gsr_skewness",
      "gsr_kurtosis",      "gsr_mean_abs_d1",   "gsr_std_d1",
      "gsr_mean_abs_d2",   "gsr_std_d2",        "gsr_frac_increasing",
      "gsr_slope",         "gsr_tonic_mean",    "gsr_tonic_slope",
      "gsr_phasic_mean",   "gsr_phasic_std",    "gsr_phasic_max",
      "gsr_phasic_energy", "gsr_scr_count",     "gsr_scr_mean_amp",
      "gsr_scr_max_amp",   "gsr_scr_mean_rise", "gsr_scr_sum_amp",
      "gsr_band_0_01",     "gsr_band_01_02",    "gsr_band_02_03",
      "gsr_band_03_04",    "gsr_spec_centroid", "gsr_spec_entropy",
      "gsr_zero_cross_d1",
  };
  return names;
}

std::vector<double> extract_gsr_features(std::span<const double> gsr,
                                         double sample_rate) {
  CLEAR_CHECK_MSG(gsr.size() >= 8, "GSR window too short");
  CLEAR_CHECK_MSG(sample_rate > 0, "GSR sample rate must be positive");
  // A single NaN/Inf sample would silently poison most of the 34 features;
  // fail loudly and point at the sample instead.
  for (std::size_t i = 0; i < gsr.size(); ++i)
    CLEAR_CHECK_MSG(std::isfinite(gsr[i]),
                    "GSR window has non-finite sample at index "
                        << i << "; sanitize the stream before extraction");
  std::vector<double> f;
  f.reserve(kGsrFeatureCount);

  // Raw statistics.
  f.push_back(stats::mean(gsr));
  f.push_back(stats::stddev(gsr));
  f.push_back(stats::min(gsr));
  f.push_back(stats::max(gsr));
  f.push_back(stats::range(gsr));
  f.push_back(stats::median(gsr));
  f.push_back(stats::iqr(gsr));
  f.push_back(stats::rms(gsr));
  f.push_back(stats::skewness(gsr));
  f.push_back(stats::kurtosis(gsr));

  // Difference dynamics.
  const std::vector<double> d1 = stats::diff(gsr);
  const std::vector<double> d2 = stats::diff(d1);
  f.push_back(stats::mean_abs_diff(gsr));
  f.push_back(stats::stddev(d1));
  f.push_back(stats::mean_abs_diff(d1));
  f.push_back(stats::stddev(d2));
  f.push_back(stats::fraction_increasing(gsr));
  f.push_back(stats::slope(gsr));

  // Tonic / phasic split: tonic = slow drift below ~0.05 Hz.
  const double tonic_cut = std::min(0.05, sample_rate / 4.0);
  const dsp::Biquad lp = dsp::butterworth_lowpass(tonic_cut, sample_rate);
  const dsp::Biquad sections[] = {lp};
  const std::vector<double> tonic = dsp::filtfilt(sections, gsr);
  std::vector<double> phasic(gsr.size());
  for (std::size_t i = 0; i < gsr.size(); ++i) phasic[i] = gsr[i] - tonic[i];

  f.push_back(stats::mean(tonic));
  f.push_back(stats::slope(tonic));
  f.push_back(stats::mean(phasic));
  f.push_back(stats::stddev(phasic));
  f.push_back(stats::max(phasic));
  double phasic_energy = 0.0;
  for (const double v : phasic) phasic_energy += v * v;
  f.push_back(phasic_energy / static_cast<double>(phasic.size()));

  // SCR events: peaks of the phasic component.
  dsp::PeakOptions opt;
  opt.min_prominence = std::max(0.01, 0.5 * stats::stddev(phasic));
  opt.min_distance =
      std::max<std::size_t>(1, static_cast<std::size_t>(sample_rate * 1.0));
  const std::vector<dsp::Peak> scrs = dsp::find_peaks(phasic, opt);
  f.push_back(static_cast<double>(scrs.size()));
  double amp_sum = 0.0;
  double amp_max = 0.0;
  double rise_sum = 0.0;
  for (const dsp::Peak& p : scrs) {
    amp_sum += p.prominence;
    amp_max = std::max(amp_max, p.prominence);
    // Rise time: walk back to the local minimum preceding the peak.
    std::size_t k = p.index;
    while (k > 0 && phasic[k - 1] < phasic[k]) --k;
    rise_sum += static_cast<double>(p.index - k) / sample_rate;
  }
  const double n_scr = scrs.empty() ? 1.0 : static_cast<double>(scrs.size());
  f.push_back(amp_sum / n_scr);
  f.push_back(amp_max);
  f.push_back(rise_sum / n_scr);
  f.push_back(amp_sum);

  // Spectral shape of the phasic component.
  const dsp::Psd psd = dsp::welch(phasic, sample_rate,
                                  std::min<std::size_t>(phasic.size(), 128));
  f.push_back(dsp::band_power(psd, 0.0, 0.1));
  f.push_back(dsp::band_power(psd, 0.1, 0.2));
  f.push_back(dsp::band_power(psd, 0.2, 0.3));
  f.push_back(dsp::band_power(psd, 0.3, 0.4));
  f.push_back(dsp::spectral_centroid(psd));
  f.push_back(dsp::spectral_entropy(psd));

  f.push_back(static_cast<double>(stats::zero_crossings(d1)));

  CLEAR_CHECK_MSG(f.size() == kGsrFeatureCount,
                  "GSR feature count drifted: " << f.size());
  return f;
}

}  // namespace clear::features
