#include "signal/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace clear::dsp {
namespace {

TEST(Resample, IdentityWhenSameLength) {
  const std::vector<double> x = {1, 2, 3, 4};
  const auto y = resample_to_length(x, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(Resample, UpsampleLinearInterpolates) {
  const std::vector<double> x = {0.0, 2.0};
  const auto y = resample_to_length(x, 5);
  ASSERT_EQ(y.size(), 5u);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
  EXPECT_NEAR(y[4], 2.0, 1e-12);
}

TEST(Resample, DownsamplePreservesEndpoints) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const auto y = resample_to_length(x, 10);
  EXPECT_NEAR(y.front(), 0.0, 1e-12);
  EXPECT_NEAR(y.back(), 99.0, 1e-12);
}

TEST(Resample, SingleSampleBroadcasts) {
  const std::vector<double> x = {7.0};
  const auto y = resample_to_length(x, 5);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Resample, TargetLengthOne) {
  const std::vector<double> x = {1.0, 5.0};
  const auto y = resample_to_length(x, 1);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
}

TEST(Resample, RejectsEmptyOrZero) {
  EXPECT_THROW(resample_to_length({}, 5), Error);
  EXPECT_THROW(resample_to_length(std::vector<double>{1.0}, 0), Error);
}

TEST(Resample, SineSurvivesRateConversion) {
  const double fs = 64.0;
  std::vector<double> x(640);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * M_PI * 1.0 * i / fs);
  const auto y = resample_rate(x, fs, 32.0);
  EXPECT_NEAR(static_cast<double>(y.size()), 320.0, 1.0);
  // Each output sample interpolates the sine at the endpoint-preserving
  // remapped time t_i = i * (N_in-1) / (fs_in * (N_out-1)).
  const double step = (static_cast<double>(x.size()) - 1.0) /
                      (fs * (static_cast<double>(y.size()) - 1.0));
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double expected = std::sin(2.0 * M_PI * 1.0 * i * step);
    EXPECT_NEAR(y[i], expected, 0.01);
  }
}

TEST(Resample, RateValidation) {
  EXPECT_THROW(resample_rate(std::vector<double>{1.0}, 0.0, 1.0), Error);
  EXPECT_THROW(resample_rate(std::vector<double>{1.0}, 1.0, -2.0), Error);
}

}  // namespace
}  // namespace clear::dsp
