#include "nn/pool.hpp"

#include "common/error.hpp"

namespace clear::nn {

MaxPool2d::MaxPool2d(std::size_t kh, std::size_t kw) : kh_(kh), kw_(kw) {
  CLEAR_CHECK_MSG(kh_ >= 1 && kw_ >= 1, "bad pool geometry");
}

Tensor MaxPool2d::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(input.rank() == 4, "MaxPool2d expects [N, C, H, W]");
  const std::size_t n = input.extent(0);
  const std::size_t c = input.extent(1);
  const std::size_t h = input.extent(2);
  const std::size_t w = input.extent(3);
  const std::size_t oh = h / kh_;
  const std::size_t ow = w / kw_;
  CLEAR_CHECK_MSG(oh >= 1 && ow >= 1, "pool window larger than input");
  cached_in_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  argmax_.assign(out.numel(), 0);
  const float* src = input.data();
  float* dst = out.data();
  std::size_t o = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t base = (b * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++o) {
          std::size_t best_idx = base + (oi * kh_) * w + oj * kw_;
          float best = src[best_idx];
          for (std::size_t ki = 0; ki < kh_; ++ki) {
            for (std::size_t kj = 0; kj < kw_; ++kj) {
              const std::size_t idx =
                  base + (oi * kh_ + ki) * w + (oj * kw_ + kj);
              if (src[idx] > best) {
                best = src[idx];
                best_idx = idx;
              }
            }
          }
          dst[o] = best;
          argmax_[o] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(!cached_in_shape_.empty(), "backward before forward");
  CLEAR_CHECK_MSG(grad_output.numel() == argmax_.size(),
                  "MaxPool2d backward shape mismatch");
  Tensor grad(cached_in_shape_);
  const float* g = grad_output.data();
  float* d = grad.data();
  for (std::size_t o = 0; o < argmax_.size(); ++o) d[argmax_[o]] += g[o];
  return grad;
}

}  // namespace clear::nn
