// Columnar artifact container ("CLRART01") — the on-disk unit of the
// delta-checkpoint store and any other multi-part serving artifact.
// docs/FORMATS.md is the normative spec; this header is the source of
// truth it is cross-checked against (tools/check_docs.sh).
//
// Layout (all integers little-endian):
//
//   header   16 bytes: char magic[8] = "CLRART01", u32 version (= 1),
//            u32 block_count
//   blocks   each block's payload starts at an 8-byte-aligned offset
//            (zero padding between blocks), so a memory-mapped reader can
//            hand out aligned views without copying
//   index    block_count entries, each:
//            u32 name_len, name bytes, u64 offset, u64 size, u32 crc32
//   trailer  28 bytes: u64 index_offset, u64 index_size, u32 index_crc,
//            char tail_magic[8] = "CLRART01"
//
// The trailer is fixed-size at the end of the file, so a reader seeks to
// EOF-28, validates the tail magic, and jumps straight to the index — one
// seek to locate any block, which is what lets the serve cache cold-load a
// user without scanning the container. Every block carries its own CRC-32;
// corruption surfaces as an addressed error naming the block index, name,
// and byte offset rather than as silently wrong bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clear::artifact {

inline constexpr char kArtifactMagic[9] = "CLRART01";  // 8 bytes on disk.
inline constexpr std::uint32_t kArtifactVersion = 1;

// -- Little-endian buffer primitives (shared by the delta codec) -------------

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);

/// Bounds-checked reads; `pos` advances past the value. Throw clear::Error
/// ("<what> truncated at offset N") on short input.
std::uint8_t get_u8(std::string_view in, std::size_t& pos, const char* what);
std::uint32_t get_u32(std::string_view in, std::size_t& pos, const char* what);
std::uint64_t get_u64(std::string_view in, std::size_t& pos, const char* what);

// -- Writer ------------------------------------------------------------------

/// Accumulates named blocks and serializes the container. Block order is
/// preserved; names should be unique (find() returns the first match).
class Writer {
 public:
  void add_block(std::string_view name, std::string_view bytes);

  /// Serialize header + blocks + index + trailer. The Writer can be reused
  /// (finish does not clear the staged blocks).
  std::string finish() const;

  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Staged {
    std::string name;
    std::string bytes;
  };
  std::vector<Staged> blocks_;
};

// -- Reader ------------------------------------------------------------------

struct BlockInfo {
  std::string name;
  std::uint64_t offset = 0;  ///< Payload offset from the container start.
  std::uint64_t size = 0;    ///< Payload bytes.
  std::uint32_t crc = 0;     ///< CRC-32 of the payload.
};

/// Parses header, trailer, and index eagerly (throwing addressed
/// clear::Error on any structural damage); block payload CRCs are verified
/// lazily on access. The Reader holds a view — the container bytes must
/// outlive it.
class Reader {
 public:
  explicit Reader(std::string_view container);

  /// Cheap magic sniff: true when `bytes` starts with "CLRART01".
  static bool is_artifact(std::string_view bytes);

  std::size_t block_count() const { return index_.size(); }
  const BlockInfo& info(std::size_t i) const;
  /// First block named `name`, or nullptr.
  const BlockInfo* find(std::string_view name) const;

  /// Payload view for block `i`, CRC-verified on every call. Throws an
  /// addressed error naming the block index, name, and offset on mismatch.
  std::string_view block(std::size_t i) const;
  /// Payload for the block named `name`; throws when absent.
  std::string_view block(std::string_view name) const;

 private:
  std::string_view data_;
  std::vector<BlockInfo> index_;
};

// -- Files -------------------------------------------------------------------

/// Atomic write (temp + rename), like every other on-disk artifact.
void write_artifact_file(const std::string& path, const std::string& bytes);

/// Whole file as bytes; throws clear::Error when unreadable.
std::string read_file_bytes(const std::string& path);

}  // namespace clear::artifact
