// Streaming monitor: a live wearable session simulated end to end.
//
// A pipeline is fitted on an initial population; a new user is cold-started;
// then their wearable streams raw samples chunk by chunk through the
// StreamingDetector while the stimulus alternates between calm and fear
// videos. The demo prints the rolling fear probability next to the ground
// truth, showing the detector tracking the emotional state in real time.
//
// Midway through, the GSR electrode "lifts off" for a few seconds (its
// samples turn NaN). The self-healing detector gap-fills the dropout, keeps
// emitting detections, and annotates each with a SignalQuality report — the
// affected rows show a reduced ok-fraction and the DEGRADED flag until the
// repaired samples age out of the rolling map.
//
// Run:  ./streaming_monitor [--volunteers=12] [--seed=42]
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "clear/pipeline.hpp"
#include "clear/streaming.hpp"
#include "common/cli.hpp"
#include "wemac/synth.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = core::smoke_config();
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 14));
  config.data.trials_per_volunteer = 10;
  config.data.windows_per_trial = 8;
  config.data.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 6));
  config.finalize();

  std::printf("== CLEAR streaming monitor ==\n");
  const wemac::WemacDataset dataset = wemac::generate_wemac(config.data);
  const std::size_t new_user = dataset.n_volunteers() - 1;
  std::vector<std::size_t> initial;
  for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
    initial.push_back(u);
  core::ClearPipeline pipeline(config);
  pipeline.fit(dataset, initial);
  const auto assignment =
      pipeline.assign_user(dataset, new_user, config.ca_fraction);
  std::printf("new user %zu cold-started into cluster %zu\n", new_user,
              assignment.cluster);

  // Personalize before monitoring (the paper's full edge workflow).
  const core::UserSplit split = core::split_user_samples(
      dataset, new_user, config.ca_fraction, config.ft_fraction);
  auto personal = pipeline.clone_cluster_model(assignment.cluster);
  pipeline.fine_tune_on(*personal, dataset, split.ft);
  std::printf("personalized with %zu labelled maps\n\n", split.ft.size());

  core::StreamingConfig sc;
  sc.window_seconds = config.data.window_seconds;
  sc.map_windows = config.data.windows_per_trial;
  sc.bvp_hz = config.data.rates.bvp_hz;
  sc.gsr_hz = config.data.rates.gsr_hz;
  sc.skt_hz = config.data.rates.skt_hz;
  // Self-healing policy: hold the last good sample across gaps, and flag a
  // detection degraded once >2% of its map's samples needed repair.
  sc.gap_fill = fault::GapFill::kHoldLast;
  sc.degraded_threshold = 0.02;
  core::StreamingDetector detector(*personal, pipeline.normalizer(), sc);

  // Live session: alternating stimuli streamed in ~1-second chunks. During
  // the middle (joy) segment the GSR channel drops out for a few seconds.
  const wemac::Emotion session[] = {
      wemac::Emotion::kCalm, wemac::Emotion::kFear, wemac::Emotion::kJoy,
      wemac::Emotion::kFear, wemac::Emotion::kCalm};
  // Two full windows of dark GSR: enough repaired samples that maps built
  // over both windows cross the 2% threshold and flag DEGR, then recover.
  const std::size_t dropout_segment = 2;
  const std::size_t dropout_first_chunk = 3, dropout_chunks = 16;
  const double seg_seconds =
      sc.window_seconds * static_cast<double>(sc.map_windows);
  Rng rng(config.data.seed ^ 0x57);
  std::printf("%-8s %-10s %-7s %-5s %s\n", "t [s]", "stimulus", "quality",
              "flags", "fear probability");
  double t0 = 0.0;
  std::size_t seg_index = 0;
  for (const wemac::Emotion emotion : session) {
    wemac::Stimulus stim;
    stim.emotion = emotion;
    stim.duration_s = seg_seconds;
    Rng seg_rng = rng.fork(static_cast<std::uint64_t>(t0) + 1);
    const wemac::TrialSignals seg = wemac::synthesize_trial(
        dataset.volunteers()[new_user].profile, stim, config.data.rates,
        seg_rng);
    // Stream in 1 s chunks, polling after each.
    const auto chunks = static_cast<std::size_t>(seg_seconds);
    for (std::size_t c = 0; c < chunks; ++c) {
      auto chunk = [&](const std::vector<double>& v, double hz) {
        const auto per = static_cast<std::size_t>(hz);
        const std::size_t begin = c * per;
        const std::size_t len = std::min(per, v.size() - begin);
        return std::span<const double>(v.data() + begin, len);
      };
      detector.push_bvp(chunk(seg.bvp, sc.bvp_hz));
      const bool electrode_off =
          seg_index == dropout_segment && c >= dropout_first_chunk &&
          c < dropout_first_chunk + dropout_chunks;
      if (electrode_off) {
        // Electrode lift-off: this second of GSR arrives as NaN.
        const auto gsr = chunk(seg.gsr, sc.gsr_hz);
        const std::vector<double> dark(
            gsr.size(), std::numeric_limits<double>::quiet_NaN());
        detector.push_gsr(dark);
        if (c == dropout_first_chunk)
          std::printf("%7.0f  -- GSR electrode off for %zu s --\n",
                      t0 + static_cast<double>(c),
                      dropout_chunks);
      } else {
        detector.push_gsr(chunk(seg.gsr, sc.gsr_hz));
      }
      detector.push_skt(chunk(seg.skt, sc.skt_hz));
      if (const auto d = detector.poll()) {
        const double t = t0 + static_cast<double>(c + 1);
        const int bars = static_cast<int>(d->fear_probability * 30.0);
        std::printf("%7.0f  %-10s %5.1f%%  %-5s %.2f |%.*s\n", t,
                    wemac::emotion_name(emotion).c_str(),
                    100.0 * d->quality.ok_fraction(),
                    d->degraded ? "DEGR" : "ok",
                    d->fear_probability, bars,
                    "##############################");
      }
    }
    t0 += seg_seconds;
    ++seg_index;
  }
  const core::SignalQuality& health = detector.health();
  std::printf(
      "\nsession health: %zu of %zu samples repaired "
      "(bvp %zu, gsr %zu, skt %zu); %.2f%% clean\n",
      health.repaired(), health.total(), health.bvp.repaired(),
      health.gsr.repaired(), health.skt.repaired(),
      100.0 * health.ok_fraction());
  std::printf(
      "(one detection per %.0f s window after a %zu-window warm-up;\n"
      " the rolling map mixes the last %zu windows, so transitions lag and\n"
      " the DEGR flag persists until repaired samples age out of the map)\n",
      sc.window_seconds, sc.map_windows, sc.map_windows);
  return 0;
}
