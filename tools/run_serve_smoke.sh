#!/bin/sh
# Serve smoke test: replay a short seeded multi-user workload through
# `clear-cli serve`, validate the metrics snapshot against the checked-in
# schema (tools/metrics_schema.json), check the serve-specific counters /
# histograms / spans are recorded, and assert the per-request predictions
# are bit-identical to the golden file (tools/serve_golden.txt), unchanged
# with metrics on or off, and unchanged at --threads 1 vs 8.
# Usage: run_serve_smoke.sh <path-to-clear-cli> <path-to-schema> <golden>
set -eu

CLI="$1"
SCHEMA="$2"
GOLDEN="$3"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

SLICE="--volunteers=6 --trials=4 --epochs=1 --ft-epochs=1 \
--data-seed=42 --users=12 --requests=16 --seed=7"

# 1. Metrics on, single thread: the reference run.
"$CLI" serve $SLICE --threads=1 --metrics-out=metrics.json \
  >on.txt 2>on.err
test -s metrics.json

# 2. The snapshot must satisfy the schema.
python3 - "$SCHEMA" metrics.json <<'EOF'
import json, sys
import jsonschema
with open(sys.argv[1]) as f:
    schema = json.load(f)
with open(sys.argv[2]) as f:
    snapshot = json.load(f)
jsonschema.validate(snapshot, schema)
EOF

# 3. The serving layer's own signals must be recorded: request/batch
#    counters, queue/batch/time-to-first-prediction histograms, and the
#    assignment + batch-execution spans.
for c in serve.requests serve.batches serve.rows serve.assignments \
         serve.cache.misses; do
  jq -e --arg c "$c" '.counters[$c] > 0' metrics.json >/dev/null ||
    { echo "missing serve counter: $c" >&2; exit 1; }
done
for h in serve.batch_size serve.queue_wait_us serve.ttfp_us; do
  jq -e --arg h "$h" '.histograms[$h].count > 0' metrics.json >/dev/null ||
    { echo "missing serve histogram: $h" >&2; exit 1; }
done
for s in serve.assign serve.batch; do
  jq -e --arg s "$s" \
    '[.traceEvents[] | select(.name == $s)] | length > 0' metrics.json \
    >/dev/null || { echo "missing serve span: $s" >&2; exit 1; }
done
jq -e '.droppedTraceEvents == 0' metrics.json >/dev/null

# 4. Metrics off: stdout must be byte-identical (observability never
#    changes a prediction).
"$CLI" serve $SLICE --threads=1 --no-metrics >off.txt 2>off.err
cmp on.txt off.txt

# 5. Thread count must not change a single byte either.
"$CLI" serve $SLICE --threads=8 --no-metrics >t8.txt 2>t8.err
cmp off.txt t8.txt

# 6. Per-request predictions must match the checked-in golden exactly —
#    any drift in the serving pipeline's numerics shows up here.
grep '^user=' on.txt >predictions.txt
cmp predictions.txt "$GOLDEN" || {
  echo "predictions diverge from $GOLDEN" >&2
  diff "$GOLDEN" predictions.txt | head -20 >&2
  exit 1
}

echo "serve smoke OK"
