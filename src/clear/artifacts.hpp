// On-disk deployment artifacts for a fitted ClearPipeline.
//
// Directory layout (what the paper's cloud stage ships to the edge):
//   <dir>/pipeline.meta    — config, fitted users, normalizer, clustering
//   <dir>/cluster_<k>.ckpt — one CNN-LSTM checkpoint per cluster
//   <dir>/general.ckpt     — population-general fallback model (optional)
//
// load_pipeline() restores an equivalent pipeline: same assignments, same
// predictions, without access to the training data.
//
// Integrity & degradation: every file is written atomically (temp + rename)
// and carries a CRC-32 (the meta via its own v2 envelope, the checkpoints
// via the v2 checkpoint format). Corruption of pipeline.meta fails loudly
// with a CRC-specific error; corruption or loss of a cluster checkpoint
// degrades that cluster to the general fallback model when general.ckpt is
// present (reported by ClearPipeline::fallback_clusters()) and fails
// otherwise. Wrong weights are never loaded silently. Legacy v1 artifacts
// (no CRC, no general.ckpt) still load.
#pragma once

#include <string>

#include "clear/pipeline.hpp"

namespace clear::core {

/// Persist a fitted pipeline. Creates `directory` if needed; overwrites
/// existing artifact files. Throws clear::Error on IO failure or if the
/// pipeline is not fitted.
void save_pipeline(ClearPipeline& pipeline, const std::string& directory);

/// Restore a pipeline saved by save_pipeline(). Throws clear::Error on
/// missing/corrupt artifacts.
ClearPipeline load_pipeline(const std::string& directory);

}  // namespace clear::core
