#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"

namespace clear::serve {
namespace {

BatchKey general(edge::Precision p = edge::Precision::kFp32) {
  BatchKey k;
  k.kind = BatchKey::Kind::kGeneral;
  k.precision = p;
  return k;
}

BatchKey cluster(std::size_t id, edge::Precision p = edge::Precision::kFp32) {
  BatchKey k;
  k.kind = BatchKey::Kind::kCluster;
  k.id = id;
  k.precision = p;
  return k;
}

BatchKey personal(std::size_t id) {
  BatchKey k;
  k.kind = BatchKey::Kind::kPersonal;
  k.id = id;
  return k;
}

TEST(BatchKey, StableDisplayForm) {
  EXPECT_EQ(general().str(), "general/fp32");
  EXPECT_EQ(cluster(3, edge::Precision::kInt8).str(), "cluster3/int8");
  EXPECT_EQ(personal(17).str(), "user17/fp32");
  BatchKey k = cluster(1, edge::Precision::kFp16);
  EXPECT_EQ(k.str(), "cluster1/fp16");
}

TEST(BatchKey, OrderingIsKindThenIdThenPrecision) {
  EXPECT_LT(general(), cluster(0));
  EXPECT_LT(cluster(0), cluster(1));
  EXPECT_LT(cluster(9), personal(0));
  EXPECT_LT(cluster(2, edge::Precision::kFp32),
            cluster(2, edge::Precision::kInt8));
  EXPECT_EQ(cluster(2), cluster(2));
  EXPECT_FALSE(cluster(2) == cluster(3));
}

TEST(MicroBatcher, RejectsInconsistentPolicy) {
  BatchPolicy p;
  p.max_batch = 0;
  EXPECT_THROW(MicroBatcher{p}, Error);
  p = BatchPolicy{};
  p.queue_capacity = p.max_batch - 1;
  EXPECT_THROW(MicroBatcher{p}, Error);
  p = BatchPolicy{};
  p.max_pending = p.queue_capacity - 1;
  EXPECT_THROW(MicroBatcher{p}, Error);
}

TEST(MicroBatcher, PerKeyCapacityShedsPrecisely) {
  BatchPolicy p;
  p.max_batch = 2;
  p.queue_capacity = 3;
  p.max_pending = 100;
  MicroBatcher b(p);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(b.admit(general(), i, 10), MicroBatcher::Admit::kQueued);
  EXPECT_EQ(b.admit(general(), 3, 10), MicroBatcher::Admit::kQueueFull);
  // A different key still has room.
  EXPECT_EQ(b.admit(cluster(0), 4, 10), MicroBatcher::Admit::kQueued);
  EXPECT_EQ(b.depth(general()), 3u);
  EXPECT_EQ(b.depth(cluster(0)), 1u);
  EXPECT_EQ(b.pending(), 4u);
}

TEST(MicroBatcher, GlobalPendingCapSheds) {
  BatchPolicy p;
  p.max_batch = 1;
  p.queue_capacity = 2;
  p.max_pending = 3;
  MicroBatcher b(p);
  EXPECT_EQ(b.admit(cluster(0), 0, 0), MicroBatcher::Admit::kQueued);
  EXPECT_EQ(b.admit(cluster(1), 1, 0), MicroBatcher::Admit::kQueued);
  EXPECT_EQ(b.admit(cluster(2), 2, 0), MicroBatcher::Admit::kQueued);
  EXPECT_EQ(b.admit(cluster(3), 3, 0), MicroBatcher::Admit::kOverloaded);
}

TEST(MicroBatcher, FullQueueShipsImmediatelyInFifoOrder) {
  BatchPolicy p;
  p.max_batch = 3;
  p.max_wait_us = 1000;
  MicroBatcher b(p);
  for (std::size_t i = 0; i < 3; ++i) b.admit(general(), 10 + i, 50);
  const std::vector<Batch> due = b.pop_due(50);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].key, general());
  // Full queues execute as soon as virtual time reaches them.
  EXPECT_EQ(due[0].exec_us, 50u);
  ASSERT_EQ(due[0].items.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(due[0].items[i].slot, 10 + i);
  EXPECT_EQ(b.pending(), 0u);
}

TEST(MicroBatcher, PartialQueueWaitsForDeadline) {
  BatchPolicy p;
  p.max_batch = 8;
  p.max_wait_us = 1000;
  MicroBatcher b(p);
  b.admit(general(), 0, 100);
  b.admit(general(), 1, 300);
  EXPECT_TRUE(b.pop_due(1099).empty());
  EXPECT_EQ(b.next_deadline_us(), 1100u);
  // A timed-out batch executes exactly at its oldest deadline, even when the
  // driver only notices later — that keeps exec times caller-independent.
  const std::vector<Batch> due = b.pop_due(2500);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].exec_us, 1100u);
  EXPECT_EQ(due[0].items.size(), 2u);
}

TEST(MicroBatcher, AtMostOneBatchPerKeyPerPop) {
  BatchPolicy p;
  p.max_batch = 2;
  p.queue_capacity = 8;
  MicroBatcher b(p);
  for (std::size_t i = 0; i < 5; ++i) b.admit(general(), i, 0);
  std::vector<Batch> due = b.pop_due(0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].items.size(), 2u);
  EXPECT_EQ(b.depth(general()), 3u);
  due = b.pop_due(0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].items[0].slot, 2u);
  // The leftover single item is not full and not timed out yet.
  EXPECT_TRUE(b.pop_due(0).empty());
  EXPECT_EQ(b.depth(general()), 1u);
}

TEST(MicroBatcher, DueBatchesComeOutInKeyOrder) {
  BatchPolicy p;
  p.max_batch = 1;
  MicroBatcher b(p);
  b.admit(personal(4), 0, 0);
  b.admit(cluster(1), 1, 0);
  b.admit(general(), 2, 0);
  b.admit(cluster(0), 3, 0);
  const std::vector<Batch> due = b.pop_due(0);
  ASSERT_EQ(due.size(), 4u);
  EXPECT_EQ(due[0].key, general());
  EXPECT_EQ(due[1].key, cluster(0));
  EXPECT_EQ(due[2].key, cluster(1));
  EXPECT_EQ(due[3].key, personal(4));
}

TEST(MicroBatcher, NextDeadlineTracksOldestAcrossKeys) {
  BatchPolicy p;
  p.max_batch = 8;
  p.max_wait_us = 500;
  MicroBatcher b(p);
  EXPECT_EQ(b.next_deadline_us(), UINT64_MAX);
  b.admit(cluster(1), 0, 200);
  b.admit(general(), 1, 100);
  EXPECT_EQ(b.next_deadline_us(), 600u);
  // Draining the older key moves the horizon to the remaining one.
  ASSERT_EQ(b.pop_due(600).size(), 1u);
  EXPECT_EQ(b.next_deadline_us(), 700u);
}

}  // namespace
}  // namespace clear::serve
