// Coordinator: the routing tier that turns N CLEAR-Serve shard processes
// into one logical server.
//
// One single-threaded poll() loop owns every socket. Clients speak the
// ordinary CRC-framed wire protocol (src/net/protocol) — the same frames the
// single-process `serve --listen` accepts — and never learn they are talking
// to a fleet. Shards are plain `serve --listen` processes; the coordinator
// drives them over the same protocol's shard-coordination frames (ping/pong,
// export/import, adopt, metrics pull).
//
// Placement is a deterministic consistent-hash ring (src/shard/ring) over
// the live shard set, pinned per user at first sight: a user's whole session
// lives on one shard, so the shard's virtual-clock batching sees exactly the
// per-user subsequence it would have seen single-process and the replies are
// bit-identical. Requests are forwarded as re-encoded frames carrying the
// *original payload bytes* — the coordinator cannot perturb a prediction.
//
// Failure and rebalance:
//   * heartbeats — every `heartbeat_ms` the coordinator pings each shard; a
//     shard missing `missed_limit` consecutive beats (or hitting EOF) is
//     declared dead, removed from the ring, and its journal directory is
//     adopted by a survivor (kAdopt -> replay -> import), after which the
//     dead shard's users are re-pinned to the survivor and queued traffic
//     flows again ("coord: healed ..." on stdout);
//   * planned decommission — after `decommission_after` routed requests,
//     shard `decommission_shard` is drained, each of its sessions is
//     exported and imported to its new ring owner (CRC-verified, restored
//     bit-identically), and the empty shard is shut down. Frames bound for
//     a draining/migrating shard queue at the coordinator — never dropped —
//     and flush in arrival order once migration completes.
//
// On shutdown the coordinator drains every shard, pulls each shard's metrics
// snapshot and folds it into its own registry under the "coord." prefix
// (exact histogram merge; see obs::merge_snapshot), then shuts the fleet
// down and acknowledges the client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "shard/ring.hpp"

namespace clear::shard {

/// One shard process the coordinator manages.
struct ShardSpec {
  net::Endpoint endpoint;
  /// The shard's --journal-dir. Empty disables crash adoption for this
  /// shard (its sessions are lost to a crash, like an unjournaled serve).
  std::string journal_dir;
};

struct CoordinatorConfig {
  net::Endpoint listen;  ///< Client-facing. Port 0 binds ephemeral.
  std::vector<ShardSpec> shards;
  /// When nonempty, the bound client-facing port is written here (a single
  /// decimal line) after listen succeeds.
  std::string port_file;
  RingConfig ring;
  /// Liveness probe period; 0 disables heartbeats (deterministic tests).
  std::uint64_t heartbeat_ms = 200;
  /// Consecutive missed beats before a shard is declared dead.
  std::size_t missed_limit = 3;
  std::size_t max_connections = 64;
  int connect_timeout_ms = 5000;   ///< Per-shard connect deadline.
  int shard_io_timeout_ms = 60000; ///< Deadline for one awaited shard reply.
  /// Planned decommission: after `decommission_after` routed requests,
  /// drain shard `decommission_shard`, migrate its sessions to the ring
  /// survivors, and shut it down. -1 disables.
  std::int64_t decommission_shard = -1;
  std::uint64_t decommission_after = 0;
};

struct CoordinatorCounters {
  std::uint64_t requests = 0;    ///< Client requests seen.
  std::uint64_t forwarded = 0;   ///< Frames forwarded to shards.
  std::uint64_t queued = 0;      ///< Frames held for an unavailable shard.
  std::uint64_t responses = 0;   ///< Shard responses routed to clients.
  std::uint64_t pings = 0;
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t shard_deaths = 0;
  std::uint64_t adoptions = 0;          ///< Journal-adoption handoffs run.
  std::uint64_t adopted_sessions = 0;   ///< Sessions recovered by adoption.
  std::uint64_t migrations = 0;         ///< Sessions moved shard-to-shard.
  std::uint64_t migrations_failed = 0;  ///< Sessions lost in migration.
};

class Coordinator {
 public:
  /// Binds the client-facing socket and connects to every shard
  /// immediately (so port() is valid before run(), and a missing shard
  /// fails fast). Throws clear::Error when a shard cannot be reached.
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::uint16_t port() const { return port_; }
  const CoordinatorCounters& counters() const { return counters_; }

  /// Run the event loop until a client kShutdown frame arrives or stop()
  /// is called. Shuts the shard fleet down before returning.
  void run();

  /// Thread-safe (and async-signal-safe) shutdown request.
  void stop();

 private:
  struct Shard {
    std::size_t index = 0;
    ShardSpec spec;
    net::FaultedStream stream;
    net::FrameDecoder decoder;
    bool alive = false;
    bool draining = false;  ///< Decommission drain in flight; traffic queues.
    /// Drain ack received while draining; the main loop (never a nested
    /// dispatch) runs the migration, avoiding transact() re-entrancy.
    bool drain_acked = false;
    /// Death already handled (adoption run or sessions written off);
    /// guards against adopting the same journal twice.
    bool healed = false;
    bool awaiting_pong = false;
    std::uint64_t nonce = 0;        ///< Nonce of the outstanding ping.
    std::uint64_t next_nonce = 1;
    std::size_t misses = 0;         ///< Consecutive missed heartbeats.
    std::uint64_t sessions = 0;     ///< Last pong's session count.
    std::set<std::uint64_t> users;  ///< Users pinned to this shard.
  };

  struct Client {
    net::FaultedStream stream;
    net::FrameDecoder decoder;
    std::string outbuf;
    std::size_t outpos = 0;
    std::uint64_t id = 0;
  };

  struct QueuedFrame {
    std::uint64_t user_id = 0;
    std::uint64_t client_id = 0;
    std::string frame;  ///< Fully encoded kRequest frame bytes.
  };

  void accept_ready();
  void handle_client_readable(Client& client);
  bool pump_client_frames(Client& client);
  bool on_client_request(Client& client, const net::Frame& frame);
  void on_client_drain(Client& client);
  void on_client_shutdown(Client& client);
  void handle_shard_readable(Shard& shard);
  /// Dispatch one asynchronous shard frame (kResponse routing, kPong
  /// bookkeeping). Frames transact() is waiting for never reach this.
  void on_shard_frame(Shard& shard, const net::Frame& frame);
  void route_response(const net::Frame& frame);

  /// Where `user_id` lives: the pinned shard if any, else the ring owner
  /// (pinning it and printing the placement line).
  std::size_t resolve_shard(std::uint64_t user_id);
  bool shard_available(const Shard& shard) const {
    return shard.alive && !shard.draining;
  }
  /// Send a forwarded request; false means the shard died mid-send (the
  /// caller queues the frame and heals — forwarding itself never heals, so
  /// flush_queue() cannot re-enter through it).
  bool forward_to_shard(Shard& shard, const std::string& frame);
  void flush_queue();

  /// Blocking write of fully-encoded frame bytes to a shard (polls for
  /// writability). Returns false when the shard died mid-write.
  bool send_to_shard(Shard& shard, const std::string& frame);
  /// Send `frame` and wait for a reply of type `expect`, dispatching any
  /// interleaved asynchronous frames (responses, pongs) along the way.
  /// nullopt means the shard died; the caller decides whether that is
  /// fatal (decommission) or recoverable (heartbeat path runs adoption).
  std::optional<net::Frame> transact(Shard& shard, const std::string& frame,
                                     net::FrameType expect);

  void heartbeat_tick();
  void shard_died(Shard& shard);
  /// Adopt `dead`'s journal directory onto a survivor and re-pin its users.
  void heal_after_death(Shard& dead);
  void maybe_start_decommission();
  void finish_decommission(Shard& shard);
  /// Drain every live shard, fold their metrics snapshots into this
  /// process's registry under "coord.", shut the fleet down. Returns the
  /// summed drain-ack counters for the client's acknowledgement.
  net::WireDrainAck shutdown_fleet();
  void pull_metrics(Shard& shard);

  void send_to_client(Client& client, const std::string& frame);
  void flush_client(Client& client);
  void close_client(std::uint64_t id, const char* why);

  CoordinatorConfig config_;
  CoordinatorCounters counters_;
  HashRing ring_;
  std::vector<Shard> shards_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint16_t port_ = 0;

  std::uint64_t next_client_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<Client>> graveyard_;
  /// (user_id, request_id) -> client id, for routing responses back.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> routes_;
  /// user id -> shard index. Pinned at first sight; rewritten by migration
  /// and adoption.
  std::map<std::uint64_t, std::size_t> placement_;
  /// Frames bound for an unavailable shard, in arrival order.
  std::deque<QueuedFrame> queue_;

  bool stopping_ = false;
  bool flushing_ = false;  ///< flush_queue() re-entrancy guard.
  bool decommission_started_ = false;
  bool decommission_done_ = false;
};

}  // namespace clear::shard
