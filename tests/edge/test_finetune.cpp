#include "edge/finetune.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::edge {
namespace {

nn::CnnLstmConfig tiny_config() {
  nn::CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 3;
  c.lstm_hidden = 5;
  c.dropout = 0.0;
  return c;
}

struct Fixture {
  std::vector<Tensor> maps;
  nn::MapDataset data;

  explicit Fixture(std::size_t n, std::uint64_t seed, double gap = 1.5) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      Tensor m({16, 8});
      const int label = static_cast<int>(i % 2);
      for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 8; ++c)
          m.at2(r, c) = static_cast<float>(
              rng.normal(label && r < 8 ? gap : 0.0, 0.5));
      maps.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < n; ++i) {
      data.maps.push_back(&maps[i]);
      data.labels.push_back(i % 2);
    }
  }
};

EdgeEngine make_engine(Precision precision, std::uint64_t seed,
                       const Fixture& calib) {
  Rng rng(seed);
  auto model = nn::build_cnn_lstm(tiny_config(), rng);
  EngineConfig ec;
  ec.precision = precision;
  EdgeEngine engine(std::move(model), ec);
  if (precision == Precision::kInt8) engine.calibrate(calib.data.maps);
  return engine;
}

EdgeFinetuneConfig ft_config() {
  EdgeFinetuneConfig fc;
  fc.train.epochs = 10;
  fc.train.batch_size = 4;
  fc.train.lr = 2e-3;
  fc.train.keep_best = false;
  fc.train.validation_fraction = 0.0;
  return fc;
}

TEST(EdgeFinetune, ImprovesAccuracyOnDeviceData) {
  Fixture f(24, 1);
  EdgeEngine engine = make_engine(Precision::kFp32, 2, f);
  const double before = engine.evaluate(f.data).accuracy;
  edge_finetune(engine, f.data, ft_config());
  const double after = engine.evaluate(f.data).accuracy;
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.8);
}

TEST(EdgeFinetune, FrozenConvStackUnchanged) {
  Fixture f(16, 3);
  EdgeEngine engine = make_engine(Precision::kFp32, 4, f);
  const Tensor conv_before = engine.model().parameters()[0]->value;
  edge_finetune(engine, f.data, ft_config());
  const Tensor& conv_after = engine.model().parameters()[0]->value;
  for (std::size_t i = 0; i < conv_before.numel(); ++i)
    EXPECT_EQ(conv_after[i], conv_before[i]);
}

TEST(EdgeFinetune, HeadActuallyMoves) {
  Fixture f(16, 5);
  EdgeEngine engine = make_engine(Precision::kFp32, 6, f);
  const auto params = engine.model().parameters();
  const Tensor head_before = params.back()->value;
  edge_finetune(engine, f.data, ft_config());
  const Tensor& head_after = engine.model().parameters().back()->value;
  bool moved = false;
  for (std::size_t i = 0; i < head_before.numel(); ++i)
    if (head_before[i] != head_after[i]) moved = true;
  EXPECT_TRUE(moved);
}

TEST(EdgeFinetune, Int8WeightsStayOnQuantGrid) {
  Fixture f(16, 7);
  EdgeEngine engine = make_engine(Precision::kInt8, 8, f);
  edge_finetune(engine, f.data, ft_config());
  // Every trainable tensor must hold at most 255 distinct values.
  for (nn::Param* p : engine.model().parameters()) {
    std::set<float> distinct(p->value.flat().begin(), p->value.flat().end());
    EXPECT_LE(distinct.size(), 255u) << p->name;
  }
}

TEST(EdgeFinetune, Fp16WeightsAreHalfRepresentable) {
  Fixture f(16, 9);
  EdgeEngine engine = make_engine(Precision::kFp16, 10, f);
  edge_finetune(engine, f.data, ft_config());
  for (nn::Param* p : engine.model().parameters()) {
    for (const float v : p->value.flat())
      EXPECT_EQ(v, round_fp16(v)) << p->name;
  }
}

TEST(EdgeFinetune, ModelUnfrozenAfterSession) {
  Fixture f(16, 11);
  EdgeEngine engine = make_engine(Precision::kFp32, 12, f);
  edge_finetune(engine, f.data, ft_config());
  for (nn::Param* p : engine.model().parameters()) EXPECT_FALSE(p->frozen);
}

TEST(EdgeFinetune, FullFinetuneWhenUnfrozen) {
  Fixture f(16, 13);
  EdgeEngine engine = make_engine(Precision::kFp32, 14, f);
  EdgeFinetuneConfig fc = ft_config();
  fc.freeze_feature_extractor = false;
  const Tensor conv_before = engine.model().parameters()[0]->value;
  edge_finetune(engine, f.data, fc);
  bool moved = false;
  const Tensor& conv_after = engine.model().parameters()[0]->value;
  for (std::size_t i = 0; i < conv_before.numel(); ++i)
    if (conv_before[i] != conv_after[i]) moved = true;
  EXPECT_TRUE(moved);
}

TEST(EdgeFinetune, RejectsTooFewSamples) {
  Fixture f(1, 15);
  EdgeEngine engine = make_engine(Precision::kFp32, 16, f);
  EXPECT_THROW(edge_finetune(engine, f.data, ft_config()), Error);
}

}  // namespace
}  // namespace clear::edge
