// Binary tensor serialization, used by the checkpoint format (src/nn) and
// the edge deployment artifacts (src/edge).
//
// Wire format (little-endian, matching every platform we target):
//   u32 magic 'CTSR', u32 version, u64 rank, u64 extents[rank], f32 data[...]
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.hpp"

namespace clear::io {

/// Write one tensor to a binary stream. Throws clear::Error on IO failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Read one tensor. Throws clear::Error on malformed input or IO failure.
Tensor read_tensor(std::istream& is);

/// Write a length-prefixed UTF-8 string.
void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

/// Scalar helpers for composite formats.
void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);
void write_f64(std::ostream& os, double v);
double read_f64(std::istream& is);

}  // namespace clear::io
