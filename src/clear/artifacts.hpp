// On-disk deployment artifacts for a fitted ClearPipeline.
//
// Directory layout (what the paper's cloud stage ships to the edge):
//   <dir>/pipeline.meta    — config, fitted users, normalizer, clustering
//   <dir>/cluster_<k>.ckpt — one CNN-LSTM checkpoint per cluster
//   <dir>/general.ckpt     — population-general fallback model (optional)
//
// load_pipeline() restores an equivalent pipeline: same assignments, same
// predictions, without access to the training data.
//
// Integrity & degradation: every file is written atomically (temp + rename)
// and carries a CRC-32 (the meta via its own v2 envelope, the checkpoints
// via the v2 checkpoint format). Corruption of pipeline.meta fails loudly
// with a CRC-specific error; corruption or loss of a cluster checkpoint
// degrades that cluster to the general fallback model when general.ckpt is
// present (reported by ClearPipeline::fallback_clusters()) and fails
// otherwise. Wrong weights are never loaded silently. Legacy v1 artifacts
// (no CRC, no general.ckpt) still load.
#pragma once

#include <string>

#include "clear/pipeline.hpp"

namespace clear::core {

/// Persist a fitted pipeline. Creates `directory` if needed; overwrites
/// existing artifact files. Throws clear::Error on IO failure or if the
/// pipeline is not fitted.
void save_pipeline(ClearPipeline& pipeline, const std::string& directory);

/// Restore a pipeline saved by save_pipeline(). Throws clear::Error on
/// missing/corrupt artifacts.
ClearPipeline load_pipeline(const std::string& directory);

/// Metadata-only view of an artifact directory: the CRC-verified contents of
/// pipeline.meta with no checkpoint blobs loaded. The serving layer uses this
/// to route requests while streaming checkpoints on demand through its cache.
struct ArtifactMeta {
  ClearConfig config;
  std::vector<std::size_t> users;
  features::FeatureNormalizer normalizer;
  cluster::GlobalClusteringResult clustering;
};

/// Parse pipeline.meta only. Throws clear::Error on missing/corrupt metadata.
ArtifactMeta load_artifact_meta(const std::string& directory);

/// Read one serialized checkpoint blob. Returns "" when the file is missing
/// or unreadable (the caller decides whether to degrade or fail); corruption
/// inside a present blob is caught downstream by the checkpoint CRC on
/// deserialization. Both honour the fault layer's "checkpoint read" IO site.
std::string read_cluster_checkpoint(const std::string& directory,
                                    std::size_t k);
std::string read_general_checkpoint(const std::string& directory);

}  // namespace clear::core
