// Fault-injected wire tests: the deterministic network-fault knobs
// (`net_short_write`, `net_drop` in src/common/fault) drive the epoll front
// end through its failure paths on a real loopback socket.
//
// The properties under test:
//   * short writes are invisible to delivery — every caller loops its
//     partial-write path, so a run where *every* send is capped at a few
//     bytes produces bit-identical responses to the clean run;
//   * a connection severed mid-request sheds exactly that request at the
//     wire (net.partial_drops + the operator-facing serve.shed total) and
//     never corrupts session state — the same user resumes on a fresh
//     connection;
//   * a requester that hangs up before its result completes loses only the
//     reply (net.dropped_responses); the serve layer still commits the
//     session update and keeps answering everyone else.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clear/pipeline.hpp"
#include "common/fault.hpp"
#include "common/obs.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"
#include "wemac/dataset.hpp"

namespace clear::net {
namespace {

// Every test must leave the process-global fault knobs disarmed, even when
// an assertion fails mid-test.
struct NetFaultGuard {
  NetFaultGuard() {
    fault::clear_net_fault();
    fault::disarm_net_drop();
  }
  ~NetFaultGuard() {
    fault::clear_net_fault();
    fault::disarm_net_drop();
  }
};

core::ClearConfig fault_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 31;
  c.data.n_volunteers = 6;
  c.data.trials_per_volunteer = 4;
  c.train.epochs = 1;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

struct FaultFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  serve::ModelSource source;

  FaultFixture()
      : dataset(wemac::generate_wemac(fault_config().data)),
        pipeline(fault_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = serve::ModelSource::from_pipeline(pipeline);
  }
};

FaultFixture& fixture() {
  static FaultFixture f;
  return f;
}

serve::ServeConfig fault_serve_config() {
  serve::ServeConfig sc;
  sc.batch.max_batch = 4;
  sc.session.ca_windows = 2;
  sc.session.ft_maps = 2;
  return sc;
}

// A valid request carrying one of `user`'s own feature maps.
WireRequest user_request(std::uint64_t user, std::uint64_t request_id,
                         std::uint64_t arrival_us) {
  WireRequest r;
  r.request_id = request_id;
  r.user_id = user;
  r.arrival_us = arrival_us;
  const auto& trials = fixture().dataset.samples_of(
      static_cast<std::size_t>(user) % fixture().dataset.n_volunteers());
  const std::size_t idx = trials[static_cast<std::size_t>(request_id) %
                                 trials.size()];
  r.map = fixture().dataset.samples()[idx].feature_map;
  return r;
}

std::uint32_t f32_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(NetFault, WriteCapIsDeterministicAndOffByDefault) {
  NetFaultGuard guard;
  constexpr std::size_t kNoCap = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(fault::net_write_cap(7, 3), kNoCap);

  fault::NetFaultSpec spec;
  spec.seed = 9;
  spec.short_write_rate = 0.5;
  spec.short_write_bytes = 3;
  fault::set_net_fault(spec);

  std::size_t capped = 0;
  for (std::uint64_t op = 0; op < 1000; ++op) {
    const std::size_t first = fault::net_write_cap(42, op);
    // Stateless: the same (stream, op) always draws the same decision.
    EXPECT_EQ(first, fault::net_write_cap(42, op));
    if (first != kNoCap) {
      EXPECT_EQ(first, 3u);
      ++capped;
    }
  }
  // A 0.5 rate caps roughly half the ops — certainly not none or all.
  EXPECT_GT(capped, 300u);
  EXPECT_LT(capped, 700u);

  // Different streams draw independent decisions from the same spec.
  std::size_t disagreements = 0;
  for (std::uint64_t op = 0; op < 200; ++op)
    if (fault::net_write_cap(1, op) != fault::net_write_cap(2, op))
      ++disagreements;
  EXPECT_GT(disagreements, 0u);
}

TEST(NetFault, DropCountdownCanTargetOneStream) {
  NetFaultGuard guard;
  EXPECT_FALSE(fault::net_drop_fires(50));  // Disarmed: never fires.

  fault::arm_net_drop(1, /*stream_id=*/50);
  EXPECT_FALSE(fault::net_drop_fires(49));  // Other streams don't count.
  EXPECT_FALSE(fault::net_drop_fires(51));
  EXPECT_TRUE(fault::net_drop_fires(50));   // The target's next op fires.
  EXPECT_FALSE(fault::net_drop_fires(50));  // Exactly once, then disarmed.

  fault::arm_net_drop(2);  // Unfiltered: any stream's ops count down.
  EXPECT_FALSE(fault::net_drop_fires(7));
  EXPECT_TRUE(fault::net_drop_fires(8));
  EXPECT_FALSE(fault::net_drop_fires(9));
}

using ResultKey = std::pair<std::uint64_t, std::uint64_t>;

// One full wire exchange: N requests over one connection, drain, collect.
std::map<ResultKey, WireResponse> run_exchange(std::uint64_t client_stream) {
  serve::Server server(fixture().source, fault_serve_config());
  NetServerConfig nc;
  nc.listen.port = 0;
  nc.idle_flush_ms = 0;
  NetServer net_server(server, nc);
  std::thread server_thread([&net_server] { net_server.run(); });

  std::map<ResultKey, WireResponse> out;
  {
    BlockingClient client({"127.0.0.1", net_server.port()}, client_stream);
    std::uint64_t arrival = 0;
    for (std::uint64_t id = 1; id <= 4; ++id)
      for (std::uint64_t user = 2; user <= 3; ++user)
        client.send_request(user_request(user, id, arrival += 1000));
    client.send_drain();
    Frame frame;
    while (true) {
      if (!client.recv_frame(frame)) {
        ADD_FAILURE() << "connection closed before the drain ack";
        break;
      }
      if (frame.type == FrameType::kDrainAck) break;
      WireResponse response;
      std::string error;
      if (!parse_response(frame, response, error)) {
        ADD_FAILURE() << error;
        break;
      }
      out[{response.user_id, response.request_id}] = response;
    }
    client.send_shutdown();
  }
  server_thread.join();
  EXPECT_EQ(net_server.counters().decode_errors, 0u);
  EXPECT_EQ(net_server.counters().partial_drops, 0u);
  return out;
}

TEST(NetFault, ShortWritesAreInvisibleToDelivery) {
  NetFaultGuard guard;
  const auto clean = run_exchange(/*client_stream=*/42);

  // Now cap *every* guarded write — client requests and server responses
  // both crawl through 7-byte sends. Delivery must be bit-identical.
  fault::NetFaultSpec spec;
  spec.seed = 11;
  spec.short_write_rate = 1.0;
  spec.short_write_bytes = 7;
  fault::set_net_fault(spec);
  const auto faulted = run_exchange(/*client_stream=*/42);

  ASSERT_EQ(clean.size(), faulted.size());
  ASSERT_EQ(clean.size(), 8u);
  for (const auto& [key, c] : clean) {
    const auto it = faulted.find(key);
    ASSERT_NE(it, faulted.end());
    const WireResponse& f = it->second;
    EXPECT_EQ(f32_bits(f.fear_probability), f32_bits(c.fear_probability));
    EXPECT_EQ(f.predicted, c.predicted);
    EXPECT_EQ(f.session_state, c.session_state);
    EXPECT_EQ(f.batch_rows, c.batch_rows);
    EXPECT_EQ(f.error, c.error);
  }
}

TEST(NetFault, MidRequestDropShedsCleanlyAndSessionSurvives) {
  NetFaultGuard guard;
  obs::set_enabled(true);
  const std::uint64_t shed_before = obs::counter("serve.shed").value();

  serve::Server server(fixture().source, fault_serve_config());
  NetServerConfig nc;
  nc.listen.port = 0;
  nc.idle_flush_ms = 0;
  NetServer net_server(server, nc);
  std::thread server_thread([&net_server] { net_server.run(); });

  std::uint32_t first_state = 0;
  {
    // Victim connection: one clean round trip for user 3, then it dies
    // twenty bytes into its second request.
    BlockingClient victim({"127.0.0.1", net_server.port()},
                          /*stream_id=*/50);
    victim.send_request(user_request(3, 1, 1000));
    victim.send_drain();
    WireResponse r1;
    ASSERT_TRUE(victim.recv_response(r1));
    EXPECT_TRUE(r1.error.empty());
    first_state = r1.session_state;
    WireDrainAck ack;
    ASSERT_TRUE(victim.recv_drain_ack(ack));

    const std::string frame = encode_request(user_request(3, 2, 2000));
    ASSERT_GT(frame.size(), 20u);
    victim.send_bytes(frame.data(), 20);
    // The drop is armed for stream 50 only, so the server thread's own
    // guarded socket ops cannot steal the countdown: the victim's very
    // next write severs its connection before sending a byte.
    fault::arm_net_drop(1, /*stream_id=*/50);
    victim.send_bytes(frame.data() + 20, frame.size() - 20);
    EXPECT_TRUE(victim.dropped());
  }
  {
    // Same user resumes on a fresh connection: the half-sent request was
    // shed at the wire and must not have touched the session.
    BlockingClient resumed({"127.0.0.1", net_server.port()},
                           /*stream_id=*/60);
    resumed.send_request(user_request(3, 2, 2000));
    resumed.send_drain();
    WireResponse r2;
    ASSERT_TRUE(resumed.recv_response(r2));
    EXPECT_TRUE(r2.error.empty());
    EXPECT_FALSE(r2.shed);
    EXPECT_GE(r2.session_state, first_state);
    resumed.send_shutdown();
  }
  server_thread.join();
  obs::set_enabled(false);

  EXPECT_EQ(net_server.counters().partial_drops, 1u);
  EXPECT_EQ(net_server.counters().decode_errors, 0u);
  EXPECT_EQ(net_server.counters().accepted, 2u);
  EXPECT_EQ(net_server.counters().dropped_responses, 0u);
  // The wire-level shed is folded into the operator-facing serve.shed
  // total; the net.partial_drops counter above says why.
  EXPECT_EQ(obs::counter("serve.shed").value(), shed_before + 1);
  // The serve layer saw exactly the two complete requests.
  EXPECT_EQ(server.counters().requests, 2u);
  EXPECT_EQ(server.counters().ok, 2u);
}

TEST(NetFault, DroppedResponsesLoseOnlyTheReply) {
  NetFaultGuard guard;
  serve::Server server(fixture().source, fault_serve_config());
  NetServerConfig nc;
  nc.listen.port = 0;
  nc.idle_flush_ms = 0;
  NetServer net_server(server, nc);
  std::thread server_thread([&net_server] { net_server.run(); });

  {
    // Sends one complete request, then hangs up without waiting: the
    // result has nowhere to go.
    BlockingClient impatient({"127.0.0.1", net_server.port()},
                             /*stream_id=*/70);
    impatient.send_request(user_request(2, 1, 1000));
  }
  {
    // Everyone else is unaffected.
    BlockingClient patient({"127.0.0.1", net_server.port()},
                           /*stream_id=*/80);
    patient.send_request(user_request(4, 1, 2000));
    patient.send_drain();
    WireResponse r;
    ASSERT_TRUE(patient.recv_response(r));
    EXPECT_TRUE(r.error.empty());
    EXPECT_EQ(r.user_id, 4u);
    patient.send_shutdown();
  }
  server_thread.join();

  // The impatient client's request was fully received, processed (its
  // session update committed), and only the reply dropped.
  EXPECT_EQ(net_server.counters().dropped_responses, 1u);
  EXPECT_EQ(net_server.counters().partial_drops, 0u);
  EXPECT_EQ(net_server.counters().decode_errors, 0u);
  EXPECT_EQ(server.counters().requests, 2u);
  EXPECT_EQ(server.counters().ok, 2u);
}

}  // namespace
}  // namespace clear::net
