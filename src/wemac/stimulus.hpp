// Stimulus model: emotions elicited by the video protocol and their mapping
// to the binary fear / non-fear task (paper §IV-A: WEMAC is annotated with
// ten emotional labels, evaluated as fear vs. non-fear).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace clear::wemac {

/// The ten emotion labels of the WEMAC protocol.
enum class Emotion : std::uint8_t {
  kFear = 0,
  kJoy,
  kHope,
  kSadness,
  kAnger,
  kDisgust,
  kSurprise,
  kCalm,
  kAmusement,
  kTenderness,
};

inline constexpr std::size_t kNumEmotions = 10;

const std::string& emotion_name(Emotion e);

/// Binary task label: fear = 1, everything else = 0.
bool is_fear(Emotion e);

/// Normalized arousal level in [0, 1] the stimulus elicits. Fear is maximal;
/// several non-fear emotions are strongly arousing too, which is what makes
/// the binary task non-trivial (arousal alone does not separate the classes).
double emotion_arousal(Emotion e);

/// One video stimulus shown to a volunteer.
struct Stimulus {
  Emotion emotion = Emotion::kCalm;
  double duration_s = 120.0;
};

/// Generate a per-volunteer stimulus schedule of `n_trials` videos with a
/// target fear fraction (the evaluation balances fear vs. non-fear).
/// Non-fear emotions are drawn uniformly.
std::vector<Stimulus> make_schedule(std::size_t n_trials, double fear_fraction,
                                    double trial_seconds, Rng& rng);

}  // namespace clear::wemac
