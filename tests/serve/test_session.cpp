#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::serve {
namespace {

SessionPolicy quick_policy() {
  SessionPolicy p;
  p.ca_windows = 2;
  p.ft_maps = 2;
  p.degrade_after = 3;
  p.recover_after = 3;
  return p;
}

Session make_session(SessionPolicy p = quick_policy()) {
  return Session(1, p, edge::Precision::kFp32);
}

cluster::Point obs(double v) { return cluster::Point{v, v}; }

Tensor map_of(float v) {
  Tensor m({2, 2});
  for (float& x : m.flat()) x = v;
  return m;
}

std::unique_ptr<edge::EdgeEngine> tiny_engine() {
  nn::CnnLstmConfig c;
  c.feature_dim = 8;
  c.window_count = 4;
  c.conv1_channels = 2;
  c.conv2_channels = 2;
  c.lstm_hidden = 3;
  c.dropout = 0.0;
  Rng rng(1);
  return std::make_unique<edge::EdgeEngine>(nn::build_cnn_lstm(c, rng),
                                            edge::EngineConfig{});
}

TEST(Session, ColdStartWalksAssigningToAssigned) {
  Session s = make_session();
  EXPECT_EQ(s.state(), SessionState::kCold);
  EXPECT_FALSE(s.assigned());
  s.add_observation(obs(0.1));
  EXPECT_EQ(s.state(), SessionState::kAssigning);
  EXPECT_FALSE(s.ca_ready());
  s.add_observation(obs(0.2));
  EXPECT_TRUE(s.ca_ready());
  EXPECT_EQ(s.observations().size(), 2u);
  s.set_assignment(3);
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  EXPECT_EQ(s.cluster(), 3u);
  EXPECT_TRUE(s.assigned());
  // The CA buffer is dropped once the verdict lands.
  EXPECT_TRUE(s.observations().empty());
}

TEST(Session, StateMachineRejectsOutOfOrderTransitions) {
  Session s = make_session();
  EXPECT_THROW(s.set_assignment(0), Error);
  EXPECT_THROW(s.begin_finetune(), Error);
  EXPECT_THROW(s.abort_finetune(), Error);
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  EXPECT_THROW(s.add_observation(obs(0.3)), Error);
  EXPECT_THROW(s.set_personal_engine(tiny_engine()), Error);
}

TEST(Session, FineTuneWaitsForBothClasses) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(0.1f), 0);
  // Enough maps, but single-class — fine-tuning on it would collapse the
  // classifier, so the session keeps waiting.
  EXPECT_FALSE(s.ft_ready());
  s.add_labelled(map_of(1.0f), 1);
  EXPECT_TRUE(s.ft_ready());
}

TEST(Session, PersonalizationLifecycle) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(1);
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(1.0f), 1);
  ASSERT_TRUE(s.ft_ready());
  s.begin_finetune();
  EXPECT_EQ(s.state(), SessionState::kFineTuning);
  EXPECT_TRUE(s.assigned());
  s.set_personal_engine(tiny_engine());
  EXPECT_EQ(s.state(), SessionState::kPersonalized);
  EXPECT_NE(s.personal_engine(), nullptr);
  EXPECT_TRUE(s.labelled().empty());
  // Once personalized, labelled maps are no longer buffered.
  s.add_labelled(map_of(0.5f), 1);
  EXPECT_TRUE(s.labelled().empty());
}

TEST(Session, AbortedFineTuneStopsRetrying) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(1.0f), 1);
  s.begin_finetune();
  s.abort_finetune();  // e.g. the cluster checkpoint turned out unusable.
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  // The known-bad checkpoint is not retried: labelled maps stop buffering.
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(1.0f), 1);
  EXPECT_FALSE(s.ft_ready());
  EXPECT_TRUE(s.labelled().empty());
}

TEST(Session, DegradeNeedsConsecutiveBadRequests) {
  Session s = make_session();
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  // A good request resets the streak.
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  EXPECT_FALSE(s.degraded());
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kDegraded);
  EXPECT_TRUE(s.degraded());
}

TEST(Session, RecoveryRestoresExactPreDegradationState) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(2);
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  EXPECT_EQ(s.state(), SessionState::kDegraded);
  // A degraded-but-assigned session still remembers its cluster...
  EXPECT_TRUE(s.assigned());
  EXPECT_EQ(s.cluster(), 2u);
  // ...and recovery puts it right back on it.
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kRecovered);
  EXPECT_EQ(s.state(), SessionState::kAssigned);
}

TEST(Session, ColdSessionDegradesAndRecoversCold) {
  Session s = make_session();
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  EXPECT_TRUE(s.degraded());
  EXPECT_FALSE(s.assigned());  // Nothing saved worth routing to.
  for (int i = 0; i < 3; ++i) s.note_quality(0.9);
  EXPECT_EQ(s.state(), SessionState::kCold);
}

TEST(Session, RecoveryStreakMustBeConsecutive) {
  Session s = make_session();
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  s.note_quality(0.9);
  s.note_quality(0.9);
  s.note_quality(0.1);  // Streak broken; still degraded.
  EXPECT_TRUE(s.degraded());
  for (int i = 0; i < 3; ++i) s.note_quality(0.9);
  EXPECT_FALSE(s.degraded());
}

TEST(Session, PolicyValidation) {
  SessionPolicy p = quick_policy();
  p.ca_windows = 0;
  EXPECT_THROW(make_session(p), Error);
  p = quick_policy();
  p.ft_maps = 1;  // Fine-tuning needs at least two samples.
  EXPECT_THROW(make_session(p), Error);
  p = quick_policy();
  p.degrade_after = 0;
  EXPECT_THROW(make_session(p), Error);
}

SessionPolicy drift_policy() {
  SessionPolicy p = quick_policy();
  p.drift_after = 2;
  p.reassess_windows = 2;
  p.shadow_windows = 3;
  return p;
}

/// Walk a fresh session to ASSIGNED on `cluster`.
Session assigned_session(std::size_t cluster,
                         SessionPolicy p = drift_policy()) {
  Session s = make_session(p);
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(cluster);
  return s;
}

TEST(Session, DriftStreakMustBeConsecutive) {
  Session s = assigned_session(0);
  EXPECT_EQ(s.drift_tick(true), Session::DriftEvent::kNone);
  EXPECT_EQ(s.drift_streak(), 1u);
  EXPECT_EQ(s.drift_tick(false), Session::DriftEvent::kNone);  // Resets.
  EXPECT_EQ(s.drift_streak(), 0u);
  EXPECT_EQ(s.drift_tick(true), Session::DriftEvent::kNone);
  EXPECT_EQ(s.drift_tick(true), Session::DriftEvent::kTriggered);
  EXPECT_EQ(s.state(), SessionState::kReassessing);
  EXPECT_TRUE(s.adapting());
  EXPECT_TRUE(s.assigned());  // Still serving the incumbent.
  EXPECT_TRUE(s.observations().empty());  // Fresh re-assessment buffer.
}

TEST(Session, ReassessFalseAlarmReturnsToPreDriftState) {
  Session s = assigned_session(2);
  s.drift_tick(true);
  s.drift_tick(true);
  s.add_reassess_observation(obs(1.0));
  EXPECT_FALSE(s.reassess_ready());
  s.add_reassess_observation(obs(1.1));
  EXPECT_TRUE(s.reassess_ready());
  // CA names the incumbent again: false alarm, straight back to ASSIGNED.
  EXPECT_FALSE(s.reassess_verdict(2));
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  EXPECT_EQ(s.cluster(), 2u);
  EXPECT_FALSE(s.adapting());
}

TEST(Session, ShadowStrictMajorityPromotes) {
  Session s = assigned_session(0);
  s.drift_tick(true);
  s.drift_tick(true);
  s.add_reassess_observation(obs(1.0));
  s.add_reassess_observation(obs(1.1));
  EXPECT_TRUE(s.reassess_verdict(1));
  EXPECT_EQ(s.state(), SessionState::kShadowing);
  EXPECT_EQ(s.candidate_cluster(), 1u);
  EXPECT_EQ(s.cluster(), 0u);  // Incumbent serves until promotion commits.
  s.shadow_tick(true);
  s.shadow_tick(false);
  EXPECT_FALSE(s.shadow_done());
  s.shadow_tick(true);  // 2 of 3: strict majority.
  EXPECT_TRUE(s.shadow_done());
  EXPECT_TRUE(s.shadow_promotes());
  s.promote_to_candidate();
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  EXPECT_EQ(s.cluster(), 1u);
  EXPECT_EQ(s.shadow_seen(), 0u);  // Bookkeeping cleared for the next cycle.
}

TEST(Session, ShadowTieDemotesToIncumbent) {
  SessionPolicy p = drift_policy();
  p.shadow_windows = 2;
  Session s = assigned_session(0, p);
  s.drift_tick(true);
  s.drift_tick(true);
  s.add_reassess_observation(obs(1.0));
  s.add_reassess_observation(obs(1.1));
  ASSERT_TRUE(s.reassess_verdict(1));
  s.shadow_tick(true);
  s.shadow_tick(false);  // 1 of 2: a tie is not a strict majority.
  ASSERT_TRUE(s.shadow_done());
  EXPECT_FALSE(s.shadow_promotes());
  s.demote_to_incumbent();
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  EXPECT_EQ(s.cluster(), 0u);  // Incumbent untouched.
}

TEST(Session, PromotionDropsPersonalEngineAndLabelledBuffer) {
  SessionPolicy p = drift_policy();
  Session s = make_session(p);
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  s.add_labelled(map_of(0.1f), 1);
  s.add_labelled(map_of(0.2f), 0);
  s.begin_finetune();
  s.set_personal_engine(tiny_engine());
  ASSERT_EQ(s.state(), SessionState::kPersonalized);
  s.drift_tick(true);
  s.drift_tick(true);
  EXPECT_EQ(s.state(), SessionState::kReassessing);
  EXPECT_TRUE(s.has_personal_engine());  // Incumbent engine still serving.
  s.add_reassess_observation(obs(2.0));
  s.add_reassess_observation(obs(2.1));
  ASSERT_TRUE(s.reassess_verdict(1));
  s.shadow_tick(true);
  s.shadow_tick(true);
  s.shadow_tick(true);
  ASSERT_TRUE(s.shadow_promotes());
  s.promote_to_candidate();
  // The personal model was fine-tuned on the *old* cluster; it cannot follow
  // the user. The session may re-personalize on the new cluster from fresh
  // labels.
  EXPECT_FALSE(s.has_personal_engine());
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  EXPECT_TRUE(s.labelled().empty());
  s.add_labelled(map_of(0.3f), 1);
  EXPECT_EQ(s.labelled().size(), 1u);  // Fine-tuning still enabled.
}

TEST(Session, ShadowLossRestoresPersonalizedState) {
  SessionPolicy p = drift_policy();
  p.shadow_windows = 2;
  Session s = make_session(p);
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  s.add_labelled(map_of(0.1f), 1);
  s.add_labelled(map_of(0.2f), 0);
  s.begin_finetune();
  s.set_personal_engine(tiny_engine());
  s.drift_tick(true);
  s.drift_tick(true);
  s.add_reassess_observation(obs(2.0));
  s.add_reassess_observation(obs(2.1));
  ASSERT_TRUE(s.reassess_verdict(1));
  s.shadow_tick(false);
  s.shadow_tick(false);
  ASSERT_FALSE(s.shadow_promotes());
  s.demote_to_incumbent();
  EXPECT_EQ(s.state(), SessionState::kPersonalized);
  EXPECT_TRUE(s.has_personal_engine());
}

TEST(Session, AdaptationFreezesAndThawsUnderDegraded) {
  Session s = assigned_session(0);
  s.drift_tick(true);
  s.drift_tick(true);
  ASSERT_EQ(s.state(), SessionState::kReassessing);
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  EXPECT_EQ(s.state(), SessionState::kDegraded);
  EXPECT_TRUE(s.adapting());  // Frozen mid-adaptation, still reported.
  EXPECT_EQ(s.effective_state(), SessionState::kReassessing);
  for (int i = 0; i < 3; ++i) s.note_quality(1.0);
  EXPECT_EQ(s.state(), SessionState::kReassessing);  // Thawed exactly.
}

TEST(Session, DriftMachineGuardsItsStates) {
  Session s = assigned_session(0);
  EXPECT_THROW(s.add_reassess_observation(obs(1.0)), Error);
  EXPECT_THROW(s.shadow_tick(true), Error);
  EXPECT_THROW(s.promote_to_candidate(), Error);
  EXPECT_THROW(s.demote_to_incumbent(), Error);
  // Disabled monitor: drift_tick must refuse outright.
  Session off = make_session();  // quick_policy has drift_after = 0.
  off.add_observation(obs(0.1));
  off.add_observation(obs(0.2));
  off.set_assignment(0);
  EXPECT_THROW(off.drift_tick(false), Error);
}

TEST(Session, ImageRoundTripsAdaptationFields) {
  SessionPolicy p = drift_policy();
  Session s = assigned_session(3, p);
  s.drift_tick(true);
  s.drift_tick(true);
  s.add_reassess_observation(obs(2.0));
  s.add_reassess_observation(obs(2.1));
  ASSERT_TRUE(s.reassess_verdict(1));
  s.shadow_tick(true);
  const SessionImage img = s.image();
  EXPECT_EQ(img.state, SessionState::kShadowing);
  EXPECT_EQ(img.candidate_cluster, 1u);
  EXPECT_EQ(img.shadow_wins, 1u);
  EXPECT_EQ(img.shadow_seen, 1u);
  Session restored(1, p, edge::Precision::kFp32);
  restored.restore_image(img, nullptr);
  EXPECT_EQ(restored.state(), SessionState::kShadowing);
  EXPECT_EQ(restored.candidate_cluster(), 1u);
  EXPECT_EQ(restored.shadow_wins(), 1u);
  EXPECT_EQ(restored.shadow_seen(), 1u);
  // The restored machine continues exactly where the original stopped.
  restored.shadow_tick(true);
  restored.shadow_tick(false);
  EXPECT_TRUE(restored.shadow_done());
  EXPECT_TRUE(restored.shadow_promotes());
}

TEST(SessionManager, AdmissionControlCapsTheTable) {
  SessionManager m(quick_policy(), {edge::Precision::kFp32}, 2);
  Session* a = m.get_or_create(10);
  Session* b = m.get_or_create(20);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Table full: new users are refused, existing ones still served.
  EXPECT_EQ(m.get_or_create(30), nullptr);
  EXPECT_EQ(m.get_or_create(10), a);
  EXPECT_EQ(m.find(20), b);
  EXPECT_EQ(m.find(30), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(SessionManager, UsersCycleThroughPrecisions) {
  SessionManager m(quick_policy(),
                   {edge::Precision::kFp32, edge::Precision::kFp16}, 16);
  EXPECT_EQ(m.get_or_create(0)->precision(), edge::Precision::kFp32);
  EXPECT_EQ(m.get_or_create(1)->precision(), edge::Precision::kFp16);
  EXPECT_EQ(m.get_or_create(2)->precision(), edge::Precision::kFp32);
}

TEST(SessionManager, SessionsReportInUserIdOrder) {
  SessionManager m(quick_policy(), {edge::Precision::kFp32}, 16);
  m.get_or_create(9);
  m.get_or_create(3);
  m.get_or_create(7);
  const std::vector<const Session*> all = m.sessions();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->user_id(), 3u);
  EXPECT_EQ(all[1]->user_id(), 7u);
  EXPECT_EQ(all[2]->user_id(), 9u);
}

}  // namespace
}  // namespace clear::serve
