// Global Clustering (GC) — paper §III-A-2, after Gutiérrez-Martín et al. 2024.
//
// Users are clustered by the similarity of their physiological responses:
// each user is summarized by the mean of their (normalized) per-window
// feature vectors, k-means produces an initial partition, and an iterative
// refinement then repeatedly re-estimates user representations from random
// subsets of their observations, recomputes centroids, and reassigns users
// whose nearest centroid changed. The refinement makes the partition robust
// to which part of a user's recording is considered.
//
// The result also carries, per cluster, the internal sub-cluster centroids
// C_{k,i} over member observations that the cold-start Cluster Assignment
// (src/cluster/assignment) relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/kmeans.hpp"

namespace clear::cluster {

struct GlobalClusteringConfig {
  std::size_t k = 4;                  ///< Number of clusters (paper: 4).
  std::size_t refinement_rounds = 12; ///< Max subsample/reassign rounds.
  double subsample_fraction = 0.7;    ///< Observations kept per round.
  std::size_t sub_clusters = 3;       ///< I_k: internal centroids per cluster.
  KMeansOptions kmeans;
};

/// One cluster of the final partition.
struct ClusterModel {
  Point centroid;                   ///< C_k over member user points.
  std::vector<Point> sub_centroids; ///< C_{k,i} over member observations.
  std::vector<std::size_t> members; ///< User indices in this cluster.
};

struct GlobalClusteringResult {
  std::vector<std::size_t> user_cluster;  ///< Cluster id per user.
  std::vector<ClusterModel> clusters;     ///< Size k.
  std::size_t rounds_run = 0;             ///< Refinement rounds executed.
  bool converged = false;                 ///< Assignment became stable.
};

/// Cluster `user_observations[u]` = the normalized feature vectors of user
/// u's windows. Every user needs at least one observation; all observations
/// share one dimension. Requires #users >= config.k.
GlobalClusteringResult global_clustering(
    const std::vector<std::vector<Point>>& user_observations,
    const GlobalClusteringConfig& config, Rng& rng);

/// Mean of a user's observations (the user's point in feature space).
Point user_representation(const std::vector<Point>& observations);

}  // namespace clear::cluster
