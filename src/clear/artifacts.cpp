#include "clear/artifacts.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "tensor/serialize.hpp"

namespace clear::core {

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kMetaMagic = 0x434C4541524D4554ull;  // "CLEARMET"
// v1: raw field stream after the version word (no integrity check).
// v2: u64 payload length + payload + u64 CRC-32 of the payload. Same field
//     layout inside the payload, so the parser is shared.
constexpr std::uint64_t kMetaVersion = 2;

void write_point(std::ostream& os, const cluster::Point& p) {
  io::write_u64(os, p.size());
  for (const double v : p) io::write_f64(os, v);
}

cluster::Point read_point(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  CLEAR_CHECK_MSG(n < (1u << 20), "implausible point dimension");
  cluster::Point p(n);
  for (double& v : p) v = io::read_f64(is);
  return p;
}

void write_index_vector(std::ostream& os, const std::vector<std::size_t>& v) {
  io::write_u64(os, v.size());
  for (const std::size_t x : v) io::write_u64(os, x);
}

std::vector<std::size_t> read_index_vector(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  CLEAR_CHECK_MSG(n < (1u << 24), "implausible index vector length");
  std::vector<std::size_t> v(n);
  for (std::size_t& x : v) x = io::read_u64(is);
  return v;
}

void write_model_config(std::ostream& os, const nn::CnnLstmConfig& c) {
  io::write_u64(os, c.feature_dim);
  io::write_u64(os, c.window_count);
  io::write_u64(os, c.conv1_channels);
  io::write_u64(os, c.conv2_channels);
  io::write_u64(os, c.lstm_hidden);
  io::write_u64(os, c.n_classes);
  io::write_f64(os, c.dropout);
}

nn::CnnLstmConfig read_model_config(std::istream& is) {
  nn::CnnLstmConfig c;
  c.feature_dim = io::read_u64(is);
  c.window_count = io::read_u64(is);
  c.conv1_channels = io::read_u64(is);
  c.conv2_channels = io::read_u64(is);
  c.lstm_hidden = io::read_u64(is);
  c.n_classes = io::read_u64(is);
  c.dropout = io::read_f64(is);
  return c;
}

void write_meta_payload(std::ostream& os, const ClearConfig& config,
                        const ClearPipeline::State& state) {
  // Configuration needed to rebuild models and reproduce assignment.
  write_model_config(os, config.model);
  io::write_u64(os, config.gc.k);
  io::write_u64(os, config.gc.sub_clusters);
  io::write_f64(os, config.ca_fraction);
  io::write_f64(os, config.ft_fraction);
  io::write_u64(os, config.seed);
  io::write_u64(os, config.finetune.epochs);
  io::write_f64(os, config.finetune.lr);
  io::write_u64(os, config.finetune.batch_size);
  // Fitted users.
  write_index_vector(os, state.users);
  // Normalizer moments.
  write_point(os, state.normalizer.mean());
  write_point(os, state.normalizer.stddev());
  // Clustering.
  write_index_vector(os, state.clustering.user_cluster);
  io::write_u64(os, state.clustering.clusters.size());
  for (const cluster::ClusterModel& c : state.clustering.clusters) {
    write_point(os, c.centroid);
    io::write_u64(os, c.sub_centroids.size());
    for (const cluster::Point& sc : c.sub_centroids) write_point(os, sc);
    write_index_vector(os, c.members);
  }
  io::write_u64(os, state.clustering.rounds_run);
  io::write_u64(os, state.clustering.converged ? 1 : 0);
}

void read_meta_payload(std::istream& is, ClearConfig& config,
                       ClearPipeline::State& state) {
  config.model = read_model_config(is);
  config.gc.k = io::read_u64(is);
  config.gc.sub_clusters = io::read_u64(is);
  config.ca_fraction = io::read_f64(is);
  config.ft_fraction = io::read_f64(is);
  config.seed = io::read_u64(is);
  config.finetune.epochs = io::read_u64(is);
  config.finetune.lr = io::read_f64(is);
  config.finetune.batch_size = io::read_u64(is);
  // Keep the persisted model geometry (finalize() would overwrite it from
  // the default data config).
  config.data.windows_per_trial = config.model.window_count;

  state.users = read_index_vector(is);
  cluster::Point mean = read_point(is);
  cluster::Point stddev = read_point(is);
  state.normalizer = features::FeatureNormalizer::from_moments(
      std::move(mean), std::move(stddev));
  state.clustering.user_cluster = read_index_vector(is);
  const std::uint64_t n_clusters = io::read_u64(is);
  CLEAR_CHECK_MSG(n_clusters >= 1 && n_clusters < 256,
                  "implausible cluster count");
  for (std::uint64_t k = 0; k < n_clusters; ++k) {
    cluster::ClusterModel c;
    c.centroid = read_point(is);
    const std::uint64_t n_sub = io::read_u64(is);
    CLEAR_CHECK_MSG(n_sub >= 1 && n_sub < 1024,
                    "implausible sub-cluster count");
    for (std::uint64_t i = 0; i < n_sub; ++i)
      c.sub_centroids.push_back(read_point(is));
    c.members = read_index_vector(is);
    state.clustering.clusters.push_back(std::move(c));
  }
  state.clustering.rounds_run = io::read_u64(is);
  state.clustering.converged = io::read_u64(is) != 0;
}

/// Write `bytes` to `path` atomically: temp file first, then rename. The
/// rename is the commit point; an injected IO failure before it simulates a
/// crashed writer leaving only the stale `.tmp` behind.
void atomic_write(const fs::path& path, const std::string& bytes) {
  const fs::path tmp = path.string() + ".tmp";
  fault::maybe_fail_io("artifact write");
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CLEAR_CHECK_MSG(os.good(), "cannot write " << tmp.string());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    CLEAR_CHECK_MSG(os.good(), "IO error writing " << tmp.string());
  }
  fault::maybe_fail_io("artifact rename");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  CLEAR_CHECK_MSG(!ec, "cannot commit " << path.string() << ": "
                                        << ec.message());
}

/// Read a whole file, or return "" when it does not exist / cannot open.
std::string read_file_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return {};
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

/// Parse and CRC-verify <dir>/pipeline.meta into (config, state). Shared by
/// the full pipeline restore and the metadata-only serving load.
void read_meta_file(const fs::path& dir, ClearConfig& config,
                    ClearPipeline::State& state) {
  std::ifstream meta(dir / "pipeline.meta", std::ios::binary);
  CLEAR_CHECK_MSG(meta.good(),
                  "cannot open " << (dir / "pipeline.meta").string());
  CLEAR_CHECK_MSG(io::read_u64(meta) == kMetaMagic, "bad pipeline.meta magic");
  const std::uint64_t version = io::read_u64(meta);

  if (version == 1) {
    // Legacy format: raw field stream, no CRC. Parse errors are the only
    // corruption signal available.
    read_meta_payload(meta, config, state);
    return;
  }
  CLEAR_CHECK_MSG(version == kMetaVersion,
                  "unsupported pipeline.meta version " << version);
  const std::uint64_t length = io::read_u64(meta);
  CLEAR_CHECK_MSG(length < (1ull << 32),
                  "implausible pipeline.meta payload length " << length);
  std::string payload(length, '\0');
  meta.read(payload.data(), static_cast<std::streamsize>(length));
  const auto got = static_cast<std::uint64_t>(meta.gcount());
  CLEAR_CHECK_MSG(got == length, "truncated pipeline.meta: payload has "
                                     << got << " of " << length << " bytes");
  unsigned char footer[8];
  meta.read(reinterpret_cast<char*>(footer), 8);
  CLEAR_CHECK_MSG(meta.gcount() == 8,
                  "truncated pipeline.meta: missing CRC footer");
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) stored |= std::uint64_t(footer[i]) << (8 * i);
  const std::uint32_t computed = crc32(payload);
  CLEAR_CHECK_MSG(stored == computed, "pipeline.meta CRC mismatch: stored "
                                          << stored << ", computed "
                                          << computed
                                          << " (corrupted metadata)");
  std::istringstream payload_is(payload, std::ios::binary);
  read_meta_payload(payload_is, config, state);
}

}  // namespace

void save_pipeline(ClearPipeline& pipeline, const std::string& directory) {
  CLEAR_CHECK_MSG(pipeline.fitted(), "cannot save an unfitted pipeline");
  const fs::path dir(directory);
  std::error_code ec;
  fs::create_directories(dir, ec);
  CLEAR_CHECK_MSG(!ec, "cannot create artifact directory: " << directory);

  ClearPipeline::State state = pipeline.export_state();
  const ClearConfig& config = pipeline.config();

  std::ostringstream payload_os(std::ios::binary);
  write_meta_payload(payload_os, config, state);
  const std::string payload = payload_os.str();
  std::ostringstream meta_os(std::ios::binary);
  io::write_u64(meta_os, kMetaMagic);
  io::write_u64(meta_os, kMetaVersion);
  io::write_u64(meta_os, payload.size());
  meta_os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  io::write_u64(meta_os, crc32(payload));
  atomic_write(dir / "pipeline.meta", meta_os.str());

  for (std::size_t k = 0; k < state.checkpoints.size(); ++k)
    atomic_write(dir / ("cluster_" + std::to_string(k) + ".ckpt"),
                 state.checkpoints[k]);
  if (!state.general_checkpoint.empty())
    atomic_write(dir / "general.ckpt", state.general_checkpoint);
}

ClearPipeline load_pipeline(const std::string& directory) {
  const fs::path dir(directory);
  ClearConfig config = default_config();
  ClearPipeline::State state;
  read_meta_file(dir, config, state);

  // Checkpoint blobs. A missing/unreadable file becomes an empty blob;
  // import_state() degrades it to the general fallback or throws.
  for (std::size_t k = 0; k < state.clustering.clusters.size(); ++k)
    state.checkpoints.push_back(
        read_file_bytes(dir / ("cluster_" + std::to_string(k) + ".ckpt")));
  state.general_checkpoint = read_file_bytes(dir / "general.ckpt");

  ClearPipeline pipeline(config);
  pipeline.import_state(std::move(state));
  if (!pipeline.fallback_clusters().empty())
    CLEAR_WARN("loaded " << directory << " degraded: "
                         << pipeline.fallback_clusters().size()
                         << " cluster(s) running the general model");
  return pipeline;
}

ArtifactMeta load_artifact_meta(const std::string& directory) {
  ClearConfig config = default_config();
  ClearPipeline::State state;
  read_meta_file(fs::path(directory), config, state);
  ArtifactMeta meta;
  meta.config = std::move(config);
  meta.users = std::move(state.users);
  meta.normalizer = std::move(state.normalizer);
  meta.clustering = std::move(state.clustering);
  return meta;
}

std::string read_cluster_checkpoint(const std::string& directory,
                                    std::size_t k) {
  fault::maybe_fail_io("checkpoint read");
  return read_file_bytes(fs::path(directory) /
                         ("cluster_" + std::to_string(k) + ".ckpt"));
}

std::string read_general_checkpoint(const std::string& directory) {
  fault::maybe_fail_io("checkpoint read");
  return read_file_bytes(fs::path(directory) / "general.ckpt");
}

}  // namespace clear::core
