#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>

#include "common/error.hpp"

namespace clear::csv {
namespace {

TEST(Csv, ParseSimpleLine) {
  const Row r = parse_line("a,b,c");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], "a");
  EXPECT_EQ(r[2], "c");
}

TEST(Csv, ParseEmptyFields) {
  const Row r = parse_line("a,,c,");
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[1], "");
  EXPECT_EQ(r[3], "");
}

TEST(Csv, ParseQuotedComma) {
  const Row r = parse_line("a,\"b,c\",d");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[1], "b,c");
}

TEST(Csv, ParseEscapedQuote) {
  const Row r = parse_line("\"he said \"\"hi\"\"\",x");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "he said \"hi\"");
}

TEST(Csv, ParseToleratesCrlf) {
  const Row r = parse_line("a,b\r");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1], "b");
}

TEST(Csv, FormatQuotesWhenNeeded) {
  EXPECT_EQ(format_line({"a", "b,c", "d\"e"}), "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(format_line({"plain"}), "plain");
}

TEST(Csv, RoundTripThroughFormatAndParse) {
  const Row original = {"x", "with,comma", "with\"quote", ""};
  const Row parsed = parse_line(format_line(original));
  EXPECT_EQ(parsed, original);
}

TEST(Csv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "clear_csv_test.csv").string();
  const std::vector<Row> rows = {{"h1", "h2"}, {"1", "a,b"}, {"2", "z"}};
  write_file(path, rows);
  const std::vector<Row> read = read_file(path);
  EXPECT_EQ(read, rows);
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/path/x.csv"), Error);
}

TEST(Csv, FormatDoubleRoundTrips) {
  const double v = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(std::stod(format_double(v)), v);
}

// ---------------------------------------------------------------------------
// Hardening: malformed input raises row/column-addressed errors instead of
// silently misparsing.

void expect_csv_error(const std::function<void()>& fn,
                      const std::string& needle) {
  try {
    fn();
    FAIL() << "expected error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(CsvHardened, UnterminatedQuoteNamesRow) {
  expect_csv_error([] { parse_line("a,\"unclosed", 7); },
                   "row 7, column 2");
  expect_csv_error([] { parse_line("a,\"unclosed", 7); },
                   "unterminated quoted field");
}

TEST(CsvHardened, GarbageAfterClosingQuoteNamesCell) {
  expect_csv_error([] { parse_line("\"ok\"garbage,b", 3); },
                   "after closing quote");
  expect_csv_error([] { parse_line("\"ok\"garbage,b", 3); }, "row 3");
  // A comma directly after the closing quote is fine.
  const Row r = parse_line("\"ok\",b");
  EXPECT_EQ(r, (Row{"ok", "b"}));
}

TEST(CsvHardened, ParseDoubleAcceptsPlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("1.5", 1, 1), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3", 1, 1), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double(" 42 ", 1, 1), 42.0);  // Tolerates padding.
}

TEST(CsvHardened, ParseDoubleRejectsBadCells) {
  expect_csv_error([] { parse_double("", 2, 3); }, "row 2, column 3");
  expect_csv_error([] { parse_double("abc", 2, 3); }, "cannot parse 'abc'");
  expect_csv_error([] { parse_double("1.5x", 4, 1); }, "row 4, column 1");
  expect_csv_error([] { parse_double("1e999", 1, 1); }, "");  // Overflow.
  expect_csv_error([] { parse_double("nan", 1, 2); }, "non-finite");
  expect_csv_error([] { parse_double("inf", 1, 2); }, "non-finite");
}

TEST(CsvHardened, ToNumericConvertsUniformRows) {
  const std::vector<Row> rows = {{"a", "b"}, {"1", "2"}, {"3", "4"}};
  const auto m = to_numeric(rows, /*skip_header=*/true);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(m[1], (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE(to_numeric({}, true).empty());
}

TEST(CsvHardened, ToNumericRejectsRaggedRows) {
  const std::vector<Row> rows = {{"1", "2"}, {"3"}};
  expect_csv_error([&] { to_numeric(rows); }, "ragged CSV: row 2");
}

TEST(CsvHardened, ToNumericNamesBadCell) {
  const std::vector<Row> rows = {{"1", "2"}, {"3", "oops"}};
  expect_csv_error([&] { to_numeric(rows); }, "row 2, column 2");
}

TEST(CsvHardened, ReadFileReportsOffendingLine) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "clear_csv_bad.csv").string();
  {
    std::ofstream os(path);
    os << "good,line\n\"broken\n";
  }
  expect_csv_error([&] { read_file(path); }, "row 2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace clear::csv
