// Numerical gradient checking for Layer implementations.
//
// For a random linear functional L(y) = <p, y> of the layer output, the
// analytic gradients produced by backward() are compared against central
// finite differences of L w.r.t. every input element and every parameter
// element. Layers under test must be deterministic between forward calls
// (Dropout is checked in eval mode).
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace clear::nn::testing {

inline double projected_loss(Layer& layer, const Tensor& input,
                             const Tensor& projection) {
  const Tensor out = layer.forward(input);
  double loss = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i)
    loss += static_cast<double>(out[i]) * projection[i];
  return loss;
}

/// Check d<L>/d<input> and d<L>/d<params> against finite differences.
inline void check_layer_gradients(Layer& layer, Tensor input,
                                  std::uint64_t seed, float eps = 2e-2f,
                                  double tolerance = 4e-2) {
  Rng rng(seed);
  // Forward once to size the projection.
  const Tensor out0 = layer.forward(input);
  Tensor projection(out0.shape());
  projection.fill_uniform(rng, -1.0f, 1.0f);

  // Analytic gradients.
  for (Param* p : layer.parameters()) p->grad.zero();
  (void)layer.forward(input);
  const Tensor grad_input = layer.backward(projection);
  ASSERT_TRUE(grad_input.same_shape(input));

  auto compare = [&](double analytic, double numeric, const char* what,
                     std::size_t idx) {
    const double scale =
        std::max({std::abs(analytic), std::abs(numeric), 1.0});
    EXPECT_NEAR(analytic, numeric, tolerance * scale)
        << what << " element " << idx;
  };

  // Input gradient.
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float saved = input[i];
    input[i] = saved + eps;
    const double lp = projected_loss(layer, input, projection);
    input[i] = saved - eps;
    const double lm = projected_loss(layer, input, projection);
    input[i] = saved;
    compare(grad_input[i], (lp - lm) / (2.0 * eps), "input", i);
  }

  // Parameter gradients (snapshot analytic grads first: forward calls above
  // may not touch them, but backward accumulated into them already).
  std::vector<Tensor> analytic_grads;
  for (Param* p : layer.parameters()) analytic_grads.push_back(p->grad);
  std::size_t pi = 0;
  for (Param* p : layer.parameters()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double lp = projected_loss(layer, input, projection);
      p->value[i] = saved - eps;
      const double lm = projected_loss(layer, input, projection);
      p->value[i] = saved;
      compare(analytic_grads[pi][i], (lp - lm) / (2.0 * eps),
              p->name.c_str(), i);
    }
    ++pi;
  }
}

}  // namespace clear::nn::testing
