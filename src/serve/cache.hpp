// LRU checkpoint cache for the serving layer (DESIGN.md §12).
//
// Cluster and general-model engines are materialized on first use from
// serialized checkpoint blobs and kept under a byte budget, evicting the
// least-recently-used entry first. Entries are handed out as shared_ptrs so
// an in-flight batch keeps its engine alive even if the entry is evicted
// under it; eviction only drops the cache's reference.
//
// Degradation: a cluster whose blob is missing or fails its checkpoint CRC
// silently at this layer would be a correctness bug — instead the cache
// degrades it to the general fallback blob (recorded as a fallback entry and
// counted in stats) or throws an addressed error when no fallback exists.
//
// The loaders and engine builder are injected as std::functions, so tests
// can exercise eviction order, byte accounting, and corrupt-blob fallback
// without training a model.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/batcher.hpp"

namespace clear::serve {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t fallbacks = 0;     ///< Entries built from the general blob.
  std::size_t bytes_in_use = 0;  ///< Sum of resident entries' engine bytes.
};

class CheckpointCache {
 public:
  /// Serialized checkpoint bytes for cluster k ("" = missing).
  using BlobLoader = std::function<std::string(std::size_t cluster)>;
  /// Serialized general-model bytes ("" = no fallback shipped).
  using GeneralLoader = std::function<std::string()>;
  /// Build an inference engine from checkpoint bytes at a precision. Must
  /// throw clear::Error on corrupt bytes (the checkpoint CRC does this).
  using EngineBuilder = std::function<std::unique_ptr<edge::EdgeEngine>(
      const std::string& blob, edge::Precision precision)>;

  struct Entry {
    BatchKey key;
    std::unique_ptr<edge::EdgeEngine> engine;
    /// Resident engine bytes (EdgeEngine::resident_bytes()) — the unit of
    /// budget accounting. Deliberately NOT the on-disk blob size: a
    /// delta-stored checkpoint is tiny on disk but full-size in memory.
    std::size_t bytes = 0;
    bool fallback = false;  ///< Built from the general blob, not its own.
  };

  CheckpointCache(BlobLoader cluster_blob, GeneralLoader general_blob,
                  EngineBuilder builder, std::size_t budget_bytes);

  /// Resident entry for `key` (kGeneral or kCluster only — personal engines
  /// are session-owned), loading and possibly evicting on miss. Throws
  /// clear::Error when the key cannot be materialized at all.
  std::shared_ptr<Entry> acquire(const BatchKey& key);

  const CacheStats& stats() const { return stats_; }
  std::size_t budget_bytes() const { return budget_; }
  std::size_t size() const { return entries_.size(); }

  /// Resident keys from least- to most-recently used (tests/diagnostics).
  std::vector<BatchKey> resident_lru() const;

 private:
  void touch(std::list<BatchKey>::iterator it);
  void evict_over_budget(const BatchKey& keep);

  BlobLoader cluster_blob_;
  GeneralLoader general_blob_;
  EngineBuilder builder_;
  std::size_t budget_;

  // lru_ front = least recently used, back = most recently used.
  std::list<BatchKey> lru_;
  struct Resident {
    std::shared_ptr<Entry> entry;
    std::list<BatchKey>::iterator lru_it;
  };
  std::map<BatchKey, Resident> entries_;
  CacheStats stats_;
};

}  // namespace clear::serve
