#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace clear::stats {
namespace {

const std::vector<double> kSimple = {1.0, 2.0, 3.0, 4.0, 5.0};

TEST(Stats, MeanAndSum) {
  EXPECT_DOUBLE_EQ(sum(kSimple), 15.0);
  EXPECT_DOUBLE_EQ(mean(kSimple), 3.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, Variance) {
  EXPECT_DOUBLE_EQ(variance(kSimple), 2.0);
  EXPECT_DOUBLE_EQ(sample_variance(kSimple), 2.5);
  EXPECT_DOUBLE_EQ(stddev(kSimple), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(sample_stddev(kSimple), std::sqrt(2.5));
}

TEST(Stats, VarianceDegenerateCases) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(sample_variance(std::vector<double>{4.0}), 0.0);
}

TEST(Stats, MinMaxRange) {
  EXPECT_DOUBLE_EQ(min(kSimple), 1.0);
  EXPECT_DOUBLE_EQ(max(kSimple), 5.0);
  EXPECT_DOUBLE_EQ(range(kSimple), 4.0);
}

TEST(Stats, Rms) {
  const std::vector<double> v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(rms(v), std::sqrt(12.5));
}

TEST(Stats, SkewnessSymmetricIsZero) {
  EXPECT_NEAR(skewness(kSimple), 0.0, 1e-12);
}

TEST(Stats, SkewnessRightTailPositive) {
  const std::vector<double> v = {1, 1, 1, 1, 10};
  EXPECT_GT(skewness(v), 0.5);
}

TEST(Stats, KurtosisOfConstantIsZero) {
  const std::vector<double> v = {2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(kurtosis(v), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile(kSimple, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 12.5), 1.5);
}

TEST(Stats, MedianAndIqr) {
  EXPECT_DOUBLE_EQ(median(kSimple), 3.0);
  EXPECT_DOUBLE_EQ(iqr(kSimple), 2.0);
}

TEST(Stats, SlopeOfLine) {
  const std::vector<double> v = {1.0, 3.0, 5.0, 7.0};
  EXPECT_NEAR(slope(v), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(slope(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, SlopeOfConstantIsZero) {
  const std::vector<double> v = {4.0, 4.0, 4.0};
  EXPECT_NEAR(slope(v), 0.0, 1e-12);
}

TEST(Stats, Diff) {
  const auto d = diff(kSimple);
  ASSERT_EQ(d.size(), 4u);
  for (const double x : d) EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_TRUE(diff(std::vector<double>{1.0}).empty());
}

TEST(Stats, MeanAbsDiff) {
  const std::vector<double> v = {0.0, 2.0, -1.0};
  EXPECT_DOUBLE_EQ(mean_abs_diff(v), 2.5);
}

TEST(Stats, ZeroCrossings) {
  const std::vector<double> v = {1.0, -1.0, 1.0, -1.0};
  EXPECT_EQ(zero_crossings(v), 3u);
  const std::vector<double> flat = {1.0, 1.0, 1.0};
  EXPECT_EQ(zero_crossings(flat), 0u);
}

TEST(Stats, FractionIncreasing) {
  const std::vector<double> v = {1.0, 2.0, 1.5, 3.0};
  EXPECT_NEAR(fraction_increasing(v), 2.0 / 3.0, 1e-12);
}

TEST(Stats, AutocorrelationLagOneOfAlternating) {
  const std::vector<double> v = {1, -1, 1, -1, 1, -1, 1, -1};
  EXPECT_LT(autocorrelation(v, 1), -0.7);
  EXPECT_GT(autocorrelation(v, 2), 0.6);
}

TEST(Stats, AutocorrelationDegenerate) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{1.0, 1.0}, 5), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{2.0, 2.0, 2.0}, 1), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, HistogramEntropyUniformVsPeaked) {
  std::vector<double> uniform;
  for (int i = 0; i < 100; ++i) uniform.push_back(i);
  std::vector<double> peaked(100, 1.0);
  peaked[0] = 0.0;  // Keep a non-zero range.
  EXPECT_GT(histogram_entropy(uniform, 10), histogram_entropy(peaked, 10));
  EXPECT_DOUBLE_EQ(histogram_entropy(std::vector<double>(5, 2.0), 10), 0.0);
}

TEST(Stats, HjorthOfSine) {
  std::vector<double> sine(512);
  for (std::size_t i = 0; i < sine.size(); ++i)
    sine[i] = std::sin(2.0 * M_PI * 8.0 * i / 512.0);
  const Hjorth h = hjorth(sine);
  EXPECT_NEAR(h.activity, 0.5, 0.01);
  // Mobility of a pure sine approximates its angular frequency.
  EXPECT_NEAR(h.mobility, 2.0 * M_PI * 8.0 / 512.0, 0.005);
  // Complexity of a pure sine is ~1.
  EXPECT_NEAR(h.complexity, 1.0, 0.05);
}

TEST(Stats, HjorthDegenerate) {
  const Hjorth h = hjorth(std::vector<double>{1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.mobility, 0.0);
}

// --- Numerical stability (Neumaier sums, corrected two-pass variance) ------
//
// Skin temperature sits near 30 with millikelvin-scale physiological
// variation, so the naive E[x^2] - E[x]^2 form cancels almost all of its
// significant digits. These tests pin the compensated implementations
// against a long-double reference on exactly that regime.

/// SKT-like series: large offset, tiny deterministic oscillation.
std::vector<double> skt_like(std::size_t n, double offset, double amp) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = offset + amp * std::sin(0.1 * static_cast<double>(i)) +
           0.3 * amp * std::cos(0.37 * static_cast<double>(i));
  return v;
}

long double ref_mean(const std::vector<double>& v) {
  long double s = 0.0L;
  for (const double x : v) s += x;
  return s / static_cast<long double>(v.size());
}

long double ref_variance(const std::vector<double>& v) {
  const long double m = ref_mean(v);
  long double ss = 0.0L;
  for (const double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<long double>(v.size());
}

TEST(StatsNumericalStability, SumCompensatesCancellation) {
  // Naive left-to-right summation returns 0.0 here: 1.0 is absorbed into
  // 1e16 and never recovered. Neumaier keeps the lost low-order part.
  const std::vector<double> v = {1e16, 1.0, -1e16};
  EXPECT_DOUBLE_EQ(sum(v), 1.0);
  const std::vector<double> w = {1.0, 1e100, 1.0, -1e100};
  EXPECT_DOUBLE_EQ(sum(w), 2.0);
}

TEST(StatsNumericalStability, VarianceOfLargeOffsetSeries) {
  // amp 1e-4 on a 30-unit baseline: the naive form loses ~11 of 16 digits.
  const std::vector<double> v = skt_like(4096, 30.0, 1e-4);
  const double ref = static_cast<double>(ref_variance(v));
  ASSERT_GT(ref, 0.0);
  EXPECT_NEAR(variance(v) / ref, 1.0, 1e-9);
  const double n = static_cast<double>(v.size());
  const double sref = ref * n / (n - 1.0);
  EXPECT_NEAR(sample_variance(v) / sref, 1.0, 1e-9);
}

TEST(StatsNumericalStability, VarianceNeverNegative) {
  // A constant series shifted far from zero: catastrophic cancellation used
  // to produce tiny negative variances, which poison sqrt() in stddev.
  const std::vector<double> v(1024, 30.0000001);
  EXPECT_GE(variance(v), 0.0);
  EXPECT_GE(sample_variance(v), 0.0);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
  EXPECT_FALSE(std::isnan(stddev(v)));
}

TEST(StatsNumericalStability, MeanOfLargeOffsetSeries) {
  const std::vector<double> v = skt_like(4096, 30.0, 1e-4);
  EXPECT_NEAR(mean(v), static_cast<double>(ref_mean(v)), 1e-12);
}

TEST(StatsNumericalStability, RmsMatchesLongDoubleReference) {
  const std::vector<double> v = skt_like(4096, 30.0, 1e-4);
  long double ss = 0.0L;
  for (const double x : v) ss += (long double)x * (long double)x;
  const double ref =
      static_cast<double>(std::sqrt(ss / static_cast<long double>(v.size())));
  EXPECT_NEAR(rms(v) / ref, 1.0, 1e-14);
}

}  // namespace
}  // namespace clear::stats
