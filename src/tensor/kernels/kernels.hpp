// Runtime-dispatched SIMD kernel library (DESIGN.md §13).
//
// Every hot inner loop in the repo — fp32 GEMM behind the CNN-LSTM, the
// int8 dot-product kernels emulating the Edge-TPU path, the fp16/int8
// numeric transforms, and the bulk elementwise ops — routes through one
// table of function pointers selected at startup:
//
//   scalar  portable reference implementation, always available; the
//           oracle every vector path is tested against
//   avx2    x86-64 AVX2 (+F16C for the fp16 path), register-blocked GEMM
//   neon    AArch64/ARM NEON (compiled only on ARM targets)
//
// Selection order: an explicit set_isa() call (the --kernel CLI flag) >
// the CLEAR_KERNEL environment variable (read once, at first dispatch) >
// detect_best() via CPUID. Requesting an ISA the host cannot run is a
// hard error, never a silent fallback.
//
// Determinism contract (the part that makes runtime dispatch safe): every
// kernel in every table produces results BIT-IDENTICAL to the scalar
// reference for finite inputs. This is by construction, not by tolerance:
//
//   - GEMM accumulates each output element c[i][j] over k in ascending
//     order through a single dependency chain. Vector paths parallelize
//     across independent output elements (j lanes, i blocks) and never
//     reassociate within a chain, so per-element rounding is unchanged.
//   - FMA contraction is deliberately not used, and the whole tree builds
//     with -ffp-contract=off: a fused multiply-add rounds once where the
//     scalar reference rounds twice, which would fork the goldens per ISA.
//   - Ops with a horizontal reduction (dot products, sums, norms) are NOT
//     in the table — vectorizing them requires reassociation. They stay
//     scalar in tensor/ops.cpp under the ordered-reduction contract of
//     DESIGN.md §9.
//   - int8 GEMM is integer arithmetic (exact, associative), so vector
//     paths there are free to reorder; results are equal, not just close.
//   - fp16 rounding and int8 quantization use round-to-nearest-even in
//     both the scalar bit-twiddled form and the hardware instructions
//     (VCVTPS2PH / VROUNDPS under the default rounding mode).
//
// Consequently CLEAR_KERNEL changes wall-clock time, never a table, a
// golden file, or a checkpoint — the same guarantee CLEAR_NUM_THREADS
// already makes. tests/property/test_kernel_equivalence.cpp enforces the
// contract per kernel per ISA; tools/bench_regress.py (ctest
// `bench_regress`) pins the speedups so they cannot silently rot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clear::kernels {

enum class Isa : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Fused GEMM epilogue, applied to each output element after its k-loop
/// finishes: c = act(c_accumulated + bias). Bias broadcast is per output
/// row (bias[i], conv layout) or per output column (bias[j], dense layout).
enum class BiasMode { kPerRow, kPerCol };
enum class Activation { kNone, kRelu };

struct Epilogue {
  BiasMode bias_mode = BiasMode::kPerCol;
  const float* bias = nullptr;  ///< [m] for kPerRow, [n] for kPerCol; may be
                                ///< null (activation-only epilogue).
  Activation act = Activation::kNone;
};

/// One ISA's implementations. All matrices are dense row-major. `ep` may be
/// null (no epilogue). Kernels assume finite inputs; NaN/Inf propagation is
/// defined only for the scalar reference.
struct KernelTable {
  Isa isa;
  const char* name;

  /// C[m,n] += A[m,k] * B[k,n]; per-element accumulation in ascending k
  /// order on top of the existing contents of C, then the epilogue.
  void (*gemm_f32)(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const Epilogue* ep);
  /// C[m,n] (int32, overwritten) = A[m,k] (int8) * B[k,n] (int8).
  void (*gemm_i8)(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                  std::size_t m, std::size_t k, std::size_t n);

  // Elementwise over n contiguous floats (first operand mutated in place).
  void (*add_f32)(float* a, const float* b, std::size_t n);
  void (*sub_f32)(float* a, const float* b, std::size_t n);
  void (*mul_f32)(float* a, const float* b, std::size_t n);
  void (*axpy_f32)(float* a, float alpha, const float* b, std::size_t n);
  void (*scale_f32)(float* a, float s, std::size_t n);
  void (*add_scalar_f32)(float* a, float s, std::size_t n);
  /// a[i*n + j] += bias[j] for every row i.
  void (*bias_rows_f32)(float* a, const float* bias, std::size_t m,
                        std::size_t n);
  /// y[i] = x[i] > 0 ? x[i] : 0; mask[i] = x[i] > 0 ? 1 : 0 (mask may be
  /// null for inference-only callers).
  void (*relu_f32)(const float* x, float* y, float* mask, std::size_t n);

  /// q[i] = clamp(nearbyint(x[i] / scale), -127, 127) — symmetric int8.
  void (*quantize_i8)(const float* x, float scale, std::int8_t* q,
                      std::size_t n);
  /// out[i] = float(acc[i]) * scale.
  void (*dequantize_i32)(const std::int32_t* acc, float scale, float* out,
                         std::size_t n);
  /// x[i] = dequantize(quantize(x[i])) — the fake-quantization round trip.
  void (*fake_quant_f32)(float* x, float scale, std::size_t n);
  /// x[i] = fp32 -> fp16 -> fp32 round trip (RNE, subnormals preserved).
  void (*fp16_round_f32)(float* x, std::size_t n);
};

/// Stable lower-case name ("scalar", "avx2", "neon").
const char* isa_name(Isa isa);

/// Parse a kernel name; returns false on unknown input.
bool parse_isa(std::string_view s, Isa& out);

/// True when `isa` is both compiled into this binary and runnable on this
/// CPU (CPUID probe for AVX2+F16C; NEON is a compile-time property).
bool isa_supported(Isa isa);

/// Every supported ISA, scalar first.
std::vector<Isa> supported_isas();

/// Fastest supported ISA on this host.
Isa detect_best();

/// The active kernel table. Resolved once on first use: CLEAR_KERNEL when
/// set (hard error if unknown/unsupported), else detect_best().
const KernelTable& active();
Isa active_isa();

/// Override the active ISA (the --kernel flag). Throws clear::Error when
/// the ISA is not supported on this host.
void set_isa(Isa isa);

/// Table for a specific supported ISA (property tests, benchmarks).
/// Throws clear::Error when unsupported.
const KernelTable& table(Isa isa);

}  // namespace clear::kernels
