// Deterministic synthetic multi-user serving workload.
//
// Builds a request stream over a generated WEMAC dataset: `n_users` virtual
// users (cycling through the dataset's volunteers) each replay their
// volunteer's feature maps with bursty, slot-quantized virtual arrival
// times, a configurable fraction of labelled requests (feeding
// personalization), and optional degraded spans where a user's maps are
// corrupted through the fault layer (exercising sanitization and the
// DEGRADED session state). Every choice is a stateless hash of
// (seed, user, request), so the stream is bit-identical across runs,
// platforms, and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/fault.hpp"
#include "serve/server.hpp"
#include "wemac/dataset.hpp"

namespace clear::serve {

struct WorkloadConfig {
  std::size_t n_users = 32;
  std::size_t requests_per_user = 24;
  std::uint64_t seed = 7;
  double labeled_fraction = 0.25;  ///< P(request carries its ground truth).
  /// Fraction of users that hit a span of corrupted-signal requests.
  double degraded_user_fraction = 0.25;
  std::size_t degraded_span = 5;  ///< Corrupted requests in the span.
  double bad_quality = 0.3;       ///< Reported quality inside the span.
  /// Arrivals are quantized to this slot width; several users sharing a
  /// slot is what gives the batcher something to coalesce.
  std::uint64_t slot_us = 200;
  double mean_slots_between = 1.5;  ///< Mean inter-request gap per user.
  /// Signal corruption applied inside degraded spans (NaN injection rate).
  double corrupt_rate = 0.35;
  // -- Distribution drift (exercises the serve-side drift monitor) ----------
  /// Fraction of users whose signal distribution shifts mid-stream: past the
  /// onset request their maps are blended toward a *different* volunteer's
  /// maps, so the assigned cluster stops fitting them. 0 disables.
  double drift_user_fraction = 0.0;
  /// Onset point as a fraction of requests_per_user.
  double drift_at_fraction = 0.5;
  /// Blend weight toward the other volunteer's map past the onset (1.0 =
  /// the user *becomes* the other volunteer).
  double drift_blend = 0.8;
};

/// The full request stream, sorted by (arrival_us, user_id, request_id).
std::vector<ServeRequest> make_workload(const wemac::WemacDataset& dataset,
                                        const WorkloadConfig& config);

}  // namespace clear::serve
