#!/usr/bin/env bash
# Build and run the sensitive test binaries under the configured sanitizers.
# Supersedes run_tsan_tests.sh (kept as a thin TSAN-only wrapper): this
# script also covers the fault-injection / integrity suites under
# UndefinedBehaviorSanitizer, where bit-twiddling CRC code, byte-flip
# corruption paths, and NaN-heavy sanitization are most likely to trip UB.
#
#   tools/run_sanitizer_tests.sh [thread|undefined|all] [build-dir-prefix]
#
# Each sanitizer gets its own build directory (<prefix>-<sanitizer>) so the
# instrumented objects never mix. Exits non-zero on the first report
# (halt_on_error=1) or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
PREFIX="${2:-build}"

run_tsan() {
  local dir="${PREFIX}-tsan"
  cmake -B "$dir" -S . -DCLEAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j --target test_parallel test_cluster test_fault
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
  # Force the pool onto multiple threads even on small machines so the
  # scheduler actually interleaves workers.
  export CLEAR_NUM_THREADS=4
  echo "== test_parallel (TSAN) =="
  "$dir/tests/test_parallel"
  echo "== test_cluster (TSAN) =="
  "$dir/tests/test_cluster"
  echo "== test_fault (TSAN) =="
  "$dir/tests/test_fault"
}

run_ubsan() {
  local dir="${PREFIX}-ubsan"
  cmake -B "$dir" -S . -DCLEAR_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j --target test_fault test_common test_nn test_features \
    test_kernel_equivalence
  export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
  echo "== test_fault (UBSAN) =="
  "$dir/tests/test_fault"
  echo "== test_kernel_equivalence (UBSAN, SIMD + fp16/int8 bit paths) =="
  "$dir/tests/test_kernel_equivalence"
  echo "== test_common (UBSAN) =="
  "$dir/tests/test_common"
  echo "== test_nn (UBSAN, checkpoint corruption paths) =="
  "$dir/tests/test_nn" --gtest_filter='Checkpoint*'
  echo "== test_features (UBSAN, NaN audit paths) =="
  "$dir/tests/test_features" --gtest_filter='*Audit*:Nonlinear*'
}

case "$MODE" in
  thread)    run_tsan ;;
  undefined) run_ubsan ;;
  all)       run_tsan; run_ubsan ;;
  *) echo "usage: $0 [thread|undefined|all] [build-dir-prefix]" >&2; exit 2 ;;
esac
echo "Sanitizer run clean."
