#include "wemac/synth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "signal/filter.hpp"
#include "signal/peaks.hpp"
#include "wemac/archetype.hpp"

namespace clear::wemac {
namespace {

VolunteerProfile profile_for(std::size_t archetype, std::uint64_t seed) {
  Rng rng(seed);
  return sample_profile(default_archetypes()[archetype], 0, archetype, rng);
}

Stimulus stim(Emotion e, double dur = 120.0) {
  Stimulus s;
  s.emotion = e;
  s.duration_s = dur;
  return s;
}

double mean_hr(const TrialSignals& t) {
  // Same pipeline as the BVP feature extractor: band-limit to the cardiac
  // band before peak picking, so diastolic-floor noise is not counted.
  const auto bp = dsp::butterworth_bandpass(0.7, 3.5, t.rates.bvp_hz);
  const auto pulse = dsp::filtfilt(bp, t.bvp);
  dsp::PeakOptions opt;
  opt.min_prominence = 0.45 * stats::stddev(pulse);
  opt.min_distance = static_cast<std::size_t>(t.rates.bvp_hz / 2.2);
  const auto peaks = dsp::find_peaks(pulse, opt);
  const auto ibi = dsp::peak_intervals(peaks, t.rates.bvp_hz);
  if (ibi.empty()) return 0.0;
  return 60.0 / stats::mean(ibi);
}

TEST(Synth, ProfileSamplingPreservesSigns) {
  for (std::size_t a = 0; a < kNumArchetypes; ++a) {
    for (std::uint64_t s = 0; s < 20; ++s) {
      const VolunteerProfile p = profile_for(a, s);
      EXPECT_GT(p.hr_base, 0.0);
      EXPECT_GT(p.hrv_sd, 0.0);
      EXPECT_GT(p.scr_amp, 0.0);
      EXPECT_GT(p.gsr_tonic, 0.0);
      // The vagal archetype's negative fear delta must stay negative.
      const double nominal = default_archetypes()[a].hr_fear_delta;
      EXPECT_EQ(p.hr_fear_delta > 0, nominal > 0);
    }
  }
}

TEST(Synth, SignalLengthsMatchRates) {
  Rng rng(1);
  const VolunteerProfile p = profile_for(0, 1);
  const SignalRates rates;
  const TrialSignals t = synthesize_trial(p, stim(Emotion::kCalm, 60.0),
                                          rates, rng);
  EXPECT_EQ(t.bvp.size(), static_cast<std::size_t>(60.0 * rates.bvp_hz));
  EXPECT_EQ(t.gsr.size(), static_cast<std::size_t>(60.0 * rates.gsr_hz));
  EXPECT_EQ(t.skt.size(), static_cast<std::size_t>(60.0 * rates.skt_hz));
}

TEST(Synth, AllSamplesFinite) {
  Rng rng(2);
  const VolunteerProfile p = profile_for(1, 2);
  const TrialSignals t = synthesize_trial(p, stim(Emotion::kFear), {}, rng);
  for (const double v : t.bvp) EXPECT_TRUE(std::isfinite(v));
  for (const double v : t.gsr) EXPECT_TRUE(std::isfinite(v));
  for (const double v : t.skt) EXPECT_TRUE(std::isfinite(v));
}

TEST(Synth, HeartRateNearProfileBaseAtRest) {
  // Average over several calm trials (per-trial gain adds variance).
  const VolunteerProfile p = profile_for(0, 3);
  std::vector<double> hrs;
  for (std::uint64_t s = 0; s < 6; ++s) {
    Rng rng(100 + s);
    hrs.push_back(mean_hr(synthesize_trial(p, stim(Emotion::kCalm), {}, rng)));
  }
  EXPECT_NEAR(stats::mean(hrs), p.hr_base, 6.0);
}

TEST(Synth, FearRaisesHrForCardiacArchetype) {
  const VolunteerProfile p = profile_for(1, 4);
  std::vector<double> calm_hr, fear_hr;
  for (std::uint64_t s = 0; s < 8; ++s) {
    Rng r1(200 + s), r2(300 + s);
    calm_hr.push_back(mean_hr(synthesize_trial(p, stim(Emotion::kCalm), {}, r1)));
    fear_hr.push_back(mean_hr(synthesize_trial(p, stim(Emotion::kFear), {}, r2)));
  }
  EXPECT_GT(stats::mean(fear_hr), stats::mean(calm_hr) + 3.0);
}

TEST(Synth, FearLowersHrForVagalArchetype) {
  const VolunteerProfile p = profile_for(3, 5);
  std::vector<double> calm_hr, fear_hr;
  for (std::uint64_t s = 0; s < 8; ++s) {
    Rng r1(400 + s), r2(500 + s);
    calm_hr.push_back(mean_hr(synthesize_trial(p, stim(Emotion::kCalm), {}, r1)));
    fear_hr.push_back(mean_hr(synthesize_trial(p, stim(Emotion::kFear), {}, r2)));
  }
  EXPECT_LT(stats::mean(fear_hr), stats::mean(calm_hr) - 1.0);
}

TEST(Synth, FearIncreasesElectrodermalActivity) {
  const VolunteerProfile p = profile_for(0, 6);
  double calm_var = 0.0, fear_var = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    Rng r1(600 + s), r2(700 + s);
    const auto calm = synthesize_trial(p, stim(Emotion::kCalm), {}, r1);
    const auto fear = synthesize_trial(p, stim(Emotion::kFear), {}, r2);
    calm_var += stats::variance(calm.gsr);
    fear_var += stats::variance(fear.gsr);
  }
  EXPECT_GT(fear_var, calm_var * 1.3);
}

TEST(Synth, FearCoolsSkin) {
  const VolunteerProfile p = profile_for(1, 7);
  std::vector<double> calm_end, fear_end;
  for (std::uint64_t s = 0; s < 8; ++s) {
    Rng r1(800 + s), r2(900 + s);
    const auto calm = synthesize_trial(p, stim(Emotion::kCalm), {}, r1);
    const auto fear = synthesize_trial(p, stim(Emotion::kFear), {}, r2);
    // Mean of the final quarter, after thermal dynamics settle.
    const std::size_t q = calm.skt.size() / 4;
    calm_end.push_back(stats::mean(
        std::span<const double>(calm.skt.data() + 3 * q, q)));
    fear_end.push_back(stats::mean(
        std::span<const double>(fear.skt.data() + 3 * q, q)));
  }
  EXPECT_LT(stats::mean(fear_end), stats::mean(calm_end));
}

TEST(Synth, DeterministicGivenSameRngState) {
  const VolunteerProfile p = profile_for(2, 8);
  Rng r1(42), r2(42);
  const auto a = synthesize_trial(p, stim(Emotion::kJoy), {}, r1);
  const auto b = synthesize_trial(p, stim(Emotion::kJoy), {}, r2);
  ASSERT_EQ(a.bvp.size(), b.bvp.size());
  for (std::size_t i = 0; i < a.bvp.size(); ++i)
    EXPECT_DOUBLE_EQ(a.bvp[i], b.bvp[i]);
}

TEST(Synth, SliceWindowsGeometry) {
  Rng rng(9);
  const VolunteerProfile p = profile_for(0, 9);
  const TrialSignals t = synthesize_trial(p, stim(Emotion::kCalm, 60.0), {},
                                          rng);
  const auto windows = slice_windows(t, 10.0);
  ASSERT_EQ(windows.size(), 6u);
  for (const auto& w : windows) {
    EXPECT_EQ(w.bvp.size(), 640u);
    EXPECT_EQ(w.gsr.size(), 80u);
    EXPECT_EQ(w.skt.size(), 40u);
  }
}

TEST(Synth, SliceWindowsDropsPartialTail) {
  Rng rng(10);
  const VolunteerProfile p = profile_for(0, 10);
  const TrialSignals t = synthesize_trial(p, stim(Emotion::kCalm, 25.0), {},
                                          rng);
  EXPECT_EQ(slice_windows(t, 10.0).size(), 2u);
}

TEST(Synth, ShortTrialRejected) {
  Rng rng(11);
  const VolunteerProfile p = profile_for(0, 11);
  EXPECT_THROW(synthesize_trial(p, stim(Emotion::kCalm, 0.5), {}, rng),
               clear::Error);
}

TEST(Synth, MorphProfileLerpsParametersAndKeepsIdentity) {
  const VolunteerProfile from = profile_for(0, 12);
  VolunteerProfile to = profile_for(1, 13);
  to.volunteer_id = 5;
  to.archetype_id = 1;

  // Endpoints reproduce the inputs' physiology exactly.
  EXPECT_DOUBLE_EQ(morph_profile(from, to, 0.0).hr_base, from.hr_base);
  EXPECT_DOUBLE_EQ(morph_profile(from, to, 1.0).hr_base, to.hr_base);
  EXPECT_DOUBLE_EQ(morph_profile(from, to, 1.0).skt_gain, to.skt_gain);

  const VolunteerProfile mid = morph_profile(from, to, 0.5);
  EXPECT_DOUBLE_EQ(mid.hr_base, 0.5 * (from.hr_base + to.hr_base));
  EXPECT_DOUBLE_EQ(mid.hrv_sd, 0.5 * (from.hrv_sd + to.hrv_sd));
  EXPECT_DOUBLE_EQ(mid.gsr_tonic, 0.5 * (from.gsr_tonic + to.gsr_tonic));
  EXPECT_DOUBLE_EQ(mid.cardiac_gain,
                   0.5 * (from.cardiac_gain + to.cardiac_gain));

  // The morph changes physiology, never identity: ids stay `from`'s, so a
  // drifting workload user keeps their user id while their signals move.
  EXPECT_EQ(mid.volunteer_id, from.volunteer_id);
  EXPECT_EQ(mid.archetype_id, from.archetype_id);

  EXPECT_THROW(morph_profile(from, to, -0.1), clear::Error);
  EXPECT_THROW(morph_profile(from, to, 1.5), clear::Error);
}

}  // namespace
}  // namespace clear::wemac
