#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace clear::stats {

namespace {

/// Neumaier-compensated accumulator: tracks the low-order bits the running
/// sum loses, so large-offset signals (e.g. SKT at ~30 °C with millikelvin
/// variation) do not shed their variation into rounding error.
struct Neumaier {
  double sum = 0.0;
  double compensation = 0.0;

  void add(double x) {
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x))
      compensation += (sum - t) + x;
    else
      compensation += (x - t) + sum;
    sum = t;
  }
  double value() const { return sum + compensation; }
};

/// Compensated sum of squared deviations from m over v, corrected for the
/// residual first-moment error (the corrected two-pass algorithm of Chan,
/// Golub & LeVeque). Exact up to the compensation precision even when m
/// carries rounding error.
double squared_deviations(std::span<const double> v, double m) {
  Neumaier ss;   // sum of (x - m)^2
  Neumaier res;  // sum of (x - m): cancels m's own rounding error
  for (const double x : v) {
    const double d = x - m;
    ss.add(d * d);
    res.add(d);
  }
  const double r = res.value();
  return ss.value() - r * r / static_cast<double>(v.size());
}

}  // namespace

double sum(std::span<const double> v) {
  Neumaier acc;
  for (const double x : v) acc.add(x);
  return acc.value();
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return sum(v) / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.empty()) return 0.0;
  const double s = squared_deviations(v, mean(v));
  // The corrected estimate cannot be negative except through rounding.
  return std::max(0.0, s / static_cast<double>(v.size()));
}

double sample_variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double s = squared_deviations(v, mean(v));
  return std::max(0.0, s / static_cast<double>(v.size() - 1));
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double sample_stddev(std::span<const double> v) {
  return std::sqrt(sample_variance(v));
}

double min(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return *std::min_element(v.begin(), v.end());
}

double max(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

double range(std::span<const double> v) { return max(v) - min(v); }

double rms(std::span<const double> v) {
  if (v.empty()) return 0.0;
  Neumaier acc;
  for (const double x : v) acc.add(x * x);
  return std::sqrt(acc.value() / static_cast<double>(v.size()));
}

double skewness(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  const double sd = stddev(v);
  if (sd < 1e-12) return 0.0;
  double s = 0.0;
  for (const double x : v) {
    const double z = (x - m) / sd;
    s += z * z * z;
  }
  return s / static_cast<double>(v.size());
}

double kurtosis(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  const double sd = stddev(v);
  if (sd < 1e-12) return 0.0;
  double s = 0.0;
  for (const double x : v) {
    const double z = (x - m) / sd;
    s += z * z * z * z;
  }
  return s / static_cast<double>(v.size()) - 3.0;
}

double percentile(std::span<const double> v, double p) {
  if (v.empty()) return 0.0;
  CLEAR_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::vector<double> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  const double idx = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double median(std::span<const double> v) { return percentile(v, 50.0); }

double iqr(std::span<const double> v) {
  return percentile(v, 75.0) - percentile(v, 25.0);
}

double slope(std::span<const double> v) {
  const std::size_t n = v.size();
  if (n < 2) return 0.0;
  // Closed-form least squares against x = 0..n-1.
  const double nx = static_cast<double>(n);
  const double mx = (nx - 1.0) / 2.0;
  const double my = mean(v);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mx;
    sxy += dx * (v[i] - my);
    sxx += dx * dx;
  }
  return sxx > 0 ? sxy / sxx : 0.0;
}

std::vector<double> diff(std::span<const double> v) {
  if (v.size() < 2) return {};
  std::vector<double> d(v.size() - 1);
  for (std::size_t i = 0; i + 1 < v.size(); ++i) d[i] = v[i + 1] - v[i];
  return d;
}

double mean_abs_diff(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) s += std::abs(v[i + 1] - v[i]);
  return s / static_cast<double>(v.size() - 1);
}

std::size_t zero_crossings(std::span<const double> v) {
  if (v.size() < 2) return 0;
  const double m = mean(v);
  std::size_t count = 0;
  bool positive = v[0] >= m;
  for (std::size_t i = 1; i < v.size(); ++i) {
    const bool p = v[i] >= m;
    if (p != positive) {
      ++count;
      positive = p;
    }
  }
  return count;
}

double fraction_increasing(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  std::size_t inc = 0;
  for (std::size_t i = 0; i + 1 < v.size(); ++i)
    if (v[i + 1] > v[i]) ++inc;
  return static_cast<double>(inc) / static_cast<double>(v.size() - 1);
}

double autocorrelation(std::span<const double> v, std::size_t lag) {
  if (v.size() <= lag || v.size() < 2) return 0.0;
  const double m = mean(v);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) den += (v[i] - m) * (v[i] - m);
  if (den < 1e-12) return 0.0;
  for (std::size_t i = 0; i + lag < v.size(); ++i)
    num += (v[i] - m) * (v[i + lag] - m);
  return num / den;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  CLEAR_CHECK_MSG(a.size() == b.size(), "pearson requires equal lengths");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa < 1e-12 || sbb < 1e-12) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double histogram_entropy(std::span<const double> v, std::size_t bins) {
  if (v.empty() || bins == 0) return 0.0;
  const double lo = min(v);
  const double hi = max(v);
  if (hi - lo < 1e-12) return 0.0;
  std::vector<std::size_t> counts(bins, 0);
  for (const double x : v) {
    auto b = static_cast<std::size_t>((x - lo) / (hi - lo) *
                                      static_cast<double>(bins));
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  double h = 0.0;
  const double n = static_cast<double>(v.size());
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  return h;
}

Hjorth hjorth(std::span<const double> v) {
  Hjorth h;
  if (v.size() < 3) return h;
  h.activity = variance(v);
  const std::vector<double> d1 = diff(v);
  const std::vector<double> d2 = diff(d1);
  const double var_d1 = variance(d1);
  const double var_d2 = variance(d2);
  if (h.activity > 1e-12) h.mobility = std::sqrt(var_d1 / h.activity);
  if (var_d1 > 1e-12 && h.mobility > 1e-12)
    h.complexity = std::sqrt(var_d2 / var_d1) / h.mobility;
  return h;
}

}  // namespace clear::stats
