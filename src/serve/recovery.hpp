// Crash recovery for CLEAR-Serve (the read side of serve/journal.hpp).
//
// `Server::recover()` (implemented in recovery.cpp) rebuilds a freshly
// constructed server from its journal directory: load the snapshot, replay
// every journal record past the snapshot's sequence number with the same
// Session mutators the live path used, re-attach fine-tuned engines from
// their CRC-verified checkpoints, and resume journaling into a compacted
// log. Corruption is handled *per session*: a bad record, image, or
// checkpoint quarantines only the session it names (which restarts COLD on
// next contact, or is demoted to ASSIGNED when only its personal checkpoint
// is unusable) — never the whole process.
#pragma once

#include <cstdint>
#include <string>

namespace clear::serve {

/// What recovery found and did; printed by `clear serve --recover` and
/// asserted on by the chaos gate (zero PERSONALIZED loss means
/// `personalized == personalized_expected`).
struct RecoveryReport {
  bool snapshot_loaded = false;   ///< snapshot.snap existed and verified.
  bool snapshot_corrupt = false;  ///< Existed but failed validation.
  std::uint64_t snapshot_sessions = 0;  ///< Sessions restored from it.
  std::uint64_t records_replayed = 0;
  /// Records skipped: quarantined sessions' records plus any that failed to
  /// apply (each failure also quarantines its session).
  std::uint64_t records_skipped = 0;
  std::uint64_t tail_bytes_dropped = 0;  ///< Torn/corrupt journal tail.
  /// Sessions that lost state: quarantined to COLD or demoted from
  /// PERSONALIZED to ASSIGNED. Zero on a clean recovery.
  std::uint64_t session_fallbacks = 0;
  std::uint64_t sessions = 0;      ///< Live sessions after recovery.
  /// Sessions whose fine-tuned engine is re-attached and serving.
  std::uint64_t personalized = 0;
  /// Sessions the journal/snapshot say *should* be personalized.
  std::uint64_t personalized_expected = 0;
  /// Sessions restored mid-adaptation (drift monitor; includes sessions
  /// frozen in one of these states under DEGRADED).
  std::uint64_t reassessing = 0;
  std::uint64_t shadowing = 0;
  /// Records whose kind this binary does not know (written by a newer
  /// journal format); each quarantines the session it names.
  std::uint64_t unknown_kind_records = 0;

  /// True when nothing was lost: no fallbacks, no corrupt snapshot, and
  /// every expected personalization is serving again.
  bool clean() const {
    return session_fallbacks == 0 && !snapshot_corrupt &&
           personalized == personalized_expected;
  }

  /// Multi-line human-readable summary (the recovery runbook's output).
  std::string str() const;
};

}  // namespace clear::serve
