#include "clear/artifacts.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace clear::core {
namespace {

namespace fs = std::filesystem;

ClearConfig art_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 51;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finalize();
  return c;
}

struct SharedFixture {
  wemac::WemacDataset dataset;
  ClearPipeline pipeline;
  std::vector<std::size_t> users;

  SharedFixture()
      : dataset(wemac::generate_wemac(art_config().data)),
        pipeline(art_config()) {
    for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

fs::path temp_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

TEST(Artifacts, SaveCreatesExpectedFiles) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_files");
  save_pipeline(f.pipeline, dir.string());
  EXPECT_TRUE(fs::exists(dir / "pipeline.meta"));
  for (std::size_t k = 0; k < f.pipeline.n_clusters(); ++k)
    EXPECT_TRUE(fs::exists(dir / ("cluster_" + std::to_string(k) + ".ckpt")));
  fs::remove_all(dir);
}

TEST(Artifacts, RoundTripPreservesAssignment) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_assign");
  save_pipeline(f.pipeline, dir.string());
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.n_clusters(), f.pipeline.n_clusters());
  EXPECT_EQ(restored.fitted_users(), f.pipeline.fitted_users());
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  const auto a = f.pipeline.assign_user(f.dataset, new_user, 0.3);
  const auto b = restored.assign_user(f.dataset, new_user, 0.3);
  EXPECT_EQ(a.cluster, b.cluster);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i)
    EXPECT_NEAR(a.scores[i], b.scores[i], 1e-9);
  fs::remove_all(dir);
}

TEST(Artifacts, RoundTripPreservesPredictions) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_pred");
  save_pipeline(f.pipeline, dir.string());
  ClearPipeline restored = load_pipeline(dir.string());
  const std::size_t new_user = f.dataset.n_volunteers() - 1;
  const auto& samples = f.dataset.samples_of(new_user);
  const std::vector<std::size_t> idx(samples.begin(), samples.end());
  for (std::size_t k = 0; k < f.pipeline.n_clusters(); ++k) {
    const nn::BinaryMetrics a = f.pipeline.evaluate_on(f.dataset, k, idx);
    const nn::BinaryMetrics b = restored.evaluate_on(f.dataset, k, idx);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.fn, b.fn);
    EXPECT_EQ(a.tn, b.tn);
  }
  fs::remove_all(dir);
}

TEST(Artifacts, RoundTripPreservesClustering) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_clust");
  save_pipeline(f.pipeline, dir.string());
  ClearPipeline restored = load_pipeline(dir.string());
  const auto& a = f.pipeline.clustering();
  const auto& b = restored.clustering();
  EXPECT_EQ(a.user_cluster, b.user_cluster);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t k = 0; k < a.clusters.size(); ++k) {
    EXPECT_EQ(a.clusters[k].members, b.clusters[k].members);
    EXPECT_EQ(a.clusters[k].sub_centroids.size(),
              b.clusters[k].sub_centroids.size());
    for (std::size_t d = 0; d < a.clusters[k].centroid.size(); ++d)
      EXPECT_DOUBLE_EQ(a.clusters[k].centroid[d], b.clusters[k].centroid[d]);
  }
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.rounds_run, b.rounds_run);
}

TEST(Artifacts, UnfittedPipelineRejected) {
  ClearPipeline empty(art_config());
  EXPECT_THROW(save_pipeline(empty, "/tmp/clear_should_not_exist"), Error);
}

TEST(Artifacts, MissingDirectoryRejected) {
  EXPECT_THROW(load_pipeline("/nonexistent/artifact/dir"), Error);
}

TEST(Artifacts, CorruptMetaRejected) {
  const fs::path dir = temp_dir("clear_artifacts_corrupt");
  fs::create_directories(dir);
  {
    std::ofstream os(dir / "pipeline.meta", std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW(load_pipeline(dir.string()), Error);
  fs::remove_all(dir);
}

TEST(Artifacts, MissingCheckpointRejectedWithoutFallback) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_missing_ckpt");
  save_pipeline(f.pipeline, dir.string());
  // With both the cluster checkpoint and the general fallback gone there is
  // nothing left to run this cluster on — the load must refuse.
  fs::remove(dir / "cluster_0.ckpt");
  fs::remove(dir / "general.ckpt");
  try {
    load_pipeline(dir.string());
    FAIL() << "expected load to refuse";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no general fallback"),
              std::string::npos)
        << "actual error: " << e.what();
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Graceful degradation: a damaged cluster checkpoint falls back to the
// general model; damaged metadata is a hard, CRC-specific error.

void flip_byte(const fs::path& file, std::size_t offset) {
  std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(io.good()) << file;
  io.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(io.tellg());
  ASSERT_LT(offset, size) << file;
  io.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  io.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  io.seekp(static_cast<std::streamoff>(offset));
  io.write(&c, 1);
}

TEST(Artifacts, SaveWritesGeneralFallback) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_general");
  save_pipeline(f.pipeline, dir.string());
  EXPECT_TRUE(fs::exists(dir / "general.ckpt"));
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_TRUE(restored.has_general_model());
  EXPECT_TRUE(restored.fallback_clusters().empty());
  fs::remove_all(dir);
}

TEST(Artifacts, MissingClusterCheckpointFallsBackToGeneral) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_fallback_missing");
  save_pipeline(f.pipeline, dir.string());
  fs::remove(dir / "cluster_0.ckpt");
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_EQ(restored.fallback_clusters(), std::vector<std::size_t>{0});
  // The degraded cluster still predicts (with the general weights).
  const auto& samples = f.dataset.samples_of(f.dataset.n_volunteers() - 1);
  const std::vector<std::size_t> idx(samples.begin(), samples.end());
  EXPECT_NO_THROW(restored.evaluate_on(f.dataset, 0, idx));
  fs::remove_all(dir);
}

TEST(Artifacts, CorruptClusterCheckpointFallsBackToGeneral) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_fallback_corrupt");
  save_pipeline(f.pipeline, dir.string());
  const fs::path ckpt = dir / "cluster_0.ckpt";
  flip_byte(ckpt, fs::file_size(ckpt) / 2);
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_EQ(restored.fallback_clusters(), std::vector<std::size_t>{0});
  fs::remove_all(dir);
}

TEST(Artifacts, CorruptGeneralCheckpointIsDroppedNotSubstituted) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_general_corrupt");
  save_pipeline(f.pipeline, dir.string());
  const fs::path ckpt = dir / "general.ckpt";
  flip_byte(ckpt, fs::file_size(ckpt) / 2);
  // All cluster checkpoints are intact, so the load succeeds — but the
  // damaged fallback must never be silently kept.
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_FALSE(restored.has_general_model());
  EXPECT_TRUE(restored.fallback_clusters().empty());
  fs::remove_all(dir);
}

TEST(Artifacts, CorruptMetaReportsCrcMismatch) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_meta_crc");
  save_pipeline(f.pipeline, dir.string());
  const fs::path meta = dir / "pipeline.meta";
  flip_byte(meta, fs::file_size(meta) / 2);
  try {
    load_pipeline(dir.string());
    FAIL() << "expected CRC error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
        << "actual error: " << e.what();
  }
  fs::remove_all(dir);
}

TEST(Artifacts, TruncatedMetaReportsTruncation) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_meta_trunc");
  save_pipeline(f.pipeline, dir.string());
  const fs::path meta = dir / "pipeline.meta";
  fs::resize_file(meta, fs::file_size(meta) / 2);
  try {
    load_pipeline(dir.string());
    FAIL() << "expected truncation error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated pipeline.meta"),
              std::string::npos)
        << "actual error: " << e.what();
  }
  fs::remove_all(dir);
}

TEST(Artifacts, FlippedBytesNeverLoadSilentlyWrong) {
  // The acceptance bar of the fault model: corrupt any byte of any file in
  // a saved pipeline directory and the load either degrades loudly
  // (fallback / dropped general) or throws — never runs damaged weights.
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_flip_sweep");
  save_pipeline(f.pipeline, dir.string());
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    files.push_back(entry.path());
  for (const fs::path& file : files) {
    const std::size_t size = fs::file_size(file);
    // Sample offsets across the file: header, early payload, middle, tail.
    for (const std::size_t offset :
         {std::size_t{0}, std::size_t{9}, std::size_t{17}, size / 3,
          size / 2, size - 5, size - 1}) {
      const fs::path backup = file.string() + ".bak";
      fs::copy_file(file, backup);
      flip_byte(file, offset);
      const std::string name = file.filename().string();
      if (name == "pipeline.meta") {
        EXPECT_THROW(load_pipeline(dir.string()), Error)
            << name << " offset " << offset;
      } else {
        // Checkpoint damage: the load must either throw (nothing to fall
        // back on would be a bug here — general.ckpt is intact unless the
        // flip hit it) or record the degradation.
        try {
          ClearPipeline restored = load_pipeline(dir.string());
          if (name == "general.ckpt") {
            EXPECT_FALSE(restored.has_general_model())
                << name << " offset " << offset;
          } else {
            EXPECT_FALSE(restored.fallback_clusters().empty())
                << name << " offset " << offset;
          }
        } catch (const Error&) {
          // A hard refusal is also acceptable — just never silence.
        }
      }
      fs::remove(file);
      fs::rename(backup, file);
    }
  }
  fs::remove_all(dir);
}

TEST(Artifacts, InjectedCrashDuringSaveLeavesLoadableOldState) {
  auto& f = fixture();
  const fs::path dir = temp_dir("clear_artifacts_crash");
  save_pipeline(f.pipeline, dir.string());
  // Crash the *second* save at its first guarded IO site: every file is
  // written to a temp name and renamed, so the committed state stays the
  // complete previous generation.
  fault::arm_io_failure(1);
  EXPECT_THROW(save_pipeline(f.pipeline, dir.string()), Error);
  fault::disarm_io_failure();
  ClearPipeline restored = load_pipeline(dir.string());
  EXPECT_TRUE(restored.fitted());
  EXPECT_TRUE(restored.fallback_clusters().empty());
  fs::remove_all(dir);
}

TEST(Artifacts, ImportStateValidation) {
  ClearPipeline p(art_config());
  ClearPipeline::State bad;
  EXPECT_THROW(p.import_state(std::move(bad)), Error);
}

}  // namespace
}  // namespace clear::core
