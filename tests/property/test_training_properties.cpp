// Parameterized end-to-end training properties: across model widths and
// task difficulties, the training loop must reduce loss, determinism must
// hold, and the edge precisions must track the fp32 reference.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "edge/engine.hpp"
#include "nn/checkpoint.hpp"
#include "nn/model.hpp"

namespace clear::nn {
namespace {

struct TaskCase {
  std::size_t conv1, conv2, hidden;
  double gap;  // Class separation; larger = easier.
};

struct Fixture {
  std::vector<Tensor> maps;
  MapDataset data;

  Fixture(std::size_t n, std::uint64_t seed, double gap) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      const int label = static_cast<int>(i % 2);
      Tensor m({16, 8});
      for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 8; ++c)
          m.at2(r, c) = static_cast<float>(
              rng.normal(label && r < 8 ? gap : 0.0, 0.5));
      maps.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < n; ++i) {
      data.maps.push_back(&maps[i]);
      data.labels.push_back(i % 2);
    }
  }
};

CnnLstmConfig model_for(const TaskCase& t) {
  CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = t.conv1;
  c.conv2_channels = t.conv2;
  c.lstm_hidden = t.hidden;
  c.dropout = 0.0;
  return c;
}

class TrainSweep : public ::testing::TestWithParam<TaskCase> {};

TEST_P(TrainSweep, LossDecreasesForEveryWidth) {
  const TaskCase t = GetParam();
  Fixture f(32, t.conv1 * 100 + t.hidden, t.gap);
  Rng rng(t.conv2 * 7 + 1);
  auto model = build_cnn_lstm(model_for(t), rng);
  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  tc.keep_best = false;
  const TrainHistory h = train_classifier(*model, f.data, tc);
  EXPECT_LT(h.train_loss.back(), h.train_loss.front())
      << "conv=" << t.conv1 << "/" << t.conv2 << " hidden=" << t.hidden;
}

TEST_P(TrainSweep, DeterministicAcrossRuns) {
  const TaskCase t = GetParam();
  Fixture f(16, t.conv1 * 55 + t.hidden, t.gap);
  auto run = [&] {
    Rng rng(t.hidden * 3 + 2);
    auto model = build_cnn_lstm(model_for(t), rng);
    TrainConfig tc;
    tc.epochs = 2;
    tc.seed = 42;
    return train_classifier(*model, f.data, tc).train_loss;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_P(TrainSweep, EdgePrecisionsTrackFp32Predictions) {
  const TaskCase t = GetParam();
  Fixture f(24, t.conv2 * 77 + 5, t.gap);
  Rng rng(t.conv1 * 13 + 3);
  auto reference = build_cnn_lstm(model_for(t), rng);
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  train_classifier(*reference, f.data, tc);
  const std::vector<std::size_t> ref_preds = predict_classes(*reference, f.data);

  // Copy weights into fresh models per precision via checkpoint round-trip.
  for (const auto precision :
       {edge::Precision::kFp16, edge::Precision::kInt8}) {
    Rng rng2(1);
    auto copy = build_cnn_lstm(model_for(t), rng2);
    {
      std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
      save_checkpoint(ss, *reference);
      load_checkpoint(ss, *copy);
    }
    edge::EngineConfig ec;
    ec.precision = precision;
    edge::EdgeEngine engine(std::move(copy), ec);
    engine.calibrate(f.data.maps);
    const std::vector<std::size_t> preds = engine.predict(f.data);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == ref_preds[i]) ++agree;
    // Reduced precision may flip borderline samples but must track the
    // reference on a clear majority.
    EXPECT_GE(agree * 4, preds.size() * 3)
        << edge::precision_name(precision);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TrainSweep,
                         ::testing::Values(TaskCase{2, 3, 4, 1.5},
                                           TaskCase{4, 6, 8, 1.2},
                                           TaskCase{6, 12, 16, 1.0},
                                           TaskCase{1, 2, 2, 2.0}));

}  // namespace
}  // namespace clear::nn
