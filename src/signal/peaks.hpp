// Peak detection for pulse (BVP) beats and electrodermal (SCR) events.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clear::dsp {

struct Peak {
  std::size_t index = 0;   ///< Sample index of the local maximum.
  double height = 0.0;     ///< Signal value at the peak.
  double prominence = 0.0; ///< Height above the higher of the two flanking minima.
};

struct PeakOptions {
  double min_height = -1e300;   ///< Absolute height threshold.
  double min_prominence = 0.0;  ///< Prominence threshold.
  std::size_t min_distance = 1; ///< Minimum samples between kept peaks.
};

/// Find local maxima satisfying the options; when two peaks violate
/// min_distance the higher one is kept.
std::vector<Peak> find_peaks(std::span<const double> x,
                             const PeakOptions& options);

/// Inter-beat intervals in seconds from peak indices at the given rate.
std::vector<double> peak_intervals(const std::vector<Peak>& peaks,
                                   double sample_rate);

}  // namespace clear::dsp
