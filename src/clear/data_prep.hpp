// Bridging the WEMAC dataset to the clustering and training components:
// per-fold feature normalization (fitted on training users only) and the
// construction of clustering observations and map datasets.
#pragma once

#include <vector>

#include "cluster/kmeans.hpp"
#include "features/feature_map.hpp"
#include "nn/trainer.hpp"
#include "wemac/dataset.hpp"

namespace clear::core {

/// Fit a per-feature z-score normalizer on all maps of the given users.
features::FeatureNormalizer fit_normalizer(
    const wemac::WemacDataset& dataset,
    const std::vector<std::size_t>& user_ids);

/// Normalized copies of every map in the dataset, index-aligned with
/// dataset.samples(). (Materializing all maps is a few MB and keeps the
/// fold logic simple.)
std::vector<Tensor> normalize_all_maps(
    const wemac::WemacDataset& dataset,
    const features::FeatureNormalizer& normalizer);

/// Clustering observation for each listed sample: the column-mean feature
/// vector of its normalized map.
std::vector<cluster::Point> map_observations(
    const std::vector<Tensor>& normalized_maps,
    const std::vector<std::size_t>& sample_indices);

/// Labelled map dataset over the listed samples (maps borrowed from
/// `normalized_maps`, which must outlive the result).
nn::MapDataset make_map_dataset(const wemac::WemacDataset& dataset,
                                const std::vector<Tensor>& normalized_maps,
                                const std::vector<std::size_t>& sample_indices);

/// Split one user's samples (in trial order) into the cold-start protocol's
/// three contiguous parts: CA (unlabeled), FT (labelled), and test.
struct UserSplit {
  std::vector<std::size_t> ca;    ///< Sample indices for cluster assignment.
  std::vector<std::size_t> ft;    ///< Sample indices for fine-tuning.
  std::vector<std::size_t> test;  ///< Held-out evaluation samples.
};
UserSplit split_user_samples(const wemac::WemacDataset& dataset,
                             std::size_t user_id, double ca_fraction,
                             double ft_fraction);

}  // namespace clear::core
