#include "nn/trainer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace clear::nn {

Tensor stack_batch(const std::vector<const Tensor*>& maps,
                   const std::vector<std::size_t>& indices) {
  Tensor batch;
  stack_batch_into(maps, indices, batch);
  return batch;
}

void stack_batch_into(const std::vector<const Tensor*>& maps,
                      const std::vector<std::size_t>& indices, Tensor& batch) {
  CLEAR_CHECK_MSG(!indices.empty(), "empty batch");
  CLEAR_CHECK_MSG(indices[0] < maps.size(), "batch index out of range");
  const Tensor& first = *maps[indices[0]];
  CLEAR_CHECK_MSG(first.rank() == 2, "feature maps must be rank-2");
  const std::size_t f = first.extent(0);
  const std::size_t w = first.extent(1);
  batch.resize({indices.size(), 1, f, w});
  float* dst = batch.data();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    CLEAR_CHECK_MSG(indices[b] < maps.size(), "batch index out of range");
    const Tensor& m = *maps[indices[b]];
    CLEAR_CHECK_MSG(m.extent(0) == f && m.extent(1) == w,
                    "inconsistent map shapes in batch");
    std::copy(m.data(), m.data() + f * w, dst + b * f * w);
  }
}

namespace {

/// Stratified split of indices into train/validation.
void split_validation(const MapDataset& data, double fraction, Rng& rng,
                      std::vector<std::size_t>& train_idx,
                      std::vector<std::size_t>& val_idx) {
  std::vector<std::size_t> by_class[2];
  for (std::size_t i = 0; i < data.size(); ++i)
    by_class[data.labels[i] > 0 ? 1 : 0].push_back(i);
  for (auto& cls : by_class) {
    const std::vector<std::size_t> perm = rng.permutation(cls.size());
    const auto n_val = static_cast<std::size_t>(
        fraction * static_cast<double>(cls.size()));
    for (std::size_t i = 0; i < cls.size(); ++i) {
      if (i < n_val) val_idx.push_back(cls[perm[i]]);
      else train_idx.push_back(cls[perm[i]]);
    }
  }
}

/// One eval-mode deep copy of `model` per parallel worker, so each thread
/// forwards batches through its own activation caches. Empty when the
/// parallel path is unavailable (single-threaded, nested inside another
/// parallel region, or a layer that cannot clone) — callers then run the
/// plain serial loop. Eval-mode forward is a pure function of parameters
/// and input, so replica outputs are bit-identical to the main model's.
std::vector<std::unique_ptr<Sequential>> eval_replicas(
    const Sequential& model, std::size_t n_batches) {
  std::vector<std::unique_ptr<Sequential>> replicas;
  if (n_batches < 2 || num_threads() <= 1 || in_parallel_region())
    return replicas;
  replicas.reserve(parallel_workers());
  for (std::size_t w = 0; w < parallel_workers(); ++w) {
    auto r = model.clone_sequential();
    if (!r) {
      replicas.clear();
      return replicas;
    }
    r->set_training(false);
    replicas.push_back(std::move(r));
  }
  return replicas;
}

double dataset_loss(Sequential& model, const MapDataset& data,
                    const std::vector<std::size_t>& indices,
                    std::size_t batch_size, double* accuracy_out) {
  const std::size_t n_batches =
      indices.empty() ? 0 : (indices.size() + batch_size - 1) / batch_size;
  struct BatchPartial {
    double loss = 0.0;
    std::size_t correct = 0;
    std::size_t seen = 0;
  };
  std::vector<BatchPartial> partials(n_batches);
  const auto eval_batch = [&](Sequential& m, std::size_t b) {
    const std::size_t start = b * batch_size;
    const std::size_t end = std::min(indices.size(), start + batch_size);
    const std::vector<std::size_t> batch_idx(indices.begin() + start,
                                             indices.begin() + end);
    const Tensor batch = stack_batch(data.maps, batch_idx);
    std::vector<std::size_t> labels(batch_idx.size());
    for (std::size_t i = 0; i < batch_idx.size(); ++i)
      labels[i] = data.labels[batch_idx[i]];
    const Tensor logits = m.forward(batch);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    BatchPartial& p = partials[b];
    p.loss = loss.loss * static_cast<double>(batch_idx.size());
    const std::vector<std::size_t> preds = ops::argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == labels[i]) ++p.correct;
    p.seen = batch_idx.size();
  };
  CLEAR_OBS_SPAN("eval");
  CLEAR_OBS_COUNT("eval.batches", n_batches);
  CLEAR_OBS_COUNT("eval.samples", indices.size());
  const auto replicas = eval_replicas(model, n_batches);
  if (!replicas.empty()) {
    parallel_for_workers(0, n_batches, 1,
                         [&](std::size_t worker, std::size_t lo,
                             std::size_t hi) {
                           for (std::size_t b = lo; b < hi; ++b)
                             eval_batch(*replicas[worker], b);
                         });
  } else {
    for (std::size_t b = 0; b < n_batches; ++b) eval_batch(model, b);
  }
  // Merge in ascending batch order — the same association as the serial
  // loop, so the reported loss is bit-identical at any thread count.
  double total = 0.0;
  std::size_t correct = 0;
  std::size_t seen = 0;
  for (const BatchPartial& p : partials) {
    total += p.loss;
    correct += p.correct;
    seen += p.seen;
  }
  if (accuracy_out)
    *accuracy_out =
        seen ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
  return seen ? total / static_cast<double>(seen) : 0.0;
}

}  // namespace

TrainHistory train_classifier(Sequential& model, const MapDataset& data,
                              const TrainConfig& config) {
  CLEAR_OBS_SPAN("train");
  CLEAR_OBS_COUNT("train.runs", 1);
  CLEAR_CHECK_MSG(data.size() >= 2, "training set too small");
  CLEAR_CHECK_MSG(data.maps.size() == data.labels.size(),
                  "map/label count mismatch");
  CLEAR_CHECK_MSG(config.batch_size >= 1 && config.epochs >= 1,
                  "bad training configuration");

  Rng rng(config.seed);
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> val_idx;
  if (config.validation_fraction > 0.0) {
    split_validation(data, config.validation_fraction, rng, train_idx, val_idx);
  } else {
    train_idx.resize(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) train_idx[i] = i;
  }
  CLEAR_CHECK_MSG(!train_idx.empty(), "validation split consumed all data");

  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = std::make_unique<Adam>(model.parameters(), config.lr, 0.9, 0.999,
                                 1e-8, config.weight_decay);
  } else {
    opt = std::make_unique<Sgd>(model.parameters(), config.lr, config.momentum,
                                config.weight_decay);
  }

  TrainHistory history;
  double best_score = 1e300;
  std::vector<Tensor> best_params;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // The span also feeds the "span.train.epoch_us" duration histogram.
    CLEAR_OBS_SPAN("train.epoch");
    model.set_training(true);
    // Shuffle per epoch.
    std::vector<std::size_t> order = train_idx;
    const std::vector<std::size_t> perm = rng.permutation(order.size());
    std::vector<std::size_t> shuffled(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) shuffled[i] = order[perm[i]];

    // The step loop is intentionally serial at the batch level: SGD steps
    // are sequentially dependent, and Dropout advances an internal RNG per
    // forward call, so reordering batches would change the numbers. The
    // parallelism lives underneath — forward/backward GEMMs and im2col are
    // row-blocked (disjoint writes), which keeps every gradient bit-identical
    // to single-threaded execution at any thread count.
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < shuffled.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(shuffled.size(), start + config.batch_size);
      const std::vector<std::size_t> batch_idx(shuffled.begin() + start,
                                               shuffled.begin() + end);
      const Tensor batch = stack_batch(data.maps, batch_idx);
      std::vector<std::size_t> labels(batch_idx.size());
      for (std::size_t i = 0; i < batch_idx.size(); ++i)
        labels[i] = data.labels[batch_idx[i]];

      opt->zero_grad();
      const Tensor logits = model.forward(batch);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      if (config.grad_clip > 0) opt->clip_grad_norm(config.grad_clip);
      opt->step();
      if (config.post_step) config.post_step(model);
      CLEAR_OBS_COUNT("train.batches", 1);
      epoch_loss += loss.loss * static_cast<double>(batch_idx.size());
      seen += batch_idx.size();
    }
    CLEAR_OBS_COUNT("train.epochs", 1);
    CLEAR_OBS_COUNT("train.samples", seen);
    epoch_loss /= static_cast<double>(seen);
    history.train_loss.push_back(epoch_loss);

    double score = epoch_loss;
    if (!val_idx.empty()) {
      model.set_training(false);
      double val_acc = 0.0;
      const double val_loss =
          dataset_loss(model, data, val_idx, config.batch_size, &val_acc);
      history.val_loss.push_back(val_loss);
      history.val_accuracy.push_back(val_acc);
      score = val_loss;
    }
    if (config.keep_best && score < best_score) {
      best_score = score;
      best_params = snapshot_parameters(model);
      history.best_epoch = epoch;
    }
    if (config.verbose) {
      CLEAR_INFO("epoch " << epoch + 1 << "/" << config.epochs << " loss="
                          << epoch_loss
                          << (val_idx.empty()
                                  ? ""
                                  : " val_loss=" +
                                        std::to_string(history.val_loss.back())));
    }
  }
  if (config.keep_best && !best_params.empty())
    restore_parameters(model, best_params);
  model.set_training(false);
  return history;
}

std::vector<std::size_t> predict_classes(Sequential& model,
                                         const MapDataset& data,
                                         std::size_t batch_size) {
  const Tensor proba = predict_probabilities(model, data, batch_size);
  return ops::argmax_rows(proba);
}

Tensor predict_probabilities(Sequential& model, const MapDataset& data,
                             std::size_t batch_size) {
  CLEAR_OBS_SPAN("eval");
  CLEAR_OBS_COUNT("eval.samples", data.size());
  CLEAR_CHECK_MSG(data.size() >= 1, "empty dataset");
  model.set_training(false);
  const std::size_t n_batches = (data.size() + batch_size - 1) / batch_size;
  Tensor all;
  std::size_t n_classes = 0;
  const auto run_batch = [&](Sequential& m, std::size_t b) {
    const std::size_t start = b * batch_size;
    const std::size_t end = std::min(data.size(), start + batch_size);
    std::vector<std::size_t> idx(end - start);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = start + i;
    const Tensor batch = stack_batch(data.maps, idx);
    const Tensor logits = m.forward(batch);
    const Tensor proba = ops::softmax_rows(logits);
    if (b == 0) {
      n_classes = proba.extent(1);
      all = Tensor({data.size(), n_classes});
    }
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < n_classes; ++c)
        all.at2(start + i, c) = proba.at2(i, c);
  };
  // Batch 0 runs first on the main model so the output tensor is sized
  // before workers write their (disjoint) row ranges.
  run_batch(model, 0);
  const auto replicas = eval_replicas(model, n_batches);
  if (!replicas.empty()) {
    parallel_for_workers(1, n_batches, 1,
                         [&](std::size_t worker, std::size_t lo,
                             std::size_t hi) {
                           for (std::size_t b = lo; b < hi; ++b)
                             run_batch(*replicas[worker], b);
                         });
  } else {
    for (std::size_t b = 1; b < n_batches; ++b) run_batch(model, b);
  }
  return all;
}

BinaryMetrics evaluate(Sequential& model, const MapDataset& data,
                       std::size_t batch_size) {
  const std::vector<std::size_t> preds =
      predict_classes(model, data, batch_size);
  return binary_metrics(preds, data.labels);
}

}  // namespace clear::nn
