// Parameterized numeric-emulation properties: quantization error bounds and
// fp16 relative-error bounds must hold across magnitudes and distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "edge/qkernels.hpp"
#include "edge/quantize.hpp"
#include "tensor/ops.hpp"

namespace clear::edge {
namespace {

// ---- int8: |x - dequant(quant(x))| <= scale/2 inside the clip range ----------

class QuantScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantScaleSweep, RoundTripErrorHalfStepBound) {
  const double magnitude = GetParam();
  Rng rng(static_cast<std::uint64_t>(magnitude * 1000));
  Tensor t({2000});
  t.fill_normal(rng, 0.0f, static_cast<float>(magnitude));
  const QuantParams p = calibrate_max_abs(t.flat());
  Tensor q = t;
  fake_quantize_inplace(q, p);
  for (std::size_t i = 0; i < t.numel(); ++i)
    EXPECT_NEAR(q[i], t[i], p.scale / 2.0f + 1e-7f) << "mag=" << magnitude;
}

TEST_P(QuantScaleSweep, QuantizationPreservesOrderOfWellSeparatedValues) {
  const double magnitude = GetParam();
  Rng rng(static_cast<std::uint64_t>(magnitude * 999) + 3);
  Tensor t({512});
  t.fill_normal(rng, 0.0f, static_cast<float>(magnitude));
  const QuantParams p = calibrate_max_abs(t.flat());
  Tensor q = t;
  fake_quantize_inplace(q, p);
  for (std::size_t i = 0; i + 1 < t.numel(); ++i) {
    if (t[i + 1] - t[i] > 2.0f * p.scale) EXPECT_LT(q[i], q[i + 1]);
    if (t[i] - t[i + 1] > 2.0f * p.scale) EXPECT_GT(q[i], q[i + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, QuantScaleSweep,
                         ::testing::Values(1e-3, 0.1, 1.0, 10.0, 1e3));

// ---- int8 GEMM == fake-quant float GEMM for arbitrary shapes ------------------

struct GemmCase {
  std::size_t m, k, n;
};

class QGemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(QGemmSweep, IntKernelMatchesFakeQuantFloat) {
  const GemmCase& c = GetParam();
  Rng rng(c.m * 100 + c.k * 10 + c.n);
  Tensor a({c.m, c.k});
  a.fill_normal(rng, 0.0f, 1.0f);
  Tensor b({c.k, c.n});
  b.fill_normal(rng, 0.0f, 1.0f);
  const QuantParams pa = calibrate_max_abs(a.flat());
  const QuantParams pb = calibrate_max_abs(b.flat());
  const auto qa = quantize_tensor(a, pa);
  const auto qb = quantize_tensor(b, pb);
  std::vector<std::int32_t> acc(c.m * c.n);
  int8_gemm(qa, qb, c.m, c.k, c.n, acc);
  Tensor out({c.m, c.n});
  dequantize_accum(acc, pa.scale, pb.scale, out.flat());

  Tensor fa = a;
  fake_quantize_inplace(fa, pa);
  Tensor fb = b;
  fake_quantize_inplace(fb, pb);
  const Tensor ref = ops::matmul(fa, fb);
  const float tol =
      1e-5f * static_cast<float>(c.k);  // Float accumulation slack.
  for (std::size_t i = 0; i < ref.numel(); ++i)
    EXPECT_NEAR(out[i], ref[i], tol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QGemmSweep,
                         ::testing::Values(GemmCase{1, 1, 1},
                                           GemmCase{2, 8, 3},
                                           GemmCase{5, 32, 5},
                                           GemmCase{3, 128, 7},
                                           GemmCase{16, 64, 16}));

// ---- fp16: relative error <= 2^-11 across the normal exponent range -----------

class Fp16ExponentSweep : public ::testing::TestWithParam<int> {};

TEST_P(Fp16ExponentSweep, RelativeErrorBound) {
  const int exponent = GetParam();
  const double base = std::pow(2.0, exponent);
  Rng rng(static_cast<std::uint64_t>(exponent + 40));
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(base * rng.uniform(1.0, 2.0) *
                                       (rng.bernoulli(0.5) ? 1.0 : -1.0));
    const float r = round_fp16(v);
    EXPECT_NEAR(r, v, std::abs(v) * std::pow(2.0f, -11.0f) + 1e-24f)
        << "exp=" << exponent;
  }
}

TEST_P(Fp16ExponentSweep, Idempotent) {
  const int exponent = GetParam();
  const double base = std::pow(2.0, exponent);
  Rng rng(static_cast<std::uint64_t>(exponent + 80));
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(base * rng.uniform(1.0, 2.0));
    const float once = round_fp16(v);
    EXPECT_EQ(round_fp16(once), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, Fp16ExponentSweep,
                         ::testing::Values(-13, -8, -4, 0, 4, 8, 12, 15));

// ---- softmax invariants across shapes ------------------------------------------

class SoftmaxShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SoftmaxShapeSweep, RowsSumToOneAndShiftInvariant) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 10 + cols);
  Tensor logits({rows, cols});
  logits.fill_normal(rng, 0.0f, 3.0f);
  const Tensor s1 = ops::softmax_rows(logits);
  const Tensor shifted = ops::add_scalar(logits, 100.0f);
  const Tensor s2 = ops::softmax_rows(shifted);
  for (std::size_t r = 0; r < rows; ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      total += s1.at2(r, c);
      EXPECT_NEAR(s1.at2(r, c), s2.at2(r, c), 1e-5f);
      EXPECT_GE(s1.at2(r, c), 0.0f);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoftmaxShapeSweep,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 2),
                      std::make_pair<std::size_t, std::size_t>(4, 2),
                      std::make_pair<std::size_t, std::size_t>(7, 5),
                      std::make_pair<std::size_t, std::size_t>(32, 10)));

}  // namespace
}  // namespace clear::edge
