// On-disk deployment artifacts for a fitted ClearPipeline.
//
// Directory layout (what the paper's cloud stage ships to the edge):
//   <dir>/pipeline.meta   — config, fitted users, normalizer, clustering
//   <dir>/cluster_<k>.ckpt — one CNN-LSTM checkpoint per cluster
//
// load_pipeline() restores an equivalent pipeline: same assignments, same
// predictions, without access to the training data.
#pragma once

#include <string>

#include "clear/pipeline.hpp"

namespace clear::core {

/// Persist a fitted pipeline. Creates `directory` if needed; overwrites
/// existing artifact files. Throws clear::Error on IO failure or if the
/// pipeline is not fitted.
void save_pipeline(ClearPipeline& pipeline, const std::string& directory);

/// Restore a pipeline saved by save_pipeline(). Throws clear::Error on
/// missing/corrupt artifacts.
ClearPipeline load_pipeline(const std::string& directory);

}  // namespace clear::core
