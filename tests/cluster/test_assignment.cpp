#include "cluster/assignment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace clear::cluster {
namespace {

/// A clustering result with two clusters around (0,0) and (10,0), each with
/// two sub-centroids straddling the main centroid.
GlobalClusteringResult two_cluster_fixture() {
  GlobalClusteringResult r;
  r.user_cluster = {0, 0, 1, 1};
  ClusterModel a;
  a.centroid = {0.0, 0.0};
  a.sub_centroids = {{-1.0, 0.0}, {1.0, 0.0}};
  a.members = {0, 1};
  ClusterModel b;
  b.centroid = {10.0, 0.0};
  b.sub_centroids = {{9.0, 0.0}, {11.0, 0.0}};
  b.members = {2, 3};
  r.clusters = {a, b};
  return r;
}

TEST(Assignment, SubCentroidSumPicksNearbyCluster) {
  const auto clustering = two_cluster_fixture();
  const AssignmentResult near_a =
      assign_new_user({{0.5, 0.2}}, clustering,
                      AssignStrategy::kSubCentroidSum);
  EXPECT_EQ(near_a.cluster, 0u);
  const AssignmentResult near_b =
      assign_new_user({{9.6, -0.3}}, clustering,
                      AssignStrategy::kSubCentroidSum);
  EXPECT_EQ(near_b.cluster, 1u);
}

TEST(Assignment, ScoresOrderedByDistance) {
  const auto clustering = two_cluster_fixture();
  const AssignmentResult r =
      assign_new_user({{2.0, 0.0}}, clustering,
                      AssignStrategy::kSubCentroidSum);
  ASSERT_EQ(r.scores.size(), 2u);
  EXPECT_LT(r.scores[0], r.scores[1]);
}

TEST(Assignment, MultipleObservationsAveraged) {
  const auto clustering = two_cluster_fixture();
  // Individually ambiguous observations whose mean is clearly in cluster 1.
  const std::vector<Point> obs = {{8.0, 0.0}, {12.0, 0.0}, {10.0, 1.0}};
  const AssignmentResult r =
      assign_new_user(obs, clustering, AssignStrategy::kSubCentroidSum);
  EXPECT_EQ(r.cluster, 1u);
}

TEST(Assignment, FlatCentroidAgreesOnEasyCases) {
  const auto clustering = two_cluster_fixture();
  for (const double x : {0.0, 1.0, 9.0, 10.5}) {
    const AssignmentResult sub =
        assign_new_user({{x, 0.0}}, clustering,
                        AssignStrategy::kSubCentroidSum);
    const AssignmentResult flat =
        assign_new_user({{x, 0.0}}, clustering, AssignStrategy::kFlatCentroid);
    EXPECT_EQ(sub.cluster, flat.cluster) << "x=" << x;
  }
}

TEST(Assignment, SubCentroidsBeatFlatOnElongatedCluster) {
  // Cluster 0 is elongated: sub-centroids capture structure the single
  // centroid misses. A point near an extreme sub-centroid must still go to
  // cluster 0 even though cluster 1's *main* centroid is closer.
  GlobalClusteringResult r;
  ClusterModel a;
  a.centroid = {0.0, 0.0};
  a.sub_centroids = {{-6.0, 0.0}, {0.0, 0.0}, {6.0, 0.0}};
  a.members = {0};
  ClusterModel b;
  b.centroid = {9.0, 6.0};
  b.sub_centroids = {{9.0, 6.0}};
  b.members = {1};
  r.clusters = {a, b};
  r.user_cluster = {0, 1};

  const Point probe = {7.0, 1.0};  // d(main a)=7.07, d(main b)=5.39.
  const AssignmentResult flat =
      assign_new_user({probe}, r, AssignStrategy::kFlatCentroid);
  EXPECT_EQ(flat.cluster, 1u);
  const AssignmentResult vote =
      assign_new_user({probe}, r, AssignStrategy::kObservationVote);
  EXPECT_EQ(vote.cluster, 0u);  // Nearest sub-centroid (6,0) is 1.41 away.
}

TEST(Assignment, ObservationVoteMajorityWins) {
  const auto clustering = two_cluster_fixture();
  const std::vector<Point> obs = {{0.0, 0.0}, {0.5, 0.0}, {10.0, 0.0}};
  const AssignmentResult r =
      assign_new_user(obs, clustering, AssignStrategy::kObservationVote);
  EXPECT_EQ(r.cluster, 0u);  // Two of three votes.
}

TEST(Assignment, Validation) {
  const auto clustering = two_cluster_fixture();
  EXPECT_THROW(assign_new_user({}, clustering), Error);
  GlobalClusteringResult empty;
  EXPECT_THROW(assign_new_user({{1.0, 1.0}}, empty), Error);
}

TEST(Assignment, RejectsNonFiniteObservations) {
  // A NaN would make every centroid distance NaN and silently assign
  // cluster 0; the observation set must be rejected up front instead.
  const auto clustering = two_cluster_fixture();
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (const AssignStrategy strategy :
       {AssignStrategy::kSubCentroidSum, AssignStrategy::kFlatCentroid,
        AssignStrategy::kObservationVote}) {
    EXPECT_THROW(assign_new_user({{nan, 0.0}}, clustering, strategy), Error);
    EXPECT_THROW(assign_new_user({{0.0, inf}}, clustering, strategy), Error);
    EXPECT_THROW(
        assign_new_user({{1.0, 1.0}, {2.0, -inf}}, clustering, strategy),
        Error);
  }
  try {
    assign_new_user({{1.0, 1.0}, {nan, 2.0}}, clustering);
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    // The error names the offending observation and dimension.
    EXPECT_NE(std::string(e.what()).find("observation 1, dimension 0"),
              std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(Assignment, SubCentroidSumRejectsClustersWithoutSubCentroids) {
  // An unfitted/degenerate cluster model (no sub-centroids) would make the
  // sub-centroid sum over an empty set score 0 — "perfect" — and silently
  // win every assignment. It must be rejected with an addressed error.
  auto clustering = two_cluster_fixture();
  clustering.clusters[1].sub_centroids.clear();
  try {
    assign_new_user({{0.5, 0.2}}, clustering,
                    AssignStrategy::kSubCentroidSum);
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cluster 1"), std::string::npos) << what;
    EXPECT_NE(what.find("no sub-centroids"), std::string::npos) << what;
  }
}

TEST(Assignment, ObservationVoteRejectsClustersWithoutSubCentroids) {
  auto clustering = two_cluster_fixture();
  clustering.clusters[0].sub_centroids.clear();
  try {
    assign_new_user({{0.5, 0.2}}, clustering,
                    AssignStrategy::kObservationVote);
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cluster 0"), std::string::npos) << what;
    EXPECT_NE(what.find("no sub-centroids"), std::string::npos) << what;
  }
}

TEST(Assignment, FlatCentroidRejectsEmptyCentroid) {
  // kFlatCentroid ignores sub-centroids entirely, so an empty *centroid* is
  // its degenerate input (distance to a zero-dimensional point is 0).
  auto clustering = two_cluster_fixture();
  clustering.clusters[1].centroid.clear();
  try {
    assign_new_user({{0.5, 0.2}}, clustering, AssignStrategy::kFlatCentroid);
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cluster 1"), std::string::npos) << what;
    EXPECT_NE(what.find("empty centroid"), std::string::npos) << what;
  }
  // A missing sub-centroid list alone must NOT trip the flat strategy.
  auto flat_ok = two_cluster_fixture();
  flat_ok.clusters[0].sub_centroids.clear();
  flat_ok.clusters[1].sub_centroids.clear();
  EXPECT_EQ(assign_new_user({{0.5, 0.2}}, flat_ok,
                            AssignStrategy::kFlatCentroid)
                .cluster,
            0u);
}

}  // namespace
}  // namespace clear::cluster
