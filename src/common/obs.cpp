#include "common/obs.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"

namespace clear::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Trace epoch: fixed at first use so every timestamp in one process shares
/// one origin regardless of when recording was switched on.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Dense thread ids in order of first span completion (0, 1, 2, ...).
std::uint32_t dense_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

constexpr std::size_t kTraceCapacity = 1 << 20;

struct Registry {
  std::mutex mutex;
  // std::map: references handed out must stay valid forever, and export
  // wants deterministic (sorted) key order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  std::mutex trace_mutex;
  std::vector<TraceEvent> trace;
  std::uint64_t trace_dropped = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: call sites may
  return *r;                            // record during static teardown
}

template <typename T>
T& lookup(std::map<std::string, std::unique_ptr<T>, std::less<>>& table,
          std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto it = table.find(name);
  if (it == table.end())
    it = table.emplace(std::string(name), std::make_unique<T>()).first;
  return *it->second;
}

/// CAS-accumulate `v` into an atomic double stored as bits.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (true) {
    const double cur = std::bit_cast<double>(old);
    const std::uint64_t want = std::bit_cast<std::uint64_t>(cur + v);
    if (bits.compare_exchange_weak(old, want, std::memory_order_relaxed))
      return;
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) > v) {
    if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed))
      return;
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) < v) {
    if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed))
      return;
  }
}

/// Minimal JSON string escaping (names are dotted identifiers, but a bad
/// name must not corrupt the file).
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  if (on) trace_epoch();  // pin the epoch before the first span
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void reset() {
  Registry& r = registry();
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& [name, c] : r.counters) c->reset();
    for (auto& [name, g] : r.gauges) g->reset();
    for (auto& [name, h] : r.histograms) h->reset();
  }
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  r.trace.clear();
  r.trace_dropped = 0;
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram()
    : min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())) {}

std::size_t Histogram::bucket_index(double v) {
  // Pinned degenerate mapping (never ilogb, whose result for 0/inf/NaN is
  // implementation-defined): zero, negatives, -inf, and NaN underflow to
  // bucket 0; +inf saturates into the top bucket.
  if (std::isnan(v)) return 0;
  if (!(v >= 1.0)) return 0;  // <1, negative, and -inf land in bucket 0
  if (std::isinf(v)) return kBuckets - 1;
  const int e = std::ilogb(v);  // floor(log2(v)) for finite v >= 1
  const std::size_t b = static_cast<std::size_t>(e) + 1;
  return b < kBuckets ? b : kBuckets - 1;
}

double Histogram::bucket_limit(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b));
}

void Histogram::record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // Only finite values fold into the summary statistics: a single NaN would
  // poison the CAS-accumulated sum forever, and ±inf would wedge min/max at
  // sentinels no finite sample could ever displace.
  if (std::isfinite(v)) {
    atomic_add_double(sum_bits_, v);
    atomic_min_double(min_bits_, v);
    atomic_max_double(max_bits_, v);
  }
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(
                      std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(
                      -std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry lookups
// ---------------------------------------------------------------------------

Counter& counter(std::string_view name) {
  return lookup(registry().counters, name);
}

Gauge& gauge(std::string_view name) { return lookup(registry().gauges, name); }

Histogram& histogram(std::string_view name) {
  return lookup(registry().histograms, name);
}

RegisteredNames registered_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  RegisteredNames out;
  out.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.counters.push_back(name);
  out.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.gauges.push_back(name);
  out.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) out.histograms.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

void ScopedSpan::begin(const char* name) {
  name_ = name;
  start_us_ = now_us();
  active_ = true;
}

void ScopedSpan::end() {
  active_ = false;
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur = end_us - start_us_;
  // Duration histogram regardless of trace-buffer pressure.
  histogram(std::string("span.") + name_ + "_us")
      .record(static_cast<double>(dur));
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  if (r.trace.size() >= kTraceCapacity) {
    ++r.trace_dropped;
    return;
  }
  TraceEvent e;
  e.name = name_;
  e.ts_us = start_us_;
  e.dur_us = dur;
  e.tid = dense_thread_id();
  r.trace.push_back(std::move(e));
}

std::vector<TraceEvent> trace_events() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  return r.trace;
}

std::size_t trace_capacity() { return kTraceCapacity; }

std::uint64_t dropped_trace_events() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  return r.trace_dropped;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

std::string snapshot_json() {
  Registry& r = registry();
  std::string out;
  out.reserve(1 << 16);
  out += "{\n  \"traceEvents\": [";
  {
    const std::lock_guard<std::mutex> lock(r.trace_mutex);
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      const TraceEvent& e = r.trace[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": ";
      append_escaped(out, e.name);
      out += ", \"cat\": \"clear\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
      out += std::to_string(e.tid);
      out += ", \"ts\": ";
      out += std::to_string(e.ts_us);
      out += ", \"dur\": ";
      out += std::to_string(e.dur_us);
      out += "}";
    }
  }
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\",\n";

  const std::lock_guard<std::mutex> lock(r.mutex);
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    out += std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    out += format_double(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + format_double(h->sum());
    out += ", \"min\": " + format_double(h->min());
    out += ", \"max\": " + format_double(h->max());
    out += ", \"mean\": " + format_double(h->mean());
    out += ", \"buckets\": [";
    // Only emit up to the highest non-empty bucket; the layout is fixed, so
    // omitted trailing buckets are unambiguously zero.
    std::size_t top = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (h->bucket(b) > 0) top = b + 1;
    for (std::size_t b = 0; b < top; ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + format_double(Histogram::bucket_limit(b));
      out += ", \"count\": " + std::to_string(h->bucket(b)) + "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"droppedTraceEvents\": ";
  {
    const std::lock_guard<std::mutex> tlock(r.trace_mutex);
    out += std::to_string(r.trace_dropped);
  }
  out += "\n}\n";
  return out;
}

void write_snapshot(const std::string& path) {
  const std::string json = snapshot_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  CLEAR_CHECK_MSG(f != nullptr, "cannot open metrics file " << tmp);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  CLEAR_CHECK_MSG(ok, "short write to metrics file " << tmp);
  CLEAR_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename " << tmp << " to " << path);
}

}  // namespace clear::obs
