// Shared plumbing for the table harnesses: configuration from CLI flags and
// dataset caching.
#pragma once

#include <cstdio>
#include <string>

#include "clear/config.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "wemac/dataset.hpp"

namespace clear::bench {

/// Build the experiment configuration from common CLI flags:
///   --seed=N --volunteers=N --trials=N --epochs=N --ft-epochs=N
///   --threads=N (0 = all hardware threads; results are thread-count
///   invariant, so this only changes wall-clock time)
///   --quick (small preset for a fast sanity pass)
inline core::ClearConfig config_from_args(const CliArgs& args) {
  core::ClearConfig config =
      args.get_bool("quick", false) ? core::smoke_config()
                                    : core::default_config();
  if (args.has("threads")) {
    const std::int64_t threads = args.get_int("threads", 1);
    CLEAR_CHECK_MSG(threads >= 0, "--threads must be >= 0");
    set_num_threads(static_cast<std::size_t>(threads));
  }
  config.data.seed =
      static_cast<std::uint64_t>(args.get_int("seed", static_cast<std::int64_t>(config.data.seed)));
  config.data.n_volunteers = static_cast<std::size_t>(
      args.get_int("volunteers", static_cast<std::int64_t>(config.data.n_volunteers)));
  config.data.trials_per_volunteer = static_cast<std::size_t>(
      args.get_int("trials", static_cast<std::int64_t>(config.data.trials_per_volunteer)));
  config.train.epochs = static_cast<std::size_t>(
      args.get_int("epochs", static_cast<std::int64_t>(config.train.epochs)));
  config.finetune.epochs = static_cast<std::size_t>(
      args.get_int("ft-epochs", static_cast<std::int64_t>(config.finetune.epochs)));
  config.finetune.lr = args.get_double("ft-lr", config.finetune.lr);
  config.finalize();
  return config;
}

/// Load (or generate + cache) the synthetic WEMAC dataset.
inline wemac::WemacDataset load_dataset(const core::ClearConfig& config,
                                        const CliArgs& args) {
  const std::string cache_dir = args.get("cache-dir", "wemac_cache");
  return wemac::generate_or_load(config.data, cache_dir);
}

/// "paper / measured" cell helper.
inline std::string paper_vs(double paper, double measured) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%6.2f / %6.2f", paper, measured);
  return buf;
}

}  // namespace clear::bench
