#include "nn/dense.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace clear::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("dense.weight", Tensor({in_features, out_features})),
      bias_("dense.bias", Tensor({out_features})) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  weight_.value.fill_uniform(rng, -bound, bound);
  bias_.value.zero();
}

Tensor Dense::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(input.rank() == 2 && input.extent(1) == in_,
                  "Dense expects [N, " << in_ << "], got "
                                       << input.shape_str());
  cached_input_ = input;
  // One fused GEMM pass: out = input * W + bias (bias added per output
  // column after each element's full k accumulation — same numbers as the
  // old matmul + add_row_bias_inplace sequence, one less sweep over out).
  Tensor out;
  const kernels::Epilogue ep{kernels::BiasMode::kPerCol, bias_.value.data(),
                             kernels::Activation::kNone};
  ops::matmul_fused_into(input, weight_.value, out, ep);
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(grad_output.rank() == 2 && grad_output.extent(1) == out_,
                  "Dense backward shape mismatch");
  CLEAR_CHECK_MSG(cached_input_.numel() > 0, "backward before forward");
  // dW += x^T g ; db += sum_rows(g) ; dx = g W^T.
  const Tensor xt = ops::transpose2d(cached_input_);
  ops::matmul_accum(xt, grad_output, weight_.grad);
  const std::size_t n = grad_output.extent(0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j)
      bias_.grad[j] += grad_output.at2(i, j);
  const Tensor wt = ops::transpose2d(weight_.value);
  return ops::matmul(grad_output, wt);
}

std::vector<Param*> Dense::parameters() { return {&weight_, &bias_}; }

}  // namespace clear::nn
