// Scalar reference kernels — the oracle for every vector path.
//
// The fp32 GEMM is the exact loop nest that lived in tensor/ops.cpp before
// the kernel library existed (i-k-j, skip on zero A entries), so
// CLEAR_KERNEL=scalar reproduces the repo's historical goldens bit for bit.
// The skip-zero fast path is unobservable in the results for finite data:
// with accumulators that start at +0 a skipped `c += 0*b` and an executed
// one produce identical bits (the accumulator can never become -0 through
// the chain), and weights/activations are rejected upstream when non-finite.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels/table_internal.hpp"

namespace clear::kernels::detail {

namespace {

void apply_epilogue(float* c, std::size_t m, std::size_t n,
                    const Epilogue* ep) {
  if (!ep) return;
  if (ep->bias) {
    if (ep->bias_mode == BiasMode::kPerCol) {
      for (std::size_t i = 0; i < m; ++i) {
        float* row = c + i * n;
        for (std::size_t j = 0; j < n; ++j) row[j] += ep->bias[j];
      }
    } else {
      for (std::size_t i = 0; i < m; ++i) {
        float* row = c + i * n;
        const float bv = ep->bias[i];
        for (std::size_t j = 0; j < n; ++j) row[j] += bv;
      }
    }
  }
  if (ep->act == Activation::kRelu) {
    for (std::size_t i = 0; i < m * n; ++i)
      if (!(c[i] > 0.0f)) c[i] = 0.0f;
  }
}

void gemm_f32(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, const Epilogue* ep) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  apply_epilogue(c, m, n, ep);
}

void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             std::size_t m, std::size_t k, std::size_t n) {
  std::memset(c, 0, m * n * sizeof(std::int32_t));
  for (std::size_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = a[i * k + kk];
      if (av == 0) continue;
      const std::int8_t* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j)
        crow[j] += av * static_cast<std::int32_t>(brow[j]);
    }
  }
}

void add_f32(float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
}

void sub_f32(float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] -= b[i];
}

void mul_f32(float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] *= b[i];
}

void axpy_f32(float* a, float alpha, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += alpha * b[i];
}

void scale_f32(float* a, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] *= s;
}

void add_scalar_f32(float* a, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += s;
}

void bias_rows_f32(float* a, const float* bias, std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = a + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void relu_f32(const float* x, float* y, float* mask, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool on = x[i] > 0.0f;
    y[i] = on ? x[i] : 0.0f;
    if (mask) mask[i] = on ? 1.0f : 0.0f;
  }
}

void quantize_i8(const float* x, float scale, std::int8_t* q, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float r = std::nearbyint(x[i] / scale);
    q[i] = static_cast<std::int8_t>(std::clamp(r, -127.0f, 127.0f));
  }
}

void dequantize_i32(const std::int32_t* acc, float scale, float* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<float>(acc[i]) * scale;
}

void fake_quant_f32(float* x, float scale, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float r = std::nearbyint(x[i] / scale);
    x[i] = std::clamp(r, -127.0f, 127.0f) * scale;
  }
}

/// Software fp32 -> fp16 -> fp32 round trip (RNE; subnormals preserved,
/// overflow to inf). Bit-compatible with VCVTPS2PH/VCVTPH2PS for all
/// non-NaN inputs.
float fp16_round_one(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  std::uint16_t half;
  if (((bits >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN.
    half = static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa ? 0x200u : 0));
  } else if (exponent >= 31) {
    half = static_cast<std::uint16_t>(sign | 0x7C00u);  // Overflow -> inf.
  } else if (exponent <= 0) {
    if (exponent < -10) {
      half = static_cast<std::uint16_t>(sign);  // Underflow -> zero.
    } else {
      // Subnormal half.
      mantissa |= 0x800000u;
      const int shift = 14 - exponent;
      std::uint32_t sub = mantissa >> shift;
      const std::uint32_t rem = mantissa & ((1u << shift) - 1);
      const std::uint32_t halfway = 1u << (shift - 1);
      if (rem > halfway || (rem == halfway && (sub & 1))) ++sub;
      half = static_cast<std::uint16_t>(sign | sub);
    }
  } else {
    std::uint32_t m = mantissa >> 13;
    const std::uint32_t rem = bits & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (m & 1))) ++m;
    // Adding (not OR-ing) the mantissa lets a rounding carry propagate into
    // the exponent field; 0x7C00 (inf) falls out naturally on overflow.
    half = static_cast<std::uint16_t>(
        sign + (static_cast<std::uint32_t>(exponent) << 10) + m);
  }

  // Half -> float.
  const std::uint32_t h_sign = (half & 0x8000u) << 16;
  const std::uint32_t h_exp = (half >> 10) & 0x1Fu;
  const std::uint32_t h_man = half & 0x3FFu;
  std::uint32_t out;
  if (h_exp == 0) {
    if (h_man == 0) {
      out = h_sign;
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = h_man;
      while (!(m & 0x400u)) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFu;
      out = h_sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            (m << 13);
    }
  } else if (h_exp == 31) {
    out = h_sign | 0x7F800000u | (h_man << 13);
  } else {
    out = h_sign | ((h_exp - 15 + 127) << 23) | (h_man << 13);
  }
  float result;
  std::memcpy(&result, &out, sizeof(result));
  return result;
}

void fp16_round_f32(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = fp16_round_one(x[i]);
}

const KernelTable kScalarTable = {
    Isa::kScalar, "scalar", gemm_f32,       gemm_i8,        add_f32,
    sub_f32,      mul_f32,  axpy_f32,       scale_f32,      add_scalar_f32,
    bias_rows_f32, relu_f32, quantize_i8,   dequantize_i32, fake_quant_f32,
    fp16_round_f32,
};

}  // namespace

const KernelTable* scalar_table() { return &kScalarTable; }

}  // namespace clear::kernels::detail
