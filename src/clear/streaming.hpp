// Real-time streaming detector (paper §I: "real-time detection when new
// users are introduced to the system").
//
// The offline pipeline consumes whole trials; a deployed wearable instead
// produces samples continuously. StreamingDetector buffers the three raw
// channels, cuts a feature window whenever `window_seconds` of every channel
// has accumulated, maintains a rolling feature map of the last W windows,
// and emits a fear probability from the deployed model each time the map is
// full — i.e. one detection per window period after a W-window warm-up,
// exactly what an edge device would surface to the application layer.
#pragma once

#include <deque>
#include <optional>

#include "features/feature_map.hpp"
#include "nn/sequential.hpp"

namespace clear::core {

struct StreamingConfig {
  double window_seconds = 10.0;  ///< Analysis window length.
  std::size_t map_windows = 12;  ///< W — columns per classified map.
  double bvp_hz = 64.0;
  double gsr_hz = 8.0;
  double skt_hz = 4.0;
};

struct Detection {
  double fear_probability = 0.0;
  std::size_t window_index = 0;  ///< Index of the newest window in the map.
};

class StreamingDetector {
 public:
  /// The detector borrows the model (the deployed cluster checkpoint; must
  /// outlive the detector) and copies the normalizer.
  StreamingDetector(nn::Sequential& model,
                    features::FeatureNormalizer normalizer,
                    const StreamingConfig& config);

  /// Feed raw samples (any chunk size, any interleaving across channels).
  void push_bvp(std::span<const double> samples);
  void push_gsr(std::span<const double> samples);
  void push_skt(std::span<const double> samples);

  /// Extract any newly completed windows and, once W windows are buffered,
  /// return a detection for the newest window. Returns std::nullopt while
  /// warming up or when no new window completed since the last poll.
  std::optional<Detection> poll();

  /// Windows extracted so far.
  std::size_t windows_seen() const { return windows_seen_; }
  /// True once enough windows are buffered to classify.
  bool warmed_up() const { return columns_.size() >= config_.map_windows; }

 private:
  bool window_ready() const;
  void extract_one_window();

  nn::Sequential& model_;
  features::FeatureNormalizer normalizer_;
  StreamingConfig config_;
  std::size_t bvp_per_window_;
  std::size_t gsr_per_window_;
  std::size_t skt_per_window_;

  std::deque<double> bvp_;
  std::deque<double> gsr_;
  std::deque<double> skt_;
  std::deque<std::vector<double>> columns_;  ///< Normalized feature columns.
  std::size_t windows_seen_ = 0;
  bool pending_detection_ = false;
};

}  // namespace clear::core
