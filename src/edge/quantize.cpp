#include "edge/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace clear::edge {

QuantParams calibrate_max_abs(std::span<const float> data) {
  CLEAR_CHECK_MSG(!data.empty(), "calibration on empty data");
  float m = 0.0f;
  for (const float v : data) m = std::max(m, std::abs(v));
  QuantParams p;
  p.scale = m > 0.0f ? m / 127.0f : 1.0f;
  return p;
}

QuantParams calibrate_percentile(std::span<const float> data,
                                 double percentile) {
  CLEAR_CHECK_MSG(!data.empty(), "calibration on empty data");
  CLEAR_CHECK_MSG(percentile > 0.0 && percentile <= 100.0,
                  "percentile out of range");
  std::vector<float> mags(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) mags[i] = std::abs(data[i]);
  std::sort(mags.begin(), mags.end());
  const double idx =
      percentile / 100.0 * static_cast<double>(mags.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, mags.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  const double m = mags[lo] * (1.0 - frac) + mags[hi] * frac;
  QuantParams p;
  p.scale = m > 0.0 ? static_cast<float>(m / 127.0) : 1.0f;
  return p;
}

std::int8_t quantize_value(float v, const QuantParams& params) {
  const float q = std::nearbyint(v / params.scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

float dequantize_value(std::int8_t q, const QuantParams& params) {
  return static_cast<float>(q) * params.scale;
}

std::vector<std::int8_t> quantize_tensor(const Tensor& t,
                                         const QuantParams& params) {
  std::vector<std::int8_t> q(t.numel());
  const float* src = t.data();
  for (std::size_t i = 0; i < q.size(); ++i)
    q[i] = quantize_value(src[i], params);
  return q;
}

void fake_quantize_inplace(Tensor& t, const QuantParams& params) {
  for (float& v : t.flat())
    v = dequantize_value(quantize_value(v, params), params);
}

float round_fp16(float v) {
  // Software float32 -> float16 -> float32 round trip (RNE).
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  std::uint16_t half;
  if (((bits >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN.
    half = static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa ? 0x200u : 0));
  } else if (exponent >= 31) {
    half = static_cast<std::uint16_t>(sign | 0x7C00u);  // Overflow -> inf.
  } else if (exponent <= 0) {
    if (exponent < -10) {
      half = static_cast<std::uint16_t>(sign);  // Underflow -> zero.
    } else {
      // Subnormal half.
      mantissa |= 0x800000u;
      const int shift = 14 - exponent;
      std::uint32_t sub = mantissa >> shift;
      const std::uint32_t rem = mantissa & ((1u << shift) - 1);
      const std::uint32_t halfway = 1u << (shift - 1);
      if (rem > halfway || (rem == halfway && (sub & 1))) ++sub;
      half = static_cast<std::uint16_t>(sign | sub);
    }
  } else {
    std::uint32_t m = mantissa >> 13;
    const std::uint32_t rem = mantissa & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (m & 1))) ++m;
    // Adding (not OR-ing) the mantissa lets a rounding carry propagate into
    // the exponent field; 0x7C00 (inf) falls out naturally on overflow.
    half = static_cast<std::uint16_t>(
        sign + (static_cast<std::uint32_t>(exponent) << 10) + m);
  }

  // Half -> float.
  const std::uint32_t h_sign = (half & 0x8000u) << 16;
  const std::uint32_t h_exp = (half >> 10) & 0x1Fu;
  const std::uint32_t h_man = half & 0x3FFu;
  std::uint32_t out;
  if (h_exp == 0) {
    if (h_man == 0) {
      out = h_sign;
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = h_man;
      while (!(m & 0x400u)) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFu;
      out = h_sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            (m << 13);
    }
  } else if (h_exp == 31) {
    out = h_sign | 0x7F800000u | (h_man << 13);
  } else {
    out = h_sign | ((h_exp - 15 + 127) << 23) | (h_man << 13);
  }
  float result;
  std::memcpy(&result, &out, sizeof(result));
  return result;
}

void fp16_inplace(Tensor& t) {
  for (float& v : t.flat()) v = round_fp16(v);
}

}  // namespace clear::edge
