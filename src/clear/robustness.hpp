// Robustness sweep: the fault-injected analogue of Table I.
//
// For every (dropout rate, corruption rate) pair, the synthetic WEMAC
// substrate is regenerated with deterministic fault injection (see
// common/fault.hpp and the faulted generate_wemac overload) and the full
// CLEAR LOSO protocol runs on the degraded data. The result is an
// accuracy-vs-fault-rate table answering the deployment question the paper
// leaves open: how much sensor failure can the clustered cold-start
// pipeline absorb before its advantage over chance evaporates?
//
// Determinism: fault decisions are stateless hashes and the LOSO harness is
// thread-count invariant, so every cell of the table is bit-identical across
// runs and thread counts — and the (0, 0) cell is bit-identical to the
// clean golden-seed LOSO results.
#pragma once

#include <functional>
#include <vector>

#include "clear/evaluation.hpp"
#include "common/fault.hpp"

namespace clear::core {

/// One cell of the accuracy-vs-fault-rate table.
struct RobustnessPoint {
  double dropout_rate = 0.0;
  double corrupt_rate = 0.0;
  fault::FaultStats faults;   ///< Injection counters over the raw streams.
  Aggregate no_ft;            ///< "CLEAR w/o FT" under these fault rates.
  Aggregate rt;               ///< "RT CLEAR" under these fault rates.
  double ca_consistency = 0.0;
};

struct RobustnessOptions {
  std::vector<double> dropout_rates = {0.0, 0.05, 0.10};
  std::vector<double> corrupt_rates = {0.0, 0.01};
  std::size_t max_folds = 0;      ///< 0 = every volunteer serves as V_x.
  std::uint64_t fault_seed = 1;   ///< Seed of the fault streams.
  double jitter_rate = 0.0;       ///< Optional clock-jitter rate for all cells.
  cluster::AssignStrategy strategy =
      cluster::AssignStrategy::kSubCentroidSum;
  /// Called before each cell runs: (cell index, total cells, point with the
  /// rates filled in).
  std::function<void(std::size_t, std::size_t, const RobustnessPoint&)>
      progress;
};

/// Run the LOSO harness over the cross product of the rate lists. Rows are
/// ordered dropout-major, matching the option lists.
std::vector<RobustnessPoint> run_robustness_sweep(
    const ClearConfig& config, const RobustnessOptions& options = {});

}  // namespace clear::core
