#!/usr/bin/env bash
# Doc-drift gate (ctest `check_docs`): the docs may not describe a CLI that
# no longer exists.
#
#   tools/check_docs.sh CLEAR_CLI_BINARY [repo-root]
#
# Four checks over README.md, DESIGN.md, EXPERIMENTS.md, and docs/*.md:
#
#   1. Every `clear-cli <subcommand> --flags...` invocation documented in
#      the markdown is probed against the real binary: the subcommand must
#      answer `--help` with exit 0, and every flag spelled on that
#      documented command line must appear in its help text. This is the
#      check that would have caught `robustness --quick` drifting after
#      the flag was removed.
#   2. Every `--flag` named in a docs/*.md table row must appear in the
#      help text of at least one documented subcommand (tables describe
#      flags without repeating the full command line).
#   3. Every intra-repo markdown link [text](path) must resolve to an
#      existing file, relative to the file that contains it.
#   4. docs/FORMATS.md (the normative on-disk format reference) may not
#      drift from the source of truth: every magic string (CLRART01,
#      CLEARCK2, ...) and every `kCamelCase` constant (journal record
#      kinds, delta encodings) it names must appear verbatim under src/,
#      and — the reverse direction — every RecordType enumerator in
#      src/serve/journal.hpp must be documented in FORMATS.md.
#
# No option parsing beyond $1/$2; runs from any directory.
set -u

CLI="${1:?usage: check_docs.sh CLEAR_CLI_BINARY [repo-root]}"
ROOT="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
[ -x "$CLI" ] || { echo "FAIL: clear-cli binary not executable: $CLI"; exit 1; }

DOCS=$(ls "$ROOT"/README.md "$ROOT"/DESIGN.md "$ROOT"/EXPERIMENTS.md \
          "$ROOT"/docs/*.md 2>/dev/null)
[ -n "$DOCS" ] || { echo "FAIL: no markdown files found under $ROOT"; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
failures=0
fail() { echo "FAIL: $*"; failures=$((failures + 1)); }

# --- 1. documented `clear-cli <sub> --flags` lines --------------------------
# Backslash-continued shell lines are joined first so multi-line fenced
# examples are seen as one command.
checked_cmds=0
for doc in $DOCS; do
  # Only code is a command: lines inside ``` fences, plus the contents of
  # inline `backtick` spans. Prose like "clear-cli drives the life cycle"
  # must not be probed as a subcommand.
  sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta' "$doc" |
    awk 'BEGIN { fence = 0 }
         /^```/ { fence = !fence; next }
         fence { print NR ":" $0; next }
         {
           n = split($0, parts, "`")
           for (i = 2; i <= n; i += 2)
             if (parts[i] ~ /clear-cli /) print NR ":" parts[i]
         }' |
    grep 'clear-cli [a-z]' > "$TMP/lines" || continue
  while IFS= read -r entry; do
    lineno=${entry%%:*}
    line=${entry#*:}
    # Everything from the LAST `clear-cli` on the line (prose may mention
    # it twice); subcommand is the word right after.
    cmd=${line##*clear-cli }
    sub=$(printf '%s\n' "$cmd" | grep -oE '^[a-z][a-z-]*' || true)
    [ -n "$sub" ] || continue
    help="$TMP/help_$sub"
    if [ ! -f "$help" ]; then
      if ! "$CLI" "$sub" --help > "$help" 2>/dev/null; then
        fail "$doc:$lineno: documented subcommand 'clear-cli $sub'" \
             "is not accepted by the binary"
        rm -f "$help"
        continue
      fi
    fi
    for flag in $(printf '%s\n' "$cmd" | grep -oE '\-\-[a-z][a-z0-9-]*' |
                    sort -u); do
      [ "$flag" = "--help" ] && continue
      checked_cmds=$((checked_cmds + 1))
      grep -q -- "$flag" "$help" ||
        fail "$doc:$lineno: 'clear-cli $sub $flag' is documented but" \
             "$flag is not in '$sub --help'"
    done
  done < "$TMP/lines"
done
[ "$checked_cmds" -gt 0 ] ||
  fail "no 'clear-cli <sub> --flag' lines found in any doc (parser broken?)"

# --- 2. flag tables in docs/*.md --------------------------------------------
cat "$TMP"/help_* > "$TMP/help_union" 2>/dev/null || : > "$TMP/help_union"
for doc in "$ROOT"/docs/*.md; do
  [ -f "$doc" ] || continue
  grep -n '^|' "$doc" | grep -oE '^[0-9]+|\-\-[a-z][a-z0-9-]*' |
    awk '/^[0-9]+$/ {n=$0; next} {print n":"$0}' | sort -u > "$TMP/tflags"
  while IFS=: read -r lineno flag; do
    [ -n "$flag" ] || continue
    grep -q -- "$flag" "$TMP/help_union" ||
      fail "$doc:$lineno: table documents '$flag' but no clear-cli" \
           "subcommand advertises it"
  done < "$TMP/tflags"
done

# --- 3. intra-repo markdown links -------------------------------------------
checked_links=0
for doc in $DOCS; do
  dir=$(dirname "$doc")
  grep -n -oE '\]\([^)]+\)' "$doc" | sed 's/](//; s/)$//' > "$TMP/links"
  while IFS=: read -r lineno target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    checked_links=$((checked_links + 1))
    [ -e "$dir/$path" ] ||
      fail "$doc:$lineno: broken link '$target' ($dir/$path does not exist)"
  done < "$TMP/links"
done
[ "$checked_links" -gt 0 ] || fail "no intra-repo markdown links found"

# --- 4. FORMATS.md vs the formats' source of truth ---------------------------
FORMATS="$ROOT/docs/FORMATS.md"
checked_fmt=0
if [ ! -f "$FORMATS" ]; then
  fail "docs/FORMATS.md is missing (the on-disk format reference is load-bearing)"
else
  src_has() {
    grep -rqw --include='*.hpp' --include='*.cpp' -- "$1" "$ROOT/src"
  }
  # Magic strings: CLRART01 / CLRWAL02 / CLEARCK2 / CTSR / ... A magic
  # documented here but absent from src/ means a format was renamed or
  # retired without updating the normative reference.
  grep -oE '\b(CLEAR|CLR)[A-Z0-9]+\b|\bCTSR\b' "$FORMATS" | sort -u \
    > "$TMP/fmt_magics"
  [ -s "$TMP/fmt_magics" ] ||
    fail "docs/FORMATS.md names no magic strings (parser broken?)"
  while IFS= read -r magic; do
    checked_fmt=$((checked_fmt + 1))
    src_has "$magic" ||
      fail "docs/FORMATS.md names magic '$magic' but it appears nowhere" \
           "under src/"
  done < "$TMP/fmt_magics"
  # kCamelCase constants (record-kind names, delta encodings, sentinels).
  grep -oE '\bk[A-Z][A-Za-z0-9]*\b' "$FORMATS" | sort -u > "$TMP/fmt_kinds"
  [ -s "$TMP/fmt_kinds" ] ||
    fail "docs/FORMATS.md names no k-constants (parser broken?)"
  while IFS= read -r kind; do
    checked_fmt=$((checked_fmt + 1))
    src_has "$kind" ||
      fail "docs/FORMATS.md names constant '$kind' but it appears nowhere" \
           "under src/"
  done < "$TMP/fmt_kinds"
  # Reverse direction: a new journal record kind must be documented before
  # it ships — the enum is the writer's source of truth.
  sed -n '/^enum class RecordType/,/^};/p' "$ROOT/src/serve/journal.hpp" |
    grep -oE '^ *k[A-Za-z0-9]+' | tr -d ' ' > "$TMP/enum_kinds"
  [ -s "$TMP/enum_kinds" ] ||
    fail "could not parse RecordType enumerators from src/serve/journal.hpp"
  while IFS= read -r kind; do
    checked_fmt=$((checked_fmt + 1))
    grep -qw -- "$kind" "$FORMATS" ||
      fail "src/serve/journal.hpp declares record kind '$kind' but" \
           "docs/FORMATS.md does not document it"
  done < "$TMP/enum_kinds"
fi

if [ "$failures" -gt 0 ]; then
  echo "check_docs: $failures failure(s)"
  exit 1
fi
echo "check_docs: OK ($checked_cmds flag probes, $checked_links links," \
     "$checked_fmt format tokens)"
